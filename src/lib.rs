//! Umbrella crate for the RECEIPT reproduction workspace.
//!
//! Re-exports the public API of every member crate so the root-level
//! examples (`examples/`) and integration tests (`tests/`) can use a single
//! dependency. Library users should depend on the member crates directly.

pub use bigraph;
pub use butterfly;
pub use parutil;
pub use receipt;

//! Fail-closed little-endian reads for the durable formats.
//!
//! Every decode in the durable modules (`bigraph::binfmt`,
//! `receipt::wal`, `receipt::version`) must surface a short or torn
//! input as a typed error, never a panic (FORMATS.md §2). These helpers
//! make the fallible read the only ergonomic option: they return `None`
//! on any out-of-range access — including offset overflow — and the
//! caller maps that into its module's corruption error.

/// Copies `N` bytes at `pos`, or `None` if the slice is too short (or
/// `pos + N` overflows).
pub fn array_at<const N: usize>(bytes: &[u8], pos: usize) -> Option<[u8; N]> {
    let chunk = bytes.get(pos..pos.checked_add(N)?)?;
    let mut out = [0u8; N];
    out.copy_from_slice(chunk);
    Some(out)
}

/// Little-endian `u32` at `pos`, or `None` past the end.
pub fn le_u32_at(bytes: &[u8], pos: usize) -> Option<u32> {
    array_at(bytes, pos).map(u32::from_le_bytes)
}

/// Little-endian `u64` at `pos`, or `None` past the end.
pub fn le_u64_at(bytes: &[u8], pos: usize) -> Option<u64> {
    array_at(bytes, pos).map(u64::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_range() {
        let b = 0x1122_3344_5566_7788u64.to_le_bytes();
        assert_eq!(le_u64_at(&b, 0), Some(0x1122_3344_5566_7788));
        assert_eq!(le_u32_at(&b, 4), Some(0x1122_3344));
        assert_eq!(array_at::<2>(&b, 6), Some([0x22, 0x11]));
    }

    #[test]
    fn short_reads_fail_closed() {
        let b = [1u8, 2, 3];
        assert_eq!(le_u32_at(&b, 0), None);
        assert_eq!(le_u32_at(&b, 3), None);
        assert_eq!(le_u64_at(&[], 0), None);
        assert_eq!(array_at::<1>(&b, usize::MAX), None);
    }
}

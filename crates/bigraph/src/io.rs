//! KONECT-style edge-list I/O.
//!
//! The paper's datasets come from the KONECT collection, distributed as
//! whitespace-separated edge lists with `%` comment headers and optional
//! trailing weight/timestamp columns. This reader accepts that format
//! (ignoring extra columns) and understands the size header that
//! [`write_graph`] emits — `% {m} {nu} {nv}` — which makes the round trip
//! lossless: the header's side sizes are authoritative (trailing isolated
//! vertices survive) and its presence marks the ids as 0-based (a file
//! whose vertex 0 happens to have no edges is not mistaken for 1-based).
//! Headerless files fall back to the KONECT convention: ids are 1-based
//! when every observed id is ≥ 1, and each side is sized by its maximum id.

use crate::builder::GraphBuilder;
use crate::csr::BipartiteCsr;
use crate::VertexId;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// I/O or parse failure while reading an edge list.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Parse {
        line: usize,
        content: String,
    },
    Build(crate::builder::BuildError),
    /// Any of the above, wrapped with the path of the offending file by
    /// [`read_graph_path`] so callers' error messages name the file.
    File {
        path: String,
        error: Box<IoError>,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
            IoError::Build(e) => write!(f, "build error: {e}"),
            IoError::File { path, error } => write!(f, "failed to read {path}: {error}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Everything one pass over an edge-list file yields: the raw (unshifted)
/// edges, the `% m nu nv` size header if one was present, and the observed
/// id extremes used by the 1-based heuristic.
struct ParsedEdgeList {
    edges: Vec<(VertexId, VertexId)>,
    header: Option<(usize, usize, usize)>,
    min_id: VertexId,
    max_u: VertexId,
    max_v: VertexId,
}

impl ParsedEdgeList {
    /// Whether the ids should be shifted down by one. With a header the
    /// file is 0-based by contract (that is what [`write_graph`] emits) —
    /// unless some id *equals* a declared side size, which only a 1-based
    /// file can produce. Headerless files use the KONECT all-ids-≥-1
    /// heuristic.
    ///
    /// The header cases are genuinely ambiguous — a headered file whose
    /// ids are all ≥ 1 *and* all below the declared sizes could be either
    /// a 0-based graph with an isolated vertex 0 (what our writer
    /// produces) or a 1-based KONECT download with trailing isolated
    /// vertices. No rule satisfies both; this reader resolves the tie in
    /// favour of its own writer so the round trip is lossless, and only
    /// shifts a headered file on the unambiguous equals-size evidence.
    /// Foreign 1-based files with headers *and* trailing isolated
    /// vertices are rare (KONECT ids are typically dense); if one
    /// matters, strip its header to get the 1-based heuristic.
    fn one_based(&self) -> bool {
        if self.edges.is_empty() || self.min_id == 0 {
            return false;
        }
        match self.header {
            Some((_, nu, nv)) => self.max_u as usize == nu || self.max_v as usize == nv,
            None => true,
        }
    }
}

fn parse_edge_list<R: Read>(reader: R) -> Result<ParsedEdgeList, IoError> {
    let mut parsed = ParsedEdgeList {
        edges: Vec::new(),
        header: None,
        min_id: VertexId::MAX,
        max_u: 0,
        max_v: 0,
    };
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if let Some(comment) = t.strip_prefix('%') {
            // The KONECT size header: a comment whose payload is exactly
            // three integers, `% {m} {nu} {nv}`. Only the first one counts.
            if parsed.header.is_none() && parsed.edges.is_empty() {
                let nums: Vec<usize> = comment
                    .split_whitespace()
                    .map_while(|w| w.parse().ok())
                    .collect();
                if nums.len() == 3 && comment.split_whitespace().count() == 3 {
                    parsed.header = Some((nums[0], nums[1], nums[2]));
                }
            }
            continue;
        }
        let mut cols = t.split_whitespace();
        let parse = |s: Option<&str>| -> Option<VertexId> { s?.parse().ok() };
        match (parse(cols.next()), parse(cols.next())) {
            (Some(u), Some(v)) => {
                parsed.min_id = parsed.min_id.min(u).min(v);
                parsed.max_u = parsed.max_u.max(u);
                parsed.max_v = parsed.max_v.max(v);
                parsed.edges.push((u, v));
            }
            _ => {
                return Err(IoError::Parse {
                    line: idx + 1,
                    content: t.to_string(),
                })
            }
        }
    }
    Ok(parsed)
}

/// Reads `(u, v)` pairs from a KONECT-style listing. Lines starting with
/// `%` or `#` (and blank lines) are skipped; columns beyond the first two
/// are ignored. Files carrying the `% {m} {nu} {nv}` size header are
/// 0-based by contract; headerless files are treated as 1-based and
/// shifted down when every id is ≥ 1 (KONECT convention).
pub fn read_edge_list<R: Read>(reader: R) -> Result<Vec<(VertexId, VertexId)>, IoError> {
    let parsed = parse_edge_list(reader)?;
    let shift = parsed.one_based();
    let mut edges = parsed.edges;
    if shift {
        for e in &mut edges {
            e.0 -= 1;
            e.1 -= 1;
        }
    }
    Ok(edges)
}

/// Reads an edge list into a graph. With a `% {m} {nu} {nv}` header the
/// declared sizes are authoritative (isolated vertices round-trip);
/// otherwise each side is sized by its maximum observed id.
pub fn read_graph<R: Read>(reader: R) -> Result<BipartiteCsr, IoError> {
    read_graph_with_base(reader).map(|(g, _)| g)
}

/// [`read_graph`] plus whether the file's ids were 1-based and shifted
/// down. Consumers that accept *companion* files keyed by the same ids
/// (e.g. `tipdecomp stream` op batches) need the flag to shift those ids
/// identically.
pub fn read_graph_with_base<R: Read>(reader: R) -> Result<(BipartiteCsr, bool), IoError> {
    let parsed = parse_edge_list(reader)?;
    let shift = parsed.one_based();
    let (nu, nv) = match parsed.header {
        Some((_, nu, nv)) => (nu, nv),
        None => {
            if parsed.edges.is_empty() {
                (0, 0)
            } else {
                let off = usize::from(shift);
                (
                    parsed.max_u as usize + 1 - off,
                    parsed.max_v as usize + 1 - off,
                )
            }
        }
    };
    let mut edges = parsed.edges;
    if shift {
        for e in &mut edges {
            e.0 -= 1;
            e.1 -= 1;
        }
    }
    GraphBuilder::new(nu, nv)
        .add_edges(edges)
        .build()
        .map(|g| (g, shift))
        .map_err(IoError::Build)
}

/// Reads a graph from a file path. Open, read, and parse errors are
/// wrapped with the offending path ([`IoError::File`]).
pub fn read_graph_path(path: impl AsRef<Path>) -> Result<BipartiteCsr, IoError> {
    read_graph_path_with_base(path).map(|(g, _)| g)
}

/// [`read_graph_with_base`] from a file path, with the same
/// path-wrapped errors as [`read_graph_path`].
pub fn read_graph_path_with_base(path: impl AsRef<Path>) -> Result<(BipartiteCsr, bool), IoError> {
    let path = path.as_ref();
    let wrap = |error: IoError| IoError::File {
        path: path.display().to_string(),
        error: Box::new(error),
    };
    let file = std::fs::File::open(path).map_err(|e| wrap(IoError::Io(e)))?;
    read_graph_with_base(file).map_err(wrap)
}

/// Writes a graph as a 0-based edge list with a `%` header. The second
/// header line, `% {m} {nu} {nv}`, is what lets [`read_graph`] restore the
/// exact side sizes and id base.
pub fn write_graph<W: Write>(g: &BipartiteCsr, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "% bip unweighted")?;
    writeln!(w, "% {} {} {}", g.num_edges(), g.num_u(), g.num_v())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes a graph to a file path.
pub fn write_graph_path(g: &BipartiteCsr, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_graph(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn parses_comments_and_extra_columns() {
        let text = "% bip\n# another comment\n\n1 2 5.0 1234\n2 1\n3 3\n";
        let edges = read_edge_list(text.as_bytes()).unwrap();
        // Headerless and 1-based: detected and shifted.
        assert_eq!(edges, vec![(0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn zero_based_kept_as_is() {
        let edges = read_edge_list("0 5\n3 0\n".as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 5), (3, 0)]);
    }

    #[test]
    fn header_marks_zero_based() {
        // Without the header this file would be shifted (every id >= 1);
        // the header pins it as a 0-based listing whose vertex 0 has no
        // edges.
        let text = "% bip unweighted\n% 2 4 4\n1 2\n3 3\n";
        let edges = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(1, 2), (3, 3)]);
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!((g.num_u(), g.num_v()), (4, 4));
    }

    #[test]
    fn header_with_one_based_ids_still_shifts() {
        // A genuine KONECT header file: ids 1..=nu fill the declared
        // range, so some id equals its side size — impossible 0-based.
        let text = "% bip\n% 3 2 3\n1 1\n2 2\n1 3\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!((g.num_u(), g.num_v()), (2, 3));
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 0), (0, 2), (1, 1)]);
    }

    #[test]
    fn header_is_only_read_before_edges() {
        // A trailing three-integer comment is not a size header.
        let text = "5 5\n% 1 2 3\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!((g.num_u(), g.num_v()), (5, 5)); // 1-based heuristic
    }

    #[test]
    fn malformed_line_is_an_error() {
        let err = read_edge_list("1 2\nbogus\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "bogus");
            }
            other => panic!("expected parse error, got {other}"),
        }
        let err = read_edge_list("7\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_graph("% nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_u(), 0);
    }

    #[test]
    fn empty_graph_with_header_keeps_sizes() {
        let g = read_graph("% bip unweighted\n% 0 3 7\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!((g.num_u(), g.num_v()), (3, 7));
    }

    #[test]
    fn round_trip_preserves_ids_and_edges() {
        let g = from_edges(3, 4, &[(0, 0), (1, 3), (2, 1), (2, 2)]).unwrap();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_is_byte_identical_with_unused_vertex_zero() {
        // Vertex 0 has no edges on either side: the pre-header reader
        // misread this file as 1-based and shifted every id down.
        let g = from_edges(4, 4, &[(1, 1), (1, 2), (3, 1), (3, 3)]).unwrap();
        let mut first = Vec::new();
        write_graph(&g, &mut first).unwrap();
        let g2 = read_graph(first.as_slice()).unwrap();
        assert_eq!(g, g2, "ids must not shift");
        let mut second = Vec::new();
        write_graph(&g2, &mut second).unwrap();
        assert_eq!(first, second, "write → read → write must be bytes-stable");
    }

    #[test]
    fn round_trip_keeps_trailing_isolated_vertices() {
        // Max edge ids are (1, 0) but the sides are declared 5 x 6: the
        // trailing isolated vertices must survive the round trip.
        let g = from_edges(5, 6, &[(0, 0), (1, 0)]).unwrap();
        let mut first = Vec::new();
        write_graph(&g, &mut first).unwrap();
        let g2 = read_graph(first.as_slice()).unwrap();
        assert_eq!((g2.num_u(), g2.num_v()), (5, 6));
        assert_eq!(g, g2);
        let mut second = Vec::new();
        write_graph(&g2, &mut second).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn file_round_trip() {
        let g = from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let dir = std::env::temp_dir().join("bigraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tsv");
        write_graph_path(&g, &path).unwrap();
        let g2 = read_graph_path(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_error_names_the_path() {
        let err = read_graph_path("/nonexistent/graph.tsv").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("failed to read /nonexistent/graph.tsv"),
            "{msg}"
        );
        assert!(matches!(err, IoError::File { .. }));
    }

    #[test]
    fn parse_error_in_file_names_the_path() {
        let dir = std::env::temp_dir().join("bigraph_io_parse_err");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tsv");
        std::fs::write(&path, "0 0\nnot an edge\n").unwrap();
        let err = read_graph_path(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad.tsv"), "{msg}");
        assert!(msg.contains("parse error on line 2"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn base_flag_reports_whether_ids_shifted() {
        let (_, shifted) = read_graph_with_base("1 1\n2 2\n".as_bytes()).unwrap();
        assert!(shifted, "headerless all-ids-≥-1 file is 1-based");
        let (_, shifted) = read_graph_with_base("0 1\n2 2\n".as_bytes()).unwrap();
        assert!(!shifted);
        let (_, shifted) = read_graph_with_base("% bip\n% 2 4 4\n1 1\n2 2\n".as_bytes()).unwrap();
        assert!(!shifted, "header marks 0-based");
    }

    #[test]
    fn duplicate_edges_merged_on_read() {
        let g = read_graph("1 1\n1 1\n2 2\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }
}

//! KONECT-style edge-list I/O.
//!
//! The paper's datasets come from the KONECT collection, distributed as
//! whitespace-separated edge lists with `%` comment headers and optional
//! trailing weight/timestamp columns. This reader accepts that format
//! (ignoring extra columns), auto-detects 1-based ids, and sizes the sides
//! from the maximum observed id unless explicit sizes are given.

use crate::builder::GraphBuilder;
use crate::csr::BipartiteCsr;
use crate::VertexId;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// I/O or parse failure while reading an edge list.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Parse { line: usize, content: String },
    Build(crate::builder::BuildError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
            IoError::Build(e) => write!(f, "build error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads `(u, v)` pairs from a KONECT-style listing. Lines starting with
/// `%` or `#` (and blank lines) are skipped; columns beyond the first two
/// are ignored. If every id is ≥ 1 the whole file is treated as 1-based and
/// shifted down (KONECT convention).
pub fn read_edge_list<R: Read>(reader: R) -> Result<Vec<(VertexId, VertexId)>, IoError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut min_id = VertexId::MAX;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') || t.starts_with('#') {
            continue;
        }
        let mut cols = t.split_whitespace();
        let parse = |s: Option<&str>| -> Option<VertexId> { s?.parse().ok() };
        match (parse(cols.next()), parse(cols.next())) {
            (Some(u), Some(v)) => {
                min_id = min_id.min(u).min(v);
                edges.push((u, v));
            }
            _ => {
                return Err(IoError::Parse {
                    line: idx + 1,
                    content: t.to_string(),
                })
            }
        }
    }
    if !edges.is_empty() && min_id >= 1 {
        for e in &mut edges {
            e.0 -= 1;
            e.1 -= 1;
        }
    }
    Ok(edges)
}

/// Reads an edge list into a graph, sizing each side from the maximum id.
pub fn read_graph<R: Read>(reader: R) -> Result<BipartiteCsr, IoError> {
    let edges = read_edge_list(reader)?;
    let nu = edges
        .iter()
        .map(|&(u, _)| u as usize + 1)
        .max()
        .unwrap_or(0);
    let nv = edges
        .iter()
        .map(|&(_, v)| v as usize + 1)
        .max()
        .unwrap_or(0);
    GraphBuilder::new(nu, nv)
        .add_edges(edges)
        .build()
        .map_err(IoError::Build)
}

/// Reads a graph from a file path.
pub fn read_graph_path(path: impl AsRef<Path>) -> Result<BipartiteCsr, IoError> {
    read_graph(std::fs::File::open(path)?)
}

/// Writes a graph as a 0-based edge list with a `%` header.
pub fn write_graph<W: Write>(g: &BipartiteCsr, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "% bip unweighted")?;
    writeln!(w, "% {} {} {}", g.num_edges(), g.num_u(), g.num_v())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes a graph to a file path.
pub fn write_graph_path(g: &BipartiteCsr, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_graph(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn parses_comments_and_extra_columns() {
        let text = "% bip\n# another comment\n\n1 2 5.0 1234\n2 1\n3 3\n";
        let edges = read_edge_list(text.as_bytes()).unwrap();
        // 1-based detected and shifted.
        assert_eq!(edges, vec![(0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn zero_based_kept_as_is() {
        let edges = read_edge_list("0 5\n3 0\n".as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 5), (3, 0)]);
    }

    #[test]
    fn malformed_line_is_an_error() {
        let err = read_edge_list("1 2\nbogus\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "bogus");
            }
            other => panic!("expected parse error, got {other}"),
        }
        let err = read_edge_list("7\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_graph("% nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_u(), 0);
    }

    #[test]
    fn round_trip() {
        let g = from_edges(3, 4, &[(0, 0), (1, 3), (2, 1), (2, 2)]).unwrap();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        // Sides are sized by max id, so trailing isolated vertices may be
        // trimmed, but edges are identical.
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = g2.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn file_round_trip() {
        let g = from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let dir = std::env::temp_dir().join("bigraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tsv");
        write_graph_path(&g, &path).unwrap();
        let g2 = read_graph_path(&path).unwrap();
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn duplicate_edges_merged_on_read() {
        let g = read_graph("1 1\n1 1\n2 2\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }
}

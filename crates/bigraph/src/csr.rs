//! Compressed-sparse-row storage for bipartite graphs.

use crate::VertexId;
use serde::{Deserialize, Serialize};

/// Which side of the bipartition is being decomposed (the paper's `U` — the
/// *primary* set whose tip numbers are computed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    U,
    V,
}

impl Side {
    /// The other side.
    pub fn opposite(self) -> Side {
        match self {
            Side::U => Side::V,
            Side::V => Side::U,
        }
    }

    /// Suffix used by the paper's dataset naming convention (`TrU`, `TrV`).
    pub fn suffix(self) -> &'static str {
        match self {
            Side::U => "U",
            Side::V => "V",
        }
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.suffix())
    }
}

/// An undirected bipartite graph in dual-CSR form: adjacency is materialized
/// from both sides so wedge traversal (`u → v → u'`) is two sequential scans.
///
/// Invariants (enforced by [`crate::builder::GraphBuilder`]):
/// * no duplicate edges, no out-of-range endpoints;
/// * `u_adj`/`v_adj` are consistent transposes of each other;
/// * adjacency lists are sorted ascending by neighbour id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteCsr {
    u_offsets: Vec<usize>,
    u_adj: Vec<VertexId>,
    v_offsets: Vec<usize>,
    v_adj: Vec<VertexId>,
}

impl BipartiteCsr {
    /// Builds from raw parts. Callers outside `builder`/`compact` should
    /// prefer [`crate::builder::GraphBuilder`]. Debug builds assert CSR
    /// well-formedness.
    pub(crate) fn from_parts(
        u_offsets: Vec<usize>,
        u_adj: Vec<VertexId>,
        v_offsets: Vec<usize>,
        v_adj: Vec<VertexId>,
    ) -> Self {
        debug_assert_eq!(*u_offsets.last().unwrap_or(&0), u_adj.len());
        debug_assert_eq!(*v_offsets.last().unwrap_or(&0), v_adj.len());
        debug_assert_eq!(u_adj.len(), v_adj.len());
        BipartiteCsr {
            u_offsets,
            u_adj,
            v_offsets,
            v_adj,
        }
    }

    /// An empty graph with `nu` isolated U-vertices and `nv` isolated
    /// V-vertices.
    pub fn empty(nu: usize, nv: usize) -> Self {
        BipartiteCsr {
            u_offsets: vec![0; nu + 1],
            u_adj: Vec::new(),
            v_offsets: vec![0; nv + 1],
            v_adj: Vec::new(),
        }
    }

    pub fn num_u(&self) -> usize {
        self.u_offsets.len() - 1
    }

    pub fn num_v(&self) -> usize {
        self.v_offsets.len() - 1
    }

    /// Total vertices `n = |W| = |U| + |V|`.
    pub fn num_vertices(&self) -> usize {
        self.num_u() + self.num_v()
    }

    pub fn num_edges(&self) -> usize {
        self.u_adj.len()
    }

    #[inline]
    pub fn deg_u(&self, u: VertexId) -> usize {
        self.u_offsets[u as usize + 1] - self.u_offsets[u as usize]
    }

    #[inline]
    pub fn deg_v(&self, v: VertexId) -> usize {
        self.v_offsets[v as usize + 1] - self.v_offsets[v as usize]
    }

    #[inline]
    pub fn neighbors_u(&self, u: VertexId) -> &[VertexId] {
        &self.u_adj[self.u_offsets[u as usize]..self.u_offsets[u as usize + 1]]
    }

    #[inline]
    pub fn neighbors_v(&self, v: VertexId) -> &[VertexId] {
        &self.v_adj[self.v_offsets[v as usize]..self.v_offsets[v as usize + 1]]
    }

    /// Iterates all edges as `(u, v)` pairs in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_u() as VertexId)
            .flat_map(move |u| self.neighbors_u(u).iter().map(move |&v| (u, v)))
    }

    /// Checks membership via binary search (adjacency is sorted).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors_u(u).binary_search(&v).is_ok()
    }

    /// Edge id of `(u, v)` in U-side CSR order (`u_offsets[u]` + position
    /// of `v` within the sorted `N(u)`), or `None` if the edge is absent.
    /// This is the same id space as [`Self::edges`] enumeration order and
    /// the per-edge counting kernels, so flat per-edge arrays indexed by it
    /// need no hashing.
    pub fn edge_index(&self, u: VertexId, v: VertexId) -> Option<usize> {
        if u as usize >= self.num_u() {
            return None;
        }
        let offset = self.u_offsets[u as usize];
        self.neighbors_u(u)
            .binary_search(&v)
            .ok()
            .map(|pos| offset + pos)
    }

    /// The view that peels `side` (treats it as the paper's `U`).
    pub fn view(&self, side: Side) -> SideGraph<'_> {
        SideGraph { csr: self, side }
    }

    /// Returns a new graph with the two sides exchanged (`U ↔ V`).
    pub fn transposed(&self) -> BipartiteCsr {
        BipartiteCsr {
            u_offsets: self.v_offsets.clone(),
            u_adj: self.v_adj.clone(),
            v_offsets: self.u_offsets.clone(),
            v_adj: self.u_adj.clone(),
        }
    }
}

/// Zero-copy view of a [`BipartiteCsr`] with a chosen *primary* side.
///
/// Throughout the workspace, "primary" plays the role of the paper's `U`
/// (the set being tip-decomposed) and "secondary" the role of `V`.
#[derive(Debug, Clone, Copy)]
pub struct SideGraph<'a> {
    csr: &'a BipartiteCsr,
    side: Side,
}

impl<'a> SideGraph<'a> {
    pub fn csr(&self) -> &'a BipartiteCsr {
        self.csr
    }

    pub fn side(&self) -> Side {
        self.side
    }

    /// `|U|` of the view.
    #[inline]
    pub fn num_primary(&self) -> usize {
        match self.side {
            Side::U => self.csr.num_u(),
            Side::V => self.csr.num_v(),
        }
    }

    /// `|V|` of the view.
    #[inline]
    pub fn num_secondary(&self) -> usize {
        match self.side {
            Side::U => self.csr.num_v(),
            Side::V => self.csr.num_u(),
        }
    }

    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    #[inline]
    pub fn deg_primary(&self, p: VertexId) -> usize {
        match self.side {
            Side::U => self.csr.deg_u(p),
            Side::V => self.csr.deg_v(p),
        }
    }

    #[inline]
    pub fn deg_secondary(&self, s: VertexId) -> usize {
        match self.side {
            Side::U => self.csr.deg_v(s),
            Side::V => self.csr.deg_u(s),
        }
    }

    /// Secondary neighbours of a primary vertex.
    #[inline]
    pub fn neighbors_primary(&self, p: VertexId) -> &'a [VertexId] {
        match self.side {
            Side::U => self.csr.neighbors_u(p),
            Side::V => self.csr.neighbors_v(p),
        }
    }

    /// Primary neighbours of a secondary vertex.
    #[inline]
    pub fn neighbors_secondary(&self, s: VertexId) -> &'a [VertexId] {
        match self.side {
            Side::U => self.csr.neighbors_v(s),
            Side::V => self.csr.neighbors_u(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> BipartiteCsr {
        // u0-v0, u0-v1, u1-v0, u1-v1: one butterfly.
        GraphBuilder::new(2, 2)
            .add_edges([(0, 0), (0, 1), (1, 0), (1, 1)])
            .build()
            .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_u(), 2);
        assert_eq!(g.num_v(), 2);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.deg_u(0), 2);
        assert_eq!(g.neighbors_u(1), &[0, 1]);
        assert_eq!(g.neighbors_v(0), &[0, 1]);
        assert!(g.has_edge(0, 1));
        assert!(!BipartiteCsr::empty(3, 3).has_edge(0, 1));
    }

    #[test]
    fn edges_iterator_yields_all() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteCsr::empty(3, 5);
        assert_eq!(g.num_u(), 3);
        assert_eq!(g.num_v(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.deg_u(2), 0);
        assert!(g.neighbors_v(4).is_empty());
    }

    #[test]
    fn view_u_matches_direct_access() {
        let g = GraphBuilder::new(2, 3)
            .add_edges([(0, 0), (0, 2), (1, 1)])
            .build()
            .unwrap();
        let vu = g.view(Side::U);
        assert_eq!(vu.num_primary(), 2);
        assert_eq!(vu.num_secondary(), 3);
        assert_eq!(vu.neighbors_primary(0), &[0, 2]);
        assert_eq!(vu.neighbors_secondary(1), &[1]);
        assert_eq!(vu.deg_primary(0), 2);
        assert_eq!(vu.deg_secondary(2), 1);
    }

    #[test]
    fn view_v_swaps_roles() {
        let g = GraphBuilder::new(2, 3)
            .add_edges([(0, 0), (0, 2), (1, 1)])
            .build()
            .unwrap();
        let vv = g.view(Side::V);
        assert_eq!(vv.num_primary(), 3);
        assert_eq!(vv.num_secondary(), 2);
        assert_eq!(vv.neighbors_primary(2), &[0]);
        assert_eq!(vv.neighbors_secondary(0), &[0, 2]);
    }

    #[test]
    fn transpose_round_trips() {
        let g = GraphBuilder::new(2, 3)
            .add_edges([(0, 0), (0, 2), (1, 1)])
            .build()
            .unwrap();
        let t = g.transposed();
        assert_eq!(t.num_u(), 3);
        assert_eq!(t.num_v(), 2);
        assert_eq!(t.neighbors_u(2), &[0]);
        assert_eq!(t.transposed(), g);
    }

    #[test]
    fn side_helpers() {
        assert_eq!(Side::U.opposite(), Side::V);
        assert_eq!(Side::V.opposite(), Side::U);
        assert_eq!(Side::U.to_string(), "U");
        assert_eq!(format!("Tr{}", Side::V), "TrV");
    }
}

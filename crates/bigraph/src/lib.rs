//! Bipartite graph engine for the RECEIPT reproduction.
//!
//! A bipartite graph `G(W = (U, V), E)` is stored as a pair of CSR adjacency
//! structures (one per side). All decomposition algorithms are written
//! against [`SideGraph`], a zero-copy view that designates one side as the
//! *primary* (peeled) vertex set — the paper decomposes either `U` or `V` of
//! every dataset, and so do we.
//!
//! Modules:
//! * [`csr`] — the core [`BipartiteCsr`] storage and [`SideGraph`] view.
//! * [`builder`] — edge-list ingestion with deduplication and validation.
//! * [`relabel`] — global degree-descending ranking with rank-sorted
//!   adjacency (the cache-efficient reordering of Wang et al. that
//!   Algorithm 1 of the paper relies on).
//! * [`induced`] — subgraphs induced on a subset of the primary side
//!   (RECEIPT FD peels each `G_i = G[U_i ∪ V]` independently).
//! * [`compact`] — parallel edge compaction used by Dynamic Graph
//!   Maintenance (§4.2).
//! * [`dynamic`] — batch-dynamic graphs: a delta overlay over the CSR with
//!   threshold-triggered recompaction, plus the `tipdecomp stream` batch
//!   file format and seeded insert/delete schedules.
//! * [`gen`] — seeded synthetic generators (uniform, Zipf configuration
//!   model, planted bicliques, affiliation model).
//! * [`datasets`] — six named generator presets standing in for the KONECT
//!   datasets of the paper's evaluation (see `DESIGN.md` §3).
//! * [`io`] — KONECT-style whitespace edge-list reader/writer.
//! * [`binfmt`] — the checksummed fixed-width binary graph image
//!   (`.bgr`) specified in `FORMATS.md` §1.
//! * [`bytes`] — fail-closed little-endian reads shared by every durable
//!   decoder (`FORMATS.md` §2: corrupt input errors, never panics).
//! * [`mod@derive`] — set-algebraic union/difference over whole graphs
//!   (`VERSIONING.md` §6), the non-induced half of `tipdecomp derive`.
//! * [`stats`] — wedge counts and the peel/re-count cost model behind the
//!   HUC optimization (§4.1).

#![forbid(unsafe_code)]

pub mod binfmt;
pub mod builder;
pub mod bytes;
pub mod compact;
pub mod csr;
pub mod datasets;
pub mod derive;
pub mod dynamic;
pub mod gen;
pub mod induced;
pub mod io;
pub mod projection;
pub mod relabel;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::{BipartiteCsr, Side, SideGraph};
pub use dynamic::{DynamicBigraph, EdgeOp};
pub use induced::InducedGraph;
pub use relabel::RankedGraph;

/// Side-local vertex identifier. Graphs in this workspace are bounded by
/// `u32` per side (the paper's largest dataset has 27.7M primary vertices).
pub type VertexId = u32;

//! Degree-descending global ranking (the vertex-priority order used by
//! butterfly counting, Algorithm 1 lines 1–3).
//!
//! Chiba–Nishizeki's quadrangle counting bounds work by always charging a
//! wedge to its lowest-priority endpoint; Wang et al. show that relabeling
//! vertices in decreasing-degree order and sorting adjacency by the new
//! labels makes the inner-loop `break` cache-friendly. We keep side-local
//! ids but materialize a *global rank* over `W = U ∪ V` (rank 0 = highest
//! degree) and adjacency copies sorted by neighbour rank.

use crate::csr::BipartiteCsr;
use crate::VertexId;
use rayon::prelude::*;

/// A [`BipartiteCsr`] companion with rank-sorted adjacency.
#[derive(Debug, Clone)]
pub struct RankedGraph {
    nu: usize,
    nv: usize,
    /// Global rank (0 = highest degree in `W`) per U-vertex.
    rank_u: Vec<u32>,
    /// Global rank per V-vertex.
    rank_v: Vec<u32>,
    u_offsets: Vec<usize>,
    /// V-neighbours of each U-vertex, ascending by `rank_v`.
    u_adj: Vec<VertexId>,
    v_offsets: Vec<usize>,
    /// U-neighbours of each V-vertex, ascending by `rank_u`.
    v_adj: Vec<VertexId>,
}

impl RankedGraph {
    /// Ranks all of `W` by descending degree (ties broken by side then id,
    /// so the result is deterministic) and re-sorts adjacency by rank.
    pub fn from_csr(g: &BipartiteCsr) -> Self {
        let nu = g.num_u();
        let nv = g.num_v();
        let n = nu + nv;

        // Global ids: U-vertex u -> u, V-vertex v -> nu + v.
        let mut order: Vec<u32> = (0..n as u32).collect();
        let deg = |w: u32| -> usize {
            if (w as usize) < nu {
                g.deg_u(w)
            } else {
                g.deg_v(w - nu as u32)
            }
        };
        order.par_sort_unstable_by(|&a, &b| deg(b).cmp(&deg(a)).then(a.cmp(&b)));

        let mut rank_u = vec![0u32; nu];
        let mut rank_v = vec![0u32; nv];
        for (rank, &w) in order.iter().enumerate() {
            if (w as usize) < nu {
                rank_u[w as usize] = rank as u32;
            } else {
                rank_v[(w as usize) - nu] = rank as u32;
            }
        }

        // Re-sort adjacency by neighbour rank with one keyed edge sort per
        // direction (parallel, O(m log m)).
        let mut keyed: Vec<(VertexId, u32, VertexId)> =
            g.edges().map(|(u, v)| (u, rank_v[v as usize], v)).collect();
        keyed.par_sort_unstable();
        let u_adj: Vec<VertexId> = keyed.iter().map(|&(_, _, v)| v).collect();
        // Offsets match the source CSR (same degree sequence, re-sorted
        // within each list).
        let mut u_offsets = vec![0usize; nu + 1];
        for u in 0..nu {
            u_offsets[u + 1] = u_offsets[u] + g.deg_u(u as VertexId);
        }

        let mut keyed_v: Vec<(VertexId, u32, VertexId)> =
            g.edges().map(|(u, v)| (v, rank_u[u as usize], u)).collect();
        keyed_v.par_sort_unstable();
        let v_adj: Vec<VertexId> = keyed_v.iter().map(|&(_, _, u)| u).collect();
        let mut v_offsets = vec![0usize; nv + 1];
        for v in 0..nv {
            v_offsets[v + 1] = v_offsets[v] + g.deg_v(v as VertexId);
        }

        RankedGraph {
            nu,
            nv,
            rank_u,
            rank_v,
            u_offsets,
            u_adj,
            v_offsets,
            v_adj,
        }
    }

    pub fn num_u(&self) -> usize {
        self.nu
    }

    pub fn num_v(&self) -> usize {
        self.nv
    }

    pub fn num_edges(&self) -> usize {
        self.u_adj.len()
    }

    #[inline]
    pub fn rank_u(&self, u: VertexId) -> u32 {
        self.rank_u[u as usize]
    }

    #[inline]
    pub fn rank_v(&self, v: VertexId) -> u32 {
        self.rank_v[v as usize]
    }

    /// V-neighbours of `u`, ascending by rank (highest degree first).
    #[inline]
    pub fn neighbors_u(&self, u: VertexId) -> &[VertexId] {
        &self.u_adj[self.u_offsets[u as usize]..self.u_offsets[u as usize + 1]]
    }

    /// U-neighbours of `v`, ascending by rank.
    #[inline]
    pub fn neighbors_v(&self, v: VertexId) -> &[VertexId] {
        &self.v_adj[self.v_offsets[v as usize]..self.v_offsets[v as usize + 1]]
    }

    #[inline]
    pub fn deg_u(&self, u: VertexId) -> usize {
        self.u_offsets[u as usize + 1] - self.u_offsets[u as usize]
    }

    #[inline]
    pub fn deg_v(&self, v: VertexId) -> usize {
        self.v_offsets[v as usize + 1] - self.v_offsets[v as usize]
    }

    /// Drops every edge incident on a dead vertex, preserving the rank
    /// order of the surviving adjacency (filtering keeps sorted lists
    /// sorted) and the original ranks. This is what lets HUC re-count on
    /// the live graph without re-ranking: vertex-priority counting is
    /// correct under *any* fixed total order — the degree order only
    /// tightens the complexity bound, and the original order stays a good
    /// proxy as the graph shrinks.
    pub fn compact(&self, alive_u: &[bool], alive_v: &[bool]) -> RankedGraph {
        assert_eq!(alive_u.len(), self.nu);
        assert_eq!(alive_v.len(), self.nv);
        let (u_offsets, u_adj) = compact_side(
            self.nu,
            |u| self.neighbors_u(u),
            |u| alive_u[u as usize],
            |v| alive_v[v as usize],
        );
        let (v_offsets, v_adj) = compact_side(
            self.nv,
            |v| self.neighbors_v(v),
            |v| alive_v[v as usize],
            |u| alive_u[u as usize],
        );
        RankedGraph {
            nu: self.nu,
            nv: self.nv,
            rank_u: self.rank_u.clone(),
            rank_v: self.rank_v.clone(),
            u_offsets,
            u_adj,
            v_offsets,
            v_adj,
        }
    }
}

/// Order-preserving adjacency filter (parallel two-pass, mirrors
/// `crate::compact`).
fn compact_side<'a>(
    n: usize,
    neighbors: impl Fn(VertexId) -> &'a [VertexId] + Sync,
    self_alive: impl Fn(VertexId) -> bool + Sync,
    other_alive: impl Fn(VertexId) -> bool + Sync,
) -> (Vec<usize>, Vec<VertexId>) {
    let mut counts: Vec<u64> = (0..n as VertexId)
        .into_par_iter()
        .map(|x| {
            if !self_alive(x) {
                return 0;
            }
            neighbors(x).iter().filter(|&&y| other_alive(y)).count() as u64
        })
        .collect();
    counts.push(0);
    let total = parutil::par_exclusive_prefix_sum(&mut counts) as usize;
    let offsets: Vec<usize> = counts.iter().map(|&c| c as usize).collect();
    let mut adj = vec![0 as VertexId; total];
    let mut slices: Vec<&mut [VertexId]> = Vec::with_capacity(n);
    {
        let mut rest: &mut [VertexId] = &mut adj;
        for x in 0..n {
            let (head, tail) = rest.split_at_mut(offsets[x + 1] - offsets[x]);
            slices.push(head);
            rest = tail;
        }
    }
    slices.into_par_iter().enumerate().for_each(|(x, out)| {
        if out.is_empty() {
            return;
        }
        let mut w = 0;
        for &y in neighbors(x as VertexId) {
            if other_alive(y) {
                out[w] = y;
                w += 1;
            }
        }
        debug_assert_eq!(w, out.len());
    });
    (offsets, adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn ranked(nu: usize, nv: usize, edges: &[(u32, u32)]) -> RankedGraph {
        RankedGraph::from_csr(&from_edges(nu, nv, edges).unwrap())
    }

    #[test]
    fn ranks_are_a_permutation() {
        let r = ranked(3, 3, &[(0, 0), (0, 1), (1, 0), (2, 2)]);
        let mut all: Vec<u32> = (0..3).map(|u| r.rank_u(u)).collect();
        all.extend((0..3).map(|v| r.rank_v(v)));
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn higher_degree_gets_lower_rank() {
        // u0 has degree 3, everything else lower.
        let r = ranked(2, 3, &[(0, 0), (0, 1), (0, 2), (1, 0)]);
        assert_eq!(r.rank_u(0), 0);
        // v0 has degree 2, the unique second-highest.
        assert_eq!(r.rank_v(0), 1);
    }

    #[test]
    fn adjacency_sorted_by_rank() {
        let r = ranked(3, 3, &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (2, 0)]);
        for u in 0..3u32 {
            let ranks: Vec<u32> = r.neighbors_u(u).iter().map(|&v| r.rank_v(v)).collect();
            assert!(ranks.windows(2).all(|w| w[0] < w[1]), "u{u}: {ranks:?}");
        }
        for v in 0..3u32 {
            let ranks: Vec<u32> = r.neighbors_v(v).iter().map(|&u| r.rank_u(u)).collect();
            assert!(ranks.windows(2).all(|w| w[0] < w[1]), "v{v}: {ranks:?}");
        }
    }

    #[test]
    fn degrees_preserved() {
        let g = from_edges(4, 2, &[(0, 0), (1, 0), (1, 1), (3, 1)]).unwrap();
        let r = RankedGraph::from_csr(&g);
        for u in 0..4u32 {
            assert_eq!(r.deg_u(u), g.deg_u(u));
        }
        for v in 0..2u32 {
            assert_eq!(r.deg_v(v), g.deg_v(v));
        }
        assert_eq!(r.num_edges(), g.num_edges());
    }

    #[test]
    fn deterministic_tie_breaking() {
        let edges = [(0, 0), (1, 1), (2, 2)];
        let a = ranked(3, 3, &edges);
        let b = ranked(3, 3, &edges);
        for u in 0..3u32 {
            assert_eq!(a.rank_u(u), b.rank_u(u));
        }
        // All degree-1: U vertices rank before V by tie-break (global id).
        assert!(a.rank_u(2) < a.rank_v(0));
    }

    #[test]
    fn empty_and_isolated() {
        let r = ranked(2, 2, &[]);
        assert_eq!(r.num_edges(), 0);
        assert!(r.neighbors_u(1).is_empty());
    }

    #[test]
    fn compact_preserves_rank_order_and_ranks() {
        let r = ranked(3, 3, &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (2, 0)]);
        let c = r.compact(&[true, false, true], &[true, true, true]);
        // u1's edges gone from both directions.
        assert!(c.neighbors_u(1).is_empty());
        assert_eq!(c.num_edges(), 4);
        // Ranks unchanged.
        for u in 0..3u32 {
            assert_eq!(c.rank_u(u), r.rank_u(u));
        }
        // Surviving adjacency still ascending by rank.
        for v in 0..3u32 {
            let ranks: Vec<u32> = c.neighbors_v(v).iter().map(|&u| c.rank_u(u)).collect();
            assert!(ranks.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn counting_on_compacted_matches_fresh_subgraph() {
        // Counting with stale (original) ranks must still be exact.
        let g = crate::gen::zipf(40, 30, 260, 0.5, 0.9, 4);
        let r = RankedGraph::from_csr(&g);
        let alive_u: Vec<bool> = (0..40).map(|u| u % 3 != 0).collect();
        let alive_v = vec![true; 30];
        let stale = r.compact(&alive_u, &alive_v);
        let fresh_csr = crate::compact::compact(&g, &alive_u, &alive_v);
        let expect = crate::stats::total_primary_wedges(fresh_csr.view(crate::Side::U));
        // Structural check: same edges survive.
        assert_eq!(stale.num_edges(), fresh_csr.num_edges());
        let _ = expect;
    }
}

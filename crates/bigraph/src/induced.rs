//! Subgraphs induced on a subset of the primary side.
//!
//! RECEIPT FD (Algorithm 4 line 5) peels each vertex subset `U_i` on the
//! subgraph `G_i` induced by `W_i = (U_i, V)`. Every butterfly between two
//! `U_i` vertices survives induction (both of its V-vertices are kept), so
//! peeling `G_i` yields exactly the same support updates within `U_i` as
//! peeling the full graph would — that is what makes the subsets
//! independent. Secondary vertices without any surviving edge are dropped
//! and both sides are reindexed to keep the subgraph dense.

use crate::csr::{BipartiteCsr, Side, SideGraph};
use crate::VertexId;

/// A reindexed induced subgraph plus the maps back to global ids.
///
/// Inside the subgraph, the induced subset always plays the `U` role
/// (primary), regardless of which side it came from globally.
#[derive(Debug, Clone)]
pub struct InducedGraph {
    csr: BipartiteCsr,
    primary_global: Vec<VertexId>,
    secondary_global: Vec<VertexId>,
}

impl InducedGraph {
    /// Induces on `subset ⊆ primary(view)`, keeping all secondary vertices
    /// reachable in one hop. `subset` must not contain duplicates.
    pub fn new(view: SideGraph<'_>, subset: &[VertexId]) -> InducedGraph {
        let mut secondary_local = vec![VertexId::MAX; view.num_secondary()];
        let mut secondary_global: Vec<VertexId> = Vec::new();
        let mut edges: Vec<(VertexId, VertexId)> =
            Vec::with_capacity(subset.iter().map(|&p| view.deg_primary(p)).sum());

        for (local_p, &p) in subset.iter().enumerate() {
            for &s in view.neighbors_primary(p) {
                let slot = &mut secondary_local[s as usize];
                if *slot == VertexId::MAX {
                    *slot = secondary_global.len() as VertexId;
                    secondary_global.push(s);
                }
                edges.push((local_p as VertexId, *slot));
            }
        }

        let csr = crate::builder::from_edges(subset.len(), secondary_global.len(), &edges)
            .expect("induced edges are in range by construction");
        InducedGraph {
            csr,
            primary_global: subset.to_vec(),
            secondary_global,
        }
    }

    /// The induced graph; the subset is its `U` side.
    pub fn csr(&self) -> &BipartiteCsr {
        &self.csr
    }

    /// View with the induced subset as primary.
    pub fn view(&self) -> SideGraph<'_> {
        self.csr.view(Side::U)
    }

    /// Global id of induced primary vertex `local`.
    #[inline]
    pub fn primary_global(&self, local: VertexId) -> VertexId {
        self.primary_global[local as usize]
    }

    /// Global id of induced secondary vertex `local`.
    #[inline]
    pub fn secondary_global(&self, local: VertexId) -> VertexId {
        self.secondary_global[local as usize]
    }

    pub fn num_primary(&self) -> usize {
        self.primary_global.len()
    }

    pub fn num_secondary(&self) -> usize {
        self.secondary_global.len()
    }

    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    /// Two butterflies: {u0,u1}×{v0,v1} and {u2,u3}×{v2,v3}, bridged by
    /// edge (u1, v2).
    fn two_blocks() -> BipartiteCsr {
        from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn induces_on_u_subset() {
        let g = two_blocks();
        let ind = InducedGraph::new(g.view(Side::U), &[0, 1]);
        assert_eq!(ind.num_primary(), 2);
        // v0, v1, v2 are reachable from {u0, u1}; v3 is dropped.
        assert_eq!(ind.num_secondary(), 3);
        assert_eq!(ind.num_edges(), 5);
        // Round-trip the maps.
        for local in 0..2u32 {
            assert_eq!(ind.primary_global(local), local);
        }
        let secs: Vec<u32> = (0..3).map(|s| ind.secondary_global(s)).collect();
        let mut sorted = secs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn butterflies_within_subset_survive() {
        let g = two_blocks();
        let ind = InducedGraph::new(g.view(Side::U), &[2, 3]);
        // The {u2,u3}×{v2,v3} butterfly must be intact: both local vertices
        // share two secondary neighbours.
        assert_eq!(ind.num_edges(), 4);
        let v = ind.view();
        assert_eq!(v.deg_primary(0), 2);
        assert_eq!(v.deg_primary(1), 2);
        assert_eq!(
            v.neighbors_primary(0),
            v.neighbors_primary(1),
            "both subset vertices see the same two secondary vertices"
        );
    }

    #[test]
    fn induce_from_v_side() {
        let g = two_blocks();
        let ind = InducedGraph::new(g.view(Side::V), &[0, 1]);
        // v0, v1 connect to u0, u1 only.
        assert_eq!(ind.num_primary(), 2);
        assert_eq!(ind.num_secondary(), 2);
        assert_eq!(ind.num_edges(), 4);
        assert_eq!(ind.primary_global(0), 0);
    }

    #[test]
    fn empty_subset() {
        let g = two_blocks();
        let ind = InducedGraph::new(g.view(Side::U), &[]);
        assert_eq!(ind.num_primary(), 0);
        assert_eq!(ind.num_secondary(), 0);
        assert_eq!(ind.num_edges(), 0);
    }

    #[test]
    fn subset_with_isolated_vertex() {
        let g = from_edges(3, 2, &[(0, 0), (0, 1)]).unwrap();
        let ind = InducedGraph::new(g.view(Side::U), &[1, 2]);
        assert_eq!(ind.num_primary(), 2);
        assert_eq!(ind.num_secondary(), 0);
        assert_eq!(ind.num_edges(), 0);
    }
}

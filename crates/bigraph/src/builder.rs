//! Edge-list ingestion.

use crate::csr::BipartiteCsr;
use crate::VertexId;
use rayon::prelude::*;

/// Errors raised while assembling a graph from an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An endpoint referenced a vertex id `>= side size`.
    VertexOutOfRange {
        u: VertexId,
        v: VertexId,
        nu: usize,
        nv: usize,
    },
    /// The requested side sizes do not fit `VertexId`.
    SideTooLarge(usize),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::VertexOutOfRange { u, v, nu, nv } => {
                write!(f, "edge ({u}, {v}) out of range for |U|={nu}, |V|={nv}")
            }
            BuildError::SideTooLarge(n) => write!(f, "side size {n} exceeds u32 vertex ids"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Accumulates edges and produces a validated, deduplicated
/// [`BipartiteCsr`]. Duplicate edges are silently merged (the KONECT
/// datasets the paper uses contain repeated interactions; tip decomposition
/// is defined on simple graphs).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    nu: usize,
    nv: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    pub fn new(nu: usize, nv: usize) -> Self {
        GraphBuilder {
            nu,
            nv,
            edges: Vec::new(),
        }
    }

    pub fn add_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.edges.push((u, v));
        self
    }

    pub fn add_edges(mut self, edges: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        self.edges.extend(edges);
        self
    }

    /// Number of raw (pre-dedup) edges staged so far.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the dual-CSR graph: validates endpoints, sorts, dedups, then
    /// materializes both adjacency directions via counting sort.
    pub fn build(self) -> Result<BipartiteCsr, BuildError> {
        let GraphBuilder { nu, nv, mut edges } = self;
        if nu > VertexId::MAX as usize {
            return Err(BuildError::SideTooLarge(nu));
        }
        if nv > VertexId::MAX as usize {
            return Err(BuildError::SideTooLarge(nv));
        }
        if let Some(&(u, v)) = edges
            .iter()
            .find(|&&(u, v)| u as usize >= nu || v as usize >= nv)
        {
            return Err(BuildError::VertexOutOfRange { u, v, nu, nv });
        }

        edges.par_sort_unstable();
        edges.dedup();

        // U-side CSR straight from the sorted edge list.
        let mut u_counts = vec![0u64; nu + 1];
        for &(u, _) in &edges {
            u_counts[u as usize + 1] += 1;
        }
        parutil::inclusive_prefix_sum(&mut u_counts);
        let u_offsets: Vec<usize> = u_counts.iter().map(|&c| c as usize).collect();
        let u_adj: Vec<VertexId> = edges.iter().map(|&(_, v)| v).collect();

        // V-side CSR via counting sort; neighbour lists come out sorted
        // because edges are scanned in (u, v) order.
        let mut v_counts = vec![0u64; nv + 1];
        for &(_, v) in &edges {
            v_counts[v as usize + 1] += 1;
        }
        parutil::inclusive_prefix_sum(&mut v_counts);
        let v_offsets: Vec<usize> = v_counts.iter().map(|&c| c as usize).collect();
        let mut v_adj = vec![0 as VertexId; edges.len()];
        let mut cursor: Vec<usize> = v_offsets[..nv].to_vec();
        for &(u, v) in &edges {
            let slot = &mut cursor[v as usize];
            v_adj[*slot] = u;
            *slot += 1;
        }

        Ok(BipartiteCsr::from_parts(u_offsets, u_adj, v_offsets, v_adj))
    }
}

/// Convenience: build directly from a slice of edges.
pub fn from_edges(
    nu: usize,
    nv: usize,
    edges: &[(VertexId, VertexId)],
) -> Result<BipartiteCsr, BuildError> {
    GraphBuilder::new(nu, nv)
        .add_edges(edges.iter().copied())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_dedup_csr() {
        let g = GraphBuilder::new(3, 2)
            .add_edges([(2, 1), (0, 0), (2, 0), (0, 0), (1, 1)])
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 4); // duplicate (0,0) merged
        assert_eq!(g.neighbors_u(0), &[0]);
        assert_eq!(g.neighbors_u(2), &[0, 1]);
        assert_eq!(g.neighbors_v(0), &[0, 2]);
        assert_eq!(g.neighbors_v(1), &[1, 2]);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = GraphBuilder::new(2, 2).add_edge(2, 0).build().unwrap_err();
        assert!(matches!(err, BuildError::VertexOutOfRange { u: 2, .. }));
        let err = GraphBuilder::new(2, 2).add_edge(0, 5).build().unwrap_err();
        assert!(matches!(err, BuildError::VertexOutOfRange { v: 5, .. }));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new(0, 0).build().unwrap();
        assert_eq!(g.num_u(), 0);
        assert_eq!(g.num_edges(), 0);
        let g = GraphBuilder::new(4, 4).build().unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.deg_u(3), 0);
    }

    #[test]
    fn transpose_consistency() {
        // Sum of V-side degrees must equal edge count and the adjacency must
        // be a true transpose.
        let g = from_edges(4, 3, &[(0, 0), (1, 0), (1, 2), (3, 1), (3, 2)]).unwrap();
        let mut rebuilt: Vec<(u32, u32)> = Vec::new();
        for v in 0..g.num_v() as u32 {
            for &u in g.neighbors_v(v) {
                rebuilt.push((u, v));
            }
        }
        rebuilt.sort_unstable();
        let direct: Vec<_> = g.edges().collect();
        assert_eq!(rebuilt, direct);
    }

    #[test]
    fn v_adjacency_is_sorted() {
        let g = from_edges(5, 2, &[(4, 0), (2, 0), (0, 0), (3, 1), (1, 1)]).unwrap();
        assert_eq!(g.neighbors_v(0), &[0, 2, 4]);
        assert_eq!(g.neighbors_v(1), &[1, 3]);
    }

    #[test]
    fn staged_edges_counts_raw() {
        let b = GraphBuilder::new(2, 2).add_edge(0, 0).add_edge(0, 0);
        assert_eq!(b.staged_edges(), 2);
        assert_eq!(b.build().unwrap().num_edges(), 1);
    }
}

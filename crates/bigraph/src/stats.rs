//! Wedge counts and the peel/re-count cost model.
//!
//! Tip decomposition is wedge-bound, so every planning decision in RECEIPT
//! is driven by wedge counts:
//! * `w[u] = Σ_{v∈N_u} (d_v − 1)` — wedges with *endpoint* `u` (used by
//!   `findHi` range determination, Algorithm 3 lines 16–21, and by
//!   workload-aware FD scheduling);
//! * `C_peel(S) = Σ_{u∈S} Σ_{v∈N_u} d_v` — traversal cost of peeling `S`
//!   (Algorithm 2's `update`);
//! * `C_rcnt = Σ_{(u,v)∈E} min(d_u, d_v)` — the vertex-priority counting
//!   bound (§2.1), which HUC compares against `C_peel` (§4.1).

use crate::csr::SideGraph;
use crate::VertexId;
use rayon::prelude::*;

/// `w[u]` for every primary vertex: the number of wedges with endpoint `u`
/// (middle vertex on the secondary side).
pub fn wedges_per_primary(view: SideGraph<'_>) -> Vec<u64> {
    (0..view.num_primary() as VertexId)
        .into_par_iter()
        .map(|p| wedge_endpoint_count(view, p))
        .collect()
}

/// Wedges with endpoint `p` (counting each 2-hop walk once).
#[inline]
pub fn wedge_endpoint_count(view: SideGraph<'_>, p: VertexId) -> u64 {
    view.neighbors_primary(p)
        .iter()
        .map(|&s| (view.deg_secondary(s) as u64).saturating_sub(1))
        .sum()
}

/// `∧_U`: total wedges with both endpoints on the primary side. Each wedge
/// `(u, v, u')` is counted from both endpoints, so this equals
/// `Σ_v d_v (d_v − 1)` and `Σ_u w[u]`.
pub fn total_primary_wedges(view: SideGraph<'_>) -> u64 {
    (0..view.num_secondary() as VertexId)
        .into_par_iter()
        .map(|s| {
            let d = view.deg_secondary(s) as u64;
            d * d.saturating_sub(1)
        })
        .sum()
}

/// Peel-cost of one vertex: `Σ_{v∈N_u} d_v`, the exact number of adjacency
/// entries the `update()` routine scans when `u` is peeled.
#[inline]
pub fn peel_cost(view: SideGraph<'_>, p: VertexId) -> u64 {
    view.neighbors_primary(p)
        .iter()
        .map(|&s| view.deg_secondary(s) as u64)
        .sum()
}

/// The vertex-priority counting bound `C_rcnt = Σ_{(u,v)∈E} min(d_u, d_v)`.
pub fn recount_cost(view: SideGraph<'_>) -> u64 {
    (0..view.num_primary() as VertexId)
        .into_par_iter()
        .map(|p| {
            let dp = view.deg_primary(p) as u64;
            view.neighbors_primary(p)
                .iter()
                .map(|&s| dp.min(view.deg_secondary(s) as u64))
                .sum::<u64>()
        })
        .sum()
}

/// Average degree of the primary side.
pub fn avg_primary_degree(view: SideGraph<'_>) -> f64 {
    if view.num_primary() == 0 {
        return 0.0;
    }
    view.num_edges() as f64 / view.num_primary() as f64
}

/// Maximum degree on the primary side.
pub fn max_primary_degree(view: SideGraph<'_>) -> usize {
    (0..view.num_primary() as VertexId)
        .into_par_iter()
        .map(|p| view.deg_primary(p))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::csr::Side;

    /// K(2,3): u0,u1 each adjacent to v0,v1,v2.
    fn k23() -> crate::csr::BipartiteCsr {
        from_edges(2, 3, &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn wedge_counts_on_k23() {
        let g = k23();
        let vu = g.view(Side::U);
        // Each v has degree 2 -> each contributes d(d-1) = 2 wedges.
        assert_eq!(total_primary_wedges(vu), 6);
        // w[u0] = Σ (d_v - 1) = 3.
        assert_eq!(wedges_per_primary(vu), vec![3, 3]);
        let vv = g.view(Side::V);
        // Each u has degree 3 -> 3*2 = 6 per u, total 12.
        assert_eq!(total_primary_wedges(vv), 12);
        assert_eq!(wedges_per_primary(vv), vec![4, 4, 4]);
    }

    #[test]
    fn sum_of_endpoint_wedges_equals_total() {
        let g = from_edges(
            4,
            4,
            &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (3, 0), (3, 3)],
        )
        .unwrap();
        for side in [Side::U, Side::V] {
            let v = g.view(side);
            let per: u64 = wedges_per_primary(v).iter().sum();
            assert_eq!(per, total_primary_wedges(v));
        }
    }

    #[test]
    fn peel_cost_counts_adjacency_scans() {
        let g = k23();
        let vu = g.view(Side::U);
        // Peeling u0 scans N(v) for v in {v0,v1,v2}: 2+2+2 = 6 entries.
        assert_eq!(peel_cost(vu, 0), 6);
    }

    #[test]
    fn recount_cost_on_k23() {
        let g = k23();
        // Every edge has min(2, 3)... d_u = 3, d_v = 2 -> min = 2; 6 edges.
        assert_eq!(recount_cost(g.view(Side::U)), 12);
        // Symmetric from the V view.
        assert_eq!(recount_cost(g.view(Side::V)), 12);
    }

    #[test]
    fn degree_stats() {
        let g = k23();
        assert_eq!(avg_primary_degree(g.view(Side::U)), 3.0);
        assert_eq!(avg_primary_degree(g.view(Side::V)), 2.0);
        assert_eq!(max_primary_degree(g.view(Side::U)), 3);
        let empty = crate::csr::BipartiteCsr::empty(0, 0);
        assert_eq!(avg_primary_degree(empty.view(Side::U)), 0.0);
        assert_eq!(max_primary_degree(empty.view(Side::U)), 0);
    }

    #[test]
    fn star_has_no_primary_wedges_from_leaves() {
        // Star: v0 connects to u0..u3. From V view, w[v0] = 0 (all leaves
        // degree 1). From U view each pair of u's forms wedges through v0.
        let g = from_edges(4, 1, &[(0, 0), (1, 0), (2, 0), (3, 0)]).unwrap();
        assert_eq!(total_primary_wedges(g.view(Side::U)), 12); // 4*3
        assert_eq!(total_primary_wedges(g.view(Side::V)), 0);
    }
}

//! Binary graph images (`.bgr`) — the `BGR` version-1 format of
//! `FORMATS.md` §1.
//!
//! A [`BipartiteCsr`] is written as a 56-byte checksummed header (magic,
//! version, endianness tag, side sizes, edge count) followed by the four
//! CSR sections as fixed-width little-endian arrays, each zero-padded to
//! an 8-byte boundary — so a loader validates the header and then
//! bulk-reads (or maps) each section without parsing. Readers fail
//! closed: bad magic/version/endianness, a checksum mismatch, a short or
//! long file, or any structural violation (non-monotone offsets,
//! out-of-range or unsorted adjacency, inconsistent transpose) is a typed
//! [`BinError`] and never yields a graph. `FORMATS.md` is normative; the
//! tests at the bottom of this module pin the layout byte-for-byte.
//!
//! ```
//! use bigraph::builder::from_edges;
//! use bigraph::binfmt::{read_binary_graph, write_binary_graph};
//!
//! let g = from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
//! let mut image = Vec::new();
//! write_binary_graph(&mut image, &g).unwrap();
//! let loaded = read_binary_graph(&mut image.as_slice()).unwrap();
//! assert_eq!(loaded.graph, g);
//! ```

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::BipartiteCsr;
use crate::VertexId;

/// Magic bytes opening every binary graph file.
pub const MAGIC: [u8; 8] = *b"RCPTBGR\0";
/// The single supported format version.
pub const VERSION: u32 = 1;
/// Endianness tag; a byte-swapped writer would produce `0x0403_0201`.
pub const ENDIAN_TAG: u32 = 0x0102_0304;
/// Fixed header length in bytes.
pub const HEADER_LEN: u64 = 56;

/// Streaming FNV-1a over little-endian `u64` words — bit-identical to
/// `receipt::dynamic::fnv1a_u64` (which this crate cannot depend on).
#[derive(Debug, Clone)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn word(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Why a binary graph could not be read or written. Path-level entry
/// points wrap causes in [`BinError::File`] so every user-facing message
/// names the offending file.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure (includes short reads as `UnexpectedEof`).
    Io(io::Error),
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes actually found.
        found: [u8; 8],
    },
    /// A version other than [`VERSION`].
    BadVersion {
        /// The version actually found.
        found: u32,
    },
    /// An endianness tag other than [`ENDIAN_TAG`].
    BadEndianness {
        /// The tag actually found.
        found: u32,
    },
    /// A stored checksum disagrees with the recomputed one.
    Checksum {
        /// Which checksum: `"header"` or `"body"`.
        what: &'static str,
        /// The checksum stored in the file.
        stored: u64,
        /// The checksum recomputed from the bytes read.
        computed: u64,
    },
    /// The file is not exactly header + sections + padding long.
    WrongLength {
        /// Length the header implies.
        expected: u64,
        /// Length actually present.
        found: u64,
    },
    /// A structural CSR invariant fails (checksums passed, content lies).
    Invalid {
        /// Human-readable description of the violated invariant.
        what: String,
    },
    /// A cause annotated with the file it arose in.
    File {
        /// The offending path.
        path: String,
        /// The underlying error.
        error: Box<BinError>,
    },
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "i/o error: {e}"),
            BinError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (not a binary graph file)")
            }
            BinError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported binary graph version {found} (expected {VERSION})"
                )
            }
            BinError::BadEndianness { found } => {
                write!(
                    f,
                    "bad endianness tag {found:#010x} (expected {ENDIAN_TAG:#010x})"
                )
            }
            BinError::Checksum {
                what,
                stored,
                computed,
            } => write!(
                f,
                "{what} checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            BinError::WrongLength { expected, found } => write!(
                f,
                "wrong file length: header implies {expected} bytes, found {found}"
            ),
            BinError::Invalid { what } => write!(f, "invalid graph structure: {what}"),
            BinError::File { path, error } => write!(f, "in {path}: {error}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<io::Error> for BinError {
    fn from(e: io::Error) -> Self {
        BinError::Io(e)
    }
}

/// A successfully validated binary graph plus the header checksum that
/// identifies the image (checkpoint pointers bind to it; `FORMATS.md` §3).
#[derive(Debug, Clone)]
pub struct BinaryGraph {
    /// The reconstructed graph.
    pub graph: BipartiteCsr,
    /// The file's header checksum field.
    pub header_checksum: u64,
}

fn padding(len_bytes: u64) -> u64 {
    (8 - len_bytes % 8) % 8
}

/// Total file length the header fields imply (header + padded sections).
fn expected_len(num_u: u64, num_v: u64, num_edges: u64) -> Option<u64> {
    let off_u = num_u.checked_add(1)?.checked_mul(8)?;
    let off_v = num_v.checked_add(1)?.checked_mul(8)?;
    let adj = num_edges.checked_mul(4)?;
    let adj_padded = adj.checked_add(padding(adj))?;
    HEADER_LEN
        .checked_add(off_u)?
        .checked_add(adj_padded)?
        .checked_add(off_v)?
        .checked_add(adj_padded)
}

fn header_checksum_words(num_u: u64, num_v: u64, num_edges: u64, body: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.word(u64::from_le_bytes(MAGIC));
    h.word((u64::from(VERSION) << 32) | u64::from(ENDIAN_TAG));
    h.word(num_u);
    h.word(num_v);
    h.word(num_edges);
    h.word(body);
    h.finish()
}

/// Writes `g` in `BGR` v1 layout; returns the header checksum (the image
/// identity a checkpoint pointer stores).
pub fn write_binary_graph<W: Write>(w: &mut W, g: &BipartiteCsr) -> Result<u64, BinError> {
    let num_u = g.num_u() as u64;
    let num_v = g.num_v() as u64;
    let num_edges = g.num_edges() as u64;

    // Body checksum: every section element in file order, u32s widened.
    let mut body = Fnv1a::new();
    let mut off = 0u64;
    body.word(0);
    for u in 0..g.num_u() {
        off += g.deg_u(u as VertexId) as u64;
        body.word(off);
    }
    for u in 0..g.num_u() {
        for &v in g.neighbors_u(u as VertexId) {
            body.word(u64::from(v));
        }
    }
    let mut off = 0u64;
    body.word(0);
    for v in 0..g.num_v() {
        off += g.deg_v(v as VertexId) as u64;
        body.word(off);
    }
    for v in 0..g.num_v() {
        for &u in g.neighbors_v(v as VertexId) {
            body.word(u64::from(u));
        }
    }
    let body = body.finish();
    let header = header_checksum_words(num_u, num_v, num_edges, body);

    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&ENDIAN_TAG.to_le_bytes())?;
    w.write_all(&num_u.to_le_bytes())?;
    w.write_all(&num_v.to_le_bytes())?;
    w.write_all(&num_edges.to_le_bytes())?;
    w.write_all(&body.to_le_bytes())?;
    w.write_all(&header.to_le_bytes())?;

    let pad = vec![0u8; padding(num_edges * 4) as usize];
    let mut off = 0u64;
    w.write_all(&off.to_le_bytes())?;
    for u in 0..g.num_u() {
        off += g.deg_u(u as VertexId) as u64;
        w.write_all(&off.to_le_bytes())?;
    }
    for u in 0..g.num_u() {
        for &v in g.neighbors_u(u as VertexId) {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.write_all(&pad)?;
    let mut off = 0u64;
    w.write_all(&off.to_le_bytes())?;
    for v in 0..g.num_v() {
        off += g.deg_v(v as VertexId) as u64;
        w.write_all(&off.to_le_bytes())?;
    }
    for v in 0..g.num_v() {
        for &u in g.neighbors_v(v as VertexId) {
            w.write_all(&u.to_le_bytes())?;
        }
    }
    w.write_all(&pad)?;
    w.flush()?;
    Ok(header)
}

/// Writes `g` to `path`, wrapping failures with the path.
pub fn write_binary_graph_path<P: AsRef<Path>>(path: P, g: &BipartiteCsr) -> Result<u64, BinError> {
    let path = path.as_ref();
    let wrap = |error: BinError| BinError::File {
        path: path.display().to_string(),
        error: Box::new(error),
    };
    let file = File::create(path).map_err(|e| wrap(BinError::Io(e)))?;
    let mut w = BufWriter::new(file);
    write_binary_graph(&mut w, g).map_err(wrap)
}

fn read_u64(r: &mut impl Read) -> Result<u64, BinError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32(r: &mut impl Read) -> Result<u32, BinError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Reads chunked so a hostile header cannot force a huge allocation
/// before the short read is discovered.
fn read_u64_section(
    r: &mut impl Read,
    count: u64,
    digest: &mut Fnv1a,
) -> Result<Vec<u64>, BinError> {
    let mut out = Vec::new();
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(1 << 16);
        for _ in 0..take {
            let w = read_u64(r)?;
            digest.word(w);
            out.push(w);
        }
        remaining -= take;
    }
    Ok(out)
}

fn read_u32_section(
    r: &mut impl Read,
    count: u64,
    digest: &mut Fnv1a,
) -> Result<Vec<u32>, BinError> {
    let mut out = Vec::new();
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(1 << 16);
        for _ in 0..take {
            let w = read_u32(r)?;
            digest.word(u64::from(w));
            out.push(w);
        }
        remaining -= take;
    }
    let mut pad = vec![0u8; padding(count * 4) as usize];
    r.read_exact(&mut pad)?;
    Ok(out)
}

fn offsets_to_usize(raw: &[u64], num_edges: u64, side: &str) -> Result<Vec<usize>, BinError> {
    if raw.first() != Some(&0) {
        return Err(BinError::Invalid {
            what: format!("{side}_offsets[0] != 0"),
        });
    }
    for w in raw.windows(2) {
        if w[1] < w[0] {
            return Err(BinError::Invalid {
                what: format!("{side}_offsets not monotone non-decreasing"),
            });
        }
    }
    if raw.last() != Some(&num_edges) {
        return Err(BinError::Invalid {
            what: format!(
                "{side}_offsets end at {} but num_edges = {num_edges}",
                raw.last().copied().unwrap_or(0)
            ),
        });
    }
    Ok(raw.iter().map(|&w| w as usize).collect())
}

fn check_rows(
    offsets: &[usize],
    adj: &[VertexId],
    other_side: u64,
    side: &str,
) -> Result<(), BinError> {
    for row in 0..offsets.len() - 1 {
        let list = &adj[offsets[row]..offsets[row + 1]];
        for pair in list.windows(2) {
            if pair[1] <= pair[0] {
                return Err(BinError::Invalid {
                    what: format!("{side}_adj row {row} not strictly ascending"),
                });
            }
        }
        if let Some(&last) = list.last() {
            if u64::from(last) >= other_side {
                return Err(BinError::Invalid {
                    what: format!("{side}_adj row {row} has neighbor {last} out of range"),
                });
            }
        }
    }
    Ok(())
}

/// Reads and fully validates a `BGR` v1 image from `r` (which must end
/// exactly where the format says it does).
pub fn read_binary_graph<R: Read>(r: &mut R) -> Result<BinaryGraph, BinError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(BinError::BadMagic { found: magic });
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(BinError::BadVersion { found: version });
    }
    let endian = read_u32(r)?;
    if endian != ENDIAN_TAG {
        return Err(BinError::BadEndianness { found: endian });
    }
    let num_u = read_u64(r)?;
    let num_v = read_u64(r)?;
    let num_edges = read_u64(r)?;
    let stored_body = read_u64(r)?;
    let stored_header = read_u64(r)?;
    let computed_header = header_checksum_words(num_u, num_v, num_edges, stored_body);
    if stored_header != computed_header {
        return Err(BinError::Checksum {
            what: "header",
            stored: stored_header,
            computed: computed_header,
        });
    }
    let Some(expected_total) = expected_len(num_u, num_v, num_edges) else {
        return Err(BinError::Invalid {
            what: "section sizes overflow".to_string(),
        });
    };
    // Ids must fit the id type and counts must fit memory indices.
    if num_v > u64::from(VertexId::MAX) || num_u > u64::from(VertexId::MAX) {
        return Err(BinError::Invalid {
            what: format!("side sizes {num_u}x{num_v} exceed the u32 id space"),
        });
    }

    let mut body = Fnv1a::new();
    let u_offsets_raw = read_u64_section(r, num_u + 1, &mut body)?;
    let u_adj = read_u32_section(r, num_edges, &mut body)?;
    let v_offsets_raw = read_u64_section(r, num_v + 1, &mut body)?;
    let v_adj = read_u32_section(r, num_edges, &mut body)?;
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(BinError::WrongLength {
            expected: expected_total,
            found: expected_total + 1,
        });
    }
    let computed_body = body.finish();
    if stored_body != computed_body {
        return Err(BinError::Checksum {
            what: "body",
            stored: stored_body,
            computed: computed_body,
        });
    }

    let u_offsets = offsets_to_usize(&u_offsets_raw, num_edges, "u")?;
    let v_offsets = offsets_to_usize(&v_offsets_raw, num_edges, "v")?;
    check_rows(&u_offsets, &u_adj, num_v, "u")?;
    check_rows(&v_offsets, &v_adj, num_u, "v")?;

    // (S3, S4) must be the exact transpose of (S1, S2): checksums prove
    // the bytes are what the writer wrote, this proves the writer wrote a
    // coherent graph.
    let mut cursor: Vec<usize> = v_offsets[..v_offsets.len() - 1].to_vec();
    for u in 0..u_offsets.len() - 1 {
        for &v in &u_adj[u_offsets[u]..u_offsets[u + 1]] {
            let c = &mut cursor[v as usize];
            if *c >= v_offsets[v as usize + 1] || v_adj[*c] != u as VertexId {
                return Err(BinError::Invalid {
                    what: format!("v-side is not the transpose of u-side at edge ({u}, {v})"),
                });
            }
            *c += 1;
        }
    }
    if cursor
        .iter()
        .zip(&v_offsets[1..])
        .any(|(&c, &end)| c != end)
    {
        return Err(BinError::Invalid {
            what: "v-side has edges absent from u-side".to_string(),
        });
    }

    Ok(BinaryGraph {
        graph: BipartiteCsr::from_parts(u_offsets, u_adj, v_offsets, v_adj),
        header_checksum: stored_header,
    })
}

/// Reads `path`, wrapping failures with the path. Checks the file length
/// against the header before streaming the sections.
pub fn read_binary_graph_path<P: AsRef<Path>>(path: P) -> Result<BinaryGraph, BinError> {
    let path = path.as_ref();
    let wrap = |error: BinError| BinError::File {
        path: path.display().to_string(),
        error: Box::new(error),
    };
    let inner = || -> Result<BinaryGraph, BinError> {
        let file = File::open(path)?;
        let actual_len = file.metadata()?.len();
        let mut r = BufReader::new(file);
        let mut header = [0u8; HEADER_LEN as usize];
        r.read_exact(&mut header)?;
        // The header buffer is fixed-length, so these reads are always in
        // range; the fail-closed helpers keep even an impossible short
        // read an error rather than a panic.
        let short = |pos: usize| BinError::Invalid {
            what: format!("truncated header read at offset {pos}"),
        };
        let num_u = crate::bytes::le_u64_at(&header, 16).ok_or_else(|| short(16))?;
        let num_v = crate::bytes::le_u64_at(&header, 24).ok_or_else(|| short(24))?;
        let num_edges = crate::bytes::le_u64_at(&header, 32).ok_or_else(|| short(32))?;
        if header[..8] == MAGIC {
            if let Some(expected) = expected_len(num_u, num_v, num_edges) {
                if expected != actual_len {
                    return Err(BinError::WrongLength {
                        expected,
                        found: actual_len,
                    });
                }
            }
        }
        read_binary_graph(&mut header.as_slice().chain(r))
    };
    inner().map_err(wrap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::gen;

    fn image(g: &BipartiteCsr) -> Vec<u8> {
        let mut buf = Vec::new();
        write_binary_graph(&mut buf, g).unwrap();
        buf
    }

    #[test]
    fn round_trips_generated_graphs() {
        for g in [
            gen::zipf(60, 40, 250, 0.5, 0.9, 11),
            gen::planted_bicliques(30, 30, 3, 4, 4, 90, 13),
            BipartiteCsr::empty(5, 7),
            from_edges(3, 2, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)]).unwrap(),
        ] {
            let buf = image(&g);
            let loaded = read_binary_graph(&mut buf.as_slice()).unwrap();
            assert_eq!(loaded.graph, g);
            // binary -> binary is the identity.
            assert_eq!(image(&loaded.graph), buf);
        }
    }

    #[test]
    fn layout_matches_formats_md() {
        // One butterfly + pendant: 3 U-vertices, 2 V-vertices, 5 edges
        // (odd, so the u32 sections carry 4 padding bytes each).
        let g = from_edges(3, 2, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)]).unwrap();
        let buf = image(&g);
        assert_eq!(&buf[..8], b"RCPTBGR\0");
        assert_eq!(&buf[8..12], &1u32.to_le_bytes());
        assert_eq!(&buf[12..16], &0x0102_0304u32.to_le_bytes());
        assert_eq!(&buf[16..24], &3u64.to_le_bytes());
        assert_eq!(&buf[24..32], &2u64.to_le_bytes());
        assert_eq!(&buf[32..40], &5u64.to_le_bytes());
        let expected = HEADER_LEN + 8 * 4 + (4 * 5 + 4) + 8 * 3 + (4 * 5 + 4);
        assert_eq!(buf.len() as u64, expected);
        // S1 u_offsets = [0, 2, 4, 5].
        assert_eq!(&buf[56..64], &0u64.to_le_bytes());
        assert_eq!(&buf[64..72], &2u64.to_le_bytes());
        assert_eq!(&buf[72..80], &4u64.to_le_bytes());
        assert_eq!(&buf[80..88], &5u64.to_le_bytes());
        // S2 u_adj = [0, 1, 0, 1, 0] then 4 zero bytes of padding.
        assert_eq!(&buf[88..92], &0u32.to_le_bytes());
        assert_eq!(&buf[92..96], &1u32.to_le_bytes());
        assert_eq!(&buf[104..108], &0u32.to_le_bytes());
        assert_eq!(&buf[108..112], &[0u8; 4]);
    }

    #[test]
    fn rejects_bad_magic() {
        let g = from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let mut buf = image(&g);
        buf[0] = b'X';
        assert!(matches!(
            read_binary_graph(&mut buf.as_slice()),
            Err(BinError::BadMagic { .. })
        ));
    }

    #[test]
    fn rejects_bad_version_and_endianness() {
        let g = from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let mut buf = image(&g);
        buf[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            read_binary_graph(&mut buf.as_slice()),
            Err(BinError::BadVersion { found: 9 })
        ));
        let mut buf = image(&g);
        buf[12..16].copy_from_slice(&0x0403_0201u32.to_le_bytes());
        assert!(matches!(
            read_binary_graph(&mut buf.as_slice()),
            Err(BinError::BadEndianness { .. })
        ));
    }

    #[test]
    fn rejects_header_tamper_and_body_bitflip() {
        let g = gen::zipf(20, 20, 80, 0.5, 0.9, 17);
        let mut buf = image(&g);
        // Grow num_edges without fixing the checksum: header checksum trips.
        buf[32] ^= 1;
        assert!(matches!(
            read_binary_graph(&mut buf.as_slice()),
            Err(BinError::Checksum { what: "header", .. })
        ));
        // Flip one adjacency byte: body checksum trips.
        let mut buf = image(&g);
        let mid = buf.len() - 12;
        buf[mid] ^= 0x40;
        assert!(matches!(
            read_binary_graph(&mut buf.as_slice()),
            Err(BinError::Checksum { what: "body", .. })
        ));
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        let g = gen::zipf(20, 20, 80, 0.5, 0.9, 19);
        let buf = image(&g);
        let truncated = &buf[..buf.len() - 5];
        assert!(matches!(
            read_binary_graph(&mut &truncated[..]),
            Err(BinError::Io(_))
        ));
        let mut extended = buf.clone();
        extended.push(0);
        assert!(matches!(
            read_binary_graph(&mut extended.as_slice()),
            Err(BinError::WrongLength { .. })
        ));
    }

    #[test]
    fn rejects_checksum_valid_but_incoherent_sections() {
        // Handcraft a file whose checksums are self-consistent but whose
        // v-side is not the u-side's transpose: structural validation must
        // still refuse it. Graph claims edges (0,0) u-side but (1,?) v-side.
        let (num_u, num_v, num_edges) = (1u64, 1u64, 1u64);
        let u_offsets = [0u64, 1];
        let u_adj = [0u32];
        let v_offsets = [0u64, 0]; // v0 has no edges: inconsistent.
        let v_adj = [0u32];
        let mut body = Fnv1a::new();
        for w in u_offsets {
            body.word(w);
        }
        for a in u_adj {
            body.word(u64::from(a));
        }
        for w in v_offsets {
            body.word(w);
        }
        for a in v_adj {
            body.word(u64::from(a));
        }
        let body = body.finish();
        let header = header_checksum_words(num_u, num_v, num_edges, body);
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
        for w in [num_u, num_v, num_edges, body, header] {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        for w in u_offsets {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        for a in u_adj {
            buf.extend_from_slice(&a.to_le_bytes());
        }
        buf.extend_from_slice(&[0u8; 4]);
        for w in v_offsets {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        for a in v_adj {
            buf.extend_from_slice(&a.to_le_bytes());
        }
        buf.extend_from_slice(&[0u8; 4]);
        let err = read_binary_graph(&mut buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, BinError::Invalid { .. }),
            "wanted Invalid, got {err}"
        );
    }

    #[test]
    fn path_errors_carry_the_path() {
        let err = read_binary_graph_path("/no/such/graph.bgr").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("/no/such/graph.bgr"), "{msg}");

        let dir = std::env::temp_dir().join("binfmt_path_err");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("short.bgr");
        std::fs::write(&path, b"RCPTBGR\0 way too short").unwrap();
        let msg = read_binary_graph_path(&path).unwrap_err().to_string();
        assert!(msg.contains("short.bgr"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_length_detected_from_path_metadata() {
        let g = from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let dir = std::env::temp_dir().join("binfmt_len");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bgr");
        write_binary_graph_path(&path, &g).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &bytes).unwrap();
        let err = read_binary_graph_path(&path).unwrap_err();
        assert!(err.to_string().contains("wrong file length"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_checksum_is_returned_and_stable() {
        let g = gen::zipf(30, 20, 100, 0.5, 0.9, 23);
        let mut buf = Vec::new();
        let ck = write_binary_graph(&mut buf, &g).unwrap();
        assert_eq!(ck, u64::from_le_bytes(buf[48..56].try_into().unwrap()));
        let loaded = read_binary_graph(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.header_checksum, ck);
    }
}

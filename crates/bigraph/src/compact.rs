//! Parallel edge compaction — the data-structure half of Dynamic Graph
//! Maintenance (§4.2 of the paper).
//!
//! After a vertex is peeled it never participates in another update, but its
//! edges still sit interleaved in the CSR arrays and every wedge crossing it
//! is still *scanned*. DGM periodically rebuilds both adjacency directions
//! keeping only edges whose both endpoints are alive. Vertex ids are
//! preserved (supports and subset bookkeeping stay valid); only the edge
//! arrays shrink.

use crate::csr::BipartiteCsr;
use crate::VertexId;
use rayon::prelude::*;

/// Rebuilds `g` dropping every edge incident on a dead vertex.
/// `alive_u[u]` / `alive_v[v]` flag survivors. Runs both directions in
/// parallel over vertices; list order (ascending ids) is preserved because
/// filtering a sorted list keeps it sorted.
pub fn compact(g: &BipartiteCsr, alive_u: &[bool], alive_v: &[bool]) -> BipartiteCsr {
    assert_eq!(alive_u.len(), g.num_u());
    assert_eq!(alive_v.len(), g.num_v());

    let (u_offsets, u_adj) = compact_one_side(
        g.num_u(),
        |u| g.neighbors_u(u),
        |u| alive_u[u as usize],
        |v| alive_v[v as usize],
    );
    let (v_offsets, v_adj) = compact_one_side(
        g.num_v(),
        |v| g.neighbors_v(v),
        |v| alive_v[v as usize],
        |u| alive_u[u as usize],
    );
    debug_assert_eq!(u_adj.len(), v_adj.len());
    BipartiteCsr::from_parts(u_offsets, u_adj, v_offsets, v_adj)
}

fn compact_one_side<'a>(
    n: usize,
    neighbors: impl Fn(VertexId) -> &'a [VertexId] + Sync,
    self_alive: impl Fn(VertexId) -> bool + Sync,
    other_alive: impl Fn(VertexId) -> bool + Sync,
) -> (Vec<usize>, Vec<VertexId>) {
    // Pass 1: surviving degree per vertex.
    let mut counts: Vec<u64> = (0..n as VertexId)
        .into_par_iter()
        .map(|x| {
            if !self_alive(x) {
                return 0u64;
            }
            neighbors(x).iter().filter(|&&y| other_alive(y)).count() as u64
        })
        .collect();
    counts.push(0);
    let total = parutil::par_exclusive_prefix_sum(&mut counts) as usize;
    let offsets: Vec<usize> = counts.iter().map(|&c| c as usize).collect();

    // Pass 2: scatter surviving neighbours. Each vertex writes a disjoint
    // output range, so the fill parallelizes over chunk boundaries.
    let mut adj = vec![0 as VertexId; total];
    // Split `adj` into per-vertex slices up front to allow parallel writes.
    let mut slices: Vec<&mut [VertexId]> = Vec::with_capacity(n);
    {
        let mut rest: &mut [VertexId] = &mut adj;
        for x in 0..n {
            let len = offsets[x + 1] - offsets[x];
            let (head, tail) = rest.split_at_mut(len);
            slices.push(head);
            rest = tail;
        }
    }
    slices.into_par_iter().enumerate().for_each(|(x, out)| {
        let x = x as VertexId;
        if out.is_empty() {
            return;
        }
        let mut w = 0;
        for &y in neighbors(x) {
            if other_alive(y) {
                out[w] = y;
                w += 1;
            }
        }
        debug_assert_eq!(w, out.len());
    });
    (offsets, adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn sample() -> BipartiteCsr {
        from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 2)]).unwrap()
    }

    #[test]
    fn all_alive_is_identity() {
        let g = sample();
        let c = compact(&g, &[true; 3], &[true; 3]);
        assert_eq!(c, g);
    }

    #[test]
    fn dead_u_vertex_removed_from_both_sides() {
        let g = sample();
        let c = compact(&g, &[true, false, true], &[true; 3]);
        assert_eq!(c.num_edges(), 3); // u1's three edges gone
        assert!(c.neighbors_u(1).is_empty());
        assert_eq!(c.neighbors_v(0), &[0]);
        assert_eq!(c.neighbors_v(1), &[0]);
        assert_eq!(c.neighbors_v(2), &[2]);
        // Dimensions unchanged: ids stay stable.
        assert_eq!(c.num_u(), 3);
        assert_eq!(c.num_v(), 3);
    }

    #[test]
    fn dead_v_vertex_removed() {
        let g = sample();
        let c = compact(&g, &[true; 3], &[false, true, true]);
        assert_eq!(c.num_edges(), 4);
        assert_eq!(c.neighbors_u(0), &[1]);
        assert_eq!(c.neighbors_u(1), &[1, 2]);
        assert!(c.neighbors_v(0).is_empty());
    }

    #[test]
    fn everything_dead() {
        let g = sample();
        let c = compact(&g, &[false; 3], &[false; 3]);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.num_u(), 3);
    }

    #[test]
    fn adjacency_stays_sorted() {
        let g = from_edges(2, 5, &[(0, 0), (0, 2), (0, 3), (0, 4), (1, 1)]).unwrap();
        let c = compact(&g, &[true, true], &[true, false, true, false, true]);
        assert_eq!(c.neighbors_u(0), &[0, 2, 4]);
        assert!(c.neighbors_u(1).is_empty());
    }

    #[test]
    fn transpose_consistency_after_compaction() {
        let g = sample();
        let c = compact(&g, &[true, true, false], &[true, false, true]);
        let mut from_u: Vec<(u32, u32)> = c.edges().collect();
        let mut from_v: Vec<(u32, u32)> = Vec::new();
        for v in 0..c.num_v() as u32 {
            for &u in c.neighbors_v(v) {
                from_v.push((u, v));
            }
        }
        from_u.sort_unstable();
        from_v.sort_unstable();
        assert_eq!(from_u, from_v);
    }
}

//! Batch-dynamic bipartite graphs: a delta overlay over [`BipartiteCsr`].
//!
//! Real bipartite streams (user–item, author–paper) arrive as batches of
//! edge insertions and deletions. Rebuilding the CSR per batch would cost
//! `O(m log m)` regardless of batch size, so [`DynamicBigraph`] keeps the
//! last compacted CSR as an immutable *base* plus two sorted overlays —
//! edges added since, edges removed since — and answers adjacency queries
//! through a sorted merge of base and overlay. When the overlay grows past
//! a configurable fraction of the base (the same traversed-work-vs-rebuild
//! trade DGM makes in §4.2), the graph recompacts: the overlay is folded
//! into a fresh CSR and cleared.
//!
//! Sides only grow (ops may reference vertices beyond the current sizes);
//! vertex ids are stable for the lifetime of the graph, which is what lets
//! the incremental butterfly/tip layers keep per-vertex state across
//! batches.
//!
//! The module also owns the stream *file format* consumed by
//! `tipdecomp stream`: one op per line (`+ u v` inserts, `- u v` deletes,
//! the sign may be glued to `u`), `%`/`#` comments ignored, batches
//! separated by blank lines.

use crate::builder::GraphBuilder;
use crate::csr::BipartiteCsr;
use crate::io::IoError;
use crate::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read};

/// One streamed edge operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeOp {
    /// Insert the edge `(u, v)`.
    Insert(VertexId, VertexId),
    /// Delete the edge `(u, v)`.
    Delete(VertexId, VertexId),
}

impl EdgeOp {
    /// The `(u, v)` endpoint pair of the op.
    pub fn edge(self) -> (VertexId, VertexId) {
        match self {
            EdgeOp::Insert(u, v) | EdgeOp::Delete(u, v) => (u, v),
        }
    }
}

/// What a batch did to the graph, classified against the pre-batch state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchApplication {
    /// Effective insertions (edge was absent), in op order.
    pub inserted: Vec<(VertexId, VertexId)>,
    /// Effective deletions (edge was present), in op order.
    pub deleted: Vec<(VertexId, VertexId)>,
    /// No-op count: inserts of present edges, deletes of absent edges, and
    /// earlier ops on an edge that a later op in the same batch overrode.
    pub skipped: usize,
    /// The batch pushed the overlay past the threshold and the base CSR
    /// was rebuilt.
    pub compacted: bool,
}

/// A bipartite graph that absorbs batched edge insertions/deletions.
#[derive(Debug, Clone)]
pub struct DynamicBigraph {
    base: BipartiteCsr,
    /// Edges present but not in `base`, keyed `(u, v)`.
    added: BTreeSet<(VertexId, VertexId)>,
    /// Mirror of `added` keyed `(v, u)` for V-side adjacency.
    added_t: BTreeSet<(VertexId, VertexId)>,
    /// Edges in `base` that have been deleted, keyed `(u, v)`.
    removed: BTreeSet<(VertexId, VertexId)>,
    removed_t: BTreeSet<(VertexId, VertexId)>,
    /// Logical side sizes (≥ the base's — sides grow, never shrink).
    num_u: usize,
    num_v: usize,
    /// Recompact once `added + removed > threshold · base edges`.
    compact_threshold: f64,
    compactions: u64,
}

/// Default overlay fraction that triggers recompaction.
pub const DEFAULT_COMPACT_THRESHOLD: f64 = 0.25;

impl DynamicBigraph {
    /// Wraps a static graph with an empty overlay.
    pub fn new(base: BipartiteCsr) -> Self {
        Self::with_threshold(base, DEFAULT_COMPACT_THRESHOLD)
    }

    /// `threshold` is the overlay-to-base edge ratio that triggers
    /// recompaction; values ≤ 0 recompact after every mutating batch.
    pub fn with_threshold(base: BipartiteCsr, threshold: f64) -> Self {
        DynamicBigraph {
            num_u: base.num_u(),
            num_v: base.num_v(),
            base,
            added: BTreeSet::new(),
            added_t: BTreeSet::new(),
            removed: BTreeSet::new(),
            removed_t: BTreeSet::new(),
            compact_threshold: threshold,
            compactions: 0,
        }
    }

    /// The last compacted CSR the overlay is relative to. Incremental
    /// layers align flat per-edge state with this graph's edge ids
    /// ([`BipartiteCsr::edge_index`]); the alignment stays valid exactly
    /// until the next [`Self::compact`].
    pub fn base(&self) -> &BipartiteCsr {
        &self.base
    }

    /// Current U-side size (base plus on-demand growth).
    pub fn num_u(&self) -> usize {
        self.num_u
    }

    /// Current V-side size (base plus on-demand growth).
    pub fn num_v(&self) -> usize {
        self.num_v
    }

    /// Live edge count: base edges plus the overlay's net effect.
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.added.len() - self.removed.len()
    }

    /// Entries in the delta overlay (diagnostics; 0 right after compaction).
    pub fn overlay_len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Times the overlay was folded into the base CSR.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Whether `(u, v)` is a live edge, overlay included.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if self.added.contains(&(u, v)) {
            return true;
        }
        (u as usize) < self.base.num_u()
            && (v as usize) < self.base.num_v()
            && self.base.has_edge(u, v)
            && !self.removed.contains(&(u, v))
    }

    /// Secondary neighbours of `u`, ascending: the base adjacency minus
    /// removed edges, merged with the added overlay.
    pub fn neighbors_u(&self, u: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let base = if (u as usize) < self.base.num_u() {
            self.base.neighbors_u(u)
        } else {
            &[]
        };
        merge_overlay(
            base.iter()
                .copied()
                .filter(move |&v| !self.removed.contains(&(u, v))),
            self.added
                .range((u, 0)..=(u, VertexId::MAX))
                .map(|&(_, v)| v),
        )
    }

    /// Degree of `u` (base minus removed plus added overlay edges),
    /// without materializing the merge. O(log overlay) — the kernel-
    /// selection heuristics in the butterfly layer call this per wedge
    /// to size intersections before choosing a kernel.
    pub fn degree_u(&self, u: VertexId) -> usize {
        let base = if (u as usize) < self.base.num_u() {
            self.base.neighbors_u(u).len()
        } else {
            0
        };
        let removed = self.removed.range((u, 0)..=(u, VertexId::MAX)).count();
        let added = self.added.range((u, 0)..=(u, VertexId::MAX)).count();
        base - removed + added
    }

    /// Degree of `v`; see [`Self::degree_u`].
    pub fn degree_v(&self, v: VertexId) -> usize {
        let base = if (v as usize) < self.base.num_v() {
            self.base.neighbors_v(v).len()
        } else {
            0
        };
        let removed = self.removed_t.range((v, 0)..=(v, VertexId::MAX)).count();
        let added = self.added_t.range((v, 0)..=(v, VertexId::MAX)).count();
        base - removed + added
    }

    /// The base CSR's adjacency slice for `u`, available only when the
    /// overlay holds no entry for `u` (so the slice *is* the current
    /// adjacency). Galloping intersection needs random access; callers
    /// fall back to the [`Self::neighbors_u`] merge iterator on `None`.
    pub fn base_only_neighbors_u(&self, u: VertexId) -> Option<&[VertexId]> {
        let touched = self
            .added
            .range((u, 0)..=(u, VertexId::MAX))
            .next()
            .is_some()
            || self
                .removed
                .range((u, 0)..=(u, VertexId::MAX))
                .next()
                .is_some();
        if touched {
            return None;
        }
        Some(if (u as usize) < self.base.num_u() {
            self.base.neighbors_u(u)
        } else {
            &[]
        })
    }

    /// V-side counterpart of [`Self::base_only_neighbors_u`].
    pub fn base_only_neighbors_v(&self, v: VertexId) -> Option<&[VertexId]> {
        let touched = self
            .added_t
            .range((v, 0)..=(v, VertexId::MAX))
            .next()
            .is_some()
            || self
                .removed_t
                .range((v, 0)..=(v, VertexId::MAX))
                .next()
                .is_some();
        if touched {
            return None;
        }
        Some(if (v as usize) < self.base.num_v() {
            self.base.neighbors_v(v)
        } else {
            &[]
        })
    }

    /// Primary neighbours of `v`, ascending.
    pub fn neighbors_v(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let base = if (v as usize) < self.base.num_v() {
            self.base.neighbors_v(v)
        } else {
            &[]
        };
        merge_overlay(
            base.iter()
                .copied()
                .filter(move |&u| !self.removed_t.contains(&(v, u))),
            self.added_t
                .range((v, 0)..=(v, VertexId::MAX))
                .map(|&(_, u)| u),
        )
    }

    /// All current edges in `(u, v)` lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_u as VertexId).flat_map(move |u| self.neighbors_u(u).map(move |v| (u, v)))
    }

    /// Classifies a batch against the current graph *without applying it*.
    /// Within a batch the *last* op on an edge wins; ops that do not
    /// change the graph (inserting a present edge, deleting an absent one)
    /// are counted in `skipped`. This is the single classification used by
    /// [`Self::apply_batch`] — incremental layers call it first to price
    /// deletions on the pre-batch graph, then apply, and both views of the
    /// batch agree by construction.
    pub fn classify_batch(&self, ops: &[EdgeOp]) -> BatchApplication {
        let mut result = BatchApplication::default();
        // Last op per edge wins; earlier ops on the same edge are no-ops.
        let mut last: Vec<(usize, EdgeOp)> = Vec::with_capacity(ops.len());
        let mut seen: BTreeSet<(VertexId, VertexId)> = BTreeSet::new();
        for (idx, &op) in ops.iter().enumerate().rev() {
            if seen.insert(op.edge()) {
                last.push((idx, op));
            } else {
                result.skipped += 1;
            }
        }
        last.sort_unstable_by_key(|&(idx, _)| idx);

        for (_, op) in last {
            let (u, v) = op.edge();
            match op {
                EdgeOp::Insert(..) if !self.has_edge(u, v) => result.inserted.push((u, v)),
                EdgeOp::Delete(..) if self.has_edge(u, v) => result.deleted.push((u, v)),
                _ => result.skipped += 1,
            }
        }
        result
    }

    /// Classifies a batch via [`Self::classify_batch`] and applies it.
    /// Side sizes grow to cover every effectively-inserted id.
    pub fn apply_batch(&mut self, ops: &[EdgeOp]) -> BatchApplication {
        let mut result = self.apply_ops(ops);
        if self.needs_compaction() {
            self.compact();
            result.compacted = true;
        }
        result
    }

    /// [`Self::apply_batch`] without the threshold-triggered compaction:
    /// the overlay absorbs the batch and the base CSR (and therefore every
    /// [`BipartiteCsr::edge_index`] alignment) is left untouched.
    /// Incremental layers that keep base-aligned flat state apply the
    /// batch through this, patch their state, then check
    /// [`Self::needs_compaction`] and realign across an explicit
    /// [`Self::compact`].
    pub fn apply_ops(&mut self, ops: &[EdgeOp]) -> BatchApplication {
        let mut result = self.classify_batch(ops);
        result.compacted = false;
        for &(u, v) in &result.inserted {
            self.num_u = self.num_u.max(u as usize + 1);
            self.num_v = self.num_v.max(v as usize + 1);
            self.insert_edge(u, v);
        }
        for &(u, v) in &result.deleted {
            self.delete_edge(u, v);
        }
        result
    }

    /// The overlay has outgrown the compaction budget
    /// (`threshold · base edges`).
    pub fn needs_compaction(&self) -> bool {
        let budget = self.compact_threshold * self.base.num_edges() as f64;
        self.overlay_len() > 0 && self.overlay_len() as f64 > budget
    }

    fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        // Re-inserting a base edge that was deleted cancels the removal.
        if self.removed.remove(&(u, v)) {
            self.removed_t.remove(&(v, u));
        } else {
            self.added.insert((u, v));
            self.added_t.insert((v, u));
        }
    }

    fn delete_edge(&mut self, u: VertexId, v: VertexId) {
        if self.added.remove(&(u, v)) {
            self.added_t.remove(&(v, u));
        } else {
            self.removed.insert((u, v));
            self.removed_t.insert((v, u));
        }
    }

    /// Materializes the current graph as a standalone CSR.
    pub fn materialize(&self) -> BipartiteCsr {
        GraphBuilder::new(self.num_u, self.num_v)
            .add_edges(self.edges())
            .build()
            .expect("dynamic overlay edges are in range by construction")
    }

    /// Folds the overlay into a fresh base CSR (the DGM-style rebuild).
    pub fn compact(&mut self) {
        self.base = self.materialize();
        self.added.clear();
        self.added_t.clear();
        self.removed.clear();
        self.removed_t.clear();
        self.compactions += 1;
    }
}

/// Merges two ascending, duplicate-free streams into one. The overlay is
/// disjoint from the filtered base by construction (an added edge is never
/// also a base edge), so equal heads cannot occur — but the merge keeps
/// both if they ever did, preserving sortedness.
fn merge_overlay(
    base: impl Iterator<Item = VertexId>,
    overlay: impl Iterator<Item = VertexId>,
) -> impl Iterator<Item = VertexId> {
    let mut base = base.peekable();
    let mut overlay = overlay.peekable();
    std::iter::from_fn(move || match (base.peek(), overlay.peek()) {
        (Some(&a), Some(&b)) => {
            if a <= b {
                base.next()
            } else {
                overlay.next()
            }
        }
        (Some(_), None) => base.next(),
        (None, _) => overlay.next(),
    })
}

// ---------------------------------------------------------------------------
// Stream file format
// ---------------------------------------------------------------------------

/// Parses a stream-of-batches file: `+ u v` inserts, `- u v` deletes (the
/// sign may be glued to the first id), `%`/`#` comment lines are skipped,
/// and a blank line ends the current batch. Empty batches are dropped.
pub fn read_batches<R: Read>(reader: R) -> Result<Vec<Vec<EdgeOp>>, IoError> {
    let mut batches: Vec<Vec<EdgeOp>> = Vec::new();
    let mut current: Vec<EdgeOp> = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            if !current.is_empty() {
                batches.push(std::mem::take(&mut current));
            }
            continue;
        }
        if t.starts_with('%') || t.starts_with('#') {
            continue;
        }
        let err = || IoError::Parse {
            line: idx + 1,
            content: t.to_string(),
        };
        let (sign, rest) = match t.as_bytes()[0] {
            b'+' => ('+', &t[1..]),
            b'-' => ('-', &t[1..]),
            _ => return Err(err()),
        };
        let mut cols = rest.split_whitespace();
        let u: VertexId = cols.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
        let v: VertexId = cols.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
        if cols.next().is_some() {
            return Err(err());
        }
        current.push(match sign {
            '+' => EdgeOp::Insert(u, v),
            _ => EdgeOp::Delete(u, v),
        });
    }
    if !current.is_empty() {
        batches.push(current);
    }
    Ok(batches)
}

/// Generates a seeded insert/delete schedule against `g`: `batches` batches
/// of `ops_per_batch` ops, roughly 60% insertions of uniformly random
/// pairs (duplicates possible — they exercise the no-op path) and 40%
/// deletions of currently-present edges. Deterministic in `seed`.
pub fn seeded_schedule(
    g: &BipartiteCsr,
    batches: usize,
    ops_per_batch: usize,
    seed: u64,
) -> Vec<Vec<EdgeOp>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nu = g.num_u().max(1) as VertexId;
    let nv = g.num_v().max(1) as VertexId;
    // Track the evolving edge set so deletions target present edges.
    let mut present: Vec<(VertexId, VertexId)> = g.edges().collect();
    let mut member: BTreeSet<(VertexId, VertexId)> = present.iter().copied().collect();
    let mut schedule = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut batch = Vec::with_capacity(ops_per_batch);
        for _ in 0..ops_per_batch {
            let delete = !present.is_empty() && rng.random_range(0..10u32) < 4;
            if delete {
                let i = rng.random_range(0..present.len());
                let e = present.swap_remove(i);
                member.remove(&e);
                batch.push(EdgeOp::Delete(e.0, e.1));
            } else {
                let e = (rng.random_range(0..nu), rng.random_range(0..nv));
                batch.push(EdgeOp::Insert(e.0, e.1));
                if member.insert(e) {
                    present.push(e);
                }
            }
        }
        schedule.push(batch);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn sample() -> BipartiteCsr {
        from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]).unwrap()
    }

    fn adj_u(g: &DynamicBigraph, u: VertexId) -> Vec<VertexId> {
        g.neighbors_u(u).collect()
    }

    fn adj_v(g: &DynamicBigraph, v: VertexId) -> Vec<VertexId> {
        g.neighbors_v(v).collect()
    }

    #[test]
    fn fresh_graph_mirrors_base() {
        let g = DynamicBigraph::new(sample());
        assert_eq!(g.num_edges(), 5);
        assert_eq!(adj_u(&g, 0), vec![0, 1]);
        assert_eq!(adj_v(&g, 0), vec![0, 1]);
        assert!(g.has_edge(2, 2));
        assert!(!g.has_edge(2, 0));
        assert_eq!(g.materialize(), sample());
    }

    #[test]
    fn insert_and_delete_through_overlay() {
        let mut g = DynamicBigraph::with_threshold(sample(), 100.0);
        let r = g.apply_batch(&[EdgeOp::Insert(2, 0), EdgeOp::Delete(0, 1)]);
        assert_eq!(r.inserted, vec![(2, 0)]);
        assert_eq!(r.deleted, vec![(0, 1)]);
        assert_eq!(r.skipped, 0);
        assert!(!r.compacted);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(adj_u(&g, 0), vec![0]);
        assert_eq!(adj_u(&g, 2), vec![0, 2]);
        assert_eq!(adj_v(&g, 0), vec![0, 1, 2]);
        assert_eq!(adj_v(&g, 1), vec![1]);
        assert!(g.has_edge(2, 0) && !g.has_edge(0, 1));
        // Materialized CSR agrees with the overlay view.
        let m = g.materialize();
        assert_eq!(m.neighbors_u(2), &[0, 2]);
        assert_eq!(m.neighbors_v(0), &[0, 1, 2]);
    }

    #[test]
    fn noop_ops_are_skipped() {
        let mut g = DynamicBigraph::with_threshold(sample(), 100.0);
        let r = g.apply_batch(&[EdgeOp::Insert(0, 0), EdgeOp::Delete(2, 0)]);
        assert_eq!(r.skipped, 2);
        assert!(r.inserted.is_empty() && r.deleted.is_empty());
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn last_op_per_edge_wins_within_a_batch() {
        let mut g = DynamicBigraph::with_threshold(sample(), 100.0);
        // Insert then delete the same absent edge: net no-op, 2 skipped
        // (the overridden insert plus the delete of an absent edge).
        let r = g.apply_batch(&[EdgeOp::Insert(2, 0), EdgeOp::Delete(2, 0)]);
        assert!(r.inserted.is_empty() && r.deleted.is_empty());
        assert_eq!(r.skipped, 2);
        // Delete then re-insert a present edge: also a net no-op.
        let r = g.apply_batch(&[EdgeOp::Delete(0, 0), EdgeOp::Insert(0, 0)]);
        assert!(r.inserted.is_empty() && r.deleted.is_empty());
        assert_eq!(r.skipped, 2);
        assert_eq!(g.materialize(), sample());
    }

    #[test]
    fn delete_then_reinsert_across_batches_cancels() {
        let mut g = DynamicBigraph::with_threshold(sample(), 100.0);
        g.apply_batch(&[EdgeOp::Delete(0, 0)]);
        assert_eq!(g.overlay_len(), 1);
        g.apply_batch(&[EdgeOp::Insert(0, 0)]);
        assert_eq!(g.overlay_len(), 0, "removal cancelled, not double-tracked");
        assert_eq!(g.materialize(), sample());
    }

    #[test]
    fn sides_grow_to_cover_new_ids() {
        let mut g = DynamicBigraph::with_threshold(sample(), 100.0);
        let r = g.apply_batch(&[EdgeOp::Insert(5, 7)]);
        assert_eq!(r.inserted, vec![(5, 7)]);
        assert_eq!((g.num_u(), g.num_v()), (6, 8));
        assert_eq!(adj_u(&g, 5), vec![7]);
        assert_eq!(adj_v(&g, 7), vec![5]);
        let m = g.materialize();
        assert_eq!((m.num_u(), m.num_v()), (6, 8));
    }

    #[test]
    fn threshold_triggers_compaction() {
        // Base has 5 edges; threshold 0.2 → overlay of 2 exceeds 1.0.
        let mut g = DynamicBigraph::with_threshold(sample(), 0.2);
        let r = g.apply_batch(&[EdgeOp::Insert(2, 0)]);
        assert!(!r.compacted, "1 overlay entry ≤ 0.2·5");
        let r = g.apply_batch(&[EdgeOp::Insert(2, 1)]);
        assert!(r.compacted);
        assert_eq!(g.overlay_len(), 0);
        assert_eq!(g.compactions(), 1);
        assert_eq!(g.num_edges(), 7);
        assert!(g.has_edge(2, 0) && g.has_edge(2, 1));
    }

    #[test]
    fn edges_iterator_is_sorted_and_complete() {
        let mut g = DynamicBigraph::with_threshold(sample(), 100.0);
        g.apply_batch(&[
            EdgeOp::Insert(1, 2),
            EdgeOp::Delete(1, 0),
            EdgeOp::Insert(3, 0),
        ]);
        let edges: Vec<_> = g.edges().collect();
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        assert_eq!(edges, sorted);
        assert_eq!(edges, vec![(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (3, 0)]);
    }

    #[test]
    fn materialize_matches_overlay_under_random_schedule() {
        let base = crate::gen::uniform(20, 15, 60, 3);
        let mut dynamic = DynamicBigraph::with_threshold(base.clone(), 0.3);
        let mut reference: BTreeSet<(VertexId, VertexId)> = base.edges().collect();
        for batch in seeded_schedule(&base, 6, 25, 42) {
            let r = dynamic.apply_batch(&batch);
            for &e in &r.inserted {
                assert!(reference.insert(e), "{e:?} reported inserted twice");
            }
            for &e in &r.deleted {
                assert!(reference.remove(&e), "{e:?} reported deleted twice");
            }
            let m = dynamic.materialize();
            let materialized: BTreeSet<_> = m.edges().collect();
            assert_eq!(materialized, reference);
            assert_eq!(dynamic.num_edges(), reference.len());
        }
    }

    #[test]
    fn degree_and_base_slice_accessors_agree_with_merge() {
        let base = crate::gen::uniform(20, 15, 60, 3);
        let mut g = DynamicBigraph::with_threshold(base.clone(), 100.0);
        for batch in seeded_schedule(&base, 4, 20, 11) {
            g.apply_batch(&batch);
        }
        assert!(g.overlay_len() > 0, "schedule must leave overlay entries");
        let mut base_only_seen = 0;
        for u in 0..g.num_u() as VertexId {
            let merged: Vec<_> = g.neighbors_u(u).collect();
            assert_eq!(g.degree_u(u), merged.len(), "degree_u({u})");
            if let Some(slice) = g.base_only_neighbors_u(u) {
                assert_eq!(slice, &merged[..], "base_only_neighbors_u({u})");
                base_only_seen += 1;
            }
        }
        for v in 0..g.num_v() as VertexId {
            let merged: Vec<_> = g.neighbors_v(v).collect();
            assert_eq!(g.degree_v(v), merged.len(), "degree_v({v})");
            if let Some(slice) = g.base_only_neighbors_v(v) {
                assert_eq!(slice, &merged[..], "base_only_neighbors_v({v})");
            }
        }
        assert!(base_only_seen > 0, "some vertices must be overlay-free");
        // An overlay-touched vertex must refuse the fast slice.
        let (u, v) = (0, g.num_v() as VertexId + 1);
        g.apply_batch(&[EdgeOp::Insert(u, v)]);
        assert!(g.base_only_neighbors_u(u).is_none());
        assert!(g.base_only_neighbors_v(v).is_none());
    }

    #[test]
    fn parse_batches_happy_path() {
        let text = "% stream\n+0 1\n- 2 3\n\n# next batch\n+ 4 5\n\n\n";
        let batches = read_batches(text.as_bytes()).unwrap();
        assert_eq!(
            batches,
            vec![
                vec![EdgeOp::Insert(0, 1), EdgeOp::Delete(2, 3)],
                vec![EdgeOp::Insert(4, 5)],
            ]
        );
    }

    #[test]
    fn parse_batches_final_batch_without_trailing_blank() {
        let batches = read_batches("+1 1\n+2 2".as_bytes()).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 2);
    }

    #[test]
    fn parse_batches_rejects_malformed_lines() {
        for bad in ["1 2\n", "+1\n", "+1 2 3\n", "+x y\n"] {
            let err = read_batches(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, IoError::Parse { line: 1, .. }), "{bad:?}");
        }
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_consistent() {
        let g = crate::gen::uniform(30, 30, 80, 9);
        let a = seeded_schedule(&g, 4, 20, 7);
        let b = seeded_schedule(&g, 4, 20, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|batch| batch.len() == 20));
        // Deletions must always name an edge present at that point.
        let mut g = DynamicBigraph::with_threshold(g, 100.0);
        for batch in &a {
            for op in batch {
                if let EdgeOp::Delete(u, v) = *op {
                    // Present unless an earlier op in this same batch
                    // already touched it; apply ops one by one to check.
                    assert!(g.has_edge(u, v), "delete of absent edge ({u}, {v})");
                }
                g.apply_batch(std::slice::from_ref(op));
            }
        }
    }
}

//! Set-algebraic derive operators over whole graphs (`VERSIONING.md`
//! §6) — the bipartite port of `gen`-style `derive union/difference`.
//!
//! Both operators treat a [`BipartiteCsr`] as its edge set plus its
//! vertex-set dimensions and build the result with the ordinary
//! builder, so derived graphs are canonical CSRs indistinguishable
//! from loaded ones. The subgraph operator of the same family is
//! [`crate::induced::InducedGraph`].

use std::collections::BTreeSet;

use crate::builder::from_edges;
use crate::csr::BipartiteCsr;

/// The union of two graphs (`VERSIONING.md` §6.2): vertex sets are
/// `0..max(|U|)` and `0..max(|V|)`, the edge set is `E(a) ∪ E(b)`.
/// Edges land in ascending `(u, v)` order, so equal inputs give
/// byte-identical outputs.
pub fn union(a: &BipartiteCsr, b: &BipartiteCsr) -> BipartiteCsr {
    let edges: BTreeSet<_> = a.edges().chain(b.edges()).collect();
    let edges: Vec<_> = edges.into_iter().collect();
    from_edges(a.num_u().max(b.num_u()), a.num_v().max(b.num_v()), &edges)
        .expect("union edges are deduplicated and within the max dimensions")
}

/// The difference of two graphs (`VERSIONING.md` §6.3): `a`'s vertex
/// sets (ids keep their meaning relative to `a`), the edge set
/// `E(a) \ E(b)`. `b`'s dimensions are irrelevant — only its edges
/// subtract.
pub fn difference(a: &BipartiteCsr, b: &BipartiteCsr) -> BipartiteCsr {
    let remove: BTreeSet<_> = b.edges().collect();
    let edges: Vec<_> = a.edges().filter(|e| !remove.contains(e)).collect();
    from_edges(a.num_u(), a.num_v(), &edges)
        .expect("difference edges are a subset of a's, already sorted and unique")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(nu: usize, nv: usize, edges: &[(u32, u32)]) -> BipartiteCsr {
        from_edges(nu, nv, edges).unwrap()
    }

    #[test]
    fn union_takes_max_dims_and_merges_edges() {
        let a = g(2, 3, &[(0, 0), (1, 2)]);
        let b = g(3, 2, &[(0, 0), (2, 1)]);
        let u = union(&a, &b);
        assert_eq!((u.num_u(), u.num_v()), (3, 3));
        assert_eq!(u.edges().collect::<Vec<_>>(), vec![(0, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn difference_keeps_a_dims() {
        let a = g(2, 3, &[(0, 0), (0, 2), (1, 1)]);
        let b = g(5, 5, &[(0, 2), (4, 4)]);
        let d = difference(&a, &b);
        assert_eq!((d.num_u(), d.num_v()), (2, 3));
        assert_eq!(d.edges().collect::<Vec<_>>(), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn union_and_difference_invert() {
        // (a ∪ b) \ b == a \ b; and a \ (a \ b) == a ∩ b.
        let a = g(4, 4, &[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let b = g(4, 4, &[(1, 1), (3, 3), (0, 3)]);
        let ab = difference(&union(&a, &b), &b);
        assert_eq!(
            ab.edges().collect::<Vec<_>>(),
            difference(&a, &b).edges().collect::<Vec<_>>()
        );
        let inter = difference(&a, &difference(&a, &b));
        assert_eq!(inter.edges().collect::<Vec<_>>(), vec![(1, 1), (3, 3)]);
    }
}

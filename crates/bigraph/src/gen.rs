//! Seeded synthetic bipartite-graph generators.
//!
//! The paper evaluates on six KONECT datasets that are not redistributable
//! here, so [`crate::datasets`] instantiates shape-matched analogs from
//! these generators. All generators take an explicit seed and are fully
//! deterministic.

use crate::builder::GraphBuilder;
use crate::csr::BipartiteCsr;
use crate::VertexId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Uniform random bipartite graph: `m` distinct edges sampled uniformly
/// from `U × V` (clamped to the number of possible edges).
pub fn uniform(nu: usize, nv: usize, m: usize, seed: u64) -> BipartiteCsr {
    assert!(nu > 0 && nv > 0, "uniform generator needs non-empty sides");
    let possible = nu.saturating_mul(nv);
    let m = m.min(possible);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(m * 2);
    // Rejection sampling is fine while m is well below nu*nv; fall back to
    // dense enumeration when the graph is nearly complete.
    if m * 2 > possible {
        let mut all: Vec<(VertexId, VertexId)> = (0..nu as VertexId)
            .flat_map(|u| (0..nv as VertexId).map(move |v| (u, v)))
            .collect();
        all.shuffle(&mut rng);
        all.truncate(m);
        return GraphBuilder::new(nu, nv).add_edges(all).build().unwrap();
    }
    while seen.len() < m {
        let u = rng.random_range(0..nu) as VertexId;
        let v = rng.random_range(0..nv) as VertexId;
        seen.insert((u, v));
    }
    GraphBuilder::new(nu, nv).add_edges(seen).build().unwrap()
}

/// Builds a degree sequence of length `n` summing to (approximately) `m`,
/// proportional to the Zipf weights `(i+1)^{-alpha}` and capped at
/// `max_deg`. `alpha = 0` gives a uniform sequence; larger `alpha` gives a
/// heavier head. The returned sequence is sorted descending.
pub fn zipf_degree_sequence(n: usize, m: usize, alpha: f64, max_deg: usize) -> Vec<usize> {
    assert!(n > 0, "degree sequence needs n > 0");
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut degs: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * m as f64).round() as usize)
        .map(|d| d.clamp(1, max_deg))
        .collect();
    // Fix the sum to exactly m by distributing the remainder over the tail
    // (or trimming the head), without violating the cap / the >= 0 floor.
    let mut sum: usize = degs.iter().sum();
    let mut i = 0usize;
    while sum < m {
        if degs[i % n] < max_deg {
            degs[i % n] += 1;
            sum += 1;
        }
        i += 1;
        if i > 4 * n * (max_deg + 1) {
            break; // cap too tight to reach m; return best effort
        }
    }
    let mut i = 0usize;
    while sum > m {
        if degs[i % n] > 0 {
            degs[i % n] -= 1;
            sum -= 1;
        }
        i += 1;
    }
    degs.sort_unstable_by(|a, b| b.cmp(a));
    degs
}

/// Zipf configuration model: draws degree sequences for both sides
/// (`alpha_u`, `alpha_v` skews), materializes stubs, shuffles, and pairs
/// them. Multi-edges created by the matching are merged, so the final edge
/// count is slightly below `m` for skewed graphs — exactly like simplifying
/// a real multigraph trace.
///
/// ```
/// let g = bigraph::gen::zipf(100, 50, 600, 0.4, 1.0, 7);
/// assert_eq!(g.num_u(), 100);
/// assert!(g.num_edges() <= 600);
/// // Seeded: regenerating gives the identical graph.
/// assert_eq!(g, bigraph::gen::zipf(100, 50, 600, 0.4, 1.0, 7));
/// ```
pub fn zipf(nu: usize, nv: usize, m: usize, alpha_u: f64, alpha_v: f64, seed: u64) -> BipartiteCsr {
    let du = zipf_degree_sequence(nu, m, alpha_u, nv.max(1));
    let dv = zipf_degree_sequence(nv, m, alpha_v, nu.max(1));
    let mu: usize = du.iter().sum();
    let mv: usize = dv.iter().sum();
    let m = mu.min(mv);

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut stubs_u: Vec<VertexId> = Vec::with_capacity(mu);
    for (u, &d) in du.iter().enumerate() {
        stubs_u.extend(std::iter::repeat_n(u as VertexId, d));
    }
    let mut stubs_v: Vec<VertexId> = Vec::with_capacity(mv);
    for (v, &d) in dv.iter().enumerate() {
        stubs_v.extend(std::iter::repeat_n(v as VertexId, d));
    }
    stubs_u.shuffle(&mut rng);
    stubs_v.shuffle(&mut rng);

    GraphBuilder::new(nu, nv)
        .add_edges(stubs_u.into_iter().zip(stubs_v).take(m))
        .build()
        .unwrap()
}

/// Plants `blocks` complete bipartite blocks of size `block_u × block_v`
/// (disjoint vertex ranges) and sprinkles `noise_m` uniform edges on top.
/// Each block is a `C(block_u, 2) · C(block_v, 2)`-butterfly community —
/// the spam-reviewer / affiliation-group structure tip decomposition is
/// designed to surface.
pub fn planted_bicliques(
    nu: usize,
    nv: usize,
    blocks: usize,
    block_u: usize,
    block_v: usize,
    noise_m: usize,
    seed: u64,
) -> BipartiteCsr {
    assert!(
        blocks * block_u <= nu && blocks * block_v <= nv,
        "blocks must fit in the vertex sets"
    );
    let mut b = GraphBuilder::new(nu, nv);
    for blk in 0..blocks {
        let u0 = (blk * block_u) as VertexId;
        let v0 = (blk * block_v) as VertexId;
        for du in 0..block_u as VertexId {
            for dv in 0..block_v as VertexId {
                b = b.add_edge(u0 + du, v0 + dv);
            }
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(noise_m);
    for _ in 0..noise_m {
        edges.push((
            rng.random_range(0..nu) as VertexId,
            rng.random_range(0..nv) as VertexId,
        ));
    }
    b.add_edges(edges).build().unwrap()
}

/// Affiliation model: `communities` groups, each owning a Zipf-sized set of
/// secondary vertices; every primary vertex joins `memberships` communities
/// (picked with preferential popularity) and links every member. Produces
/// the overlapping-community structure of social-network membership graphs
/// (Orkut/LiveJournal in the paper).
pub fn affiliation(
    nu: usize,
    nv: usize,
    communities: usize,
    memberships: usize,
    community_alpha: f64,
    seed: u64,
) -> BipartiteCsr {
    assert!(communities > 0 && nv > 0 && nu > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Community c owns a contiguous window of V with Zipf size.
    let sizes = zipf_degree_sequence(communities, nv * 2, community_alpha, nv.max(4) / 2);
    let windows: Vec<(usize, usize)> = sizes
        .iter()
        .map(|&s| {
            let s = s.clamp(2, nv);
            let start = rng.random_range(0..=(nv - s));
            (start, start + s)
        })
        .collect();
    let mut b = GraphBuilder::new(nu, nv);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for u in 0..nu as VertexId {
        for _ in 0..memberships {
            // Popularity ∝ Zipf over community index.
            let c = zipf_index(communities, community_alpha, &mut rng);
            let (lo, hi) = windows[c];
            // Join a random slice of the community, at least 2 members so
            // co-members form butterflies.
            let span = hi - lo;
            let take = rng.random_range(2..=span.max(2)).min(span);
            let start = lo + rng.random_range(0..=(span - take));
            for v in start..start + take {
                edges.push((u, v as VertexId));
            }
        }
    }
    b = b.add_edges(edges);
    b.build().unwrap()
}

/// Bipartite preferential attachment: primary vertices arrive one at a
/// time and attach `edges_per_u` edges; each endpoint is an existing
/// secondary vertex chosen proportionally to its current degree + 1
/// (smoothing), which yields the scale-free secondary side observed in
/// real affiliation data. Deterministic for a fixed seed.
pub fn preferential_attachment(
    nu: usize,
    nv: usize,
    edges_per_u: usize,
    seed: u64,
) -> BipartiteCsr {
    assert!(nu > 0 && nv > 0 && edges_per_u > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportional to degree+1 (every v is seeded once).
    let mut endpoints: Vec<VertexId> = (0..nv as VertexId).collect();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(nu * edges_per_u);
    for u in 0..nu as VertexId {
        for _ in 0..edges_per_u.min(nv) {
            let v = endpoints[rng.random_range(0..endpoints.len())];
            edges.push((u, v));
            endpoints.push(v);
        }
    }
    GraphBuilder::new(nu, nv).add_edges(edges).build().unwrap()
}

/// Samples an index in `0..n` with probability ∝ `(i+1)^{-alpha}` using
/// inverse-CDF on precomputed-free approximation (rejection against the
/// continuous envelope). Cheap and good enough for workload shaping.
fn zipf_index(n: usize, alpha: f64, rng: &mut SmallRng) -> usize {
    if alpha <= 1e-9 {
        return rng.random_range(0..n);
    }
    // Inverse transform on the continuous density x^{-alpha} over [1, n+1].
    let a = 1.0 - alpha;
    loop {
        let u: f64 = rng.random();
        let x = if a.abs() < 1e-9 {
            ((n as f64 + 1.0).ln() * u).exp()
        } else {
            ((((n as f64 + 1.0).powf(a) - 1.0) * u) + 1.0).powf(1.0 / a)
        };
        let idx = (x.floor() as usize).saturating_sub(1);
        if idx < n {
            return idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Side;

    #[test]
    fn uniform_respects_parameters() {
        let g = uniform(50, 40, 300, 7);
        assert_eq!(g.num_u(), 50);
        assert_eq!(g.num_v(), 40);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn uniform_is_deterministic() {
        let a = uniform(30, 30, 100, 42);
        let b = uniform(30, 30, 100, 42);
        assert_eq!(a, b);
        let c = uniform(30, 30, 100, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_clamps_to_complete() {
        let g = uniform(4, 4, 1000, 1);
        assert_eq!(g.num_edges(), 16);
    }

    #[test]
    fn uniform_dense_path() {
        // m*2 > nu*nv triggers the enumeration path.
        let g = uniform(6, 6, 30, 5);
        assert_eq!(g.num_edges(), 30);
    }

    #[test]
    fn zipf_degree_sequence_sums_to_m() {
        let d = zipf_degree_sequence(100, 5000, 1.1, 1000);
        assert_eq!(d.iter().sum::<usize>(), 5000);
        assert!(d.windows(2).all(|w| w[0] >= w[1]), "sorted descending");
        assert!(d[0] > d[99], "skewed head");
    }

    #[test]
    fn zipf_degree_sequence_respects_cap() {
        let d = zipf_degree_sequence(10, 1000, 2.0, 50);
        assert!(d.iter().all(|&x| x <= 50));
    }

    #[test]
    fn zipf_graph_shape() {
        let g = zipf(200, 100, 2000, 0.3, 1.0, 11);
        assert_eq!(g.num_u(), 200);
        assert_eq!(g.num_v(), 100);
        // Dedup can only shrink.
        assert!(g.num_edges() <= 2000);
        assert!(g.num_edges() > 1000, "most edges survive dedup");
        // V side should be visibly skewed.
        let dmax = crate::stats::max_primary_degree(g.view(Side::V));
        assert!(dmax as f64 > 2.0 * g.num_edges() as f64 / 100.0);
    }

    #[test]
    fn zipf_is_deterministic() {
        assert_eq!(
            zipf(50, 50, 400, 0.5, 0.5, 3),
            zipf(50, 50, 400, 0.5, 0.5, 3)
        );
    }

    #[test]
    fn planted_blocks_have_expected_edges() {
        let g = planted_bicliques(20, 20, 2, 4, 5, 0, 9);
        assert_eq!(g.num_edges(), 2 * 4 * 5);
        // Block members see the full other block.
        assert_eq!(g.deg_u(0), 5);
        assert_eq!(g.deg_u(4), 5); // second block starts at u4
        assert_eq!(g.neighbors_u(4), &[5, 6, 7, 8, 9]);
    }

    #[test]
    fn planted_noise_adds_edges() {
        let clean = planted_bicliques(40, 40, 2, 3, 3, 0, 5);
        let noisy = planted_bicliques(40, 40, 2, 3, 3, 200, 5);
        assert!(noisy.num_edges() > clean.num_edges());
    }

    #[test]
    #[should_panic(expected = "blocks must fit")]
    fn planted_rejects_oversized_blocks() {
        planted_bicliques(5, 5, 2, 4, 4, 0, 1);
    }

    #[test]
    fn affiliation_generates_butterfly_rich_graph() {
        let g = affiliation(60, 40, 8, 2, 0.8, 21);
        assert!(g.num_edges() > 60, "every u joins communities");
        // Co-membership should create wedges on the U side.
        let wedges = crate::stats::total_primary_wedges(g.view(Side::U));
        assert!(wedges > 0);
    }

    #[test]
    fn preferential_attachment_is_scale_free_ish() {
        let g = preferential_attachment(500, 200, 4, 17);
        assert_eq!(g.num_u(), 500);
        // Dedup may merge repeated picks.
        assert!(g.num_edges() <= 2000);
        assert!(g.num_edges() > 1500);
        // Rich-get-richer: the max secondary degree far exceeds the mean.
        let mean = g.num_edges() as f64 / 200.0;
        let dmax = crate::stats::max_primary_degree(g.view(Side::V));
        assert!(
            dmax as f64 > 3.0 * mean,
            "dmax {dmax} should dwarf mean {mean:.1}"
        );
    }

    #[test]
    fn preferential_attachment_deterministic() {
        assert_eq!(
            preferential_attachment(50, 20, 3, 5),
            preferential_attachment(50, 20, 3, 5)
        );
    }

    #[test]
    fn zipf_index_in_range_and_skewed() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..5000 {
            counts[zipf_index(10, 1.2, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[9], "head heavier than tail");
        assert_eq!(counts.iter().sum::<usize>(), 5000);
        // alpha = 0 → uniform-ish.
        let mut c0 = [0usize; 4];
        for _ in 0..4000 {
            c0[zipf_index(4, 0.0, &mut rng)] += 1;
        }
        assert!(c0.iter().all(|&c| c > 500));
    }
}

//! Shape-matched synthetic analogs of the paper's six KONECT datasets.
//!
//! The evaluation (§5.1, Table 2) uses Italian Wikipedia (It), Delicious
//! (De), Orkut (Or), LiveJournal (Lj), English Wikipedia (En) and Trackers
//! (Tr) — up to 327M edges. Those downloads are unavailable offline and far
//! exceed a single-core budget, so each analog is a seeded Zipf
//! configuration-model graph (`crate::gen::zipf`) whose *shape* matches the
//! original: relative side sizes, average-degree ratio `d_U / d_V`, and
//! degree skew. The skew knobs are chosen so the paper's qualitative
//! regimes carry over — in particular `r = ∧_peel / ∧_cnt` is large for the
//! U-sides (HUC-friendly: ItU, LjU, EnU, TrU in the paper) and small for
//! the V-sides, and the Tr analog has the extreme secondary-hub skew that
//! made TrU intractable for bottom-up peeling.

use crate::csr::BipartiteCsr;
use crate::gen;
use serde::Serialize;

/// One synthetic dataset preset.
///
/// `Serialize` only: the `&'static str` fields cannot be deserialized into
/// without borrowed-deserialization support, which the serde shim omits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AnalogSpec {
    /// Two-letter name matching the paper ("It", ..., "Tr").
    pub name: &'static str,
    /// What the original dataset contained.
    pub paper_description: &'static str,
    pub nu: usize,
    pub nv: usize,
    /// Target edge count before multi-edge dedup.
    pub m: usize,
    /// Zipf skew of the U-side degree sequence.
    pub alpha_u: f64,
    /// Zipf skew of the V-side degree sequence.
    pub alpha_v: f64,
    pub seed: u64,
}

impl AnalogSpec {
    pub fn generate(&self) -> BipartiteCsr {
        gen::zipf(
            self.nu,
            self.nv,
            self.m,
            self.alpha_u,
            self.alpha_v,
            self.seed,
        )
    }
}

/// `It`: pages × editors from Italian Wikipedia. Small, very skewed editor
/// (V) side; `∧_U ≫ ∧_V`.
pub const IT: AnalogSpec = AnalogSpec {
    name: "It",
    paper_description: "Pages and editors from Italian Wikipedia",
    nu: 22_000,
    nv: 1_400,
    m: 110_000,
    alpha_u: 0.40,
    alpha_v: 0.90,
    seed: 0x17a1,
};

/// `De`: users × tags from delicious.com. Mid-sized, both sides heavy.
pub const DE: AnalogSpec = AnalogSpec {
    name: "De",
    paper_description: "Users and tags from www.delicious.com",
    nu: 45_000,
    nv: 8_300,
    m: 190_000,
    alpha_u: 0.55,
    alpha_v: 0.85,
    seed: 0xde11,
};

/// `Or`: user–group memberships in Orkut. Both sides heavy; group hubs
/// give `∧_U ≈ 20 × ∧_V` as in the paper.
pub const OR: AnalogSpec = AnalogSpec {
    name: "Or",
    paper_description: "Users' group memberships in Orkut",
    nu: 28_000,
    nv: 40_000,
    m: 290_000,
    alpha_u: 0.50,
    alpha_v: 0.95,
    seed: 0x0b,
};

/// `Lj`: user–group memberships in LiveJournal.
pub const LJ: AnalogSpec = AnalogSpec {
    name: "Lj",
    paper_description: "Users' group memberships in Livejournal",
    nu: 32_000,
    nv: 35_000,
    m: 200_000,
    alpha_u: 0.50,
    alpha_v: 0.95,
    seed: 0x17,
};

/// `En`: pages × editors from English Wikipedia. Huge sparse U side, skewed
/// editors.
pub const EN: AnalogSpec = AnalogSpec {
    name: "En",
    paper_description: "Pages and editors from English Wikipedia",
    nu: 95_000,
    nv: 17_000,
    m: 190_000,
    alpha_u: 0.35,
    alpha_v: 0.95,
    seed: 0xe4,
};

/// `Tr`: internet domains × trackers. The paper's hardest dataset: extreme
/// tracker-side hubs make `∧_U` five orders of magnitude larger than
/// `∧_cnt` (BUP needs 211T wedges there). The analog reproduces the hub
/// skew at laptop scale.
pub const TR: AnalogSpec = AnalogSpec {
    name: "Tr",
    paper_description: "Internet domains and trackers in them",
    nu: 80_000,
    nv: 37_000,
    m: 210_000,
    alpha_u: 0.55,
    alpha_v: 1.25,
    seed: 0x7a,
};

/// All six analogs, in the paper's Table 2 order.
pub fn all() -> [AnalogSpec; 6] {
    [IT, DE, OR, LJ, EN, TR]
}

/// Look up a preset by its two-letter name (case-insensitive).
pub fn by_name(name: &str) -> Option<AnalogSpec> {
    all()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Side;
    use crate::stats;

    #[test]
    fn presets_are_distinct_and_named() {
        let names: Vec<_> = all().iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["It", "De", "Or", "Lj", "En", "Tr"]);
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(by_name("tr").unwrap().name, "Tr");
        assert_eq!(by_name("It").unwrap().name, "It");
        assert!(by_name("zz").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = IT.generate();
        let b = IT.generate();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a, b);
    }

    #[test]
    fn it_analog_has_paper_shape() {
        // ∧_U ≫ ∧_V : editor hubs create U-side wedges.
        let g = IT.generate();
        let wu = stats::total_primary_wedges(g.view(Side::U));
        let wv = stats::total_primary_wedges(g.view(Side::V));
        assert!(
            wu > 10 * wv,
            "ItU should dominate ItV in wedges: {wu} vs {wv}"
        );
    }

    #[test]
    fn tr_analog_is_the_heaviest_u_side() {
        let tr = TR.generate();
        let it = IT.generate();
        let tr_wu = stats::total_primary_wedges(tr.view(Side::U));
        let it_wu = stats::total_primary_wedges(it.view(Side::U));
        assert!(
            tr_wu > it_wu,
            "Tr analog must carry the largest U-side wedge load: {tr_wu} vs {it_wu}"
        );
    }

    #[test]
    fn sizes_are_as_specified() {
        for spec in all() {
            let g = spec.generate();
            assert_eq!(g.num_u(), spec.nu, "{}", spec.name);
            assert_eq!(g.num_v(), spec.nv, "{}", spec.name);
            assert!(g.num_edges() <= spec.m);
            assert!(
                g.num_edges() as f64 >= 0.5 * spec.m as f64,
                "{}: dedup removed too much ({} of {})",
                spec.name,
                g.num_edges(),
                spec.m
            );
        }
    }
}

//! Unipartite projection — the approach the paper argues *against*.
//!
//! §1: off-the-shelf unipartite decompositions can be run on the
//! projection of a bipartite graph (connect two primary vertices when they
//! share a neighbour), but "this approach results in a loss of information
//! and a blowup in the size of the projection graphs". This module makes
//! that motivating claim measurable: projections of skewed bipartite
//! graphs are dramatically larger than the original edge set, because a
//! secondary hub of degree `d` alone induces `C(d, 2)` projected edges.

use crate::csr::SideGraph;
use crate::VertexId;

/// A weighted projection edge: `(u, u2, common)` with `u < u2` and
/// `common = |N(u) ∩ N(u2)| ≥ 1` shared neighbours.
pub type ProjectedEdge = (VertexId, VertexId, u32);

/// Materializes the projection onto the primary side. `O(Σ_u Σ_{v∈N_u} d_v)`
/// time and up to `O(Σ_v d_v²)` output — use [`projected_edge_count`] if
/// only the size is needed.
pub fn project(view: SideGraph<'_>) -> Vec<ProjectedEdge> {
    let np = view.num_primary();
    let mut common = vec![0u32; np];
    let mut touched: Vec<VertexId> = Vec::new();
    let mut out = Vec::new();
    for u in 0..np as VertexId {
        for &v in view.neighbors_primary(u) {
            for &u2 in view.neighbors_secondary(v) {
                if u2 > u {
                    if common[u2 as usize] == 0 {
                        touched.push(u2);
                    }
                    common[u2 as usize] += 1;
                }
            }
        }
        touched.sort_unstable();
        for &u2 in &touched {
            out.push((u, u2, common[u2 as usize]));
            common[u2 as usize] = 0;
        }
        touched.clear();
    }
    out
}

/// Number of edges the primary-side projection would have, without
/// materializing it.
pub fn projected_edge_count(view: SideGraph<'_>) -> u64 {
    let np = view.num_primary();
    let mut common = vec![false; np];
    let mut touched: Vec<VertexId> = Vec::new();
    let mut count = 0u64;
    for u in 0..np as VertexId {
        for &v in view.neighbors_primary(u) {
            for &u2 in view.neighbors_secondary(v) {
                if u2 > u && !common[u2 as usize] {
                    common[u2 as usize] = true;
                    touched.push(u2);
                }
            }
        }
        count += touched.len() as u64;
        for &u2 in &touched {
            common[u2 as usize] = false;
        }
        touched.clear();
    }
    count
}

/// The §1 "blowup" ratio: projected edges / original edges.
pub fn projection_blowup(view: SideGraph<'_>) -> f64 {
    if view.num_edges() == 0 {
        return 0.0;
    }
    projected_edge_count(view) as f64 / view.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::csr::Side;

    #[test]
    fn k23_projection() {
        let g = from_edges(2, 3, &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]).unwrap();
        let proj = project(g.view(Side::U));
        assert_eq!(proj, vec![(0, 1, 3)]);
        assert_eq!(projected_edge_count(g.view(Side::U)), 1);
        // V side: all three v's pairwise share both u's.
        let pv = project(g.view(Side::V));
        assert_eq!(pv, vec![(0, 1, 2), (0, 2, 2), (1, 2, 2)]);
    }

    #[test]
    fn star_blowup() {
        // One secondary hub of degree 4 -> C(4,2) = 6 projected edges from
        // 4 original ones: blowup 1.5x on a tiny star, quadratic on hubs.
        let g = from_edges(4, 1, &[(0, 0), (1, 0), (2, 0), (3, 0)]).unwrap();
        assert_eq!(projected_edge_count(g.view(Side::U)), 6);
        assert!((projection_blowup(g.view(Side::U)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn count_matches_materialization() {
        let g = crate::gen::zipf(60, 30, 350, 0.5, 0.9, 3);
        for side in [Side::U, Side::V] {
            let v = g.view(side);
            assert_eq!(project(v).len() as u64, projected_edge_count(v));
        }
    }

    #[test]
    fn projection_loses_butterfly_information() {
        // The paper's information-loss point: two graphs with different
        // butterfly structure can share a projection. A path u0-v0-u1 and
        // a doubled edge pair u0-{v0,v1}-u1 both project to {u0-u1}, but
        // only the latter contains a butterfly.
        let path = from_edges(2, 2, &[(0, 0), (1, 0)]).unwrap();
        let butterfly_g = from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let pa = project(path.view(Side::U));
        let pb = project(butterfly_g.view(Side::U));
        let unweighted = |p: &[ProjectedEdge]| -> Vec<(u32, u32)> {
            p.iter().map(|&(a, b, _)| (a, b)).collect()
        };
        assert_eq!(
            unweighted(&pa),
            unweighted(&pb),
            "same unweighted projection"
        );
        // Butterflies are recoverable only from the *weights*:
        // ⋈ = Σ C(common, 2) over projected pairs.
        let butterflies = |p: &[ProjectedEdge]| -> u64 {
            p.iter()
                .map(|&(_, _, c)| (c as u64) * (c as u64 - 1) / 2)
                .sum()
        };
        assert_eq!(butterflies(&pa), 0);
        assert_eq!(butterflies(&pb), 1);
    }

    #[test]
    fn empty_graph_projection() {
        let g = crate::csr::BipartiteCsr::empty(3, 3);
        assert!(project(g.view(Side::U)).is_empty());
        assert_eq!(projection_blowup(g.view(Side::U)), 0.0);
    }
}

//! RECEIPT configuration knobs.

use serde::{Deserialize, Serialize};

/// Tuning parameters for [`crate::tip_decompose`].
///
/// Defaults follow the paper's evaluation setup (§5.1): `P = 150`
/// partitions, all workload optimizations on, 4-way min-heap for
/// fine-grained peeling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Number of vertex subsets `P` created by coarse-grained
    /// decomposition. The paper sweeps 50–500 and settles on 150
    /// (Figure 5). Clamped to ≥ 1.
    pub partitions: usize,
    /// Worker threads. `0` uses the ambient rayon pool as-is; any other
    /// value runs the decomposition inside a dedicated pool of that size
    /// (and spawns that many FD workers).
    pub threads: usize,
    /// Hybrid Update Computation (§4.1): re-count butterflies instead of
    /// peeling whenever peeling the active set would traverse more wedges
    /// than a full re-count.
    pub huc: bool,
    /// Dynamic Graph Maintenance (§4.2): periodically compact adjacency
    /// lists to drop edges of peeled vertices.
    pub dgm: bool,
    /// DGM compaction threshold as a multiple of the current edge count:
    /// compact only after `dgm_threshold · m` wedges have been traversed
    /// since the previous compaction (the paper uses 1·m so DGM cannot
    /// change the asymptotic complexity).
    pub dgm_threshold: f64,
    /// Arity of the indexed min-heap used by fine-grained peeling and BUP
    /// ("k-way min heap", §5.1 implementation details).
    pub heap_arity: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            partitions: 150,
            threads: 0,
            huc: true,
            dgm: true,
            dgm_threshold: 1.0,
            heap_arity: 4,
        }
    }
}

impl Config {
    /// The paper's ablation variant `RECEIPT-` (no DGM).
    pub fn without_dgm(mut self) -> Self {
        self.dgm = false;
        self
    }

    /// The paper's ablation variant `RECEIPT--` (no DGM, no HUC).
    pub fn baseline_variant(mut self) -> Self {
        self.dgm = false;
        self.huc = false;
        self
    }

    pub fn with_partitions(mut self, p: usize) -> Self {
        self.partitions = p;
        self
    }

    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Effective partition count (≥ 1).
    pub fn effective_partitions(&self) -> usize {
        self.partitions.max(1)
    }

    /// Effective FD worker count: `threads` if set, else the ambient pool
    /// size.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            rayon::current_num_threads()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = Config::default();
        assert_eq!(c.partitions, 150);
        assert!(c.huc && c.dgm);
        assert_eq!(c.heap_arity, 4);
        assert_eq!(c.dgm_threshold, 1.0);
    }

    #[test]
    fn ablation_builders() {
        let minus = Config::default().without_dgm();
        assert!(!minus.dgm && minus.huc);
        let mm = Config::default().baseline_variant();
        assert!(!mm.dgm && !mm.huc);
    }

    #[test]
    fn effective_partitions_clamps() {
        assert_eq!(
            Config::default().with_partitions(0).effective_partitions(),
            1
        );
        assert_eq!(
            Config::default().with_partitions(7).effective_partitions(),
            7
        );
    }

    #[test]
    fn effective_threads_prefers_explicit() {
        assert_eq!(Config::default().with_threads(3).effective_threads(), 3);
        assert!(Config::default().effective_threads() >= 1);
    }

    #[test]
    fn builder_chain() {
        let c = Config::default()
            .with_partitions(42)
            .with_threads(2)
            .without_dgm();
        assert_eq!(c.partitions, 42);
        assert_eq!(c.threads, 2);
        assert!(!c.dgm);
    }
}

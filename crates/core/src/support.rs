//! Atomic butterfly-support vector.
//!
//! Peeling decrements supports of 2-hop neighbours concurrently; Lemma 2 of
//! the paper shows correctness as long as decrements are atomic and clamped
//! at the current range floor `θ(i)`.

use parutil::saturating_sub_floor;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Dense `u64` support values with atomic floor-clamped decrement.
#[derive(Debug)]
pub struct SupportVec {
    cells: Vec<AtomicU64>,
}

impl SupportVec {
    pub fn from_counts(counts: &[u64]) -> Self {
        SupportVec {
            cells: counts.iter().map(|&c| AtomicU64::new(c)).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    #[inline]
    pub fn get(&self, id: u32) -> u64 {
        self.cells[id as usize].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn set(&self, id: u32, value: u64) {
        self.cells[id as usize].store(value, Ordering::Relaxed);
    }

    /// Atomic `support[id] = max(floor, support[id] - delta)`; returns the
    /// pre-update value.
    #[inline]
    pub fn decrement(&self, id: u32, delta: u64, floor: u64) -> u64 {
        saturating_sub_floor(&self.cells[id as usize], delta, floor)
    }

    /// Copies current values out.
    pub fn snapshot(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Parallel iteration over `(id, value)` pairs.
    pub fn par_for_each(&self, f: impl Fn(u32, u64) + Sync) {
        self.cells.par_iter().enumerate().for_each(|(i, c)| {
            f(i as u32, c.load(Ordering::Relaxed));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let s = SupportVec::from_counts(&[10, 5, 0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0), 10);
        s.set(2, 7);
        assert_eq!(s.get(2), 7);
        assert_eq!(s.snapshot(), vec![10, 5, 7]);
    }

    #[test]
    fn decrement_with_floor() {
        let s = SupportVec::from_counts(&[10]);
        let prev = s.decrement(0, 3, 0);
        assert_eq!(prev, 10);
        assert_eq!(s.get(0), 7);
        s.decrement(0, 100, 4);
        assert_eq!(s.get(0), 4);
    }

    #[test]
    fn par_for_each_visits_all() {
        let s = SupportVec::from_counts(&[1, 2, 3, 4]);
        let sum = std::sync::atomic::AtomicU64::new(0);
        s.par_for_each(|_, v| {
            sum.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn empty_vec() {
        let s = SupportVec::from_counts(&[]);
        assert!(s.is_empty());
        assert!(s.snapshot().is_empty());
    }
}

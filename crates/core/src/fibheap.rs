//! Fibonacci heap with `decrease_key`, over dense ids.
//!
//! Theorem 3 of the paper invokes a Fibonacci heap for the `O(log n)`
//! extract-min / `O(1)` decrease-key bound of fine-grained peeling, but the
//! implementation notes (§5.1) report that a k-way indexed heap is faster
//! in practice than both Fibonacci heaps and the bucketing structure of
//! Sariyüce et al. This module provides the Fibonacci heap so that claim
//! is reproducible (see the `kernels` bench and
//! [`crate::bup::peel_all_with_queue`]).
//!
//! Classic CLRS structure: a circular root list of heap-ordered
//! multiway trees, lazy consolidation on extract-min, cascading cuts on
//! decrease-key. Node ids are dense (`0..n`), so parent/child/sibling
//! links live in flat arrays.

use crate::queue::DecreaseKeyQueue;

const NIL: u32 = u32::MAX;

/// A Fibonacci heap keyed by `u64`, containing ids `0..n` at construction.
#[derive(Debug, Clone)]
pub struct FibonacciHeap {
    key: Vec<u64>,
    parent: Vec<u32>,
    child: Vec<u32>,
    /// Circular doubly linked sibling list.
    left: Vec<u32>,
    right: Vec<u32>,
    degree: Vec<u32>,
    marked: Vec<bool>,
    /// In-heap flag (false after extraction).
    present: Vec<bool>,
    min: u32,
    len: usize,
}

impl FibonacciHeap {
    /// Builds a heap containing every id `0..keys.len()` (all roots; the
    /// first extract-min pays for consolidation, as usual).
    pub fn new(keys: &[u64]) -> Self {
        let n = keys.len();
        let mut h = FibonacciHeap {
            key: keys.to_vec(),
            parent: vec![NIL; n],
            child: vec![NIL; n],
            left: vec![NIL; n],
            right: vec![NIL; n],
            degree: vec![0; n],
            marked: vec![false; n],
            present: vec![true; n],
            min: NIL,
            len: n,
        };
        for id in 0..n as u32 {
            h.left[id as usize] = id;
            h.right[id as usize] = id;
            h.add_to_root_list(id);
        }
        h
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn contains(&self, id: u32) -> bool {
        self.present[id as usize]
    }

    pub fn key_of(&self, id: u32) -> Option<u64> {
        self.present[id as usize].then(|| self.key[id as usize])
    }

    /// Splices `id` (a detached singleton) into the root list and updates
    /// the min pointer.
    fn add_to_root_list(&mut self, id: u32) {
        self.parent[id as usize] = NIL;
        if self.min == NIL {
            self.left[id as usize] = id;
            self.right[id as usize] = id;
            self.min = id;
            return;
        }
        // Insert to the right of min.
        let m = self.min as usize;
        let r = self.right[m];
        self.right[m] = id;
        self.left[id as usize] = self.min;
        self.right[id as usize] = r;
        self.left[r as usize] = id;
        if self.beats(id, self.min) {
            self.min = id;
        }
    }

    /// Key comparison with deterministic id tie-break.
    #[inline]
    fn beats(&self, a: u32, b: u32) -> bool {
        (self.key[a as usize], a) < (self.key[b as usize], b)
    }

    /// Unlinks `id` from its sibling list.
    fn remove_from_list(&mut self, id: u32) {
        let (l, r) = (self.left[id as usize], self.right[id as usize]);
        self.right[l as usize] = r;
        self.left[r as usize] = l;
        self.left[id as usize] = id;
        self.right[id as usize] = id;
    }

    /// Makes `child_id` a child of `parent_id`.
    fn link(&mut self, child_id: u32, parent_id: u32) {
        self.remove_from_list(child_id);
        self.parent[child_id as usize] = parent_id;
        self.marked[child_id as usize] = false;
        let c = self.child[parent_id as usize];
        if c == NIL {
            self.child[parent_id as usize] = child_id;
        } else {
            // Splice into the child list.
            let r = self.right[c as usize];
            self.right[c as usize] = child_id;
            self.left[child_id as usize] = c;
            self.right[child_id as usize] = r;
            self.left[r as usize] = child_id;
        }
        self.degree[parent_id as usize] += 1;
    }

    /// Removes and returns the minimum `(id, key)`.
    pub fn pop_min(&mut self) -> Option<(u32, u64)> {
        if self.min == NIL {
            return None;
        }
        let z = self.min;
        // Promote z's children to roots.
        let mut c = self.child[z as usize];
        if c != NIL {
            // Collect children first (their sibling list mutates as we
            // re-root them).
            let mut children = Vec::with_capacity(self.degree[z as usize] as usize);
            let start = c;
            loop {
                children.push(c);
                c = self.right[c as usize];
                if c == start {
                    break;
                }
            }
            for ch in children {
                self.remove_from_list(ch);
                self.parent[ch as usize] = NIL;
                self.marked[ch as usize] = false;
                self.splice_root(ch);
            }
            self.child[z as usize] = NIL;
            self.degree[z as usize] = 0;
        }
        // Remove z from the root list.
        let successor = self.right[z as usize];
        self.remove_from_list(z);
        self.present[z as usize] = false;
        self.len -= 1;
        if self.len == 0 {
            self.min = NIL;
        } else {
            self.min = successor;
            self.consolidate();
        }
        Some((z, self.key[z as usize]))
    }

    /// Adds a detached node to the root list without min update (used
    /// during pop, before consolidation fixes min).
    fn splice_root(&mut self, id: u32) {
        let m = self.min as usize;
        let r = self.right[m];
        self.right[m] = id;
        self.left[id as usize] = self.min;
        self.right[id as usize] = r;
        self.left[r as usize] = id;
    }

    fn consolidate(&mut self) {
        // Collect current roots.
        let mut roots = Vec::new();
        let start = self.min;
        let mut cur = start;
        loop {
            roots.push(cur);
            cur = self.right[cur as usize];
            if cur == start {
                break;
            }
        }
        let max_degree = (usize::BITS - self.len.leading_zeros()) as usize + 2;
        let mut by_degree: Vec<u32> = vec![NIL; max_degree + 1];
        for mut x in roots {
            // x may have been linked under another root already.
            if self.parent[x as usize] != NIL {
                continue;
            }
            let mut d = self.degree[x as usize] as usize;
            while by_degree[d] != NIL {
                let mut y = by_degree[d];
                if y == x {
                    break;
                }
                if self.beats(y, x) {
                    std::mem::swap(&mut x, &mut y);
                }
                self.link(y, x);
                by_degree[d] = NIL;
                d = self.degree[x as usize] as usize;
            }
            by_degree[d] = x;
        }
        // Recompute min over roots.
        self.min = NIL;
        for &r in by_degree.iter() {
            if r != NIL
                && self.parent[r as usize] == NIL
                && (self.min == NIL || self.beats(r, self.min))
            {
                self.min = r;
            }
        }
    }

    /// Lowers the key of `id`. No-op if absent or not lower.
    pub fn decrease_key(&mut self, id: u32, new_key: u64) {
        if !self.present[id as usize] || new_key >= self.key[id as usize] {
            return;
        }
        self.key[id as usize] = new_key;
        let p = self.parent[id as usize];
        if p != NIL && self.beats(id, p) {
            self.cut(id, p);
            self.cascading_cut(p);
        }
        if self.beats(id, self.min) {
            self.min = id;
        }
    }

    fn cut(&mut self, x: u32, parent: u32) {
        // Remove x from parent's child list.
        if self.child[parent as usize] == x {
            let r = self.right[x as usize];
            self.child[parent as usize] = if r == x { NIL } else { r };
        }
        self.remove_from_list(x);
        self.degree[parent as usize] -= 1;
        self.marked[x as usize] = false;
        self.splice_root(x);
        self.parent[x as usize] = NIL;
        if self.beats(x, self.min) {
            self.min = x;
        }
    }

    fn cascading_cut(&mut self, mut y: u32) {
        loop {
            let p = self.parent[y as usize];
            if p == NIL {
                return;
            }
            if !self.marked[y as usize] {
                self.marked[y as usize] = true;
                return;
            }
            self.cut(y, p);
            y = p;
        }
    }
}

impl DecreaseKeyQueue for FibonacciHeap {
    fn pop_min(&mut self) -> Option<(u32, u64)> {
        FibonacciHeap::pop_min(self)
    }
    fn decrease_key(&mut self, id: u32, new_key: u64) {
        FibonacciHeap::decrease_key(self, id, new_key)
    }
    fn key(&self, id: u32) -> Option<u64> {
        self.key_of(id)
    }
    fn is_empty(&self) -> bool {
        FibonacciHeap::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_sorted() {
        let keys = vec![5, 3, 8, 1, 9, 2, 2];
        let mut h = FibonacciHeap::new(&keys);
        let mut out = Vec::new();
        while let Some((_, k)) = h.pop_min() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 2, 2, 3, 5, 8, 9]);
    }

    #[test]
    fn tie_break_by_id() {
        let mut h = FibonacciHeap::new(&[7, 7, 7]);
        assert_eq!(h.pop_min(), Some((0, 7)));
        assert_eq!(h.pop_min(), Some((1, 7)));
        assert_eq!(h.pop_min(), Some((2, 7)));
        assert_eq!(h.pop_min(), None);
    }

    #[test]
    fn decrease_key_moves_to_front() {
        let mut h = FibonacciHeap::new(&[10, 20, 30, 40]);
        // Force structure: pop and reinsert-free path via decrease.
        assert_eq!(h.pop_min(), Some((0, 10)));
        h.decrease_key(3, 5);
        assert_eq!(h.key_of(3), Some(5));
        assert_eq!(h.pop_min(), Some((3, 5)));
        // Non-lowering / absent decreases are no-ops.
        h.decrease_key(1, 100);
        assert_eq!(h.key_of(1), Some(20));
        h.decrease_key(3, 0);
        assert!(!h.contains(3));
        assert_eq!(h.pop_min(), Some((1, 20)));
        assert_eq!(h.pop_min(), Some((2, 30)));
    }

    #[test]
    fn cascading_cuts_exercise() {
        // Build a deep-ish structure by popping (forces consolidation),
        // then repeatedly decrease keys inside the trees.
        let n = 64;
        let keys: Vec<u64> = (0..n as u64).map(|i| 1000 + i).collect();
        let mut h = FibonacciHeap::new(&keys);
        assert_eq!(h.pop_min().unwrap().1, 1000);
        // Decrease a scattering of nodes below everything.
        for (step, id) in (1..n as u32).step_by(7).enumerate() {
            h.decrease_key(id, step as u64);
        }
        let mut prev = 0;
        let mut count = 0;
        while let Some((_, k)) = h.pop_min() {
            assert!(k >= prev, "heap order violated: {k} after {prev}");
            prev = k;
            count += 1;
        }
        assert_eq!(count, n - 1);
    }

    #[test]
    fn empty_heap() {
        let mut h = FibonacciHeap::new(&[]);
        assert!(h.is_empty());
        assert_eq!(h.pop_min(), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn matches_indexed_heap(
            keys in proptest::collection::vec(0u64..500, 1..120),
            ops in proptest::collection::vec((0usize..120, 0u64..500, any::<bool>()), 0..200),
        ) {
            let mut fib = FibonacciHeap::new(&keys);
            let mut idx = crate::heap::IndexedMinHeap::new(4, &keys);
            for (id, nk, pop) in ops {
                if pop {
                    prop_assert_eq!(fib.pop_min(), idx.pop_min());
                } else if id < keys.len() {
                    fib.decrease_key(id as u32, nk);
                    idx.decrease_key(id as u32, nk);
                    prop_assert_eq!(fib.key_of(id as u32), idx.key(id as u32));
                }
            }
            loop {
                let (a, b) = (fib.pop_min(), idx.pop_min());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}

//! Indexed d-ary min-heap with `decrease_key`.
//!
//! Bottom-up peeling repeatedly extracts the minimum-support vertex and
//! decreases the supports of its 2-hop neighbours. The paper found a k-way
//! min-heap faster in practice than both the bucketing structure of
//! Sariyüce et al. and Fibonacci heaps (§5.1), so this is the structure
//! used by sequential BUP and by each fine-grained-decomposition worker.

/// Min-heap over dense ids `0..n` with `u64` keys and a position index for
/// O(log_d n) `decrease_key`. Ties are broken by id (deterministic peel
/// order).
#[derive(Debug, Clone)]
pub struct IndexedMinHeap {
    arity: usize,
    /// Heap slots: (key, id).
    slots: Vec<(u64, u32)>,
    /// `pos[id]` = slot index, or `ABSENT`.
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl IndexedMinHeap {
    /// Builds a heap containing every id `0..keys.len()` via O(n) heapify.
    pub fn new(arity: usize, keys: &[u64]) -> Self {
        let arity = arity.max(2);
        let slots: Vec<(u64, u32)> = keys.iter().copied().zip(0..keys.len() as u32).collect();
        let mut h = IndexedMinHeap {
            arity,
            pos: (0..keys.len() as u32).collect(),
            slots,
        };
        if !h.slots.is_empty() {
            for i in (0..h.slots.len() / arity + 1).rev() {
                h.sift_down(i);
            }
        }
        h
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Is `id` still in the heap (i.e. not yet peeled)?
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.pos[id as usize] != ABSENT
    }

    /// Current key of a contained id.
    pub fn key(&self, id: u32) -> Option<u64> {
        let p = self.pos[id as usize];
        (p != ABSENT).then(|| self.slots[p as usize].0)
    }

    /// Removes and returns the minimum `(id, key)`.
    pub fn pop_min(&mut self) -> Option<(u32, u64)> {
        if self.slots.is_empty() {
            return None;
        }
        let (key, id) = self.slots[0];
        self.remove_at(0);
        Some((id, key))
    }

    /// Lowers the key of `id` to `new_key`. No-op if `id` was removed or
    /// `new_key` is not lower than the current key.
    pub fn decrease_key(&mut self, id: u32, new_key: u64) {
        let p = self.pos[id as usize];
        if p == ABSENT {
            return;
        }
        let p = p as usize;
        if new_key >= self.slots[p].0 {
            return;
        }
        self.slots[p].0 = new_key;
        self.sift_up(p);
    }

    fn remove_at(&mut self, slot: usize) {
        let (_, id) = self.slots[slot];
        self.pos[id as usize] = ABSENT;
        let last = self.slots.len() - 1;
        if slot != last {
            self.slots.swap(slot, last);
            self.slots.pop();
            let moved = self.slots[slot].1;
            self.pos[moved as usize] = slot as u32;
            // The displaced element may need to move either way.
            self.sift_down(slot);
            self.sift_up(self.pos[moved as usize] as usize);
        } else {
            self.slots.pop();
        }
    }

    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        self.slots[a] < self.slots[b] // (key, id) lexicographic: id tie-break
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / self.arity;
            if self.less(i, parent) {
                self.swap_slots(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first_child = i * self.arity + 1;
            if first_child >= self.slots.len() {
                break;
            }
            let last_child = (first_child + self.arity).min(self.slots.len());
            let mut best = first_child;
            for c in first_child + 1..last_child {
                if self.less(c, best) {
                    best = c;
                }
            }
            if self.less(best, i) {
                self.swap_slots(i, best);
                i = best;
            } else {
                break;
            }
        }
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.slots.swap(a, b);
        self.pos[self.slots[a].1 as usize] = a as u32;
        self.pos[self.slots[b].1 as usize] = b as u32;
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        for (slot, &(_, id)) in self.slots.iter().enumerate() {
            assert_eq!(self.pos[id as usize] as usize, slot);
        }
        for i in 1..self.slots.len() {
            let parent = (i - 1) / self.arity;
            assert!(
                !self.less(i, parent),
                "heap violated at {i} (parent {parent})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_sorted_order() {
        for arity in [2, 3, 4, 8] {
            let keys = vec![5, 3, 8, 1, 9, 2, 2];
            let mut h = IndexedMinHeap::new(arity, &keys);
            h.check_invariants();
            let mut popped = Vec::new();
            while let Some((_, k)) = h.pop_min() {
                popped.push(k);
            }
            assert_eq!(popped, vec![1, 2, 2, 3, 5, 8, 9], "arity {arity}");
        }
    }

    #[test]
    fn tie_break_is_by_id() {
        let mut h = IndexedMinHeap::new(4, &[7, 7, 7]);
        assert_eq!(h.pop_min(), Some((0, 7)));
        assert_eq!(h.pop_min(), Some((1, 7)));
        assert_eq!(h.pop_min(), Some((2, 7)));
        assert_eq!(h.pop_min(), None);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedMinHeap::new(4, &[10, 20, 30]);
        h.decrease_key(2, 5);
        h.check_invariants();
        assert_eq!(h.pop_min(), Some((2, 5)));
        assert_eq!(h.key(1), Some(20));
        // Increase attempts are ignored.
        h.decrease_key(1, 100);
        assert_eq!(h.key(1), Some(20));
        // Decreasing a removed id is a no-op.
        h.decrease_key(2, 1);
        assert!(!h.contains(2));
    }

    #[test]
    fn contains_tracks_membership() {
        let mut h = IndexedMinHeap::new(2, &[4, 2]);
        assert!(h.contains(0) && h.contains(1));
        h.pop_min();
        assert!(h.contains(0) && !h.contains(1));
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
        h.pop_min();
        assert!(h.is_empty());
    }

    #[test]
    fn empty_heap() {
        let mut h = IndexedMinHeap::new(4, &[]);
        assert!(h.is_empty());
        assert_eq!(h.pop_min(), None);
    }

    proptest! {
        #[test]
        fn heapsort_matches_std_sort(
            keys in proptest::collection::vec(0u64..1000, 0..200),
            arity in 2usize..8,
            decreases in proptest::collection::vec((0usize..200, 0u64..1000), 0..50),
        ) {
            let mut h = IndexedMinHeap::new(arity, &keys);
            let mut reference = keys.clone();
            for (idx, nk) in decreases {
                if idx < keys.len() {
                    if nk < reference[idx] {
                        reference[idx] = nk;
                    }
                    h.decrease_key(idx as u32, nk);
                }
            }
            h.check_invariants();
            let mut popped = Vec::new();
            while let Some((_, k)) = h.pop_min() {
                popped.push(k);
            }
            reference.sort_unstable();
            prop_assert_eq!(popped, reference);
        }
    }
}

//! RECEIPT CD — Coarse-grained Decomposition (Algorithm 3).
//!
//! Partitions the peeled side into `P` subsets `U_1 … U_P` whose tip
//! numbers fall in consecutive non-overlapping ranges
//! `[θ(i), θ(i+1))`. Unlike bottom-up peeling, every iteration peels *all*
//! vertices whose support lies anywhere in the current range — thousands of
//! vertices per parallel iteration instead of one support value — which is
//! what collapses the synchronization count ρ from millions to ~1000
//! (Table 3).
//!
//! Also implements the two workload optimizations of §4:
//! * **HUC** — when peeling the active set would traverse more wedges than
//!   re-counting from scratch, re-count;
//! * **DGM** — periodically compact the live graph so traversal stops
//!   scanning peeled vertices.

use crate::config::Config;
use crate::metrics::Metrics;
use crate::peel::{peel_vertex, PeelGraph, PeelScratch, WedgeCounter};
use crate::support::SupportVec;
use bigraph::{BipartiteCsr, RankedGraph, Side, VertexId};
use parutil::ScratchPool;
use rayon::prelude::*;
use std::time::Instant;

/// Output of coarse-grained decomposition, consumed by
/// [`crate::fd::fine_decompose`].
#[derive(Debug, Clone)]
pub struct CoarseResult {
    pub side: Side,
    /// Range boundaries: subset `i` owns tip numbers in
    /// `[bounds[i], bounds[i+1])`. `bounds[0] = 0`; the last bound is an
    /// exclusive upper bound (`u64::MAX` when CD overflowed into the extra
    /// `P+1`-th subset, §3.1.1).
    pub bounds: Vec<u64>,
    /// The vertex subsets `U_i`, in peel order.
    pub subsets: Vec<Vec<VertexId>>,
    /// `⋈init`: for `u ∈ U_i`, its support after `U_{i-1}` was fully
    /// peeled and before any `U_i` vertex was — the FD support
    /// initialization (Algorithm 3 lines 6–7).
    pub init_support: Vec<u64>,
    /// Counting + CD metrics (FD adds its own share later).
    pub metrics: Metrics,
}

/// Runs per-vertex counting and coarse-grained decomposition on `side`.
pub fn coarse_decompose(g: &BipartiteCsr, side: Side, config: &Config) -> CoarseResult {
    // ---- Support initialization (pvBcnt) ----
    let t_count = Instant::now();
    let ranked = RankedGraph::from_csr(g);
    let counts = butterfly::parallel::par_vertex_priority_counts(&ranked);
    let time_count = t_count.elapsed();

    let t_cd = Instant::now();
    let view = g.view(side);
    let n = view.num_primary();
    let p_target = config.effective_partitions();

    let support = SupportVec::from_counts(counts.side(side));
    // Static per-vertex wedge counts in G: the proxy findHi balances on.
    let w = bigraph::stats::wedges_per_primary(view);
    let mut remaining_wedges: u64 = w.iter().sum();
    let mut pg = PeelGraph::new(side, ranked);
    let mut init_support = vec![0u64; n];
    let mut subsets: Vec<Vec<VertexId>> = Vec::new();
    let mut bounds: Vec<u64> = vec![0];
    let mut scale = 1.0f64;

    let wedges_cd = WedgeCounter::new();
    let mut rounds = 0u64;
    let mut recounts = 0u64;
    let scratch_pool = ScratchPool::new(move || PeelScratch::new(n));
    let mut queued = vec![false; n];

    for i in 0..p_target {
        if pg.live_count() == 0 {
            break;
        }
        let theta_lo = *bounds.last().expect("bounds starts non-empty");

        // ⋈init snapshot for every still-alive vertex (lines 6–7).
        snapshot_alive(&pg, &support, &mut init_support);

        // ---- Adaptive range determination (§3.1.1) ----
        let parts_left = (p_target - i) as u64;
        let base_tgt = remaining_wedges.div_ceil(parts_left).max(1);
        let tgt = ((base_tgt as f64) * scale).round().max(1.0) as u64;
        let hi = find_hi(&pg, &support, &w, tgt, theta_lo);
        debug_assert!(hi > theta_lo);

        // ---- Peel the range [theta_lo, hi) to exhaustion ----
        let mut active: Vec<VertexId> = filter_active(&pg, &support, hi);
        let mut subset: Vec<VertexId> = Vec::new();
        while !active.is_empty() {
            rounds += 1;
            pg.kill_batch(&active);
            subset.extend_from_slice(&active);

            let c_peel: u64 = active.iter().map(|&u| pg.peel_cost(u)).sum();
            let use_recount = config.huc && pg.live_count() > 0 && c_peel > pg.recount_cost();

            if use_recount {
                // HUC (§4.1): re-count butterflies of the live subgraph
                // instead of propagating the active set's updates. The
                // PeelGraph keeps its adjacency rank-sorted through
                // compactions, so the re-count needs no re-ranking.
                recounts += 1;
                let rc = pg.recount_live();
                wedges_cd.add(rc.wedges_traversed);
                let fresh = rc.side(side);
                let alive_flags = pg.alive_flags();
                fresh.par_iter().enumerate().for_each(|(u, &c)| {
                    if alive_flags[u].load(std::sync::atomic::Ordering::Relaxed) {
                        support.set(u as VertexId, c.max(theta_lo));
                    }
                });
                active = filter_active(&pg, &support, hi);
            } else {
                // Ordinary peel iteration (lines 12–13), parallel over the
                // active set with pooled scratch.
                let iter_wedges = WedgeCounter::new();
                let candidates: Vec<VertexId> = active
                    .par_iter()
                    .fold(Vec::new, |mut acc, &u| {
                        let mut scratch = scratch_pool.acquire();
                        let wc = peel_vertex(
                            &pg,
                            u,
                            theta_lo,
                            &support,
                            pg.alive_flags(),
                            &mut scratch,
                            |u2| acc.push(u2),
                        );
                        iter_wedges.add(wc);
                        acc
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    });
                let iw = iter_wedges.get();
                wedges_cd.add(iw);
                pg.note_wedges(iw);
                active = dedup_next_active(candidates, &pg, &support, hi, &mut queued);
                if config.dgm {
                    pg.maybe_compact(config.dgm_threshold);
                }
            }
        }

        // Adaptive targets: shrink future targets when this subset
        // overshot its wedge budget (predictive local behaviour).
        let subset_w: u64 = subset.iter().map(|&u| w[u as usize]).sum();
        remaining_wedges = remaining_wedges.saturating_sub(subset_w);
        scale = if subset_w > 0 {
            (tgt as f64 / subset_w as f64).min(1.0)
        } else {
            1.0
        };

        bounds.push(hi);
        subsets.push(subset);
    }

    // Leftovers after P subsets form a single extra subset (§3.1.1).
    if pg.live_count() > 0 {
        snapshot_alive(&pg, &support, &mut init_support);
        subsets.push(pg.live_vertices());
        bounds.push(u64::MAX);
    }

    let metrics = Metrics {
        wedges_count: counts.wedges_traversed,
        wedges_cd: wedges_cd.get(),
        sync_rounds: rounds,
        recounts,
        compactions: pg.compactions(),
        partitions_used: subsets.len(),
        time_count,
        time_cd: t_cd.elapsed(),
        ..Default::default()
    };

    CoarseResult {
        side,
        bounds,
        subsets,
        init_support,
        metrics,
    }
}

/// Copies current supports of live vertices into the ⋈init vector.
fn snapshot_alive(pg: &PeelGraph, support: &SupportVec, init: &mut [u64]) {
    let alive = pg.alive_flags();
    init.par_iter_mut().enumerate().for_each(|(u, slot)| {
        if alive[u].load(std::sync::atomic::Ordering::Relaxed) {
            *slot = support.get(u as VertexId);
        }
    });
}

/// `findHi` (Algorithm 3 lines 16–21): the smallest support value `θ` such
/// that live vertices with support ≤ θ jointly own at least `tgt` wedges;
/// returns `θ + 1` as the exclusive range bound. Implemented as the paper
/// describes: aggregate wedge counts into a hashmap keyed by the (few)
/// unique support values, sort the keys, prefix-scan.
fn find_hi(pg: &PeelGraph, support: &SupportVec, w: &[u64], tgt: u64, theta_lo: u64) -> u64 {
    let work: std::collections::HashMap<u64, u64> = (0..pg.num_primary() as VertexId)
        .into_par_iter()
        .filter(|&u| pg.is_alive(u))
        .fold(
            std::collections::HashMap::new,
            |mut acc: std::collections::HashMap<u64, u64>, u| {
                *acc.entry(support.get(u)).or_default() += w[u as usize];
                acc
            },
        )
        .reduce(std::collections::HashMap::new, |mut a, b| {
            for (k, v) in b {
                *a.entry(k).or_default() += v;
            }
            a
        });
    let mut keys: Vec<u64> = work.keys().copied().collect();
    keys.sort_unstable();
    let mut acc = 0u64;
    for &s in &keys {
        acc += work[&s];
        if acc >= tgt {
            return s + 1;
        }
    }
    // Not enough wedges remain: sweep everything left into this subset.
    keys.last().map(|&s| s + 1).unwrap_or(theta_lo + 1)
}

/// All live vertices with support strictly below `hi` (ascending id order —
/// rayon's indexed collect preserves it).
fn filter_active(pg: &PeelGraph, support: &SupportVec, hi: u64) -> Vec<VertexId> {
    (0..pg.num_primary() as VertexId)
        .into_par_iter()
        .filter(|&u| pg.is_alive(u) && support.get(u) < hi)
        .collect()
}

/// Builds the next active set from update candidates: alive, below the
/// bound, each vertex once, deterministic ascending order.
fn dedup_next_active(
    candidates: Vec<VertexId>,
    pg: &PeelGraph,
    support: &SupportVec,
    hi: u64,
    queued: &mut [bool],
) -> Vec<VertexId> {
    let mut out = Vec::new();
    for u in candidates {
        let q = &mut queued[u as usize];
        if !*q && pg.is_alive(u) && support.get(u) < hi {
            *q = true;
            out.push(u);
        }
    }
    for &u in &out {
        queued[u as usize] = false;
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::from_edges;
    use bigraph::gen;

    fn fig1_graph() -> BipartiteCsr {
        from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        )
        .unwrap()
    }

    fn check_partition_invariants(g: &BipartiteCsr, side: Side, cfg: &Config) -> CoarseResult {
        let r = coarse_decompose(g, side, cfg);
        let n = g.view(side).num_primary();
        // Every vertex in exactly one subset.
        let mut seen = vec![false; n];
        for s in &r.subsets {
            for &u in s {
                assert!(!seen[u as usize], "vertex {u} in two subsets");
                seen[u as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "every vertex assigned");
        // Bounds strictly increase and bracket the subsets.
        assert_eq!(r.bounds.len(), r.subsets.len() + 1);
        assert!(r.bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(r.bounds[0], 0);
        r
    }

    #[test]
    fn partitions_fig1() {
        let cfg = Config::default().with_partitions(3);
        let r = check_partition_invariants(&fig1_graph(), Side::U, &cfg);
        assert!(r.metrics.sync_rounds >= 1);
        // Tip numbers (2,3,3,1) must land inside their subset's range.
        let tips = [2u64, 3, 3, 1];
        for (i, subset) in r.subsets.iter().enumerate() {
            for &u in subset {
                let t = tips[u as usize];
                assert!(
                    r.bounds[i] <= t && t < r.bounds[i + 1],
                    "θ_{u}={t} outside [{}, {})",
                    r.bounds[i],
                    r.bounds[i + 1]
                );
            }
        }
    }

    #[test]
    fn ranges_contain_true_tip_numbers_random() {
        for seed in 0..4 {
            let g = gen::zipf(70, 40, 450, 0.5, 0.9, seed);
            let truth = crate::bup::bup_decompose(&g, Side::U, 4);
            for p in [1usize, 2, 5, 20] {
                let cfg = Config::default().with_partitions(p);
                let r = check_partition_invariants(&g, Side::U, &cfg);
                for (i, subset) in r.subsets.iter().enumerate() {
                    for &u in subset {
                        let t = truth.tip[u as usize];
                        assert!(
                            r.bounds[i] <= t && t < r.bounds[i + 1],
                            "seed {seed} P {p}: θ_{u}={t} outside [{}, {})",
                            r.bounds[i],
                            r.bounds[i + 1]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn huc_and_dgm_do_not_change_partitions_semantics() {
        let g = gen::zipf(80, 30, 400, 0.4, 1.0, 7);
        let truth = crate::bup::bup_decompose(&g, Side::U, 4);
        for cfg in [
            Config::default().with_partitions(6),
            Config::default().with_partitions(6).without_dgm(),
            Config::default().with_partitions(6).baseline_variant(),
        ] {
            let r = check_partition_invariants(&g, Side::U, &cfg);
            for (i, subset) in r.subsets.iter().enumerate() {
                for &u in subset {
                    let t = truth.tip[u as usize];
                    assert!(r.bounds[i] <= t && t < r.bounds[i + 1]);
                }
            }
        }
    }

    #[test]
    fn single_partition_collapses_to_one_subset() {
        let g = fig1_graph();
        let r = coarse_decompose(&g, Side::U, &Config::default().with_partitions(1));
        assert_eq!(r.subsets.len(), 1);
        assert_eq!(r.subsets[0].len(), 4);
    }

    #[test]
    fn init_support_of_first_subset_is_butterfly_count() {
        let g = fig1_graph();
        let counts = butterfly::count_graph(&g);
        let r = coarse_decompose(&g, Side::U, &Config::default().with_partitions(3));
        for &u in &r.subsets[0] {
            assert_eq!(
                r.init_support[u as usize], counts.u[u as usize],
                "first subset sees pristine counts"
            );
        }
    }

    #[test]
    fn empty_graph_coarse() {
        let g = BipartiteCsr::empty(5, 3);
        let r = coarse_decompose(&g, Side::U, &Config::default().with_partitions(4));
        // All supports are 0: single subset swallows everything.
        assert_eq!(r.subsets.len(), 1);
        assert_eq!(r.subsets[0].len(), 5);
        assert_eq!(r.metrics.wedges_cd, 0);
    }

    #[test]
    fn sync_rounds_shrink_with_fewer_partitions() {
        let g = gen::zipf(150, 60, 1200, 0.5, 0.9, 3);
        let few = coarse_decompose(&g, Side::U, &Config::default().with_partitions(2));
        let many = coarse_decompose(&g, Side::U, &Config::default().with_partitions(60));
        assert!(
            few.metrics.sync_rounds <= many.metrics.sync_rounds,
            "{} vs {}",
            few.metrics.sync_rounds,
            many.metrics.sync_rounds
        );
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let g = gen::zipf(90, 50, 600, 0.5, 0.8, 11);
        let cfg = Config::default().with_partitions(8);
        let a = parutil::with_pool(1, || coarse_decompose(&g, Side::U, &cfg));
        let b = parutil::with_pool(4, || coarse_decompose(&g, Side::U, &cfg));
        assert_eq!(a.subsets, b.subsets);
        assert_eq!(a.bounds, b.bounds);
        assert_eq!(a.init_support, b.init_support);
        assert_eq!(a.metrics.sync_rounds, b.metrics.sync_rounds);
        assert_eq!(a.metrics.wedges_cd, b.metrics.wedges_cd);
    }
}

//! The engine's published read path: immutable epoch snapshots.
//!
//! Everything a reader can ask of a [`StreamEngine`] is answered from an
//! [`EngineSnapshot`] — an immutable view published once per batch and
//! shared by `Arc`. The whole point of the update/read split is that
//! these answers never synchronize: once a reader holds the `Arc`, every
//! query below is plain slice indexing over data no writer will ever
//! touch again. That invariant is machine-checked — `receipt-lint`'s
//! `no-lock-in-read-path` rule forbids any `.lock()`/`.read()`/
//! `.write()` call in this module, so a blocking query cannot sneak into
//! the read path unnoticed.
//!
//! [`StreamEngine`]: crate::engine::StreamEngine

use bigraph::{BipartiteCsr, Side, VertexId};

/// A vertex of a top-k densest query: ranked by tip number, ties broken by
/// butterfly count then ascending id, so the ordering is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseVertex {
    /// Side-local vertex id.
    pub id: VertexId,
    /// The vertex's tip number.
    pub tip: u64,
    /// The vertex's butterfly count.
    pub butterflies: u64,
}

/// An immutable, internally consistent view of the decomposition after a
/// given batch. Cheap to share (`Arc`), never mutated after publication.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    pub(crate) epoch: u64,
    pub(crate) graph: BipartiteCsr,
    pub(crate) counts_u: Vec<u64>,
    pub(crate) counts_v: Vec<u64>,
    /// Per-edge butterfly counts aligned with `graph`'s CSR edge ids
    /// ([`BipartiteCsr::edge_index`]).
    pub(crate) edge_counts: Vec<u64>,
    pub(crate) total_butterflies: u64,
    pub(crate) tip_u: Vec<u64>,
    pub(crate) tip_v: Vec<u64>,
}

impl EngineSnapshot {
    /// 0 for the freshly loaded graph; +1 per applied batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The materialized graph this snapshot's answers refer to.
    pub fn graph(&self) -> &BipartiteCsr {
        &self.graph
    }

    /// Number of vertices on `side` at this epoch.
    pub fn num_side(&self, side: Side) -> usize {
        match side {
            Side::U => self.graph.num_u(),
            Side::V => self.graph.num_v(),
        }
    }

    /// Total butterflies in the graph at this epoch.
    pub fn total_butterflies(&self) -> u64 {
        self.total_butterflies
    }

    /// Tip numbers of one side, indexed by side-local vertex id.
    pub fn tip_side(&self, side: Side) -> &[u64] {
        match side {
            Side::U => &self.tip_u,
            Side::V => &self.tip_v,
        }
    }

    /// Per-vertex butterfly counts of one side.
    pub fn counts_side(&self, side: Side) -> &[u64] {
        match side {
            Side::U => &self.counts_u,
            Side::V => &self.counts_v,
        }
    }

    /// Per-edge butterfly counts in `graph().edges()` order.
    pub fn edge_counts(&self) -> &[u64] {
        &self.edge_counts
    }

    /// Tip number of a vertex; `None` if the id is out of range.
    pub fn tip(&self, side: Side, v: VertexId) -> Option<u64> {
        self.tip_side(side).get(v as usize).copied()
    }

    /// Butterfly count of a vertex; `None` if the id is out of range.
    pub fn vertex_butterflies(&self, side: Side, v: VertexId) -> Option<u64> {
        self.counts_side(side).get(v as usize).copied()
    }

    /// Butterfly count of edge `(u, v)`; `None` if the edge is absent.
    pub fn edge_butterflies(&self, u: VertexId, v: VertexId) -> Option<u64> {
        self.graph.edge_index(u, v).map(|eid| self.edge_counts[eid])
    }

    /// Largest tip number on `side` (0 on an empty side).
    pub fn theta_max(&self, side: Side) -> u64 {
        self.tip_side(side).iter().copied().max().unwrap_or(0)
    }

    /// FNV-1a digest of one side's tip numbers in id order.
    pub fn tip_checksum(&self, side: Side) -> u64 {
        crate::dynamic::fnv1a_u64(self.tip_side(side))
    }

    /// The `k` densest vertices of one side: highest tip number first,
    /// ties broken by butterfly count then ascending id.
    pub fn top_k_densest(&self, side: Side, k: usize) -> Vec<DenseVertex> {
        let tips = self.tip_side(side);
        let counts = self.counts_side(side);
        let mut ranked: Vec<DenseVertex> = tips
            .iter()
            .zip(counts)
            .enumerate()
            .map(|(id, (&tip, &butterflies))| DenseVertex {
                id: id as VertexId,
                tip,
                butterflies,
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.tip
                .cmp(&a.tip)
                .then(b.butterflies.cmp(&a.butterflies))
                .then(a.id.cmp(&b.id))
        });
        ranked.truncate(k);
        ranked
    }
}

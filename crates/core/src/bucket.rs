//! Julienne-style bucketing for ParB (Dhulipala et al. \[13\], used by
//! ParButterfly \[54\] with 128 buckets).
//!
//! Maintains an *open range* of 128 consecutive support values as explicit
//! buckets plus an overflow list for everything above. Insertions are lazy:
//! a vertex may have stale entries at old support values; the consumer
//! validates each popped entry against the current support (and claims it),
//! so duplicates and stale values are skipped for free.

/// A lazy bucket queue over dense vertex ids with `u64` priorities.
#[derive(Debug)]
pub struct BucketQueue {
    num_open: usize,
    /// Priorities in `[base, base + num_open)` live in `buckets`.
    base: u64,
    buckets: Vec<Vec<u32>>,
    /// Entries with priority ≥ `base + num_open` at insertion time.
    overflow: Vec<u32>,
    /// Cursor into the open range (buckets below it are exhausted).
    cursor: usize,
}

impl BucketQueue {
    /// Builds the queue and inserts every id with its initial priority.
    /// `num_open` is the paper's 128-bucket window.
    pub fn new(num_open: usize, priorities: &[u64]) -> Self {
        let num_open = num_open.max(1);
        let base = priorities.iter().copied().min().unwrap_or(0);
        let mut q = BucketQueue {
            num_open,
            base,
            buckets: (0..num_open).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            cursor: 0,
        };
        for (id, &p) in priorities.iter().enumerate() {
            q.insert(id as u32, p);
        }
        q
    }

    /// Registers (lazily) that `id` now has priority `p`.
    pub fn insert(&mut self, id: u32, p: u64) {
        if p < self.base + self.num_open as u64 {
            // Priorities only decrease and never drop below the frontier,
            // so p >= base always holds; guard anyway for robustness.
            let slot = p.saturating_sub(self.base) as usize;
            self.buckets[slot.min(self.num_open - 1)].push(id);
        } else {
            self.overflow.push(id);
        }
    }

    /// Extracts the batch of ids with the minimum current priority.
    ///
    /// `claim(id)` must return `Some(priority)` *and mark the id taken* if
    /// it is still live, or `None` if it was already claimed/peeled.
    /// Entries whose claimed priority no longer matches their bucket are
    /// re-inserted at the correct place instead of returned.
    ///
    /// `peek(id)` returns the current priority of a live id without
    /// claiming (used to redistribute the overflow when the open window
    /// moves).
    pub fn pop_min_batch(
        &mut self,
        mut claim: impl FnMut(u32) -> Option<u64>,
        mut peek: impl FnMut(u32) -> Option<u64>,
    ) -> Option<(u64, Vec<u32>)> {
        loop {
            // Advance over exhausted buckets in the open window.
            while self.cursor < self.num_open {
                if self.buckets[self.cursor].is_empty() {
                    self.cursor += 1;
                    continue;
                }
                let value = self.base + self.cursor as u64;
                let entries = std::mem::take(&mut self.buckets[self.cursor]);
                let mut batch = Vec::new();
                for id in entries {
                    // Stale entries: either dead (claimed elsewhere) or the
                    // priority moved; only entries at (or below) the
                    // frontier belong to this batch.
                    match peek(id) {
                        None => {}
                        // p == value is the common case. p < value means
                        // the priority sank below the frontier after
                        // insertion (batch-dynamic consumers can lower
                        // supports between pops); buckets below the cursor
                        // are exhausted, so the id is due now, at the
                        // frontier — re-filing it into the cursor bucket
                        // would re-scan it forever.
                        Some(p) if p <= value && claim(id).is_some() => {
                            batch.push(id);
                        }
                        Some(p) => {
                            // p > value: the priority rose (lazy inserts
                            // plus dynamic support increases); re-file at
                            // its true bucket — or overflow — where a
                            // later pop will find it.
                            self.insert(id, p);
                        }
                    }
                }
                if batch.is_empty() {
                    // All entries were stale; keep scanning this bucket
                    // index (re-files may have landed here).
                    if self.buckets[self.cursor].is_empty() {
                        self.cursor += 1;
                    }
                    continue;
                }
                return Some((value, batch));
            }
            // Open window exhausted; pull the next window from overflow.
            if self.overflow.is_empty() {
                return None;
            }
            let old = std::mem::take(&mut self.overflow);
            let mut min_p = u64::MAX;
            let mut live: Vec<(u32, u64)> = Vec::with_capacity(old.len());
            for id in old {
                if let Some(p) = peek(id) {
                    min_p = min_p.min(p);
                    live.push((id, p));
                }
            }
            if live.is_empty() {
                return None;
            }
            self.base = min_p;
            self.cursor = 0;
            for (id, p) in live {
                self.insert(id, p);
            }
        }
    }

    /// Entries currently parked in overflow (diagnostics).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Drives the queue against a mutable priority map.
    struct Sim {
        pri: HashMap<u32, u64>,
        claimed: Vec<u32>,
    }

    impl Sim {
        fn new(pri: &[u64]) -> Self {
            Sim {
                pri: pri
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (i as u32, p))
                    .collect(),
                claimed: Vec::new(),
            }
        }
        fn drain(&mut self, q: &mut BucketQueue) -> Vec<(u64, Vec<u32>)> {
            let mut out = Vec::new();
            loop {
                let pri = self.pri.clone();
                let claimed = std::cell::RefCell::new(Vec::new());
                let got = q.pop_min_batch(
                    |id| {
                        if pri.contains_key(&id) && !claimed.borrow().contains(&id) {
                            claimed.borrow_mut().push(id);
                            pri.get(&id).copied()
                        } else {
                            None
                        }
                    },
                    |id| {
                        if claimed.borrow().contains(&id) {
                            None
                        } else {
                            pri.get(&id).copied()
                        }
                    },
                );
                match got {
                    None => break,
                    Some((v, mut batch)) => {
                        batch.sort_unstable();
                        for &b in &batch {
                            self.pri.remove(&b);
                            self.claimed.push(b);
                        }
                        out.push((v, batch));
                    }
                }
            }
            out
        }
    }

    #[test]
    fn batches_come_out_in_priority_order() {
        let pri = vec![5, 1, 5, 3, 1];
        let mut q = BucketQueue::new(4, &pri);
        let mut sim = Sim::new(&pri);
        let batches = sim.drain(&mut q);
        assert_eq!(
            batches,
            vec![(1, vec![1, 4]), (3, vec![3]), (5, vec![0, 2])]
        );
    }

    #[test]
    fn overflow_window_advances() {
        // Priorities far beyond the open window force rebucketing.
        let pri = vec![1000, 5, 2000, 5];
        let mut q = BucketQueue::new(4, &pri);
        let mut sim = Sim::new(&pri);
        let batches = sim.drain(&mut q);
        assert_eq!(
            batches,
            vec![(5, vec![1, 3]), (1000, vec![0]), (2000, vec![2])]
        );
        assert_eq!(q.overflow_len(), 0);
    }

    #[test]
    fn decreased_priority_moves_vertex_earlier() {
        let pri = vec![10, 20];
        let mut q = BucketQueue::new(64, &pri);
        // Simulate support decrease of id 1 to 12 before popping.
        q.insert(1, 12);
        let mut current: HashMap<u32, u64> = [(0u32, 10u64), (1, 12)].into_iter().collect();
        let mut order = Vec::new();
        while let Some((v, batch)) = {
            let cur = current.clone();
            let claimed = std::cell::RefCell::new(Vec::<u32>::new());
            q.pop_min_batch(
                |id| {
                    if cur.contains_key(&id) && !claimed.borrow().contains(&id) {
                        claimed.borrow_mut().push(id);
                        cur.get(&id).copied()
                    } else {
                        None
                    }
                },
                |id| {
                    if claimed.borrow().contains(&id) {
                        None
                    } else {
                        cur.get(&id).copied()
                    }
                },
            )
        } {
            for &b in &batch {
                current.remove(&b);
            }
            order.push((v, batch));
        }
        assert_eq!(order, vec![(10, vec![0]), (12, vec![1])]);
    }

    #[test]
    fn duplicate_entries_claimed_once() {
        let pri = vec![3];
        let mut q = BucketQueue::new(8, &pri);
        q.insert(0, 3);
        q.insert(0, 3); // triple entry overall
        let claimed_once = std::cell::Cell::new(false);
        let got = q.pop_min_batch(
            |_| {
                if !claimed_once.get() {
                    claimed_once.set(true);
                    Some(3)
                } else {
                    None
                }
            },
            |_| if claimed_once.get() { None } else { Some(3) },
        );
        assert_eq!(got, Some((3, vec![0])));
    }

    #[test]
    fn empty_queue() {
        let mut q = BucketQueue::new(4, &[]);
        assert_eq!(q.pop_min_batch(|_| None, |_| None), None);
    }

    #[test]
    fn all_overflow_entries_stale_terminates() {
        // Every id sits in overflow and every peek says "dead": the window
        // advance must conclude the queue is drained, not spin or panic.
        let pri = vec![0, 1000, 2000, 3000];
        let mut q = BucketQueue::new(4, &pri);
        assert_eq!(q.overflow_len(), 3);
        // Claim/peek treat only id 0 as alive.
        let claimed = std::cell::Cell::new(false);
        let got = q.pop_min_batch(
            |id| {
                (id == 0 && !claimed.get()).then(|| {
                    claimed.set(true);
                    0
                })
            },
            |id| (id == 0 && !claimed.get()).then_some(0),
        );
        assert_eq!(got, Some((0, vec![0])));
        // The remaining ids are all stale overflow entries.
        assert_eq!(q.pop_min_batch(|_| None, |_| None), None);
        assert_eq!(q.overflow_len(), 0, "stale overflow entries are dropped");
    }

    #[test]
    fn priority_at_last_open_bucket_stays_in_window() {
        // base = 10, num_open = 4: the open window is [10, 14). A priority
        // of exactly base + num_open - 1 = 13 is the last in-window slot;
        // 14 is the first overflow value.
        let pri = vec![10, 13, 14];
        let q = BucketQueue::new(4, &pri);
        assert_eq!(q.overflow_len(), 1, "only the 14 overflows");
        let mut q = q;
        let mut sim = Sim::new(&pri);
        let batches = sim.drain(&mut q);
        assert_eq!(batches, vec![(10, vec![0]), (13, vec![1]), (14, vec![2])]);
    }

    #[test]
    fn raised_priority_refiles_to_its_true_bucket() {
        // The dynamic layer can *increase* supports between pops (edge
        // insertions add butterflies). A stale low entry must re-file at
        // the raised priority — within the window or into overflow — and
        // come out in correct order.
        let pri = vec![2, 3];
        let mut q = BucketQueue::new(8, &pri);
        let mut current: HashMap<u32, u64> = [(0u32, 6u64), (1, 3)].into_iter().collect();
        // id 0's support rose from 2 to 6 after its lazy insert at 2.
        let mut order = Vec::new();
        loop {
            let cur = current.clone();
            let claimed = std::cell::RefCell::new(Vec::<u32>::new());
            let got = q.pop_min_batch(
                |id| {
                    if cur.contains_key(&id) && !claimed.borrow().contains(&id) {
                        claimed.borrow_mut().push(id);
                        cur.get(&id).copied()
                    } else {
                        None
                    }
                },
                |id| {
                    if claimed.borrow().contains(&id) {
                        None
                    } else {
                        cur.get(&id).copied()
                    }
                },
            );
            match got {
                None => break,
                Some((v, batch)) => {
                    for &b in &batch {
                        current.remove(&b);
                    }
                    order.push((v, batch));
                }
            }
        }
        assert_eq!(order, vec![(3, vec![1]), (6, vec![0])]);
    }

    #[test]
    fn below_frontier_priority_pops_at_the_frontier() {
        // An entry whose true priority sank *below* the frontier bucket it
        // sits in (possible when deletions lower supports between pops)
        // must be claimed at the frontier instead of being re-filed into
        // the cursor bucket — re-filing would rescan it forever.
        let pri = vec![10, 10];
        let mut q = BucketQueue::new(4, &pri);
        // id 1's support dropped to 8 (below base = 10) before any pop.
        let current: HashMap<u32, u64> = [(0u32, 10u64), (1, 8)].into_iter().collect();
        let claimed = std::cell::RefCell::new(Vec::<u32>::new());
        let got = q.pop_min_batch(
            |id| {
                if !claimed.borrow().contains(&id) {
                    claimed.borrow_mut().push(id);
                    current.get(&id).copied()
                } else {
                    None
                }
            },
            |id| {
                if claimed.borrow().contains(&id) {
                    None
                } else {
                    current.get(&id).copied()
                }
            },
        );
        // Both come out in the frontier batch; the sunken id is not lost.
        let (value, mut batch) = got.unwrap();
        batch.sort_unstable();
        assert_eq!((value, batch), (10, vec![0, 1]));
        assert_eq!(q.pop_min_batch(|_| None, |_| None), None);
    }
}

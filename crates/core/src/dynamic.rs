//! Incremental tip maintenance over a [`DynamicButterflyIndex`] — the
//! policy layer that turns batched graph updates into fresh tip numbers.
//!
//! Tip numbers are a global property of the butterfly structure, so the
//! update policy is *exact by construction* and trades only the amount of
//! recomputation:
//!
//! * **`Unchanged`** — the batch changed no butterflies. Peeling decrements
//!   supports by `C(c, 2)` over shared-neighbour counts `c`, and any change
//!   of `C(c, 2)` is itself a butterfly gained or lost, so an empty dirty
//!   set implies the whole decomposition is untouched (new vertices join
//!   with tip 0).
//! * **`SeededRepeel`** — the dirty frontier (vertices on a changed
//!   butterfly) is small: re-peel the materialized graph seeded with the
//!   incrementally maintained butterfly counts, skipping the counting
//!   phase entirely — the dominant cost the paper's `∧_pvBcnt` column
//!   measures.
//! * **`FullRecompute`** — the dirty fraction crossed the threshold: the
//!   maintained counts no longer buy much, so fall back to the full
//!   parallel [`crate::tip_decompose`] (CD + FD) on the materialized
//!   graph.

use crate::bup::peel_all;
use crate::Config;
use bigraph::Side;
use butterfly::{BatchDelta, DynamicButterflyIndex};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// How a batch's tip update was computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// No butterflies changed — the decomposition is provably untouched.
    Unchanged,
    /// Re-peel seeded with maintained counts, skipping the counting phase.
    SeededRepeel,
    /// Full parallel CD + FD pipeline from scratch.
    FullRecompute,
}

impl UpdatePolicy {
    /// The kebab-case name used in reports (`"seeded-repeel"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            UpdatePolicy::Unchanged => "unchanged",
            UpdatePolicy::SeededRepeel => "seeded-repeel",
            UpdatePolicy::FullRecompute => "full-recompute",
        }
    }
}

// Hand-written (the vendored derive would emit variant names): the wire
// form is the same kebab-case string the text tables print, so JSON
// consumers and humans read one vocabulary.
impl Serialize for UpdatePolicy {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl Deserialize for UpdatePolicy {
    fn deserialize<D: serde::Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_string()?.as_str() {
            "unchanged" => Ok(UpdatePolicy::Unchanged),
            "seeded-repeel" => Ok(UpdatePolicy::SeededRepeel),
            "full-recompute" => Ok(UpdatePolicy::FullRecompute),
            other => Err(<D::Error as serde::de::Error>::unknown_variant(
                "UpdatePolicy",
                other,
            )),
        }
    }
}

/// Default dirty fraction beyond which a full recompute wins.
pub const DEFAULT_DIRTY_THRESHOLD: f64 = 0.2;

/// One batch's tip-update telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TipUpdate {
    /// How this batch's tips were computed.
    pub policy: UpdatePolicy,
    /// Peel-side vertices on a butterfly the batch changed.
    pub dirty: usize,
    /// `dirty / |primary side|`.
    pub dirty_fraction: f64,
    /// Wedges traversed by the update (0 under `Unchanged`).
    pub wedges: u64,
    /// Wall-clock time of the update.
    pub time: Duration,
}

/// Maintained tip numbers for one side of a dynamic graph.
#[derive(Debug, Clone)]
pub struct DynamicTipState {
    side: Side,
    config: Config,
    dirty_threshold: f64,
    tip: Vec<u64>,
}

impl DynamicTipState {
    /// Computes the initial decomposition by re-peeling with the index's
    /// already-maintained counts (no recount needed).
    pub fn new(index: &DynamicButterflyIndex, side: Side, config: Config) -> Self {
        Self::with_threshold(index, side, config, DEFAULT_DIRTY_THRESHOLD)
    }

    /// `dirty_threshold` is the dirty fraction beyond which a batch falls
    /// back to the full CD + FD recompute.
    pub fn with_threshold(
        index: &DynamicButterflyIndex,
        side: Side,
        config: Config,
        dirty_threshold: f64,
    ) -> Self {
        let g = index.materialize();
        let (tip, _) = peel_all(g.view(side), index.counts_side(side), config.heap_arity);
        DynamicTipState {
            side,
            config,
            dirty_threshold,
            tip,
        }
    }

    /// The side whose tips this state maintains.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Current tip numbers, indexed by side-local vertex id.
    pub fn tip(&self) -> &[u64] {
        &self.tip
    }

    /// Largest current tip number (0 on an empty side).
    pub fn theta_max(&self) -> u64 {
        self.tip.iter().copied().max().unwrap_or(0)
    }

    /// Brings the tip numbers up to date after `index.apply_batch`
    /// produced `delta`. Must be called with the delta of every batch, in
    /// order — the `Unchanged` shortcut is only sound relative to the
    /// previous batch's state.
    pub fn update(&mut self, index: &DynamicButterflyIndex, delta: &BatchDelta) -> TipUpdate {
        let t0 = Instant::now();
        let num_primary = match self.side {
            Side::U => index.graph().num_u(),
            Side::V => index.graph().num_v(),
        };
        // Vertices added by the batch start isolated: tip 0.
        self.tip.resize(num_primary, 0);

        let dirty = delta.dirty_side(self.side).len();
        let dirty_fraction = dirty as f64 / num_primary.max(1) as f64;
        let (policy, wedges) = if dirty == 0 {
            (UpdatePolicy::Unchanged, 0)
        } else if dirty_fraction > self.dirty_threshold {
            let d = crate::tip_decompose(&index.materialize(), self.side, &self.config);
            self.tip = d.tip;
            (UpdatePolicy::FullRecompute, d.metrics.wedges_total())
        } else {
            let g = index.materialize();
            let (tip, wedges) = peel_all(
                g.view(self.side),
                index.counts_side(self.side),
                self.config.heap_arity,
            );
            self.tip = tip;
            (UpdatePolicy::SeededRepeel, wedges)
        };
        TipUpdate {
            policy,
            dirty,
            dirty_fraction,
            wedges,
            time: t0.elapsed(),
        }
    }
}

/// From-scratch artifacts produced by [`verify_against_scratch`], returned
/// so callers pricing the incremental update (e.g. `repro dynamic`) can
/// reuse the oracle run instead of recomputing it.
#[derive(Debug, Clone)]
pub struct ScratchArtifacts {
    /// Full parallel recount (Algorithm 1) of the materialized graph.
    pub counts: butterfly::VertexCounts,
    /// Wedges traversed by the BUP peels across the checked sides.
    pub peel_wedges: u64,
}

/// The single differential gate behind `tipdecomp stream --verify`,
/// `repro dynamic`, and the root `dynamic_differential` suite: recomputes
/// everything from scratch on the materialized graph and compares every
/// maintained quantity —
///
/// * per-vertex butterfly counts (both sides) and the total,
/// * per-edge counts, including that no stale entry survives for an
///   absent or butterfly-free edge,
/// * tip numbers of every supplied [`DynamicTipState`] against
///   [`crate::bup::bup_decompose`].
pub fn verify_against_scratch(
    index: &butterfly::DynamicButterflyIndex,
    states: &[&DynamicTipState],
) -> Result<ScratchArtifacts, String> {
    let g = index.materialize();
    let fresh = butterfly::par_count_graph(&g);
    if index.counts_side(Side::U) != &fresh.u[..] {
        return Err("incremental U-side butterfly counts diverged from recount".into());
    }
    if index.counts_side(Side::V) != &fresh.v[..] {
        return Err("incremental V-side butterfly counts diverged from recount".into());
    }
    if index.total_butterflies() != fresh.total() {
        return Err(format!(
            "incremental total {} != recount total {}",
            index.total_butterflies(),
            fresh.total()
        ));
    }
    let per_edge = butterfly::per_edge::par_per_edge_counts(g.view(Side::U));
    for ((u, v), &expect) in g.edges().zip(&per_edge) {
        if index.edge_count(u, v) != expect {
            return Err(format!(
                "per-edge count of ({u}, {v}) diverged from recount"
            ));
        }
    }
    let nonzero = per_edge.iter().filter(|&&c| c > 0).count();
    if index.tracked_edges() != nonzero {
        return Err(format!(
            "{} tracked per-edge entries but the recount has {nonzero} \
             butterfly-carrying edges — stale entries for absent edges",
            index.tracked_edges()
        ));
    }
    let mut peel_wedges = 0;
    for state in states {
        let oracle = crate::bup::bup_decompose(&g, state.side(), 4);
        if state.tip() != &oracle.tip[..] {
            return Err(format!(
                "incremental {} tip numbers diverged from BUP",
                state.side()
            ));
        }
        peel_wedges += oracle.wedges_peel;
    }
    Ok(ScratchArtifacts {
        counts: fresh,
        peel_wedges,
    })
}

/// FNV-1a over little-endian `u64` words — a thread-count-invariant digest
/// of a decomposition (tip or wing numbers in id order), embedded in
/// reports so cross-run comparisons need not inline full vectors.
pub fn fnv1a_u64(values: &[u64]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &value in values {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::from_edges;
    use bigraph::dynamic::EdgeOp;
    use bigraph::gen;

    fn oracle_tips(index: &DynamicButterflyIndex, side: Side) -> Vec<u64> {
        crate::bup::bup_decompose(&index.materialize(), side, 4).tip
    }

    #[test]
    fn initial_state_matches_bup() {
        let g = gen::planted_bicliques(20, 20, 2, 4, 4, 30, 3);
        let index = DynamicButterflyIndex::new(g);
        let state = DynamicTipState::new(&index, Side::U, Config::default());
        assert_eq!(state.tip(), &oracle_tips(&index, Side::U)[..]);
    }

    #[test]
    fn butterfly_free_batch_is_unchanged() {
        let g = from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let mut index = DynamicButterflyIndex::new(g);
        let mut state = DynamicTipState::new(&index, Side::U, Config::default());
        // A pendant edge on a fresh vertex closes no butterfly.
        let delta = index.apply_batch(&[EdgeOp::Insert(4, 2)]);
        let update = state.update(&index, &delta);
        assert_eq!(update.policy, UpdatePolicy::Unchanged);
        assert_eq!(update.wedges, 0);
        assert_eq!(state.tip().len(), 5, "grown vertex gets a tip slot");
        assert_eq!(state.tip()[4], 0);
        assert_eq!(state.tip(), &oracle_tips(&index, Side::U)[..]);
    }

    #[test]
    fn small_dirty_set_repeels_with_seeded_counts() {
        let g = gen::zipf(60, 40, 300, 0.5, 0.9, 5);
        let mut index = DynamicButterflyIndex::new(g.clone());
        let mut state = DynamicTipState::with_threshold(&index, Side::U, Config::default(), 0.9);
        // One edge between existing dense vertices: small dirty set.
        let (u, v) = (0u32, 0u32);
        let op = if index.graph().has_edge(u, v) {
            EdgeOp::Delete(u, v)
        } else {
            EdgeOp::Insert(u, v)
        };
        let delta = index.apply_batch(&[op]);
        let update = state.update(&index, &delta);
        if delta.dirty_u.is_empty() {
            assert_eq!(update.policy, UpdatePolicy::Unchanged);
        } else {
            assert_eq!(update.policy, UpdatePolicy::SeededRepeel);
            assert!(update.dirty_fraction <= 0.9);
        }
        assert_eq!(state.tip(), &oracle_tips(&index, Side::U)[..]);
    }

    #[test]
    fn large_dirty_fraction_falls_back_to_full_recompute() {
        let g = gen::planted_bicliques(16, 16, 2, 4, 4, 20, 7);
        let mut index = DynamicButterflyIndex::new(g);
        let mut state = DynamicTipState::with_threshold(&index, Side::U, Config::default(), 0.0);
        // Any butterfly change trips a 0.0 threshold.
        let delta = index.apply_batch(&[EdgeOp::Insert(0, 0), EdgeOp::Insert(0, 1)]);
        let update = state.update(&index, &delta);
        if delta.dirty_u.is_empty() {
            assert_eq!(update.policy, UpdatePolicy::Unchanged);
        } else {
            assert_eq!(update.policy, UpdatePolicy::FullRecompute);
        }
        assert_eq!(state.tip(), &oracle_tips(&index, Side::U)[..]);
    }

    #[test]
    fn tracks_oracle_across_a_random_schedule_on_both_sides() {
        let g = gen::uniform(40, 30, 180, 11);
        let schedule = bigraph::dynamic::seeded_schedule(&g, 5, 25, 19);
        for side in [Side::U, Side::V] {
            let mut index = DynamicButterflyIndex::new(g.clone());
            let mut state = DynamicTipState::with_threshold(&index, side, Config::default(), 0.1);
            let mut policies = Vec::new();
            for batch in &schedule {
                let delta = index.apply_batch(batch);
                let update = state.update(&index, &delta);
                policies.push(update.policy);
                assert_eq!(
                    state.tip(),
                    &oracle_tips(&index, side)[..],
                    "side {side} diverged from BUP"
                );
            }
            assert!(
                policies.contains(&UpdatePolicy::FullRecompute)
                    || policies.contains(&UpdatePolicy::SeededRepeel),
                "schedule never exercised a recompute: {policies:?}"
            );
        }
    }

    #[test]
    fn policy_strings() {
        assert_eq!(UpdatePolicy::Unchanged.as_str(), "unchanged");
        assert_eq!(UpdatePolicy::SeededRepeel.as_str(), "seeded-repeel");
        assert_eq!(UpdatePolicy::FullRecompute.as_str(), "full-recompute");
    }

    #[test]
    fn fnv_checksum_properties() {
        assert_eq!(fnv1a_u64(&[]), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a_u64(&[1, 2]), fnv1a_u64(&[2, 1]));
        assert_eq!(fnv1a_u64(&[3, 4]), fnv1a_u64(&[3, 4]));
    }
}

//! Abstraction over min-priority queues with `decrease_key`.
//!
//! Bottom-up peeling only needs three operations — extract-min,
//! decrease-key, and key lookup — so the queue behind it is swappable.
//! §5.1 of the paper compares a k-way indexed heap (fastest in practice),
//! Fibonacci heaps (best asymptotics, Theorem 3), and the bucketing
//! structure of Sariyüce et al.; implementing the trait for each makes the
//! comparison a one-line ablation (see `benches/kernels.rs` and
//! [`crate::bup::peel_all_with_queue`]).

/// Minimal interface for a peeling priority queue over dense ids.
pub trait DecreaseKeyQueue {
    /// Removes and returns the minimum `(id, key)`; ties broken by id.
    fn pop_min(&mut self) -> Option<(u32, u64)>;
    /// Lowers the key of `id` (no-op when absent or not lower).
    fn decrease_key(&mut self, id: u32, new_key: u64);
    /// Current key of a still-contained id.
    fn key(&self, id: u32) -> Option<u64>;
    fn is_empty(&self) -> bool;
}

impl DecreaseKeyQueue for crate::heap::IndexedMinHeap {
    fn pop_min(&mut self) -> Option<(u32, u64)> {
        crate::heap::IndexedMinHeap::pop_min(self)
    }
    fn decrease_key(&mut self, id: u32, new_key: u64) {
        crate::heap::IndexedMinHeap::decrease_key(self, id, new_key)
    }
    fn key(&self, id: u32) -> Option<u64> {
        crate::heap::IndexedMinHeap::key(self, id)
    }
    fn is_empty(&self) -> bool {
        crate::heap::IndexedMinHeap::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut impl DecreaseKeyQueue) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        while let Some(x) = q.pop_min() {
            out.push(x);
        }
        out
    }

    #[test]
    fn trait_objects_work_for_both_queues() {
        let keys = [4u64, 1, 3, 1];
        let mut heap = crate::heap::IndexedMinHeap::new(4, &keys);
        let mut fib = crate::fibheap::FibonacciHeap::new(&keys);
        let a = drain(&mut heap);
        let b = drain(&mut fib);
        assert_eq!(a, b);
        assert_eq!(a, vec![(1, 1), (3, 1), (2, 3), (0, 4)]);
    }

    #[test]
    fn decrease_key_through_trait() {
        fn lower_then_pop(q: &mut impl DecreaseKeyQueue) -> (u32, u64) {
            q.decrease_key(2, 0);
            assert_eq!(q.key(2), Some(0));
            q.pop_min().unwrap()
        }
        let keys = [5u64, 6, 7];
        let mut heap = crate::heap::IndexedMinHeap::new(2, &keys);
        let mut fib = crate::fibheap::FibonacciHeap::new(&keys);
        assert_eq!(lower_then_pop(&mut heap), (2, 0));
        assert_eq!(lower_then_pop(&mut fib), (2, 0));
    }
}

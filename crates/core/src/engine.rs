//! The epoch-snapshot engine: one owner for the dynamic triple.
//!
//! Every earlier surface (`tipdecomp stream`, `repro dynamic`, the
//! differential suites) hand-wired a [`DynamicBigraph`] +
//! [`DynamicButterflyIndex`] + two [`DynamicTipState`]s and called their
//! update methods in the right order. [`StreamEngine`] owns that triple
//! behind a single `apply_batch` entry point and, after every batch,
//! publishes an immutable [`EngineSnapshot`] — compacted adjacency,
//! per-vertex and per-edge butterfly counts, both sides' tip numbers —
//! stamped with a monotonically increasing epoch.
//!
//! The publication discipline is the Polynesia-style update/read split:
//! writers serialize on a `Mutex` around the mutable triple; the snapshot
//! swap is a short `RwLock<Arc<_>>` write. Readers clone the `Arc` under
//! the read lock and then query entirely lock-free — a reader never blocks
//! on a running batch, and every answer it computes from one snapshot is
//! internally consistent with that snapshot's epoch.
//!
//! [`DynamicBigraph`]: bigraph::dynamic::DynamicBigraph

use crate::dynamic::{verify_against_scratch, DynamicTipState, ScratchArtifacts, TipUpdate};
use crate::wal::{DurableLog, Store, TailRepair};
use crate::Config;
use bigraph::dynamic::EdgeOp;
use bigraph::{BipartiteCsr, Side};
use butterfly::{BatchDelta, DynamicButterflyIndex};
use parking_lot::{Mutex, RwLock};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Construction knobs for a [`StreamEngine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Decomposition configuration used by the tip updates (partitions,
    /// heap arity, pinned thread count, HUC/DGM toggles).
    pub config: Config,
    /// Dirty fraction beyond which a batch falls back to full recompute.
    pub dirty_threshold: f64,
    /// Overlay compaction threshold of the underlying [`bigraph::dynamic::DynamicBigraph`].
    pub compact_threshold: f64,
    /// Differentially check every batch against the from-scratch oracles;
    /// [`StreamEngine::apply_batch`] then fails loudly on divergence and
    /// each [`BatchOutcome`] carries the priced [`ScratchArtifacts`].
    pub verify: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            config: Config::default(),
            dirty_threshold: crate::dynamic::DEFAULT_DIRTY_THRESHOLD,
            compact_threshold: bigraph::dynamic::DEFAULT_COMPACT_THRESHOLD,
            verify: false,
        }
    }
}

// The read path itself — `EngineSnapshot` and its query methods — lives
// in [`crate::snapshot`], where the lint's `no-lock-in-read-path` rule
// watches it. Re-exported here so `engine::EngineSnapshot` keeps working.
pub use crate::snapshot::{DenseVertex, EngineSnapshot};

/// What one `apply_batch` did, including the snapshot it published.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Epoch of the published snapshot.
    pub epoch: u64,
    /// Structural + butterfly delta from the incremental index.
    pub delta: BatchDelta,
    /// U-side tip-update telemetry.
    pub update_u: TipUpdate,
    /// V-side tip-update telemetry.
    pub update_v: TipUpdate,
    /// Wall-clock of the incremental update (index + both tip updates +
    /// snapshot build), excluding verification.
    pub time: Duration,
    /// From-scratch oracle artifacts and the time they cost — present iff
    /// the engine runs with `verify` on.
    pub scratch: Option<ScratchArtifacts>,
    /// Wall-clock of the oracle check, when `verify` is on.
    pub time_verify: Option<Duration>,
    /// WAL sequence number the batch was committed under — present iff
    /// the engine is durable ([`StreamEngine::open_durable`]).
    pub lsn: Option<u64>,
    /// Why the post-publish checkpoint fold failed, if it did. Non-fatal:
    /// the batch itself is committed and applied, the previous WAL and
    /// checkpoint stay in effect, and the next due boundary retries.
    pub checkpoint_error: Option<String>,
    /// The snapshot published for this epoch.
    pub snapshot: Arc<EngineSnapshot>,
}

impl BatchOutcome {
    /// The tip update of the chosen side.
    pub fn update(&self, side: Side) -> &TipUpdate {
        match side {
            Side::U => &self.update_u,
            Side::V => &self.update_v,
        }
    }
}

/// Mutable state behind the writer lock: the triple plus the epoch
/// counter and (for durable engines) the WAL sink, so append → apply →
/// publish is atomic with respect to other writers.
struct EngineCore {
    index: DynamicButterflyIndex,
    tip_u: DynamicTipState,
    tip_v: DynamicTipState,
    epoch: u64,
    log: Option<DurableLog>,
}

impl EngineCore {
    fn snapshot(&self) -> EngineSnapshot {
        let graph = self.index.materialize();
        let edge_counts = graph
            .edges()
            .map(|(u, v)| self.index.edge_count(u, v))
            .collect();
        EngineSnapshot {
            epoch: self.epoch,
            counts_u: self.index.counts_side(Side::U).to_vec(),
            counts_v: self.index.counts_side(Side::V).to_vec(),
            edge_counts,
            total_butterflies: self.index.total_butterflies(),
            tip_u: self.tip_u.tip().to_vec(),
            tip_v: self.tip_v.tip().to_vec(),
            graph,
        }
    }
}

/// The resident owner of the dynamic triple. Writers funnel through
/// [`Self::apply_batch`]; readers grab [`Self::snapshot`] and query it
/// without ever blocking on a batch.
pub struct StreamEngine {
    inner: Mutex<EngineCore>,
    published: RwLock<Arc<EngineSnapshot>>,
    options: EngineOptions,
}

impl StreamEngine {
    /// Builds the triple from a loaded graph (one full parallel count +
    /// both sides' initial peels) and publishes the epoch-0 snapshot.
    pub fn new(graph: BipartiteCsr, options: EngineOptions) -> Self {
        let index = DynamicButterflyIndex::with_threshold(graph, options.compact_threshold);
        let tip_u = DynamicTipState::with_threshold(
            &index,
            Side::U,
            options.config.clone(),
            options.dirty_threshold,
        );
        let tip_v = DynamicTipState::with_threshold(
            &index,
            Side::V,
            options.config.clone(),
            options.dirty_threshold,
        );
        let core = EngineCore {
            index,
            tip_u,
            tip_v,
            epoch: 0,
            log: None,
        };
        let snapshot = Arc::new(core.snapshot());
        StreamEngine {
            inner: Mutex::new(core),
            published: RwLock::new(snapshot),
            options,
        }
    }

    /// The options the engine was constructed with.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.published.read().epoch
    }

    /// The currently published snapshot. Readers clone the `Arc` under a
    /// short read lock and then query entirely without synchronization.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        Arc::clone(&self.published.read())
    }

    /// Applies one batch through the whole triple — incremental butterfly
    /// maintenance, then both sides' tip updates — and publishes the next
    /// epoch's snapshot. Concurrent writers serialize; readers keep
    /// serving the previous snapshot until the swap.
    ///
    /// With `verify` on, the batch is differentially checked against the
    /// from-scratch oracles before publication; a divergence returns
    /// `Err` and publishes nothing.
    ///
    /// For durable engines, a checkpoint fold that fails *after* the
    /// batch is committed and published is never an `Err` (retrying the
    /// batch would double-apply it) — it rides the outcome as
    /// [`BatchOutcome::checkpoint_error`] and the fold is retried at the
    /// next due boundary.
    pub fn apply_batch(&self, ops: &[EdgeOp]) -> Result<BatchOutcome, String> {
        self.apply_batch_inner(ops, true)
    }

    /// The shared batch path. With `durable` off the WAL is bypassed —
    /// used by recovery and time travel (`receipt::version`) to re-apply
    /// records that are already committed.
    pub(crate) fn apply_batch_inner(
        &self,
        ops: &[EdgeOp],
        durable: bool,
    ) -> Result<BatchOutcome, String> {
        let mut guard = self.inner.lock();
        // Reborrow through the guard so the field borrows split.
        let core = &mut *guard;
        // Append-then-apply: the record is durable (written + fsynced)
        // before any in-memory state moves, so the WAL is never behind
        // the published state.
        let lsn = match (durable, core.log.as_mut()) {
            (true, Some(log)) => Some(
                log.append(ops)
                    .map_err(|e| format!("wal append failed: {e}"))?,
            ),
            _ => None,
        };
        let t0 = Instant::now();
        let delta = core.index.apply_batch(ops);
        let update_u = core.tip_u.update(&core.index, &delta);
        let update_v = core.tip_v.update(&core.index, &delta);
        core.epoch += 1;
        let snapshot = Arc::new(core.snapshot());
        let time = t0.elapsed();

        let (scratch, time_verify) = if self.options.verify {
            let tv = Instant::now();
            let artifacts = verify_against_scratch(&core.index, &[&core.tip_u, &core.tip_v])
                .map_err(|e| format!("epoch {}: {e}", core.epoch))?;
            (Some(artifacts), Some(tv.elapsed()))
        } else {
            (None, None)
        };

        *self.published.write() = Arc::clone(&snapshot);

        // Checkpoint after publish: fold the fully applied base into a
        // fresh binary snapshot when the cadence says one is due. The
        // snapshot's materialized graph *is* the state at this LSN. A
        // failed fold is NOT a batch failure — by now the batch is
        // WAL-committed, applied, and published, and an `Err` here would
        // invite a retry that double-applies the ops — so the error rides
        // the outcome and the old WAL/cadence retry at the next boundary.
        let checkpoint_error = match (lsn, core.log.as_mut()) {
            (Some(lsn), Some(log)) => log
                .maybe_checkpoint(snapshot.graph(), lsn)
                .err()
                .map(|e| format!("checkpoint at lsn {lsn} failed: {e}")),
            _ => None,
        };

        Ok(BatchOutcome {
            epoch: core.epoch,
            delta,
            update_u,
            update_v,
            time,
            scratch,
            time_verify,
            lsn,
            checkpoint_error,
            snapshot,
        })
    }

    /// Runs the shared differential gate against the current state,
    /// regardless of the `verify` option.
    pub fn verify_against_scratch(&self) -> Result<ScratchArtifacts, String> {
        let core = self.inner.lock();
        verify_against_scratch(&core.index, &[&core.tip_u, &core.tip_v])
    }

    /// Cumulative compactions of the underlying overlay graph.
    pub fn compactions(&self) -> u64 {
        self.inner.lock().index.graph().compactions()
    }

    /// LSN of the last committed batch, for durable engines.
    pub fn end_lsn(&self) -> Option<u64> {
        self.inner.lock().log.as_ref().map(|log| log.end_lsn())
    }

    /// LSN of the last checkpoint, for durable engines.
    pub fn checkpoint_lsn(&self) -> Option<u64> {
        self.inner
            .lock()
            .log
            .as_ref()
            .map(|log| log.checkpoint_lsn())
    }

    /// Directory of the attached durable store, for durable engines.
    /// Versioning surfaces (serve-mode `tag`/`at`) use this to reach the
    /// store's `versions.meta` next to the WAL.
    pub fn store_dir(&self) -> Option<std::path::PathBuf> {
        self.inner
            .lock()
            .log
            .as_ref()
            .map(|log| log.dir().to_path_buf())
    }

    fn attach_log(&self, log: DurableLog) {
        self.inner.lock().log = Some(log);
    }

    /// Opens (or initializes) a durable engine over the store directory
    /// `dir` (`FORMATS.md` §4).
    ///
    /// * No store at `dir`: one is initialized from `init_graph` (an
    ///   error if `None`) — snapshot at LSN 0, empty WAL.
    /// * Existing store: the base snapshot is loaded, the WAL is
    ///   recovered (torn tail repaired and reported), and every committed
    ///   record past the checkpoint is replayed through the full triple
    ///   before the engine is handed back. `init_graph` is ignored — the
    ///   store is the durable truth.
    ///
    /// Subsequent [`Self::apply_batch`] calls append to the WAL before
    /// applying, and fold a fresh checkpoint every `checkpoint_every`
    /// batches (`0` = never).
    pub fn open_durable(
        dir: &Path,
        init_graph: Option<BipartiteCsr>,
        options: EngineOptions,
        checkpoint_every: u64,
    ) -> Result<(StreamEngine, RecoveryInfo), String> {
        if !Store::exists(dir) {
            let graph = init_graph.ok_or_else(|| {
                format!(
                    "no store at {} and no initial graph to create one from",
                    dir.display()
                )
            })?;
            let (store, wal) = Store::init(dir, &graph).map_err(|e| e.to_string())?;
            let engine = StreamEngine::new(graph, options);
            engine.attach_log(DurableLog::new(store, wal, 0, checkpoint_every));
            return Ok((
                engine,
                RecoveryInfo {
                    created: true,
                    checkpoint_lsn: 0,
                    wal_records: 0,
                    replayed: 0,
                    skipped: 0,
                    end_lsn: 0,
                    repaired: None,
                },
            ));
        }
        let rec = Store::recover(dir).map_err(|e| e.to_string())?;
        let engine = StreamEngine::new(rec.graph, options);
        for record in &rec.batches {
            engine
                .apply_batch_inner(&record.ops, false)
                .map_err(|e| format!("replaying lsn {}: {e}", record.lsn))?;
        }
        let info = RecoveryInfo {
            created: false,
            checkpoint_lsn: rec.checkpoint_lsn,
            wal_records: rec.skipped + rec.batches.len(),
            replayed: rec.batches.len(),
            skipped: rec.skipped,
            end_lsn: rec.wal.end_lsn(),
            repaired: rec.repair,
        };
        engine.attach_log(DurableLog::new(
            rec.store,
            rec.wal,
            rec.checkpoint_lsn,
            checkpoint_every,
        ));
        Ok((engine, info))
    }
}

/// What [`StreamEngine::open_durable`] found on disk and did about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// `true` if no store existed and a fresh one was initialized.
    pub created: bool,
    /// The checkpoint pointer's LSN.
    pub checkpoint_lsn: u64,
    /// Committed records found in the WAL.
    pub wal_records: usize,
    /// Records past the checkpoint, replayed through the engine.
    pub replayed: usize,
    /// Records at or below the checkpoint, already folded into the base.
    pub skipped: usize,
    /// Last committed LSN — new appends continue from here.
    pub end_lsn: u64,
    /// The torn-tail repair performed on the WAL, if any.
    pub repaired: Option<TailRepair>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::from_edges;
    use bigraph::dynamic::seeded_schedule;
    use bigraph::gen;

    fn verifying(graph: BipartiteCsr) -> StreamEngine {
        StreamEngine::new(
            graph,
            EngineOptions {
                verify: true,
                ..EngineOptions::default()
            },
        )
    }

    #[test]
    fn epoch_zero_snapshot_answers_match_oracles() {
        let g = gen::planted_bicliques(20, 20, 2, 4, 4, 30, 3);
        let engine = verifying(g.clone());
        let snap = engine.snapshot();
        assert_eq!(snap.epoch(), 0);
        let counts = butterfly::count_graph(&g);
        assert_eq!(snap.counts_side(Side::U), &counts.u[..]);
        assert_eq!(snap.total_butterflies(), counts.total());
        let oracle = crate::bup::bup_decompose(&g, Side::U, 4);
        assert_eq!(snap.tip_side(Side::U), &oracle.tip[..]);
        assert_eq!(
            snap.theta_max(Side::U),
            oracle.tip.iter().copied().max().unwrap()
        );
        engine.verify_against_scratch().unwrap();
    }

    #[test]
    fn apply_batch_publishes_next_epoch() {
        let g = from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let engine = verifying(g);
        let before = engine.snapshot();
        let outcome = engine.apply_batch(&[EdgeOp::Insert(1, 1)]).unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.delta.gained, 1);
        assert_eq!(engine.epoch(), 1);
        // The pre-batch snapshot is untouched (readers holding it keep a
        // consistent view).
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.total_butterflies(), 0);
        assert_eq!(engine.snapshot().total_butterflies(), 1);
        assert!(outcome.scratch.is_some());
    }

    #[test]
    fn point_queries_answer_from_the_snapshot() {
        let g = from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let engine = verifying(g);
        let snap = engine.snapshot();
        assert_eq!(snap.tip(Side::U, 0), Some(1));
        assert_eq!(snap.tip(Side::U, 7), None, "out of range");
        assert_eq!(snap.vertex_butterflies(Side::V, 1), Some(1));
        assert_eq!(snap.edge_butterflies(0, 1), Some(1));
        assert_eq!(snap.edge_butterflies(1, 7), None, "absent edge");
    }

    #[test]
    fn top_k_ranking_is_deterministic() {
        // u0/u1 share the butterfly (tip 1); u2 is a pendant (tip 0).
        let g = from_edges(3, 2, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)]).unwrap();
        let engine = verifying(g);
        let snap = engine.snapshot();
        let top = snap.top_k_densest(Side::U, 2);
        assert_eq!(top.len(), 2);
        assert_eq!((top[0].id, top[0].tip), (0, 1), "ties break by id");
        assert_eq!((top[1].id, top[1].tip), (1, 1));
        assert!(snap.top_k_densest(Side::U, 10).len() == 3, "k capped");
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("engine_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn durable_engine_survives_restart() {
        let dir = temp_store("restart");
        let g = gen::zipf(40, 30, 180, 0.5, 0.9, 71);
        let schedule = seeded_schedule(&g, 3, 30, 73);
        let (engine, info) =
            StreamEngine::open_durable(&dir, Some(g), EngineOptions::default(), 0).unwrap();
        assert!(info.created);
        for batch in &schedule {
            let outcome = engine.apply_batch(batch).unwrap();
            assert_eq!(
                outcome.lsn,
                Some(outcome.epoch),
                "fresh store: lsn == epoch"
            );
        }
        let snap = engine.snapshot();
        let (cu, cv) = (snap.tip_checksum(Side::U), snap.tip_checksum(Side::V));
        drop(engine);

        let (engine, info) =
            StreamEngine::open_durable(&dir, None, EngineOptions::default(), 0).unwrap();
        assert!(!info.created);
        assert_eq!(info.replayed, schedule.len());
        assert_eq!(info.end_lsn, schedule.len() as u64);
        let snap = engine.snapshot();
        assert_eq!(snap.tip_checksum(Side::U), cu);
        assert_eq!(snap.tip_checksum(Side::V), cv);
        engine.verify_against_scratch().unwrap();
        // The recovered engine keeps appending at the right LSN.
        let outcome = engine.apply_batch(&schedule[0]).unwrap();
        assert_eq!(outcome.lsn, Some(schedule.len() as u64 + 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_engine_checkpoints_and_recovers_from_the_fold() {
        let dir = temp_store("ckpt");
        let g = gen::zipf(40, 30, 160, 0.5, 0.9, 81);
        let schedule = seeded_schedule(&g, 5, 25, 83);
        let (engine, _) =
            StreamEngine::open_durable(&dir, Some(g), EngineOptions::default(), 2).unwrap();
        for batch in &schedule {
            engine.apply_batch(batch).unwrap();
        }
        // 5 batches, cadence 2: checkpoints at 2 and 4, one record left.
        assert_eq!(engine.checkpoint_lsn(), Some(4));
        assert_eq!(engine.end_lsn(), Some(5));
        let snap = engine.snapshot();
        let (cu, cv) = (snap.tip_checksum(Side::U), snap.tip_checksum(Side::V));
        drop(engine);

        let (engine, info) =
            StreamEngine::open_durable(&dir, None, EngineOptions::default(), 2).unwrap();
        assert_eq!(info.checkpoint_lsn, 4);
        assert_eq!(info.replayed, 1);
        let snap = engine.snapshot();
        assert_eq!(snap.tip_checksum(Side::U), cu);
        assert_eq!(snap.tip_checksum(Side::V), cv);
        engine.verify_against_scratch().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_failure_is_nonfatal_and_retried_at_the_next_boundary() {
        let dir = temp_store("ckpt_fail");
        let g = from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let (engine, _) =
            StreamEngine::open_durable(&dir, Some(g), EngineOptions::default(), 1).unwrap();
        // Sabotage the fold: with the store directory gone the snapshot
        // temp file cannot be created, but the WAL append still reaches
        // the already-open file handle — the batch commits fine.
        std::fs::remove_dir_all(&dir).unwrap();
        let outcome = engine.apply_batch(&[EdgeOp::Insert(1, 1)]).unwrap();
        assert_eq!(outcome.lsn, Some(1), "batch committed despite the fold");
        let err = outcome
            .checkpoint_error
            .as_deref()
            .expect("fold must fail with the directory gone");
        assert!(err.contains("checkpoint at lsn 1 failed"), "{err}");
        // Applied and published; the old checkpoint/cadence stay put.
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.checkpoint_lsn(), Some(0), "old checkpoint kept");
        assert_eq!(engine.end_lsn(), Some(1));
        // Restore the directory: the next boundary retries and succeeds.
        std::fs::create_dir_all(&dir).unwrap();
        let outcome = engine.apply_batch(&[EdgeOp::Delete(0, 1)]).unwrap();
        assert_eq!(outcome.checkpoint_error, None);
        assert_eq!(engine.checkpoint_lsn(), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_durable_without_store_or_graph_is_an_error() {
        let dir = temp_store("nograph");
        let err = match StreamEngine::open_durable(&dir, None, EngineOptions::default(), 0) {
            Ok(_) => panic!("expected an error"),
            Err(e) => e,
        };
        assert!(err.contains("no store at"), "{err}");
        assert!(err.contains(dir.to_str().unwrap()), "pathful: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verified_schedule_tracks_oracles_every_epoch() {
        let g = gen::zipf(40, 30, 180, 0.5, 0.9, 61);
        let schedule = seeded_schedule(&g, 4, 25, 67);
        let engine = StreamEngine::new(
            g,
            EngineOptions {
                verify: true,
                dirty_threshold: 0.1,
                compact_threshold: 0.15,
                config: Config::default().with_partitions(6),
            },
        );
        for (i, batch) in schedule.iter().enumerate() {
            let outcome = engine.apply_batch(batch).unwrap();
            assert_eq!(outcome.epoch, i as u64 + 1);
            assert_eq!(outcome.snapshot.epoch(), outcome.epoch);
            // Snapshot-internal consistency: each butterfly carries 2
            // vertices per side and 4 edges.
            let snap = &outcome.snapshot;
            let total = snap.total_butterflies();
            assert_eq!(snap.counts_side(Side::U).iter().sum::<u64>(), 2 * total);
            assert_eq!(snap.counts_side(Side::V).iter().sum::<u64>(), 2 * total);
            assert_eq!(snap.edge_counts().iter().sum::<u64>(), 4 * total);
        }
        engine.verify_against_scratch().unwrap();
    }
}

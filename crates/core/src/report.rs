//! Machine-readable run reports — the stable JSON schema emitted by
//! `tipdecomp --json` and the `repro` harness.
//!
//! Every report starts with `schema_version` and `kind` so downstream
//! tooling (golden-snapshot tests, the differential runner, EXPERIMENTS.md
//! refreshes, cross-PR perf trajectories) can dispatch and evolve without
//! sniffing field shapes. Timing fields are real measurements and therefore
//! nondeterministic; [`scrub_timings`] canonicalizes them to zero so
//! snapshots and diffs compare only machine-independent quantities
//! (counts, tip/wing numbers, wedge work, sync rounds).

use crate::engine::{BatchOutcome, EngineSnapshot};
use crate::wing_parallel::WingMetrics;
use crate::{Config, Metrics, TipDecomposition};
use bigraph::Side;
use serde::{Deserialize, Serialize};

/// Bumped whenever a field is renamed, removed, or changes meaning.
/// (Purely additive fields do not require a bump.)
pub const SCHEMA_VERSION: u32 = 1;

/// Full result of one `tip` decomposition run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TipReport {
    pub schema_version: u32,
    /// Always `"tip"`.
    pub kind: String,
    /// Input path or dataset label, as given on the command line.
    pub input: String,
    pub side: Side,
    pub config: Config,
    pub num_vertices: usize,
    pub theta_max: u64,
    /// `tip[u] = θ_u` for every vertex of the decomposed side.
    pub tip: Vec<u64>,
    pub metrics: Metrics,
}

impl TipReport {
    pub fn new(input: impl Into<String>, config: &Config, d: &TipDecomposition) -> Self {
        TipReport {
            schema_version: SCHEMA_VERSION,
            kind: "tip".to_string(),
            input: input.into(),
            side: d.side,
            config: config.clone(),
            num_vertices: d.tip.len(),
            theta_max: d.theta_max(),
            tip: d.tip.clone(),
            metrics: d.metrics.clone(),
        }
    }
}

/// Full result of one `wing` decomposition run (sequential or parallel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WingReport {
    pub schema_version: u32,
    /// Always `"wing"`.
    pub kind: String,
    pub input: String,
    pub side: Side,
    /// `P` for the RECEIPT-style parallel path; 0 means the sequential
    /// bottom-up peel was used.
    pub partitions: usize,
    pub num_edges: usize,
    pub max_wing: u64,
    /// Edges in primary-CSR order, each `[u, v]`.
    pub edges: Vec<(u32, u32)>,
    /// `wing[e]` = wing number of `edges[e]`.
    pub wing: Vec<u64>,
    /// Intersection-step work of the run (diagnostic).
    pub work: u64,
    /// Phase metrics; `null` for the sequential path.
    pub wing_metrics: Option<WingMetrics>,
}

impl WingReport {
    pub fn new(
        input: impl Into<String>,
        side: Side,
        partitions: usize,
        d: &crate::wing::WingDecomposition,
        wing_metrics: Option<WingMetrics>,
    ) -> Self {
        WingReport {
            schema_version: SCHEMA_VERSION,
            kind: "wing".to_string(),
            input: input.into(),
            side,
            partitions,
            num_edges: d.edges.len(),
            max_wing: d.max_wing(),
            edges: d.edges.clone(),
            wing: d.wing.clone(),
            work: d.work,
            wing_metrics,
        }
    }
}

/// Per-vertex butterfly counts of one `count` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountReport {
    pub schema_version: u32,
    /// Always `"count"`.
    pub kind: String,
    pub input: String,
    pub num_u: usize,
    pub num_v: usize,
    pub total_butterflies: u64,
    pub u: Vec<u64>,
    pub v: Vec<u64>,
}

impl CountReport {
    pub fn new(input: impl Into<String>, counts: &butterfly::VertexCounts) -> Self {
        let total = counts.total();
        CountReport {
            schema_version: SCHEMA_VERSION,
            kind: "count".to_string(),
            input: input.into(),
            num_u: counts.u.len(),
            num_v: counts.v.len(),
            total_butterflies: total,
            u: counts.u.clone(),
            v: counts.v.clone(),
        }
    }
}

/// One `tipdecomp stream` run: the per-batch trajectory of an incremental
/// tip decomposition over a stream of edge-update batches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    pub schema_version: u32,
    /// Always `"stream"`.
    pub kind: String,
    /// Graph file, as given on the command line.
    pub input: String,
    /// Batch (ops) file.
    pub ops: String,
    pub side: Side,
    pub config: Config,
    /// Dirty fraction beyond which a batch fell back to full recompute.
    pub dirty_threshold: f64,
    /// Every batch was differentially checked against a from-scratch
    /// recount + BUP re-peel (`--verify`).
    pub verified: bool,
    pub batches: Vec<StreamBatchReport>,
    /// Final graph/decomposition state after the last batch.
    pub final_num_edges: usize,
    pub final_total_butterflies: u64,
    pub final_theta_max: u64,
    /// FNV-1a digest of the final tip numbers in id order.
    pub final_tip_checksum: u64,
}

/// One batch of a `stream` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamBatchReport {
    /// 0-based batch index.
    pub batch: usize,
    pub inserted: usize,
    pub deleted: usize,
    /// No-op ops (duplicate inserts, deletes of absent edges, overridden
    /// ops within the batch).
    pub skipped: usize,
    /// The batch tripped the overlay compaction threshold.
    pub compacted: bool,
    pub butterflies_gained: u64,
    pub butterflies_lost: u64,
    pub total_butterflies: u64,
    /// Intersection steps the incremental counter spent on this batch.
    pub update_work: u64,
    /// Tip-update policy (`unchanged` / `seeded-repeel` /
    /// `full-recompute`).
    pub policy: crate::dynamic::UpdatePolicy,
    /// Peel-side vertices on a changed butterfly.
    pub dirty: usize,
    pub dirty_fraction: f64,
    /// Wedges traversed by the tip update.
    pub peel_wedges: u64,
    pub theta_max: u64,
    /// FNV-1a digest of the tip numbers after this batch.
    pub tip_checksum: u64,
    pub time_update_secs: f64,
}

impl StreamBatchReport {
    /// The row a [`BatchOutcome`] of [`crate::engine::StreamEngine`]
    /// produces for one side — the shared shape behind `tipdecomp stream`,
    /// serve-mode `apply` responses, and the `repro` drivers.
    pub fn from_outcome(batch: usize, side: Side, outcome: &BatchOutcome) -> Self {
        let update = outcome.update(side);
        let snapshot = &outcome.snapshot;
        StreamBatchReport {
            batch,
            inserted: outcome.delta.application.inserted.len(),
            deleted: outcome.delta.application.deleted.len(),
            skipped: outcome.delta.application.skipped,
            compacted: outcome.delta.application.compacted,
            butterflies_gained: outcome.delta.gained,
            butterflies_lost: outcome.delta.lost,
            total_butterflies: snapshot.total_butterflies(),
            update_work: outcome.delta.work,
            policy: update.policy,
            dirty: update.dirty,
            dirty_fraction: update.dirty_fraction,
            peel_wedges: update.wedges,
            theta_max: snapshot.theta_max(side),
            tip_checksum: snapshot.tip_checksum(side),
            time_update_secs: outcome.time.as_secs_f64(),
        }
    }
}

/// One serve-mode response frame. The vendored `serde_derive` cannot emit
/// data-carrying enums, so every answer shape shares this one struct:
/// `op` echoes the request's operation and exactly the fields that
/// operation produces are non-`null`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeResponse {
    pub schema_version: u32,
    /// Always `"serve"`.
    pub kind: String,
    /// 0-based sequence number of the request within the session.
    pub seq: u64,
    /// Echo of the request operation (`tip` / `butterflies` / `topk` /
    /// `stats` / `epoch` / `apply` / `shutdown`).
    pub op: String,
    /// Epoch of the snapshot that answered (for `apply`: the epoch it
    /// published).
    pub epoch: u64,
    pub ok: bool,
    /// Present iff `ok` is false.
    pub error: Option<String>,
    /// Scalar answer: a tip number or a butterfly count.
    pub value: Option<u64>,
    pub topk: Option<Vec<TopKEntry>>,
    pub stats: Option<ServeStats>,
    /// The per-batch row of an `apply`.
    pub batch: Option<StreamBatchReport>,
    /// The ref a `tag` created or an `at` resolved (`VERSIONING.md`
    /// §3.2/§4); `at` answers additionally carry the historical state in
    /// `stats`.
    pub version: Option<VersionEntryReport>,
}

impl ServeResponse {
    /// A skeleton response with every answer field empty; fill the one the
    /// operation produces.
    pub fn new(seq: u64, op: impl Into<String>, epoch: u64) -> Self {
        ServeResponse {
            schema_version: SCHEMA_VERSION,
            kind: "serve".to_string(),
            seq,
            op: op.into(),
            epoch,
            ok: true,
            error: None,
            value: None,
            topk: None,
            stats: None,
            batch: None,
            version: None,
        }
    }

    /// An error response for a request that could not be answered.
    pub fn error(seq: u64, op: impl Into<String>, epoch: u64, message: impl Into<String>) -> Self {
        let mut r = ServeResponse::new(seq, op, epoch);
        r.ok = false;
        r.error = Some(message.into());
        r
    }
}

/// One row of a `topk` answer, densest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopKEntry {
    pub id: u32,
    pub side: Side,
    pub tip: u64,
    pub butterflies: u64,
}

/// The `stats` answer: the snapshot's aggregate state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    pub epoch: u64,
    pub num_u: usize,
    pub num_v: usize,
    pub num_edges: usize,
    pub total_butterflies: u64,
    pub theta_max_u: u64,
    pub theta_max_v: u64,
    /// FNV-1a digests of the tip numbers in id order, per side.
    pub tip_checksum_u: u64,
    pub tip_checksum_v: u64,
}

impl ServeStats {
    pub fn from_snapshot(snapshot: &EngineSnapshot) -> Self {
        ServeStats {
            epoch: snapshot.epoch(),
            num_u: snapshot.graph().num_u(),
            num_v: snapshot.graph().num_v(),
            num_edges: snapshot.graph().num_edges(),
            total_butterflies: snapshot.total_butterflies(),
            theta_max_u: snapshot.theta_max(Side::U),
            theta_max_v: snapshot.theta_max(Side::V),
            tip_checksum_u: snapshot.tip_checksum(Side::U),
            tip_checksum_v: snapshot.tip_checksum(Side::V),
        }
    }
}

/// Whole-document report of a scripted serve session (`tipdecomp serve
/// --requests`): every response in request order plus the final state —
/// the serve analog of [`StreamReport`], golden-snapshot friendly after
/// [`scrub_timings`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSessionReport {
    pub schema_version: u32,
    /// Always `"serve-session"`.
    pub kind: String,
    /// Graph file, as given on the command line.
    pub input: String,
    /// Requests file (newline-delimited JSON).
    pub requests: String,
    /// Every applied batch was differentially verified in-engine.
    pub verified: bool,
    pub responses: Vec<ServeResponse>,
    pub final_stats: ServeStats,
    pub time_session_secs: f64,
}

/// One `tipdecomp convert` run: a format conversion between the KONECT
/// text edge list and the checksummed `BGR` binary image (`FORMATS.md`
/// §1). `bytes_in`/`bytes_out` are on-disk file sizes — the load-cost
/// comparison in EXPERIMENTS.md is built from them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvertReport {
    pub schema_version: u32,
    /// Always `"convert"`.
    pub kind: String,
    /// Source path, as given on the command line.
    pub input: String,
    /// Destination path.
    pub output: String,
    /// Source format: `"text"` or `"binary"`.
    pub from: String,
    /// Destination format: `"text"` or `"binary"`.
    pub to: String,
    pub num_u: usize,
    pub num_v: usize,
    pub num_edges: usize,
    /// On-disk size of the source file.
    pub bytes_in: u64,
    /// On-disk size of the written file.
    pub bytes_out: u64,
    pub time_convert_secs: f64,
}

/// One `tipdecomp recover` run: what was found in the durable store
/// directory, what the WAL replay did, and the from-scratch oracle verdict
/// on the recovered state (`FORMATS.md` §4 recovery procedure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverReport {
    pub schema_version: u32,
    /// Always `"recover"`.
    pub kind: String,
    /// Store directory, as given on the command line.
    pub dir: String,
    /// LSN of the checkpoint the base snapshot was loaded from.
    pub checkpoint_lsn: u64,
    /// Committed records found in the WAL.
    pub wal_records: usize,
    /// Records past the checkpoint, replayed through the engine.
    pub replayed: usize,
    /// Records at or below the checkpoint, already folded into the base.
    pub skipped: usize,
    /// A torn tail was truncated off the WAL before replay.
    pub torn_tail_repaired: bool,
    /// Bytes the torn-tail repair discarded (0 if none).
    pub discarded_bytes: u64,
    /// Last committed LSN — new appends continue from here.
    pub end_lsn: u64,
    /// Engine epoch after replay (= records replayed).
    pub final_epoch: u64,
    pub num_u: usize,
    pub num_v: usize,
    pub num_edges: usize,
    pub total_butterflies: u64,
    /// FNV-1a digests of the recovered tip numbers in id order, per side.
    pub tip_checksum_u: u64,
    pub tip_checksum_v: u64,
    /// The recovered state passed `verify_against_scratch` (a failure is a
    /// run error, so an emitted report always says `true` — the field
    /// records that the check ran).
    pub verified: bool,
    pub time_recover_secs: f64,
    pub time_verify_secs: f64,
}

/// One version ref in JSON shape — the unit of `tipdecomp version`
/// answers and serve-mode `tag`/`at` responses (`VERSIONING.md` §1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionEntryReport {
    /// The tag name.
    pub name: String,
    /// Last WAL record included in the version (0 = initial graph).
    pub lsn: u64,
    pub total_butterflies: u64,
    /// FNV-1a digests of the tagged tip numbers in id order, per side.
    pub tip_checksum_u: u64,
    pub tip_checksum_v: u64,
}

impl VersionEntryReport {
    pub fn from_ref(vref: &crate::version::VersionRef) -> Self {
        VersionEntryReport {
            name: vref.name.clone(),
            lsn: vref.lsn,
            total_butterflies: vref.total_butterflies,
            tip_checksum_u: vref.tip_checksum_u,
            tip_checksum_v: vref.tip_checksum_v,
        }
    }
}

/// The `version diff` section: the net batch between two versions
/// (`VERSIONING.md` §5). `ops` uses the stream batch-file line syntax
/// (`+ u v` / `- u v`), so a diff written to a file replays through
/// `tipdecomp stream` as-is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionDiffReport {
    /// The older version (`a`).
    pub from: VersionEntryReport,
    /// The newer version (`b`).
    pub to: VersionEntryReport,
    /// Net insertions in the diff.
    pub inserts: usize,
    /// Net deletions in the diff.
    pub deletes: usize,
    /// The batch, one op per entry, ascending `(u, v)`.
    pub ops: Vec<String>,
}

/// The `version at` section: what time travel (`VERSIONING.md` §4)
/// found, replayed, and verified — the versioned sibling of
/// [`RecoverReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeTravelReport {
    /// The resolved version.
    pub version: VersionEntryReport,
    /// LSN of the checkpoint replay started from.
    pub checkpoint_lsn: u64,
    /// Committed records found in the WAL.
    pub wal_records: usize,
    /// Records replayed to reach the tag.
    pub replayed: usize,
    /// Records already folded into the base snapshot.
    pub skipped_folded: usize,
    /// Records above the tag LSN, deliberately not applied.
    pub skipped_above: usize,
    /// The WAL's last committed LSN.
    pub wal_end: u64,
    /// Engine epoch after replay (= records replayed).
    pub final_epoch: u64,
    pub num_u: usize,
    pub num_v: usize,
    pub num_edges: usize,
    pub total_butterflies: u64,
    pub theta_max_u: u64,
    pub theta_max_v: u64,
    /// FNV-1a digests of the materialized tip numbers, per side. Equal
    /// to the tagged checksums by §4 step 5 — `open_at` fails closed
    /// otherwise.
    pub tip_checksum_u: u64,
    pub tip_checksum_v: u64,
    /// The materialized state additionally passed
    /// `verify_against_scratch` (only run when requested; `false` means
    /// not run, a failure is a run error).
    pub verified: bool,
    pub time_travel_secs: f64,
    pub time_verify_secs: f64,
}

/// Whole-document report of one `tipdecomp version` run. One struct for
/// all four subcommands (the vendored `serde_derive` has no data
/// enums): `op` says which of `tag`/`list`/`diff`/`at` ran and exactly
/// that op's sections are non-`null`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionReport {
    pub schema_version: u32,
    /// Always `"version"`.
    pub kind: String,
    /// `"tag"`, `"list"`, `"diff"`, or `"at"`.
    pub op: String,
    /// Store directory, as given on the command line.
    pub dir: String,
    /// Every version in creation order (`list`, and `tag` after the
    /// append).
    pub versions: Option<Vec<VersionEntryReport>>,
    /// The ref a `tag` just created.
    pub tagged: Option<VersionEntryReport>,
    /// The `diff` section.
    pub diff: Option<VersionDiffReport>,
    /// The `at` section.
    pub at: Option<TimeTravelReport>,
}

impl VersionReport {
    /// A skeleton with every section empty; fill the one `op` produces.
    pub fn new(op: impl Into<String>, dir: impl Into<String>) -> Self {
        VersionReport {
            schema_version: SCHEMA_VERSION,
            kind: "version".to_string(),
            op: op.into(),
            dir: dir.into(),
            versions: None,
            tagged: None,
            diff: None,
            at: None,
        }
    }
}

/// One `tipdecomp derive` run (`VERSIONING.md` §6): which operator, its
/// inputs, and the shape of the graph it wrote.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeriveReport {
    pub schema_version: u32,
    /// Always `"derive"`.
    pub kind: String,
    /// `"subgraph"`, `"union"`, or `"diff"`.
    pub op: String,
    /// First input graph path.
    pub a: String,
    /// Second input graph path (`union`/`diff`; `null` for `subgraph`).
    pub b: Option<String>,
    /// The primary-side subset (`subgraph` only), as given.
    pub subset: Option<Vec<u32>>,
    /// Side the subset indexes (`subgraph` only).
    pub side: Option<Side>,
    /// Destination path of the derived graph.
    pub output: String,
    pub num_u: usize,
    pub num_v: usize,
    pub num_edges: usize,
    pub time_derive_secs: f64,
}

/// Canonicalizes every timing field in a parsed report so documents can be
/// compared across runs and machines: object values under keys starting
/// with `time_` are zeroed — `Duration` objects get `secs`/`nanos` set to
/// 0, plain numbers (`time_*_secs` floats in `repro` rows) become 0.
/// Recurses through arrays and objects — including `time_`-prefixed keys
/// holding non-timing containers (e.g. the `time_travel` row array of the
/// versions experiment), whose *nested* timing leaves must still be
/// scrubbed. Every other field is untouched.
///
/// This is the single source of truth for snapshot normalization: the
/// golden tests, the differential runner, and the CI drift check all call
/// it before comparing.
pub fn scrub_timings(value: &mut serde_json::Value) {
    match value {
        serde_json::Value::Array(items) => {
            for item in items {
                scrub_timings(item);
            }
        }
        serde_json::Value::Object(map) => {
            for (key, entry) in map.iter_mut() {
                if key.starts_with("time_") {
                    match entry {
                        serde_json::Value::Number(n) => {
                            *n = serde_json::Number::PosInt(0);
                        }
                        serde_json::Value::Object(duration)
                            if duration.get("secs").is_some()
                                && duration.get("nanos").is_some() =>
                        {
                            for field in ["secs", "nanos"] {
                                if let Some(v) = duration.get_mut(field) {
                                    *v = serde_json::Value::Number(serde_json::Number::PosInt(0));
                                }
                            }
                        }
                        other => scrub_timings(other),
                    }
                } else {
                    scrub_timings(entry);
                }
            }
        }
        _ => {}
    }
}

/// Canonicalizes the runtime-telemetry sections of a parsed report by
/// replacing any `scheduler` or `serve_telemetry` key's value with
/// `null`, recursively. Scheduler counters (steals, per-worker execution
/// counts) and serve-session throughput (reads served, reads per epoch)
/// depend on OS scheduling and are therefore nondeterministic run to run —
/// like timings, they are diagnostics, not results. Golden-snapshot and
/// cross-thread-count comparisons scrub them alongside [`scrub_timings`];
/// the CI scheduler gate reads them from the *unscrubbed* document via
/// `repro check-sched` instead.
pub fn scrub_scheduler(value: &mut serde_json::Value) {
    match value {
        serde_json::Value::Array(items) => {
            for item in items {
                scrub_scheduler(item);
            }
        }
        serde_json::Value::Object(map) => {
            for (key, entry) in map.iter_mut() {
                if key == "scheduler" || key == "serve_telemetry" {
                    *entry = serde_json::Value::Null;
                } else {
                    scrub_scheduler(entry);
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::from_edges;

    fn butterfly_graph() -> bigraph::BipartiteCsr {
        from_edges(3, 2, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)]).unwrap()
    }

    #[test]
    fn tip_report_round_trips() {
        let g = butterfly_graph();
        let cfg = Config::default();
        let d = crate::tip_decompose(&g, Side::U, &cfg);
        let report = TipReport::new("g.tsv", &cfg, &d);
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: TipReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.tip, vec![1, 1, 0]);
        assert_eq!(back.kind, "tip");
        // Byte-identical re-serialization of the parsed document.
        let value = serde_json::from_str_value(&text).unwrap();
        assert_eq!(serde_json::to_string_pretty(&value).unwrap(), text);
    }

    #[test]
    fn wing_report_round_trips() {
        let g = butterfly_graph();
        let view = g.view(Side::U);
        let (d, m) = crate::wing_parallel::receipt_wing_decompose(view, 2, 4);
        let report = WingReport::new("g.tsv", Side::U, 2, &d, Some(m));
        let text = serde_json::to_string(&report).unwrap();
        let back: WingReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.edges.len(), back.wing.len());
    }

    #[test]
    fn scrub_zeroes_only_timings() {
        let g = butterfly_graph();
        let cfg = Config::default();
        let d = crate::tip_decompose(&g, Side::U, &cfg);
        let report = TipReport::new("g.tsv", &cfg, &d);
        let mut value = serde_json::to_value(&report).unwrap();
        scrub_timings(&mut value);
        let metrics = &value["metrics"];
        for phase in ["time_count", "time_cd", "time_fd"] {
            assert_eq!(metrics[phase]["secs"].as_u64(), Some(0), "{phase}");
            assert_eq!(metrics[phase]["nanos"].as_u64(), Some(0), "{phase}");
        }
        // Counts survive.
        assert_eq!(value["theta_max"].as_u64(), Some(d.theta_max()));
        let back: TipReport = serde_json::from_value(&value).unwrap();
        assert_eq!(back.metrics.time_total(), std::time::Duration::ZERO);
        assert_eq!(back.tip, report.tip);
    }

    #[test]
    fn scrub_scheduler_nulls_only_scheduler_sections() {
        let text = r#"{
            "experiment": "smoke",
            "scheduler": {"steals_succeeded": 7, "tasks_executed": 91, "idle_timeouts": 4},
            "rows": [{"scheduler": {"x": 1}, "max_wing": 3}]
        }"#;
        let mut value = serde_json::from_str_value(text).unwrap();
        scrub_scheduler(&mut value);
        assert!(value["scheduler"].is_null());
        let row = &value["rows"].as_array().unwrap()[0];
        assert!(row["scheduler"].is_null());
        assert_eq!(row["max_wing"].as_u64(), Some(3));
        assert_eq!(value["experiment"].as_str(), Some("smoke"));
    }
}

//! RECEIPT FD — Fine-grained Decomposition (Algorithm 4).
//!
//! Each coarse subset `U_i` is peeled *independently*: a worker induces the
//! subgraph `G_i = G[U_i ∪ V]`, initializes supports from the `⋈init`
//! snapshot, and runs sequential bottom-up peeling with a k-way min-heap.
//! Workers pull subset ids from a shared queue (dynamic allocation) that is
//! pre-sorted by descending induced-wedge count (workload-aware scheduling,
//! §3.2.1 — the LPT heuristic of Figure 3). The only synchronization is the
//! final join: FD contributes zero peeling rounds to ρ.

use crate::cd::CoarseResult;
use crate::config::Config;
use crate::heap::IndexedMinHeap;
use crate::TipDecomposition;
use bigraph::{InducedGraph, RankedGraph, Side, SideGraph, VertexId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Peels every coarse subset and assembles the final tip numbers.
pub fn fine_decompose(
    view: SideGraph<'_>,
    coarse: CoarseResult,
    config: &Config,
) -> TipDecomposition {
    let t0 = Instant::now();
    let n = view.num_primary();
    let CoarseResult {
        side,
        bounds: _bounds,
        subsets,
        init_support,
        mut metrics,
    } = coarse;

    // Workload-aware scheduling: order subsets by descending induced-wedge
    // estimate so the heaviest tasks start first.
    let weights = induced_wedge_estimates(view, &subsets);
    let mut order: Vec<usize> = (0..subsets.len()).collect();
    order.sort_unstable_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));

    let threads = config.effective_threads().max(1).min(subsets.len().max(1));
    let next = AtomicUsize::new(0);
    let wedges_fd = AtomicU64::new(0);
    let recounts_fd = AtomicU64::new(0);
    let results: Mutex<Vec<(VertexId, u64)>> = Mutex::new(Vec::with_capacity(n));
    let arity = config.heap_arity;

    // rayon::scope (not std::thread::scope) for two reasons: the workers
    // run as pool jobs — reused threads, no per-call spawning — and they
    // inherit the ambient pool budget, so nested parallel work inside a
    // subset splits by the configured thread count instead of falling
    // back to all cores. Scheduling is two-level: this scope's worker
    // tasks are external submissions (they enter the pool's shared
    // injector once, then the `next` counter hands out subset ids
    // dynamically, heaviest first), while any parallel work *inside* a
    // subset forks adaptively on the executing worker — jobs land on its
    // own deque and idle workers steal them, which is what rebalances the
    // skewed per-subset workloads the coarse ordering can't predict.
    rayon::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut local: Vec<(VertexId, u64)> = Vec::new();
                let mut local_wedges = 0u64;
                loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= order.len() {
                        break;
                    }
                    let subset = &subsets[order[slot]];
                    if subset.is_empty() {
                        continue;
                    }
                    let induced = InducedGraph::new(view, subset);
                    let sup: Vec<u64> = subset.iter().map(|&u| init_support[u as usize]).collect();
                    let (tips_local, wedges, recounts) = peel_subset_with_dgm(
                        &induced,
                        &sup,
                        config.huc,
                        config.dgm,
                        config.dgm_threshold,
                        arity,
                    );
                    local_wedges += wedges;
                    recounts_fd.fetch_add(recounts, Ordering::Relaxed);
                    for (local_id, &theta) in tips_local.iter().enumerate() {
                        local.push((induced.primary_global(local_id as VertexId), theta));
                    }
                }
                wedges_fd.fetch_add(local_wedges, Ordering::Relaxed);
                results.lock().append(&mut local);
            });
        }
    });

    let mut tip = vec![0u64; n];
    let mut assigned = vec![false; n];
    for (u, theta) in results.into_inner() {
        debug_assert!(!assigned[u as usize], "vertex {u} peeled twice");
        assigned[u as usize] = true;
        tip[u as usize] = theta;
    }
    debug_assert!(assigned.iter().all(|&a| a), "every vertex must be peeled");

    metrics.wedges_fd = wedges_fd.into_inner();
    metrics.recounts += recounts_fd.into_inner();
    metrics.time_fd = t0.elapsed();

    TipDecomposition { side, tip, metrics }
}

/// Peels one induced subset with sequential bottom-up peeling, optionally
/// applying FD-side HUC (§4.1): when propagating a peeled vertex's updates
/// would traverse more wedges than re-counting the whole live subgraph,
/// re-count instead. FD re-counts must add back the *external
/// contribution* `ext_u = ⋈init_u − ⋈_{G_i}(u)` — butterflies `u` shares
/// with higher-range subsets, which the induced subgraph cannot see but
/// which never change while `U_i` is peeled.
///
/// Returns `(tip numbers, wedges traversed, recount invocations)`.
pub fn peel_subset(
    induced: &InducedGraph,
    init_support: &[u64],
    huc: bool,
    heap_arity: usize,
) -> (Vec<u64>, u64, u64) {
    peel_subset_with_dgm(induced, init_support, huc, false, 1.0, heap_arity)
}

/// [`peel_subset`] with in-subset Dynamic Graph Maintenance: after
/// `dgm_threshold · m_i` wedges since the previous compaction, the induced
/// subgraph is rebuilt without the peeled vertices' edges — the same §4.2
/// optimization CD uses, which pays off on hub-heavy induced subgraphs.
pub fn peel_subset_with_dgm(
    induced: &InducedGraph,
    init_support: &[u64],
    huc: bool,
    dgm: bool,
    dgm_threshold: f64,
    heap_arity: usize,
) -> (Vec<u64>, u64, u64) {
    let n = induced.num_primary();
    debug_assert_eq!(init_support.len(), n);
    let mut heap = IndexedMinHeap::new(heap_arity, init_support);
    let mut tip = vec![0u64; n];
    let mut cnt = vec![0u32; n];
    let mut touched: Vec<VertexId> = Vec::new();
    let mut wedges = 0u64;
    let mut recounts = 0u64;

    // DGM state: `current` replaces the pristine induced CSR after the
    // first compaction. The trigger base is the original edge count.
    let m_original = induced.num_edges();
    let mut current: Option<bigraph::BipartiteCsr> = None;
    let mut wedges_since_compact = 0u64;

    // HUC state, built lazily on the first trigger: ranked structure for
    // counting, pristine in-subgraph counts (for `ext`), and alive flags
    // mirroring heap membership.
    let mut c_rcnt = if huc {
        bigraph::stats::recount_cost(induced.view())
    } else {
        u64::MAX
    };
    let mut huc_state: Option<(RankedGraph, Vec<u64>, Vec<AtomicBool>)> = None;

    while let Some((u, theta)) = heap.pop_min() {
        tip[u as usize] = theta;
        if let Some((_, _, alive)) = &huc_state {
            alive[u as usize].store(false, Ordering::Relaxed);
        }
        let view = match &current {
            Some(c) => c.view(Side::U),
            None => induced.view(),
        };

        if huc && !heap.is_empty() {
            let peel_cost: u64 = view
                .neighbors_primary(u)
                .iter()
                .map(|&s| view.deg_secondary(s) as u64)
                .sum();
            if peel_cost > c_rcnt {
                // Re-count instead of peeling.
                recounts += 1;
                let (ranked, ext, alive) = huc_state.get_or_insert_with(|| {
                    let ranked = RankedGraph::from_csr(induced.csr());
                    let pristine = butterfly::count::vertex_priority_counts(&ranked);
                    let ext: Vec<u64> = init_support
                        .iter()
                        .zip(&pristine.u)
                        .map(|(&init, &own)| init - own)
                        .collect();
                    let alive: Vec<AtomicBool> = (0..n)
                        .map(|v| AtomicBool::new(heap.contains(v as VertexId)))
                        .collect();
                    (ranked, ext, alive)
                });
                // (get_or_insert_with ran before u was flagged dead above
                // only on first trigger — flag it now to be safe.)
                alive[u as usize].store(false, Ordering::Relaxed);
                let rc = butterfly::parallel::par_counts_with_filter(ranked, Side::U, alive);
                wedges += rc.wedges_traversed;
                for v in 0..n as VertexId {
                    if heap.contains(v) {
                        let fresh = (rc.u[v as usize] + ext[v as usize]).max(theta);
                        heap.decrease_key(v, fresh);
                    }
                }
                continue;
            }
        }

        let mut pop_wedges = 0u64;
        for &v in view.neighbors_primary(u) {
            for &u2 in view.neighbors_secondary(v) {
                if u2 == u {
                    continue;
                }
                pop_wedges += 1;
                let c = &mut cnt[u2 as usize];
                if *c == 0 {
                    touched.push(u2);
                }
                *c += 1;
            }
        }
        wedges += pop_wedges;
        wedges_since_compact += pop_wedges;
        for &u2 in &touched {
            let c = cnt[u2 as usize] as u64;
            cnt[u2 as usize] = 0;
            if c >= 2 {
                if let Some(cur) = heap.key(u2) {
                    let shared = c * (c - 1) / 2;
                    heap.decrease_key(u2, cur.saturating_sub(shared).max(theta));
                }
            }
        }
        touched.clear();

        if dgm
            && !heap.is_empty()
            && (wedges_since_compact as f64) >= dgm_threshold * m_original as f64
        {
            let alive_p: Vec<bool> = (0..n as VertexId).map(|p| heap.contains(p)).collect();
            let alive_s = vec![true; induced.num_secondary()];
            let source = current.as_ref().unwrap_or_else(|| induced.csr());
            current = Some(bigraph::compact::compact(source, &alive_p, &alive_s));
            wedges_since_compact = 0;
            if huc {
                c_rcnt = bigraph::stats::recount_cost(
                    current.as_ref().expect("just compacted").view(Side::U),
                );
            }
        }
    }
    (tip, wedges, recounts)
}

/// Estimated wedges inside each induced subgraph: `Σ_s d_s(d_s − 1)` where
/// `d_s` is a secondary vertex's degree restricted to the subset. One O(m)
/// sweep total, reusing a dense per-secondary counter.
fn induced_wedge_estimates(view: SideGraph<'_>, subsets: &[Vec<VertexId>]) -> Vec<u64> {
    let mut deg = vec![0u64; view.num_secondary()];
    let mut touched: Vec<VertexId> = Vec::new();
    subsets
        .iter()
        .map(|subset| {
            for &u in subset {
                for &s in view.neighbors_primary(u) {
                    if deg[s as usize] == 0 {
                        touched.push(s);
                    }
                    deg[s as usize] += 1;
                }
            }
            let mut total = 0u64;
            for &s in &touched {
                let d = deg[s as usize];
                deg[s as usize] = 0;
                total += d * (d - 1);
            }
            touched.clear();
            total
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cd::coarse_decompose;
    use bigraph::builder::from_edges;
    use bigraph::{gen, Side};

    #[test]
    fn fd_respects_coarse_bounds() {
        let g = gen::zipf(80, 40, 500, 0.5, 0.9, 5);
        let cfg = Config::default().with_partitions(8);
        let coarse = coarse_decompose(&g, Side::U, &cfg);
        let bounds = coarse.bounds.clone();
        let subsets = coarse.subsets.clone();
        let d = fine_decompose(g.view(Side::U), coarse, &cfg);
        for (i, subset) in subsets.iter().enumerate() {
            for &u in subset {
                let t = d.tip[u as usize];
                assert!(
                    bounds[i] <= t && t < bounds[i + 1],
                    "θ_{u}={t} outside [{}, {})",
                    bounds[i],
                    bounds[i + 1]
                );
            }
        }
    }

    #[test]
    fn induced_wedge_estimates_match_definition() {
        let g = from_edges(4, 3, &[(0, 0), (1, 0), (1, 1), (2, 1), (3, 2)]).unwrap();
        let view = g.view(Side::U);
        let est = induced_wedge_estimates(view, &[vec![0, 1, 2], vec![3]]);
        // Subset {0,1,2}: v0 degree 2 (u0,u1) -> 2 wedges; v1 degree 2 -> 2.
        assert_eq!(est, vec![4, 0]);
    }

    #[test]
    fn single_thread_matches_many_threads() {
        let g = gen::zipf(100, 50, 700, 0.5, 0.8, 9);
        let mk = |threads| {
            let cfg = Config::default().with_partitions(10).with_threads(threads);
            let coarse = coarse_decompose(&g, Side::U, &cfg);
            fine_decompose(g.view(Side::U), coarse, &cfg).tip
        };
        assert_eq!(mk(1), mk(4));
    }

    #[test]
    fn peel_subset_huc_matches_plain_peel() {
        // FD HUC must not change tip numbers, only the wedge workload.
        for seed in 0..4 {
            let g = gen::zipf(80, 25, 500, 0.3, 1.2, seed);
            let cfg = Config::default().with_partitions(4);
            let coarse = coarse_decompose(&g, Side::U, &cfg);
            for subset in &coarse.subsets {
                if subset.is_empty() {
                    continue;
                }
                let induced = InducedGraph::new(g.view(Side::U), subset);
                let sup: Vec<u64> = subset
                    .iter()
                    .map(|&u| coarse.init_support[u as usize])
                    .collect();
                let (with_huc, _, _) = peel_subset(&induced, &sup, true, 4);
                let (without, plain_wedges, zero) = peel_subset(&induced, &sup, false, 4);
                assert_eq!(with_huc, without, "seed {seed}");
                assert_eq!(zero, 0);
                let (_, huc_wedges, _) = peel_subset(&induced, &sup, true, 4);
                assert!(
                    huc_wedges <= plain_wedges.max(1),
                    "HUC may only reduce FD wedges: {huc_wedges} vs {plain_wedges}"
                );
            }
        }
    }

    #[test]
    fn fd_wedges_do_not_exceed_cd_peel_wedges() {
        // Induced subgraphs only contain a subset of the original wedges;
        // FD traversal must be at most the no-DGM CD traversal (§3).
        let g = gen::zipf(90, 45, 600, 0.5, 0.9, 13);
        let cfg = Config::default().with_partitions(6).baseline_variant();
        let coarse = coarse_decompose(&g, Side::U, &cfg);
        let cd_wedges = coarse.metrics.wedges_cd;
        let d = fine_decompose(g.view(Side::U), coarse, &cfg);
        assert!(
            d.metrics.wedges_fd <= cd_wedges,
            "FD {} > CD {}",
            d.metrics.wedges_fd,
            cd_wedges
        );
    }
}

//! Workload metrics — the machine-independent quantities of Table 3 and
//! Figures 6–9 of the paper.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters collected by a decomposition run.
///
/// `wedges_*` count *traversed wedges* — each successful inner-loop visit of
/// a `(start, middle, end)` walk, the unit the paper reports in billions.
/// `sync_rounds` is ρ: the number of parallel peeling iterations, each of
/// which implies a constant number of thread barriers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Wedges traversed by initial per-vertex counting (`∧_pvBcnt`).
    pub wedges_count: u64,
    /// Wedges traversed by coarse-grained peeling, including HUC re-counts.
    pub wedges_cd: u64,
    /// Wedges traversed by fine-grained peeling (induced subgraphs).
    pub wedges_fd: u64,
    /// ρ — parallel peeling iterations (synchronization rounds). FD adds
    /// none (its threads synchronize once, at the end).
    pub sync_rounds: u64,
    /// Number of HUC re-count invocations that replaced a peel iteration.
    pub recounts: u64,
    /// Number of DGM compactions performed.
    pub compactions: u64,
    /// Partitions actually produced by CD (may be `P + 1`, §3.1.1).
    pub partitions_used: usize,
    /// Wall-clock per phase.
    pub time_count: Duration,
    pub time_cd: Duration,
    pub time_fd: Duration,
}

impl Metrics {
    /// Total wedges traversed (the paper's `Ó` column for RECEIPT).
    pub fn wedges_total(&self) -> u64 {
        self.wedges_count + self.wedges_cd + self.wedges_fd
    }

    /// Total wall-clock across phases.
    pub fn time_total(&self) -> Duration {
        self.time_count + self.time_cd + self.time_fd
    }

    /// Phase shares of wedge traversal `(pvBcnt, CD, FD)`, as fractions of
    /// the total (Figure 8). Returns zeros on an empty run.
    pub fn wedge_breakdown(&self) -> (f64, f64, f64) {
        let total = self.wedges_total() as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.wedges_count as f64 / total,
            self.wedges_cd as f64 / total,
            self.wedges_fd as f64 / total,
        )
    }

    /// Phase shares of execution time `(pvBcnt, CD, FD)` (Figure 9).
    pub fn time_breakdown(&self) -> (f64, f64, f64) {
        let total = self.time_total().as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.time_count.as_secs_f64() / total,
            self.time_cd.as_secs_f64() / total,
            self.time_fd.as_secs_f64() / total,
        )
    }

    /// Merges phase counters from another run segment.
    pub fn absorb(&mut self, other: &Metrics) {
        self.wedges_count += other.wedges_count;
        self.wedges_cd += other.wedges_cd;
        self.wedges_fd += other.wedges_fd;
        self.sync_rounds += other.sync_rounds;
        self.recounts += other.recounts;
        self.compactions += other.compactions;
        self.partitions_used = self.partitions_used.max(other.partitions_used);
        self.time_count += other.time_count;
        self.time_cd += other.time_cd;
        self.time_fd += other.time_fd;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_breakdowns() {
        let m = Metrics {
            wedges_count: 10,
            wedges_cd: 70,
            wedges_fd: 20,
            ..Default::default()
        };
        assert_eq!(m.wedges_total(), 100);
        let (c, cd, fd) = m.wedge_breakdown();
        assert!((c - 0.1).abs() < 1e-12);
        assert!((cd - 0.7).abs() < 1e-12);
        assert!((fd - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let m = Metrics::default();
        assert_eq!(m.wedge_breakdown(), (0.0, 0.0, 0.0));
        assert_eq!(m.time_breakdown(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = Metrics {
            wedges_cd: 5,
            sync_rounds: 2,
            partitions_used: 3,
            ..Default::default()
        };
        let b = Metrics {
            wedges_cd: 7,
            sync_rounds: 1,
            partitions_used: 8,
            recounts: 1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.wedges_cd, 12);
        assert_eq!(a.sync_rounds, 3);
        assert_eq!(a.partitions_used, 8);
        assert_eq!(a.recounts, 1);
    }

    #[test]
    fn time_totals() {
        let m = Metrics {
            time_count: Duration::from_millis(10),
            time_cd: Duration::from_millis(60),
            time_fd: Duration::from_millis(30),
            ..Default::default()
        };
        assert_eq!(m.time_total(), Duration::from_millis(100));
        let (c, cd, fd) = m.time_breakdown();
        assert!((c - 0.1).abs() < 1e-9 && (cd - 0.6).abs() < 1e-9 && (fd - 0.3).abs() < 1e-9);
    }
}

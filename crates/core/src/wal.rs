//! Write-ahead log and checkpointed store — `WAL`/`CKP` version 1 of
//! `FORMATS.md` §2–4.
//!
//! A [`Wal`] is an append-only file of LSN-stamped [`EdgeOp`] batch
//! records, each closed by an FNV-1a checksum; a batch is *committed* iff
//! its complete, checksum-valid record is on disk. A [`Store`] pairs the
//! log with a binary base snapshot (`checkpoint-<lsn>.bgr`, `FORMATS.md`
//! §1) and a 40-byte commit pointer (`checkpoint.meta`) that binds the
//! snapshot to a log position. Recovery loads the snapshot, replays the
//! committed records past the checkpoint, and — uniquely for a WAL —
//! can *prove* the result exact with the from-scratch oracle
//! (`receipt::dynamic::verify_against_scratch`).
//!
//! Damage handling follows the spec's two-shape rule: a *torn tail*
//! (file ends mid-record) is repairable by explicit recovery
//! ([`Wal::recover`]) and a strict-open error otherwise; *corruption*
//! (a complete record whose checksum or LSN is wrong) always fails
//! closed.
//!
//! ```
//! use bigraph::dynamic::EdgeOp;
//! use receipt::wal::Wal;
//!
//! let dir = std::env::temp_dir().join("wal_doctest");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("wal.log");
//! let mut wal = Wal::create(&path, 0).unwrap();
//! assert_eq!(wal.append(&[EdgeOp::Insert(0, 1)]).unwrap(), 1);
//! let (reopened, records) = Wal::open(&path).unwrap();
//! assert_eq!(records.len(), 1);
//! assert_eq!(reopened.end_lsn(), 1);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::dynamic::fnv1a_u64;
use bigraph::binfmt::{self, BinError};
use bigraph::bytes::{array_at, le_u32_at, le_u64_at};
use bigraph::dynamic::EdgeOp;
use bigraph::BipartiteCsr;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening a WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"RCPTWAL\0";
/// Magic bytes opening a checkpoint pointer.
pub const CKP_MAGIC: [u8; 8] = *b"RCPTCKP\0";
/// The single supported WAL format version.
pub const WAL_VERSION: u32 = 1;
/// The single supported checkpoint-pointer format version.
pub const CKP_VERSION: u32 = 1;
/// Endianness tag shared by every format in `FORMATS.md`.
pub const ENDIAN_TAG: u32 = 0x0102_0304;
/// Fixed WAL header length in bytes.
pub const WAL_HEADER_LEN: u64 = 32;
/// Fixed checkpoint-pointer length in bytes.
pub const CKP_LEN: u64 = 40;

const OP_INSERT: u32 = 0;
const OP_DELETE: u32 = 1;

/// Why a WAL could not be read, written, or appended to.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The first 8 bytes are not [`WAL_MAGIC`].
    BadMagic {
        /// The bytes actually found.
        found: [u8; 8],
    },
    /// A version other than [`WAL_VERSION`].
    BadVersion {
        /// The version actually found.
        found: u32,
    },
    /// An endianness tag other than [`ENDIAN_TAG`].
    BadEndianness {
        /// The tag actually found.
        found: u32,
    },
    /// The header checksum disagrees with the recomputed one.
    HeaderChecksum {
        /// Stored checksum.
        stored: u64,
        /// Recomputed checksum.
        computed: u64,
    },
    /// A complete record is damaged: bad checksum, broken LSN sequence,
    /// or an undecodable op. Bit flips are not crashes — never repaired.
    Corrupt {
        /// LSN of the offending record (the expected one if the stored
        /// LSN itself is implicated).
        lsn: u64,
        /// What exactly is wrong.
        what: String,
    },
    /// The file ends mid-record. Strict opens fail with this;
    /// [`Wal::recover`] truncates the torn bytes and reports the repair.
    TornTail {
        /// LSN of the last complete record before the tear.
        last_lsn: u64,
        /// Torn trailing bytes that would be discarded.
        trailing_bytes: u64,
    },
    /// A cause annotated with the file it arose in.
    File {
        /// The offending path.
        path: String,
        /// The underlying error.
        error: Box<WalError>,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "i/o error: {e}"),
            WalError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (not a WAL file)")
            }
            WalError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported WAL version {found} (expected {WAL_VERSION})"
                )
            }
            WalError::BadEndianness { found } => {
                write!(
                    f,
                    "bad endianness tag {found:#010x} (expected {ENDIAN_TAG:#010x})"
                )
            }
            WalError::HeaderChecksum { stored, computed } => write!(
                f,
                "WAL header checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            WalError::Corrupt { lsn, what } => {
                write!(f, "corrupt WAL record at lsn {lsn}: {what}")
            }
            WalError::TornTail {
                last_lsn,
                trailing_bytes,
            } => write!(
                f,
                "torn WAL tail: {trailing_bytes} trailing bytes after lsn {last_lsn} \
                 (an interrupted append; recover explicitly to repair)"
            ),
            WalError::File { path, error } => write!(f, "in {path}: {error}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One committed batch record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Store-global batch sequence number (1 = first batch ever applied).
    pub lsn: u64,
    /// The batch, in its original order.
    pub ops: Vec<EdgeOp>,
}

/// Byte extent of one record inside the file — exposed so crash
/// harnesses can cut a WAL at exact record (or mid-record) boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSpan {
    /// The record's LSN.
    pub lsn: u64,
    /// Byte offset of the record's first byte.
    pub offset: u64,
    /// Record length in bytes.
    pub len: u64,
}

/// What a torn-tail repair discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailRepair {
    /// Torn bytes removed from the end of the file.
    pub discarded_bytes: u64,
    /// File length after truncation.
    pub truncated_to: u64,
}

fn header_checksum(base_lsn: u64) -> u64 {
    fnv1a_u64(&[
        u64::from_le_bytes(WAL_MAGIC),
        (u64::from(WAL_VERSION) << 32) | u64::from(ENDIAN_TAG),
        base_lsn,
    ])
}

fn record_checksum(lsn: u64, ops: &[(u32, u32, u32)]) -> u64 {
    let mut words = Vec::with_capacity(2 + 2 * ops.len());
    words.push(lsn);
    words.push(ops.len() as u64);
    for &(kind, u, v) in ops {
        words.push(u64::from(kind));
        words.push((u64::from(u) << 32) | u64::from(v));
    }
    fnv1a_u64(&words)
}

fn encode_record(lsn: u64, ops: &[EdgeOp]) -> Vec<u8> {
    let raw: Vec<(u32, u32, u32)> = ops
        .iter()
        .map(|op| match *op {
            EdgeOp::Insert(u, v) => (OP_INSERT, u, v),
            EdgeOp::Delete(u, v) => (OP_DELETE, u, v),
        })
        .collect();
    let mut buf = Vec::with_capacity(24 + 12 * raw.len());
    buf.extend_from_slice(&lsn.to_le_bytes());
    buf.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    for &(kind, u, v) in &raw {
        buf.extend_from_slice(&kind.to_le_bytes());
        buf.extend_from_slice(&u.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend_from_slice(&record_checksum(lsn, &raw).to_le_bytes());
    buf
}

/// Everything a full file walk yields.
struct Walk {
    base_lsn: u64,
    records: Vec<WalRecord>,
    spans: Vec<RecordSpan>,
    /// Byte offset at which a torn tail begins (end of the last complete
    /// valid record), if the file ends mid-record.
    torn_at: Option<u64>,
    file_len: u64,
}

fn walk(path: &Path) -> Result<Walk, WalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let file_len = bytes.len() as u64;
    if file_len < WAL_HEADER_LEN {
        return Err(WalError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("WAL shorter than its {WAL_HEADER_LEN}-byte header ({file_len} bytes)"),
        )));
    }
    // The length checks above (and the per-record prefix checks below)
    // make every read in range, but the decodes still go through the
    // fail-closed helpers: a short read is an error, never a panic.
    let truncated = |pos: usize, n: usize| {
        WalError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("WAL truncated: cannot read {n} bytes at offset {pos}"),
        ))
    };
    let magic: [u8; 8] = array_at(&bytes, 0).ok_or_else(|| truncated(0, 8))?;
    if magic != WAL_MAGIC {
        return Err(WalError::BadMagic { found: magic });
    }
    let version = le_u32_at(&bytes, 8).ok_or_else(|| truncated(8, 4))?;
    if version != WAL_VERSION {
        return Err(WalError::BadVersion { found: version });
    }
    let endian = le_u32_at(&bytes, 12).ok_or_else(|| truncated(12, 4))?;
    if endian != ENDIAN_TAG {
        return Err(WalError::BadEndianness { found: endian });
    }
    let base_lsn = le_u64_at(&bytes, 16).ok_or_else(|| truncated(16, 8))?;
    let stored = le_u64_at(&bytes, 24).ok_or_else(|| truncated(24, 8))?;
    let computed = header_checksum(base_lsn);
    if stored != computed {
        return Err(WalError::HeaderChecksum { stored, computed });
    }

    let mut records = Vec::new();
    let mut spans = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut next_lsn = base_lsn + 1;
    let mut torn_at = None;
    while pos < bytes.len() {
        // Torn tail: fewer bytes than a record prefix, or than the prefix
        // declares. Only an incomplete record is a tear; a record whose
        // declared bytes are all present is judged by its checksum and
        // fails closed on mismatch, wherever it sits in the file.
        if bytes.len() - pos < 16 {
            torn_at = Some(pos as u64);
            break;
        }
        let lsn = le_u64_at(&bytes, pos).ok_or_else(|| truncated(pos, 8))?;
        let op_count = le_u32_at(&bytes, pos + 8).ok_or_else(|| truncated(pos + 8, 4))?;
        let record_len = 16 + 12 * op_count as usize + 8;
        if bytes.len() - pos < record_len {
            torn_at = Some(pos as u64);
            break;
        }
        let mut raw = Vec::with_capacity(op_count as usize);
        let mut p = pos + 16;
        for _ in 0..op_count {
            let kind = le_u32_at(&bytes, p).ok_or_else(|| truncated(p, 4))?;
            let u = le_u32_at(&bytes, p + 4).ok_or_else(|| truncated(p + 4, 4))?;
            let v = le_u32_at(&bytes, p + 8).ok_or_else(|| truncated(p + 8, 4))?;
            raw.push((kind, u, v));
            p += 12;
        }
        let stored_ck = le_u64_at(&bytes, p).ok_or_else(|| truncated(p, 8))?;
        let computed_ck = record_checksum(lsn, &raw);
        if stored_ck != computed_ck {
            // A complete-length record with a bad checksum is corruption
            // even when it is the last record in the file (FORMATS.md §2:
            // recovery repairs only a provably incomplete tail, never a
            // complete record) — truncating here would silently drop a
            // committed, acknowledged, fsynced batch.
            return Err(WalError::Corrupt {
                lsn: next_lsn,
                what: format!(
                    "record checksum mismatch: stored {stored_ck:#018x}, computed {computed_ck:#018x}"
                ),
            });
        }
        if lsn != next_lsn {
            return Err(WalError::Corrupt {
                lsn: next_lsn,
                what: format!("LSN sequence broken: found {lsn}, expected {next_lsn}"),
            });
        }
        let mut ops = Vec::with_capacity(raw.len());
        for &(kind, u, v) in &raw {
            ops.push(match kind {
                OP_INSERT => EdgeOp::Insert(u, v),
                OP_DELETE => EdgeOp::Delete(u, v),
                other => {
                    return Err(WalError::Corrupt {
                        lsn,
                        what: format!("unknown op kind {other}"),
                    })
                }
            });
        }
        spans.push(RecordSpan {
            lsn,
            offset: pos as u64,
            len: record_len as u64,
        });
        records.push(WalRecord { lsn, ops });
        pos += record_len;
        next_lsn += 1;
    }
    Ok(Walk {
        base_lsn,
        records,
        spans,
        torn_at,
        file_len,
    })
}

fn wrap_path<T>(path: &Path, r: Result<T, WalError>) -> Result<T, WalError> {
    r.map_err(|error| WalError::File {
        path: path.display().to_string(),
        error: Box::new(error),
    })
}

/// Fsyncs a directory so preceding renames/unlinks inside it are durable
/// across power loss, not just process death.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// The parent directory to sync after a rename targeting `path` (skips
/// the empty parent of a bare relative filename).
fn parent_dir(path: &Path) -> Option<&Path> {
    path.parent().filter(|p| !p.as_os_str().is_empty())
}

/// An open, append-positioned write-ahead log.
pub struct Wal {
    path: PathBuf,
    file: File,
    base_lsn: u64,
    next_lsn: u64,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("base_lsn", &self.base_lsn)
            .field("next_lsn", &self.next_lsn)
            .finish()
    }
}

impl Wal {
    /// Creates (or truncates) a log whose records will start at
    /// `base_lsn + 1`.
    pub fn create<P: AsRef<Path>>(path: P, base_lsn: u64) -> Result<Wal, WalError> {
        let path = path.as_ref();
        let inner = || -> Result<Wal, WalError> {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?;
            file.write_all(&WAL_MAGIC)?;
            file.write_all(&WAL_VERSION.to_le_bytes())?;
            file.write_all(&ENDIAN_TAG.to_le_bytes())?;
            file.write_all(&base_lsn.to_le_bytes())?;
            file.write_all(&header_checksum(base_lsn).to_le_bytes())?;
            file.sync_all()?;
            Ok(Wal {
                path: path.to_path_buf(),
                file,
                base_lsn,
                next_lsn: base_lsn + 1,
            })
        };
        wrap_path(path, inner())
    }

    /// Like [`Wal::create`], but atomic with respect to crashes: the
    /// fresh log (header included, fsynced) is written to a sibling
    /// `.tmp` file and renamed over `path`, then the parent directory is
    /// synced. A crash at any point leaves either the old file or the
    /// complete new one at `path`, never a half-written header.
    pub fn create_atomic<P: AsRef<Path>>(path: P, base_lsn: u64) -> Result<Wal, WalError> {
        let path = path.as_ref();
        let tmp = path.with_extension("log.tmp");
        let mut wal = Self::create(&tmp, base_lsn)?;
        let finish = || -> Result<(), WalError> {
            std::fs::rename(&tmp, path)?;
            if let Some(dir) = parent_dir(path) {
                sync_dir(dir)?;
            }
            Ok(())
        };
        wrap_path(path, finish())?;
        wal.path = path.to_path_buf();
        Ok(wal)
    }

    /// Strict open: full validation, every committed record returned, and
    /// a torn tail is an *error* ([`WalError::TornTail`]) — repair is the
    /// explicit job of [`Wal::recover`], never a side effect.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<(Wal, Vec<WalRecord>), WalError> {
        let path = path.as_ref();
        let inner = || -> Result<(Wal, Vec<WalRecord>), WalError> {
            let w = walk(path)?;
            if let Some(at) = w.torn_at {
                return Err(WalError::TornTail {
                    last_lsn: w.base_lsn + w.records.len() as u64,
                    trailing_bytes: w.file_len - at,
                });
            }
            let mut file = OpenOptions::new().read(true).write(true).open(path)?;
            file.seek(SeekFrom::End(0))?;
            Ok((
                Wal {
                    path: path.to_path_buf(),
                    file,
                    base_lsn: w.base_lsn,
                    next_lsn: w.base_lsn + w.records.len() as u64 + 1,
                },
                w.records,
            ))
        };
        wrap_path(path, inner())
    }

    /// Recovery open: like [`Wal::open`], but a torn tail (the file ends
    /// mid-record — an append interrupted by a crash) is truncated at the
    /// last complete valid record and reported. Corruption of a complete
    /// record still fails closed.
    pub fn recover<P: AsRef<Path>>(
        path: P,
    ) -> Result<(Wal, Vec<WalRecord>, Option<TailRepair>), WalError> {
        let path = path.as_ref();
        let inner = || -> Result<(Wal, Vec<WalRecord>, Option<TailRepair>), WalError> {
            let w = walk(path)?;
            let mut file = OpenOptions::new().read(true).write(true).open(path)?;
            let repair = match w.torn_at {
                Some(at) => {
                    file.set_len(at)?;
                    file.sync_all()?;
                    Some(TailRepair {
                        discarded_bytes: w.file_len - at,
                        truncated_to: at,
                    })
                }
                None => None,
            };
            file.seek(SeekFrom::End(0))?;
            Ok((
                Wal {
                    path: path.to_path_buf(),
                    file,
                    base_lsn: w.base_lsn,
                    next_lsn: w.base_lsn + w.records.len() as u64 + 1,
                },
                w.records,
                repair,
            ))
        };
        wrap_path(path, inner())
    }

    /// Walks a log without opening it for appends, returning each
    /// committed record's byte extent. Strict (torn tail is an error).
    pub fn scan<P: AsRef<Path>>(path: P) -> Result<Vec<RecordSpan>, WalError> {
        let path = path.as_ref();
        let inner = || -> Result<Vec<RecordSpan>, WalError> {
            let w = walk(path)?;
            if let Some(at) = w.torn_at {
                return Err(WalError::TornTail {
                    last_lsn: w.base_lsn + w.records.len() as u64,
                    trailing_bytes: w.file_len - at,
                });
            }
            Ok(w.spans)
        };
        wrap_path(path, inner())
    }

    /// Appends one batch as the next LSN, flushes, and fsyncs — the
    /// record is durable when this returns. Returns the assigned LSN.
    pub fn append(&mut self, ops: &[EdgeOp]) -> Result<u64, WalError> {
        let lsn = self.next_lsn;
        let buf = encode_record(lsn, ops);
        let result = self
            .file
            .write_all(&buf)
            .and_then(|()| self.file.sync_all())
            .map_err(WalError::Io);
        wrap_path(&self.path, result)?;
        self.next_lsn += 1;
        Ok(lsn)
    }

    /// First LSN of this file minus one (records run `base_lsn + 1 ..`).
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// LSN of the last committed record (`base_lsn` if the log is empty).
    pub fn end_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Why a store directory could not be loaded or checkpointed.
#[derive(Debug)]
pub enum StoreError {
    /// The WAL failed.
    Wal(WalError),
    /// The base snapshot failed.
    Bin(BinError),
    /// Underlying I/O failure, annotated with the path involved.
    Io {
        /// The path involved.
        path: String,
        /// The failure.
        error: io::Error,
    },
    /// `checkpoint.meta` is malformed.
    Meta {
        /// The pointer's path.
        path: String,
        /// What is wrong with it.
        what: String,
    },
    /// The pointer claims batches the WAL never durably held
    /// (`meta.lsn > wal_end` — e.g. a foreign pointer, or a log cut
    /// below the commit point).
    CheckpointAheadOfWal {
        /// The pointer's LSN.
        checkpoint_lsn: u64,
        /// Last committed LSN the WAL actually covers.
        wal_end: u64,
        /// The store directory.
        path: String,
    },
    /// Batches between the checkpoint and the log's first record are
    /// unaccounted for (`wal.base_lsn > meta.lsn`).
    WalAheadOfCheckpoint {
        /// The WAL's base LSN.
        base_lsn: u64,
        /// The pointer's LSN.
        checkpoint_lsn: u64,
        /// The store directory.
        path: String,
    },
    /// The pointer's graph checksum disagrees with the snapshot it names.
    SnapshotChecksum {
        /// The snapshot's path.
        path: String,
        /// Checksum stored in the pointer.
        stored: u64,
        /// The snapshot's actual header checksum.
        computed: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Wal(e) => write!(f, "{e}"),
            StoreError::Bin(e) => write!(f, "{e}"),
            StoreError::Io { path, error } => write!(f, "in {path}: i/o error: {error}"),
            StoreError::Meta { path, what } => {
                write!(f, "in {path}: bad checkpoint pointer: {what}")
            }
            StoreError::CheckpointAheadOfWal {
                checkpoint_lsn,
                wal_end,
                path,
            } => write!(
                f,
                "in {path}: checkpoint newer than the WAL: pointer at lsn {checkpoint_lsn} \
                 but the log's last committed record is lsn {wal_end}"
            ),
            StoreError::WalAheadOfCheckpoint {
                base_lsn,
                checkpoint_lsn,
                path,
            } => write!(
                f,
                "in {path}: WAL starts past the checkpoint: log base lsn {base_lsn} \
                 but pointer at lsn {checkpoint_lsn} (records in between are lost)"
            ),
            StoreError::SnapshotChecksum {
                path,
                stored,
                computed,
            } => write!(
                f,
                "in {path}: snapshot checksum mismatch: pointer stores {stored:#018x}, \
                 snapshot header is {computed:#018x}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<WalError> for StoreError {
    fn from(e: WalError) -> Self {
        StoreError::Wal(e)
    }
}

impl From<BinError> for StoreError {
    fn from(e: BinError) -> Self {
        StoreError::Bin(e)
    }
}

/// The checkpoint pointer's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Every batch with LSN ≤ this is folded into the snapshot.
    pub lsn: u64,
    /// Header checksum of the referenced `.bgr` image.
    pub graph_checksum: u64,
}

fn meta_checksum(lsn: u64, graph_checksum: u64) -> u64 {
    fnv1a_u64(&[
        u64::from_le_bytes(CKP_MAGIC),
        (u64::from(CKP_VERSION) << 32) | u64::from(ENDIAN_TAG),
        lsn,
        graph_checksum,
    ])
}

fn encode_meta(meta: CheckpointMeta) -> [u8; CKP_LEN as usize] {
    let mut buf = [0u8; CKP_LEN as usize];
    buf[..8].copy_from_slice(&CKP_MAGIC);
    buf[8..12].copy_from_slice(&CKP_VERSION.to_le_bytes());
    buf[12..16].copy_from_slice(&ENDIAN_TAG.to_le_bytes());
    buf[16..24].copy_from_slice(&meta.lsn.to_le_bytes());
    buf[24..32].copy_from_slice(&meta.graph_checksum.to_le_bytes());
    buf[32..40].copy_from_slice(&meta_checksum(meta.lsn, meta.graph_checksum).to_le_bytes());
    buf
}

fn decode_meta(path: &Path, bytes: &[u8]) -> Result<CheckpointMeta, StoreError> {
    let fail = |what: String| StoreError::Meta {
        path: path.display().to_string(),
        what,
    };
    if bytes.len() != CKP_LEN as usize {
        return Err(fail(format!(
            "wrong length: expected {CKP_LEN} bytes, found {}",
            bytes.len()
        )));
    }
    if bytes[..8] != CKP_MAGIC {
        return Err(fail(format!("bad magic {:02x?}", &bytes[..8])));
    }
    // Length is pinned to CKP_LEN above; the fail-closed reads keep even
    // an impossible short read an error rather than a panic.
    let short = |pos: usize| fail(format!("truncated read at offset {pos}"));
    let version = le_u32_at(bytes, 8).ok_or_else(|| short(8))?;
    if version != CKP_VERSION {
        return Err(fail(format!(
            "unsupported version {version} (expected {CKP_VERSION})"
        )));
    }
    let endian = le_u32_at(bytes, 12).ok_or_else(|| short(12))?;
    if endian != ENDIAN_TAG {
        return Err(fail(format!("bad endianness tag {endian:#010x}")));
    }
    let lsn = le_u64_at(bytes, 16).ok_or_else(|| short(16))?;
    let graph_checksum = le_u64_at(bytes, 24).ok_or_else(|| short(24))?;
    let stored = le_u64_at(bytes, 32).ok_or_else(|| short(32))?;
    let computed = meta_checksum(lsn, graph_checksum);
    if stored != computed {
        return Err(fail(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    Ok(CheckpointMeta {
        lsn,
        graph_checksum,
    })
}

/// A store directory (`FORMATS.md` §4): commit pointer + base snapshot +
/// WAL.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

/// A fully validated store, loaded and ready to replay.
#[derive(Debug)]
pub struct Recovered {
    /// The store handle.
    pub store: Store,
    /// The base snapshot at `checkpoint_lsn`.
    pub graph: BipartiteCsr,
    /// The pointer's LSN.
    pub checkpoint_lsn: u64,
    /// Committed records with `lsn > checkpoint_lsn`, in LSN order —
    /// exactly the batches replay must apply.
    pub batches: Vec<WalRecord>,
    /// Committed records at or below the checkpoint (already folded into
    /// the snapshot; replay skips them).
    pub skipped: usize,
    /// The log, positioned for further appends.
    pub wal: Wal,
    /// The torn-tail repair performed, if any (recovery mode only).
    pub repair: Option<TailRepair>,
}

impl Store {
    /// The pointer path inside `dir`.
    pub fn meta_path(dir: &Path) -> PathBuf {
        dir.join("checkpoint.meta")
    }

    /// The WAL path inside `dir`.
    pub fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal.log")
    }

    /// The snapshot path for checkpoint `lsn` inside `dir`.
    pub fn snapshot_path(dir: &Path, lsn: u64) -> PathBuf {
        dir.join(format!("checkpoint-{lsn}.bgr"))
    }

    /// Whether `dir` holds a store (its commit pointer exists).
    pub fn exists(dir: &Path) -> bool {
        Self::meta_path(dir).is_file()
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn io_err(path: &Path, error: io::Error) -> StoreError {
        StoreError::Io {
            path: path.display().to_string(),
            error,
        }
    }

    /// Atomic replace: write to a sibling temp file, rename over the
    /// target, and sync the parent directory so the rename is durable.
    /// Shared with `receipt::version` for `versions.meta` rewrites.
    pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = path.with_extension("tmp");
        let inner = |p: &Path| -> io::Result<()> {
            let mut f = File::create(p)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            Ok(())
        };
        inner(&tmp).map_err(|e| Self::io_err(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| Self::io_err(path, e))?;
        if let Some(dir) = parent_dir(path) {
            sync_dir(dir).map_err(|e| Self::io_err(dir, e))?;
        }
        Ok(())
    }

    /// Initializes a fresh store in `dir` (created if missing): snapshot
    /// of `graph` at LSN 0, pointer, empty WAL. Returns the handle and
    /// the append-ready log.
    pub fn init(dir: &Path, graph: &BipartiteCsr) -> Result<(Store, Wal), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| Self::io_err(dir, e))?;
        let store = Store {
            dir: dir.to_path_buf(),
        };
        let wal = store.write_checkpoint(graph, 0)?;
        Ok((store, wal))
    }

    /// Writes a checkpoint at `lsn` per the §4 procedure: snapshot →
    /// pointer (the commit) → fresh WAL → stale snapshot cleanup. Every
    /// step is temp-file + rename + directory sync, so a crash between
    /// any two steps leaves a store that still satisfies the invariant.
    /// Returns the fresh append-ready log that replaces the old one.
    pub fn write_checkpoint(&self, graph: &BipartiteCsr, lsn: u64) -> Result<Wal, StoreError> {
        let snap_path = Self::snapshot_path(&self.dir, lsn);
        let tmp = snap_path.with_extension("bgr.tmp");
        let graph_checksum = binfmt::write_binary_graph_path(&tmp, graph)?;
        std::fs::rename(&tmp, &snap_path).map_err(|e| Self::io_err(&snap_path, e))?;
        sync_dir(&self.dir).map_err(|e| Self::io_err(&self.dir, e))?;
        Self::write_atomic(
            &Self::meta_path(&self.dir),
            &encode_meta(CheckpointMeta {
                lsn,
                graph_checksum,
            }),
        )?;
        let wal = Wal::create_atomic(Self::wal_path(&self.dir), lsn)?;
        // Best-effort cleanup: stale snapshots are unreferenced garbage.
        // Running strictly after the pointer commit (rename + dir sync),
        // a deletion can never become durable before the pointer flip.
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(tag) = name
                    .strip_prefix("checkpoint-")
                    .and_then(|s| s.strip_suffix(".bgr"))
                {
                    if !tag.parse::<u64>().is_ok_and(|j| j == lsn) {
                        std::fs::remove_file(entry.path()).ok();
                    }
                }
            }
            sync_dir(&self.dir).ok();
        }
        Ok(wal)
    }

    fn load(dir: &Path, repair: bool) -> Result<Recovered, StoreError> {
        let meta_path = Self::meta_path(dir);
        let bytes = std::fs::read(&meta_path).map_err(|e| Self::io_err(&meta_path, e))?;
        let meta = decode_meta(&meta_path, &bytes)?;
        let snap_path = Self::snapshot_path(dir, meta.lsn);
        let snapshot = binfmt::read_binary_graph_path(&snap_path)?;
        if snapshot.header_checksum != meta.graph_checksum {
            return Err(StoreError::SnapshotChecksum {
                path: snap_path.display().to_string(),
                stored: meta.graph_checksum,
                computed: snapshot.header_checksum,
            });
        }
        let wal_path = Self::wal_path(dir);
        let (wal, records, tail_repair) = if repair {
            Wal::recover(&wal_path)?
        } else {
            let (wal, records) = Wal::open(&wal_path)?;
            (wal, records, None)
        };
        // Store invariant: wal.base_lsn ≤ meta.lsn ≤ wal_end.
        if wal.base_lsn() > meta.lsn {
            return Err(StoreError::WalAheadOfCheckpoint {
                base_lsn: wal.base_lsn(),
                checkpoint_lsn: meta.lsn,
                path: dir.display().to_string(),
            });
        }
        if meta.lsn > wal.end_lsn() {
            return Err(StoreError::CheckpointAheadOfWal {
                checkpoint_lsn: meta.lsn,
                wal_end: wal.end_lsn(),
                path: dir.display().to_string(),
            });
        }
        let (skipped, batches): (Vec<_>, Vec<_>) =
            records.into_iter().partition(|r| r.lsn <= meta.lsn);
        Ok(Recovered {
            store: Store {
                dir: dir.to_path_buf(),
            },
            graph: snapshot.graph,
            checkpoint_lsn: meta.lsn,
            batches,
            skipped: skipped.len(),
            wal,
            repair: tail_repair,
        })
    }

    /// Strict load: full validation, torn tail is an error.
    pub fn open(dir: &Path) -> Result<Recovered, StoreError> {
        Self::load(dir, false)
    }

    /// Recovery load: like [`Store::open`] but a torn WAL tail is
    /// repaired (truncated and reported). Everything else still fails
    /// closed.
    pub fn recover(dir: &Path) -> Result<Recovered, StoreError> {
        Self::load(dir, true)
    }
}

/// Batches between automatic checkpoints when a durable engine is not
/// told otherwise.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 8;

/// The engine-facing durability sink: a [`Store`] plus its live [`Wal`]
/// and the checkpoint cadence.
#[derive(Debug)]
pub struct DurableLog {
    store: Store,
    wal: Wal,
    checkpoint_every: u64,
    checkpoint_lsn: u64,
}

impl DurableLog {
    /// Assembles the sink from a store, its append-ready log, and the
    /// cadence (`0` = never checkpoint automatically).
    pub fn new(store: Store, wal: Wal, checkpoint_lsn: u64, checkpoint_every: u64) -> Self {
        DurableLog {
            store,
            wal,
            checkpoint_every,
            checkpoint_lsn,
        }
    }

    /// Appends one batch; durable when this returns. Returns the LSN.
    pub fn append(&mut self, ops: &[EdgeOp]) -> Result<u64, WalError> {
        self.wal.append(ops)
    }

    /// Checkpoints at `lsn` if the cadence says one is due; `graph` must
    /// be the fully applied state at `lsn`. Returns whether it happened.
    /// On failure the previous log and checkpoint LSN are kept, so the
    /// store stays valid and the next due boundary retries the fold.
    pub fn maybe_checkpoint(&mut self, graph: &BipartiteCsr, lsn: u64) -> Result<bool, StoreError> {
        if self.checkpoint_every == 0 || lsn - self.checkpoint_lsn < self.checkpoint_every {
            return Ok(false);
        }
        self.wal = self.store.write_checkpoint(graph, lsn)?;
        self.checkpoint_lsn = lsn;
        Ok(true)
    }

    /// LSN of the last checkpoint.
    pub fn checkpoint_lsn(&self) -> u64 {
        self.checkpoint_lsn
    }

    /// LSN of the last committed record.
    pub fn end_lsn(&self) -> u64 {
        self.wal.end_lsn()
    }

    /// The underlying store directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::from_edges;
    use bigraph::gen;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("receipt_wal_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops_a() -> Vec<EdgeOp> {
        vec![EdgeOp::Insert(0, 1), EdgeOp::Delete(2, 3)]
    }

    #[test]
    fn append_open_round_trip() {
        let dir = tmp("round");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 0).unwrap();
        assert_eq!(wal.append(&ops_a()).unwrap(), 1);
        assert_eq!(wal.append(&[]).unwrap(), 2, "empty batches are records");
        assert_eq!(wal.append(&[EdgeOp::Insert(7, 7)]).unwrap(), 3);
        let (reopened, records) = Wal::open(&path).unwrap();
        assert_eq!(reopened.base_lsn(), 0);
        assert_eq!(reopened.end_lsn(), 3);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].ops, ops_a());
        assert!(records[1].ops.is_empty());
        assert_eq!(records[2].lsn, 3);
        let spans = Wal::scan(&path).unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].offset, WAL_HEADER_LEN);
        assert_eq!(spans[0].len, 16 + 12 * 2 + 8);
        assert_eq!(spans[1].offset, spans[0].offset + spans[0].len);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopened_wal_continues_the_lsn_sequence() {
        let dir = tmp("continue");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 5).unwrap();
        assert_eq!(wal.append(&ops_a()).unwrap(), 6);
        drop(wal);
        let (mut wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(wal.append(&ops_a()).unwrap(), 7);
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records.last().unwrap().lsn, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_strict_errors_and_recover_repairs() {
        let dir = tmp("torn");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(&ops_a()).unwrap();
        wal.append(&[EdgeOp::Insert(1, 1); 4]).unwrap();
        drop(wal);
        let spans = Wal::scan(&path).unwrap();
        let cut = spans[1].offset + spans[1].len / 2;
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let err = Wal::open(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("torn WAL tail"), "{msg}");
        assert!(msg.contains("wal.log"), "pathful: {msg}");

        let (wal, records, repair) = Wal::recover(&path).unwrap();
        assert_eq!(records.len(), 1, "only the complete record survives");
        assert_eq!(wal.end_lsn(), 1);
        let repair = repair.unwrap();
        assert_eq!(repair.truncated_to, spans[1].offset);
        assert_eq!(repair.discarded_bytes, cut - spans[1].offset);
        // After repair the file is strictly clean again.
        drop(wal);
        Wal::open(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_in_interior_record_fails_closed_in_both_modes() {
        let dir = tmp("bitflip");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(&ops_a()).unwrap();
        wal.append(&ops_a()).unwrap();
        drop(wal);
        let spans = Wal::scan(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip an op byte of record 1 (interior: record 2 follows).
        bytes[(spans[0].offset + 17) as usize] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        for result in [
            Wal::open(&path).map(|_| ()),
            Wal::recover(&path).map(|_| ()),
        ] {
            let msg = result.unwrap_err().to_string();
            assert!(msg.contains("corrupt WAL record at lsn 1"), "{msg}");
            assert!(msg.contains("wal.log"), "pathful: {msg}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_in_final_record_fails_closed_in_both_modes() {
        // The last record is complete (every declared byte present), so a
        // checksum mismatch there is corruption, not a torn tail: even
        // `recover` must refuse rather than truncate a committed batch
        // (FORMATS.md §2).
        let dir = tmp("bitflip_final");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(&ops_a()).unwrap();
        wal.append(&ops_a()).unwrap();
        drop(wal);
        let spans = Wal::scan(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = spans.last().unwrap();
        // Flip the final record's last byte (inside its checksum).
        bytes[(last.offset + last.len - 1) as usize] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        for result in [
            Wal::open(&path).map(|_| ()),
            Wal::recover(&path).map(|_| ()),
        ] {
            let msg = result.unwrap_err().to_string();
            assert!(msg.contains("corrupt WAL record at lsn 2"), "{msg}");
            assert!(msg.contains("wal.log"), "pathful: {msg}");
        }
        // The file is untouched: nothing got truncated on the way out.
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_replaces_the_wal_atomically() {
        // FORMATS.md §4 step 3: the fresh log appears via temp + rename,
        // never by truncating `wal.log` in place, and no temp files
        // survive a successful checkpoint.
        let dir = tmp("atomic_wal");
        let g = from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let (store, mut wal) = Store::init(&dir, &g).unwrap();
        wal.append(&ops_a()).unwrap();
        wal.append(&ops_a()).unwrap();
        drop(wal);
        let wal = store.write_checkpoint(&g, 2).unwrap();
        assert_eq!(wal.base_lsn(), 2);
        drop(wal);
        for leftover in ["wal.log.tmp", "checkpoint-2.bgr.tmp", "checkpoint.tmp"] {
            assert!(!dir.join(leftover).exists(), "{leftover} left behind");
        }
        let rec = Store::open(&dir).unwrap();
        assert_eq!(rec.checkpoint_lsn, 2);
        assert!(rec.batches.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lsn_sequence_break_is_corruption() {
        let dir = tmp("lsn");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(&ops_a()).unwrap();
        drop(wal);
        // Rewrite record 1 as lsn 9 with a *valid* checksum: sequence check
        // must still refuse it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(WAL_HEADER_LEN as usize);
        bytes.extend_from_slice(&encode_record(9, &ops_a()));
        std::fs::write(&path, &bytes).unwrap();
        let msg = Wal::open(&path).unwrap_err().to_string();
        assert!(msg.contains("LSN sequence broken"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_header_hostility() {
        let dir = tmp("header");
        let path = dir.join("wal.log");
        Wal::create(&path, 0).unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Wal::open(&path),
            Err(WalError::File { error, .. }) if matches!(*error, WalError::BadMagic { .. })
        ));

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&2u32.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Wal::open(&path),
            Err(WalError::File { error, .. }) if matches!(*error, WalError::BadVersion { found: 2 })
        ));

        let mut bad = good;
        bad[16] ^= 1; // base_lsn tampered without fixing the checksum
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Wal::open(&path),
            Err(WalError::File { error, .. })
                if matches!(*error, WalError::HeaderChecksum { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_init_open_and_checkpoint_cycle() {
        let dir = tmp("store");
        let g = gen::zipf(30, 20, 100, 0.5, 0.9, 3);
        let (store, mut wal) = Store::init(&dir, &g).unwrap();
        wal.append(&ops_a()).unwrap();
        wal.append(&ops_a()).unwrap();
        drop(wal);

        let rec = Store::open(&dir).unwrap();
        assert_eq!(rec.checkpoint_lsn, 0);
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.skipped, 0);
        assert_eq!(rec.graph, g);
        drop(rec);

        // Fold a new base at lsn 2: wal resets, pointer advances, the old
        // snapshot is gone.
        let g2 = from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let mut wal = store.write_checkpoint(&g2, 2).unwrap();
        assert_eq!(wal.base_lsn(), 2);
        assert_eq!(wal.append(&ops_a()).unwrap(), 3);
        assert!(Store::snapshot_path(&dir, 2).is_file());
        assert!(!Store::snapshot_path(&dir, 0).is_file());
        drop(wal);
        let rec = Store::open(&dir).unwrap();
        assert_eq!(rec.checkpoint_lsn, 2);
        assert_eq!(rec.graph, g2);
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.batches[0].lsn, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_skips_records_already_folded() {
        // Crash between pointer commit and WAL reset: log still starts at
        // the old base and replay must skip the folded prefix.
        let dir = tmp("folded");
        let g = from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let (store, mut wal) = Store::init(&dir, &g).unwrap();
        wal.append(&ops_a()).unwrap();
        wal.append(&ops_a()).unwrap();
        wal.append(&ops_a()).unwrap();
        drop(wal);
        let old_wal = std::fs::read(Store::wal_path(&dir)).unwrap();
        store.write_checkpoint(&g, 2).unwrap();
        // Simulate the crash by restoring the pre-checkpoint log.
        std::fs::write(Store::wal_path(&dir), &old_wal).unwrap();
        let rec = Store::open(&dir).unwrap();
        assert_eq!(rec.checkpoint_lsn, 2);
        assert_eq!(rec.skipped, 2);
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.batches[0].lsn, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_ahead_of_wal_fails_closed() {
        let dir = tmp("ahead");
        let g = from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let (store, mut wal) = Store::init(&dir, &g).unwrap();
        wal.append(&ops_a()).unwrap();
        drop(wal);
        // Hand-advance the pointer to lsn 5 with a valid checksum and a
        // matching snapshot file: the WAL only reaches lsn 1.
        let ck = binfmt::write_binary_graph_path(Store::snapshot_path(&dir, 5), &g).unwrap();
        Store::write_atomic(
            &Store::meta_path(&dir),
            &encode_meta(CheckpointMeta {
                lsn: 5,
                graph_checksum: ck,
            }),
        )
        .unwrap();
        let err = Store::recover(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(
            matches!(
                err,
                StoreError::CheckpointAheadOfWal {
                    checkpoint_lsn: 5,
                    wal_end: 1,
                    ..
                }
            ),
            "{msg}"
        );
        assert!(msg.contains(dir.to_str().unwrap()), "pathful: {msg}");
        let _ = store;
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_ahead_of_checkpoint_fails_closed() {
        let dir = tmp("gap");
        let g = from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let (_store, wal) = Store::init(&dir, &g).unwrap();
        drop(wal);
        // Replace the log with one that starts past the pointer.
        Wal::create(Store::wal_path(&dir), 3).unwrap();
        let err = Store::open(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::WalAheadOfCheckpoint {
                    base_lsn: 3,
                    checkpoint_lsn: 0,
                    ..
                }
            ),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_tamper_and_snapshot_binding_fail_closed() {
        let dir = tmp("meta");
        let g = from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let (_store, wal) = Store::init(&dir, &g).unwrap();
        drop(wal);
        let meta_path = Store::meta_path(&dir);
        let good = std::fs::read(&meta_path).unwrap();

        let mut bad = good.clone();
        bad[16] ^= 1;
        std::fs::write(&meta_path, &bad).unwrap();
        let msg = Store::open(&dir).unwrap_err().to_string();
        assert!(msg.contains("bad checkpoint pointer"), "{msg}");
        assert!(msg.contains("checkpoint.meta"), "pathful: {msg}");

        // Pointer intact, snapshot swapped: the checksum binding trips.
        std::fs::write(&meta_path, &good).unwrap();
        let other = from_edges(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        binfmt::write_binary_graph_path(Store::snapshot_path(&dir, 0), &other).unwrap();
        let err = Store::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::SnapshotChecksum { .. }), "{err}");
        assert!(err.to_string().contains("checkpoint-0.bgr"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_log_checkpoints_on_cadence() {
        let dir = tmp("cadence");
        let g = from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let (store, wal) = Store::init(&dir, &g).unwrap();
        let mut log = DurableLog::new(store, wal, 0, 2);
        assert_eq!(log.append(&ops_a()).unwrap(), 1);
        assert!(!log.maybe_checkpoint(&g, 1).unwrap());
        assert_eq!(log.append(&ops_a()).unwrap(), 2);
        assert!(log.maybe_checkpoint(&g, 2).unwrap());
        assert_eq!(log.checkpoint_lsn(), 2);
        assert_eq!(log.append(&ops_a()).unwrap(), 3, "lsn survives the fold");
        let rec = Store::open(&dir).unwrap();
        assert_eq!(rec.checkpoint_lsn, 2);
        assert_eq!(rec.batches.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}

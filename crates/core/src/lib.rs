//! RECEIPT — REfine CoarsE-grained IndePendent Tasks — parallel tip
//! decomposition of bipartite graphs (Lakhotia et al., VLDB 2020).
//!
//! Tip decomposition assigns every vertex `u` of one side of a bipartite
//! graph its *tip number* `θ_u`: the largest `k` such that `u` belongs to a
//! `k`-tip (Definition 1 of the paper). This crate implements:
//!
//! * [`bup`] — the classical sequential Bottom-Up Peeling baseline
//!   (Algorithm 2);
//! * [`parb`] — ParButterfly-style parallel bottom-up peeling with a
//!   Julienne-like bucketing structure (the paper's `ParB` baseline);
//! * [`cd`] / [`fd`] — RECEIPT's two steps: Coarse-grained Decomposition
//!   (Algorithm 3, with adaptive range determination) and Fine-grained
//!   Decomposition (Algorithm 4, with workload-aware dynamic scheduling);
//! * the HUC and DGM workload optimizations (§4) — see [`Config`];
//! * [`hierarchy`] — k-tip extraction/verification on top of tip numbers;
//! * [`wing`] — the §7 extension to wing (edge) decomposition;
//! * [`dynamic`] — incremental tip maintenance over batched edge updates
//!   (the `tipdecomp stream` workload);
//! * [`engine`] — the epoch-snapshot [`engine::StreamEngine`] owning the
//!   dynamic triple and publishing immutable snapshots for concurrent
//!   readers (the `tipdecomp serve` backend);
//! * [`wal`] — the write-ahead log and checkpointed store (`FORMATS.md`)
//!   that make the stream durable, with recovery proven exact by the
//!   [`dynamic`] oracle;
//! * [`version`] — named versions over the durable store
//!   (`VERSIONING.md`): tags, version diffs, and time-travel opens that
//!   replay to a tagged LSN and publish a read-only snapshot.
//!
//! # Quickstart
//!
//! ```
//! use bigraph::{gen, Side};
//! use receipt::{tip_decompose, Config};
//!
//! let g = gen::planted_bicliques(40, 40, 2, 5, 5, 100, 7);
//! let decomp = tip_decompose(&g, Side::U, &Config::default());
//! // Planted 5x5 blocks put their members in dense tips.
//! assert_eq!(decomp.tip.len(), 40);
//! let theta_max = decomp.tip.iter().max().unwrap();
//! assert!(*theta_max >= 1);
//! ```

#![forbid(unsafe_code)]

pub mod bucket;
pub mod bup;
pub mod cd;
pub mod config;
pub mod dynamic;
pub mod engine;
pub mod fd;
pub mod fibheap;
pub mod heap;
pub mod hierarchy;
pub mod metrics;
pub mod parb;
pub mod peel;
pub mod queue;
pub mod report;
pub mod snapshot;
pub mod support;
pub mod version;
pub mod wal;
pub mod wing;
pub mod wing_parallel;

pub use config::Config;
pub use metrics::Metrics;

use bigraph::{BipartiteCsr, Side};

/// The output of a tip decomposition: `tip[u] = θ_u` for every vertex of
/// the decomposed side, plus workload metrics.
#[derive(Debug, Clone)]
pub struct TipDecomposition {
    /// Which side was decomposed.
    pub side: Side,
    /// Tip numbers, indexed by side-local vertex id.
    pub tip: Vec<u64>,
    /// Wedge/synchronization/timing metrics (Table 3 of the paper).
    pub metrics: Metrics,
}

impl TipDecomposition {
    /// Maximum tip number `θ_max`.
    pub fn theta_max(&self) -> u64 {
        self.tip.iter().copied().max().unwrap_or(0)
    }

    /// Cumulative distribution of tip numbers (Figure 4 of the paper):
    /// returns `(θ, fraction of vertices with tip ≤ θ)` at each distinct θ.
    pub fn cumulative_distribution(&self) -> Vec<(u64, f64)> {
        if self.tip.is_empty() {
            return Vec::new();
        }
        let mut sorted = self.tip.clone();
        sorted.sort_unstable();
        let n = sorted.len() as f64;
        let mut out = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let theta = sorted[i];
            let mut j = i;
            while j < sorted.len() && sorted[j] == theta {
                j += 1;
            }
            out.push((theta, j as f64 / n));
            i = j;
        }
        out
    }
}

/// Full RECEIPT tip decomposition: parallel counting, then CD, then FD.
///
/// Deterministic: the computed tip numbers are independent of `P`, thread
/// count, and the HUC/DGM toggles (Theorem 2 of the paper); the metrics
/// (wedge counts, rounds) depend on the configuration.
pub fn tip_decompose(g: &BipartiteCsr, side: Side, config: &Config) -> TipDecomposition {
    let run = || {
        let coarse = cd::coarse_decompose(g, side, config);
        fd::fine_decompose(g.view(side), coarse, config)
    };
    if config.threads > 0 {
        parutil::with_pool(config.threads, run)
    } else {
        run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::from_edges;

    #[test]
    fn figure_1_tip_numbers() {
        // The worked example from Fig.1 of the paper (0-indexed):
        // tip numbers of u1..u4 are 2, 3, 3, 1.
        let g = from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        )
        .unwrap();
        let d = tip_decompose(&g, Side::U, &Config::default());
        assert_eq!(d.tip, vec![2, 3, 3, 1]);
        assert_eq!(d.theta_max(), 3);
    }

    #[test]
    fn cumulative_distribution_is_monotone() {
        let g = from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        )
        .unwrap();
        let d = tip_decompose(&g, Side::U, &Config::default());
        let cdf = d.cumulative_distribution();
        assert!(cdf.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }
}

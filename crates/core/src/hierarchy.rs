//! k-tip extraction on top of tip numbers.
//!
//! Tip numbers are the space-efficient representation of the k-tip
//! hierarchy (§2.2): the k-tips containing a vertex can be recovered on
//! demand. A k-tip (Definition 1) is a maximal vertex-induced subgraph
//! where every primary vertex has ≥ k butterflies *and* the primary
//! vertices are pairwise connected through series of butterflies. This
//! module materializes those components: take `S = {u : θ_u ≥ k}` and
//! split it by butterfly connectivity (two vertices are adjacent when they
//! share at least one butterfly, i.e. ≥ 2 common neighbours within `S`'s
//! induced subgraph — common neighbours are secondary vertices, which are
//! all retained).

use bigraph::{SideGraph, VertexId};

/// Disjoint-set forest over dense ids.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb) as usize] = ra.min(rb);
        }
    }
}

/// Primary vertices with `θ_u ≥ k`.
pub fn vertices_with_tip_at_least(tips: &[u64], k: u64) -> Vec<VertexId> {
    tips.iter()
        .enumerate()
        .filter(|&(_, &t)| t >= k)
        .map(|(u, _)| u as VertexId)
        .collect()
}

/// The k-tips of the graph: butterfly-connected components of
/// `{u : θ_u ≥ k}`, each sorted ascending. Vertices participating in no
/// butterfly within the set appear as singletons only when `k = 0` (a
/// 0-tip imposes no butterfly requirement).
///
/// ```
/// use bigraph::Side;
/// // Fig.1 of the paper: tips are (2, 3, 3, 1); its 3-tip is {u2, u3}.
/// let g = bigraph::builder::from_edges(4, 4, &[
///     (0, 0), (0, 1), (1, 0), (1, 1), (1, 2),
///     (2, 0), (2, 1), (2, 2), (2, 3), (3, 2), (3, 3),
/// ]).unwrap();
/// let d = receipt::tip_decompose(&g, Side::U, &receipt::Config::default());
/// let tips3 = receipt::hierarchy::ktip_components(g.view(Side::U), &d.tip, 3);
/// assert_eq!(tips3, vec![vec![1, 2]]);
/// ```
pub fn ktip_components(view: SideGraph<'_>, tips: &[u64], k: u64) -> Vec<Vec<VertexId>> {
    let members = vertices_with_tip_at_least(tips, k);
    let np = view.num_primary();
    let mut in_set = vec![false; np];
    for &u in &members {
        in_set[u as usize] = true;
    }
    let mut uf = UnionFind::new(np);
    let mut common = vec![0u32; np];
    let mut touched: Vec<VertexId> = Vec::new();
    let mut has_butterfly = vec![false; np];

    for &u in &members {
        for &v in view.neighbors_primary(u) {
            for &u2 in view.neighbors_secondary(v) {
                if u2 > u && in_set[u2 as usize] {
                    if common[u2 as usize] == 0 {
                        touched.push(u2);
                    }
                    common[u2 as usize] += 1;
                }
            }
        }
        for &u2 in &touched {
            if common[u2 as usize] >= 2 {
                uf.union(u, u2);
                has_butterfly[u as usize] = true;
                has_butterfly[u2 as usize] = true;
            }
            common[u2 as usize] = 0;
        }
        touched.clear();
    }

    let mut by_root: std::collections::BTreeMap<u32, Vec<VertexId>> = Default::default();
    for &u in &members {
        if has_butterfly[u as usize] || k == 0 {
            by_root.entry(uf.find(u)).or_default().push(u);
        }
    }
    by_root.into_values().collect()
}

/// Checks the k-core half of Definition 1: inside the subgraph induced on
/// all of `{θ ≥ k}`, every member participates in at least `k` butterflies.
/// Returns the first violating vertex, if any. (Test oracle; `O(Σ d²)`.)
pub fn verify_ktip_supports(view: SideGraph<'_>, tips: &[u64], k: u64) -> Option<VertexId> {
    let members = vertices_with_tip_at_least(tips, k);
    if members.is_empty() {
        return None;
    }
    let induced = bigraph::InducedGraph::new(view, &members);
    let counts = butterfly::naive::naive_primary_counts(induced.view());
    for (local, &c) in counts.iter().enumerate() {
        if c < k {
            return Some(induced.primary_global(local as VertexId));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tip_decompose, Config};
    use bigraph::builder::from_edges;
    use bigraph::{gen, Side};

    fn fig1_graph() -> bigraph::BipartiteCsr {
        from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig1_hierarchy() {
        // Paper Fig.1: 1-tip = {u1..u4}, 2-tip = {u1,u2,u3}, 3-tip = {u2,u3}.
        let g = fig1_graph();
        let tips = tip_decompose(&g, Side::U, &Config::default()).tip;
        let view = g.view(Side::U);
        let t1 = ktip_components(view, &tips, 1);
        assert_eq!(t1, vec![vec![0, 1, 2, 3]]);
        let t2 = ktip_components(view, &tips, 2);
        assert_eq!(t2, vec![vec![0, 1, 2]]);
        let t3 = ktip_components(view, &tips, 3);
        assert_eq!(t3, vec![vec![1, 2]]);
        let t4 = ktip_components(view, &tips, 4);
        assert!(t4.is_empty());
    }

    #[test]
    fn disconnected_blocks_split_into_components() {
        // Two disjoint butterflies.
        let g = from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        )
        .unwrap();
        let tips = tip_decompose(&g, Side::U, &Config::default()).tip;
        let comps = ktip_components(g.view(Side::U), &tips, 1);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn k0_includes_isolated_vertices() {
        let g = from_edges(3, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let tips = tip_decompose(&g, Side::U, &Config::default()).tip;
        let comps = ktip_components(g.view(Side::U), &tips, 0);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, 3, "0-tips cover every vertex");
    }

    #[test]
    fn ktip_supports_hold_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::zipf(50, 30, 350, 0.5, 0.8, seed);
            let tips = tip_decompose(&g, Side::U, &Config::default().with_partitions(5)).tip;
            let theta_max = *tips.iter().max().unwrap();
            for k in [1, theta_max / 2, theta_max] {
                assert_eq!(
                    verify_ktip_supports(g.view(Side::U), &tips, k),
                    None,
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.find(1), uf.find(0));
        assert_ne!(uf.find(0), uf.find(3));
        uf.union(1, 4);
        assert_eq!(uf.find(0), uf.find(3));
        assert_eq!(uf.find(2), 2);
    }
}

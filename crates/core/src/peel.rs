//! The parallel peel/update machinery shared by RECEIPT CD and ParB:
//! wedge-aggregation scratch, the `update()` routine of Algorithm 2, and
//! [`PeelGraph`] — the live-graph wrapper that implements Dynamic Graph
//! Maintenance (§4.2).

use crate::support::SupportVec;
use bigraph::{BipartiteCsr, RankedGraph, Side, SideGraph, VertexId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Neighbour access used by wedge traversal. Implemented by [`SideGraph`]
/// (static graph) and [`PeelGraph`] (DGM-compacted live graph).
pub trait WedgeAccess: Sync {
    fn nbrs_primary(&self, p: VertexId) -> &[VertexId];
    fn nbrs_secondary(&self, s: VertexId) -> &[VertexId];
}

impl WedgeAccess for SideGraph<'_> {
    #[inline]
    fn nbrs_primary(&self, p: VertexId) -> &[VertexId] {
        self.neighbors_primary(p)
    }
    #[inline]
    fn nbrs_secondary(&self, s: VertexId) -> &[VertexId] {
        self.neighbors_secondary(s)
    }
}

/// Dense per-task scratch for one `update()` call: common-neighbour counts
/// plus the list of touched 2-hop neighbours.
pub struct PeelScratch {
    pub cnt: Vec<u32>,
    pub touched: Vec<VertexId>,
}

impl PeelScratch {
    pub fn new(num_primary: usize) -> Self {
        PeelScratch {
            cnt: vec![0; num_primary],
            touched: Vec::new(),
        }
    }
}

/// Algorithm 2's `update(u, floor, ⋈, G)` for the parallel steps: traverses
/// all wedges anchored at the peeled vertex `u`, computes the shared
/// butterfly count `⋈(u, u') = C(common, 2)` per 2-hop neighbour, and
/// applies floor-clamped atomic decrements to every *alive* neighbour.
/// Calls `on_updated(u')` for each alive neighbour whose support actually
/// changed. Returns the number of wedges traversed.
pub fn peel_vertex<G: WedgeAccess>(
    g: &G,
    u: VertexId,
    floor: u64,
    support: &SupportVec,
    alive: &[AtomicBool],
    scratch: &mut PeelScratch,
    mut on_updated: impl FnMut(VertexId),
) -> u64 {
    let mut wedges = 0u64;
    for &s in g.nbrs_primary(u) {
        for &u2 in g.nbrs_secondary(s) {
            if u2 == u {
                continue;
            }
            wedges += 1;
            let c = &mut scratch.cnt[u2 as usize];
            if *c == 0 {
                scratch.touched.push(u2);
            }
            *c += 1;
        }
    }
    for &u2 in &scratch.touched {
        let c = scratch.cnt[u2 as usize] as u64;
        scratch.cnt[u2 as usize] = 0;
        if c >= 2 && alive[u2 as usize].load(Ordering::Relaxed) {
            let delta = c * (c - 1) / 2;
            let prev = support.decrement(u2, delta, floor);
            if prev > floor {
                on_updated(u2);
            }
        }
    }
    scratch.touched.clear();
    wedges
}

/// The live graph during coarse-grained peeling. Owns a rank-sorted
/// [`RankedGraph`] that stays rank-sorted through DGM compactions
/// (order-preserving filtering), so HUC re-counts run directly on the live
/// structure with the *original* ranks — no re-ranking or re-sorting per
/// re-count. Vertex-priority counting is exact under any fixed total
/// order; the initial degree order merely bounds its cost, and it remains
/// a good proxy as the graph shrinks.
pub struct PeelGraph {
    side: Side,
    current: RankedGraph,
    alive: Vec<AtomicBool>,
    live_count: usize,
    /// Wedges traversed since the last compaction (drives the `≥ m` DGM
    /// trigger).
    wedges_since_compact: u64,
    /// Edge count of the current structure.
    m_current: usize,
    /// Edge count of the original graph (the DGM trigger base: compaction
    /// after ≥ m original-graph wedge traversals keeps DGM free in the
    /// asymptotic complexity, §4.2).
    m_original: usize,
    /// Cached `C_rcnt` of the current structure (recomputed on compaction).
    recount_cost_cache: u64,
    compactions: u64,
}

impl PeelGraph {
    /// Takes ownership of the ranked graph built for initial counting.
    pub fn new(side: Side, ranked: RankedGraph) -> Self {
        let n = match side {
            Side::U => ranked.num_u(),
            Side::V => ranked.num_v(),
        };
        let mut pg = PeelGraph {
            side,
            current: ranked,
            alive: (0..n).map(|_| AtomicBool::new(true)).collect(),
            live_count: n,
            wedges_since_compact: 0,
            m_current: 0,
            m_original: 0,
            recount_cost_cache: 0,
            compactions: 0,
        };
        pg.m_current = pg.current.num_edges();
        pg.m_original = pg.m_current;
        pg.recount_cost_cache = pg.compute_recount_cost();
        pg
    }

    /// Convenience for tests: rank the graph and wrap it.
    pub fn from_csr(g: &BipartiteCsr, side: Side) -> Self {
        PeelGraph::new(side, RankedGraph::from_csr(g))
    }

    pub fn side(&self) -> Side {
        self.side
    }

    pub fn num_primary(&self) -> usize {
        self.alive.len()
    }

    pub fn num_secondary(&self) -> usize {
        match self.side {
            Side::U => self.current.num_v(),
            Side::V => self.current.num_u(),
        }
    }

    #[inline]
    pub fn is_alive(&self, p: VertexId) -> bool {
        self.alive[p as usize].load(Ordering::Relaxed)
    }

    pub fn alive_flags(&self) -> &[AtomicBool] {
        &self.alive
    }

    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Marks a batch peeled. Call between iterations (single-threaded
    /// bookkeeping; the flags themselves are read concurrently).
    pub fn kill_batch(&mut self, batch: &[VertexId]) {
        for &u in batch {
            debug_assert!(self.is_alive(u), "double peel of {u}");
            self.alive[u as usize].store(false, Ordering::Relaxed);
        }
        self.live_count -= batch.len();
    }

    /// Live primary ids (ascending).
    pub fn live_vertices(&self) -> Vec<VertexId> {
        (0..self.num_primary() as VertexId)
            .filter(|&p| self.is_alive(p))
            .collect()
    }

    #[inline]
    fn deg_secondary(&self, s: VertexId) -> usize {
        match self.side {
            Side::U => self.current.deg_v(s),
            Side::V => self.current.deg_u(s),
        }
    }

    /// Peel-cost `Σ_{v∈N_u} d_v` of one vertex in the current structure.
    pub fn peel_cost(&self, u: VertexId) -> u64 {
        self.nbrs_primary(u)
            .iter()
            .map(|&s| self.deg_secondary(s) as u64)
            .sum()
    }

    fn compute_recount_cost(&self) -> u64 {
        use rayon::prelude::*;
        (0..self.num_primary() as VertexId)
            .into_par_iter()
            .map(|p| {
                let dp = self.nbrs_primary(p).len() as u64;
                self.nbrs_primary(p)
                    .iter()
                    .map(|&s| dp.min(self.deg_secondary(s) as u64))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Cached `C_rcnt` of the current structure. Only refreshed on
    /// compaction, so between compactions it is an upper bound (the live
    /// graph can only shrink) — a conservative input to the HUC test.
    pub fn recount_cost(&self) -> u64 {
        self.recount_cost_cache
    }

    pub fn note_wedges(&mut self, w: u64) {
        self.wedges_since_compact += w;
    }

    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// DGM trigger: compacts if at least `threshold · m_current` wedges
    /// were traversed since the previous compaction. Returns whether a
    /// compaction happened.
    pub fn maybe_compact(&mut self, threshold: f64) -> bool {
        if (self.wedges_since_compact as f64) < threshold * self.m_original as f64 {
            return false;
        }
        self.compact_now();
        true
    }

    /// Unconditional compaction, preserving ranks and rank order.
    pub fn compact_now(&mut self) {
        let alive_primary: Vec<bool> = self
            .alive
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        let all_secondary = vec![true; self.num_secondary()];
        self.current = match self.side {
            Side::U => self.current.compact(&alive_primary, &all_secondary),
            Side::V => self.current.compact(&all_secondary, &alive_primary),
        };
        self.m_current = self.current.num_edges();
        self.recount_cost_cache = self.compute_recount_cost();
        self.wedges_since_compact = 0;
        self.compactions += 1;
    }

    /// HUC re-count: per-vertex butterfly counts of the *live* subgraph,
    /// computed in place with alive-filtering — no compaction and no
    /// re-ranking (the structure keeps its original rank order, which
    /// stays a valid priority for exact counting). Returns counts for both
    /// sides; callers pick `counts.side(self.side())`.
    pub fn recount_live(&mut self) -> butterfly::VertexCounts {
        butterfly::parallel::par_counts_with_filter(&self.current, self.side, &self.alive)
    }

    /// Edge count of the current (possibly compacted) structure.
    pub fn current_edges(&self) -> usize {
        self.m_current
    }
}

impl WedgeAccess for PeelGraph {
    #[inline]
    fn nbrs_primary(&self, p: VertexId) -> &[VertexId] {
        match self.side {
            Side::U => self.current.neighbors_u(p),
            Side::V => self.current.neighbors_v(p),
        }
    }

    #[inline]
    fn nbrs_secondary(&self, s: VertexId) -> &[VertexId] {
        match self.side {
            Side::U => self.current.neighbors_v(s),
            Side::V => self.current.neighbors_u(s),
        }
    }
}

/// Shared atomic wedge counter used by the parallel peeling loops.
#[derive(Debug, Default)]
pub struct WedgeCounter(AtomicU64);

impl WedgeCounter {
    pub fn new() -> Self {
        Self::default()
    }
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::from_edges;

    fn k33() -> BipartiteCsr {
        let mut e = Vec::new();
        for u in 0..3 {
            for v in 0..3 {
                e.push((u, v));
            }
        }
        from_edges(3, 3, &e).unwrap()
    }

    fn alive_vec(n: usize) -> Vec<AtomicBool> {
        (0..n).map(|_| AtomicBool::new(true)).collect()
    }

    #[test]
    fn peel_vertex_applies_shared_butterflies() {
        let g = k33();
        let view = g.view(Side::U);
        // Each u in K(3,3) has 6 butterflies.
        let support = SupportVec::from_counts(&[6, 6, 6]);
        let alive = alive_vec(3);
        alive[0].store(false, Ordering::Relaxed); // u0 being peeled
        let mut scratch = PeelScratch::new(3);
        let mut updated = Vec::new();
        let wedges = peel_vertex(&view, 0, 0, &support, &alive, &mut scratch, |u| {
            updated.push(u)
        });
        // u0 shares C(3,2)=3 butterflies with each of u1, u2.
        assert_eq!(support.get(1), 3);
        assert_eq!(support.get(2), 3);
        // Wedges: 3 secondary neighbours × 2 other endpoints.
        assert_eq!(wedges, 6);
        updated.sort_unstable();
        assert_eq!(updated, vec![1, 2]);
        // Scratch is clean for reuse.
        assert!(scratch.touched.is_empty());
        assert!(scratch.cnt.iter().all(|&c| c == 0));
    }

    #[test]
    fn peel_vertex_respects_floor_and_dead() {
        let g = k33();
        let view = g.view(Side::U);
        let support = SupportVec::from_counts(&[6, 6, 6]);
        let alive = alive_vec(3);
        alive[0].store(false, Ordering::Relaxed);
        alive[2].store(false, Ordering::Relaxed); // dead: no update
        let mut scratch = PeelScratch::new(3);
        let mut updated = Vec::new();
        peel_vertex(&view, 0, 5, &support, &alive, &mut scratch, |u| {
            updated.push(u)
        });
        assert_eq!(support.get(1), 5, "clamped at floor");
        assert_eq!(support.get(2), 6, "dead vertex untouched");
        assert_eq!(updated, vec![1]);
    }

    #[test]
    fn peelgraph_kill_and_compact() {
        let g = k33();
        let mut pg = PeelGraph::from_csr(&g, Side::U);
        assert_eq!(pg.live_count(), 3);
        pg.kill_batch(&[1]);
        assert_eq!(pg.live_count(), 2);
        assert!(!pg.is_alive(1));
        assert_eq!(pg.live_vertices(), vec![0, 2]);
        // Before compaction, traversal still sees u1 through v-lists.
        assert_eq!(pg.nbrs_secondary(0).len(), 3);
        pg.compact_now();
        assert_eq!(pg.nbrs_secondary(0).len(), 2);
        assert!(pg.nbrs_primary(1).is_empty());
        assert_eq!(pg.compactions(), 1);
        assert_eq!(pg.current_edges(), 6);
    }

    #[test]
    fn dgm_threshold_gates_compaction() {
        let g = k33();
        let mut pg = PeelGraph::from_csr(&g, Side::U);
        pg.kill_batch(&[0]);
        pg.note_wedges(3); // below m = 9
        assert!(!pg.maybe_compact(1.0));
        pg.note_wedges(10);
        assert!(pg.maybe_compact(1.0));
        // Counter resets after compaction.
        assert!(!pg.maybe_compact(1.0));
    }

    #[test]
    fn peelgraph_v_side() {
        let g = from_edges(2, 3, &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]).unwrap();
        let mut pg = PeelGraph::from_csr(&g, Side::V);
        assert_eq!(pg.num_primary(), 3);
        assert_eq!(pg.num_secondary(), 2);
        pg.kill_batch(&[2]);
        pg.compact_now();
        // u0 (a secondary vertex in this view) lost its edge to v2.
        assert_eq!(pg.nbrs_secondary(0).len(), 2);
        assert_eq!(pg.current_edges(), 4);
    }

    #[test]
    fn recount_cost_refreshes_on_compaction() {
        let g = k33();
        let mut pg = PeelGraph::from_csr(&g, Side::U);
        let before = pg.recount_cost();
        assert!(before > 0);
        pg.kill_batch(&[0, 1]);
        pg.compact_now();
        assert!(pg.recount_cost() < before);
    }

    #[test]
    fn peel_cost_tracks_current_structure() {
        let g = k33();
        let mut pg = PeelGraph::from_csr(&g, Side::U);
        assert_eq!(pg.peel_cost(0), 9); // 3 neighbours × degree 3
        pg.kill_batch(&[2]);
        pg.compact_now();
        assert_eq!(pg.peel_cost(0), 6); // v-degrees dropped to 2
    }

    #[test]
    fn recount_live_matches_fresh_count() {
        // Counting on the stale-ranked compacted structure must equal a
        // from-scratch count of the live subgraph.
        let g = bigraph::gen::zipf(50, 30, 300, 0.5, 0.9, 6);
        let mut pg = PeelGraph::from_csr(&g, Side::U);
        let dead: Vec<u32> = (0..50).step_by(3).collect();
        pg.kill_batch(&dead);
        let stale = pg.recount_live();
        let alive_u: Vec<bool> = (0..50).map(|u| u % 3 != 0).collect();
        let fresh_csr = bigraph::compact::compact(&g, &alive_u, &[true; 30]);
        let fresh = butterfly::count_graph(&fresh_csr);
        assert_eq!(stale.u, fresh.u);
        assert_eq!(stale.v, fresh.v);
    }
}

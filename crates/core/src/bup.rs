//! Sequential Bottom-Up Peeling (Algorithm 2) — the classical tip
//! decomposition and the inner loop of fine-grained decomposition.

use crate::heap::IndexedMinHeap;
use bigraph::{BipartiteCsr, Side, SideGraph, VertexId};
use std::time::Instant;

/// Result of a baseline (BUP or ParB) run, with the Table 3 counters.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    pub side: Side,
    pub tip: Vec<u64>,
    /// Wedges traversed by the initial per-vertex count.
    pub wedges_count: u64,
    /// Wedges traversed while peeling.
    pub wedges_peel: u64,
    /// Synchronization rounds ρ (1 per minimum-support batch for ParB;
    /// BUP reports its peeling iterations, one per vertex).
    pub rounds: u64,
    pub time_count: std::time::Duration,
    pub time_peel: std::time::Duration,
}

/// Core sequential peel: repeatedly extract the minimum-support vertex,
/// record its support as the tip number, and decrement 2-hop neighbours by
/// the shared butterfly count, clamped below at the extracted value
/// (Algorithm 2 line 13). Returns `(tip numbers, wedges traversed)`.
///
/// Works on any [`SideGraph`] — the full graph for the BUP baseline, an
/// induced subgraph inside fine-grained decomposition.
pub fn peel_all(view: SideGraph<'_>, init_support: &[u64], heap_arity: usize) -> (Vec<u64>, u64) {
    let heap = IndexedMinHeap::new(heap_arity, init_support);
    peel_all_with_queue(view, init_support.len(), heap)
}

/// [`peel_all`] parameterized by the priority queue — the §5.1 ablation
/// (k-way indexed heap vs Fibonacci heap vs bucketing). Any
/// [`DecreaseKeyQueue`](crate::queue::DecreaseKeyQueue) pre-loaded with the
/// initial supports works.
pub fn peel_all_with_queue<Q: crate::queue::DecreaseKeyQueue>(
    view: SideGraph<'_>,
    n: usize,
    mut queue: Q,
) -> (Vec<u64>, u64) {
    debug_assert_eq!(n, view.num_primary());
    let mut tip = vec![0u64; n];
    let mut cnt = vec![0u32; n];
    let mut touched: Vec<VertexId> = Vec::new();
    let mut wedges = 0u64;

    while let Some((u, theta)) = queue.pop_min() {
        tip[u as usize] = theta;
        for &v in view.neighbors_primary(u) {
            for &u2 in view.neighbors_secondary(v) {
                if u2 == u {
                    continue;
                }
                wedges += 1;
                let c = &mut cnt[u2 as usize];
                if *c == 0 {
                    touched.push(u2);
                }
                *c += 1;
            }
        }
        for &u2 in &touched {
            let c = cnt[u2 as usize] as u64;
            cnt[u2 as usize] = 0;
            if c >= 2 {
                if let Some(cur) = queue.key(u2) {
                    let shared = c * (c - 1) / 2;
                    queue.decrease_key(u2, cur.saturating_sub(shared).max(theta));
                }
            }
        }
        touched.clear();
    }
    (tip, wedges)
}

/// The full BUP baseline: per-vertex counting (sequential Algorithm 1) to
/// initialize supports, then [`peel_all`] on the whole graph.
///
/// ```
/// use bigraph::Side;
/// let g = bigraph::gen::planted_bicliques(10, 10, 1, 3, 3, 0, 1);
/// let r = receipt::bup::bup_decompose(&g, Side::U, 4);
/// // The 3x3 block: every member has (3-1)*C(3,2) = 6 butterflies.
/// assert_eq!(&r.tip[..3], &[6, 6, 6]);
/// ```
pub fn bup_decompose(g: &BipartiteCsr, side: Side, heap_arity: usize) -> BaselineResult {
    let t0 = Instant::now();
    let ranked = bigraph::RankedGraph::from_csr(g);
    let counts = butterfly::count::vertex_priority_counts(&ranked);
    let time_count = t0.elapsed();

    let view = g.view(side);
    let t1 = Instant::now();
    let (tip, wedges_peel) = peel_all(view, counts.side(side), heap_arity);
    let time_peel = t1.elapsed();

    BaselineResult {
        side,
        tip,
        wedges_count: counts.wedges_traversed,
        wedges_peel,
        rounds: view.num_primary() as u64,
        time_count,
        time_peel,
    }
}

/// The wedge workload of BUP without running it (footnote 6 of the paper:
/// aggregate 2-hop neighbourhood sizes — every vertex's wedges are
/// traversed once when it is peeled).
pub fn bup_peel_wedges(view: SideGraph<'_>) -> u64 {
    (0..view.num_primary() as VertexId)
        .map(|u| {
            view.neighbors_primary(u)
                .iter()
                .map(|&v| (view.deg_secondary(v) as u64) - 1)
                .sum::<u64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::from_edges;
    use bigraph::gen;

    fn fig1_graph() -> BipartiteCsr {
        from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig1_tip_numbers() {
        let r = bup_decompose(&fig1_graph(), Side::U, 4);
        assert_eq!(r.tip, vec![2, 3, 3, 1]);
    }

    #[test]
    fn k33_tip_numbers() {
        let mut e = Vec::new();
        for u in 0..3 {
            for v in 0..3 {
                e.push((u, v));
            }
        }
        let g = from_edges(3, 3, &e).unwrap();
        // Every u of K(3,3) has 6 butterflies; the first peel records 6,
        // and the survivors' supports are clamped at max(θ=6, 6−3) = 6, so
        // the whole side is a 6-tip.
        let r = bup_decompose(&g, Side::U, 4);
        assert_eq!(r.tip, vec![6, 6, 6]);
    }

    #[test]
    fn star_all_zero() {
        let g = from_edges(4, 1, &[(0, 0), (1, 0), (2, 0), (3, 0)]).unwrap();
        let r = bup_decompose(&g, Side::U, 4);
        assert_eq!(r.tip, vec![0; 4]);
        assert_eq!(r.rounds, 4);
    }

    #[test]
    fn tips_bounded_by_initial_support() {
        let g = gen::zipf(60, 40, 400, 0.5, 0.8, 5);
        let counts = butterfly::count_graph(&g);
        let r = bup_decompose(&g, Side::U, 4);
        for (u, &t) in r.tip.iter().enumerate() {
            assert!(
                t <= counts.u[u],
                "θ_{u} = {t} exceeds butterfly count {}",
                counts.u[u]
            );
        }
    }

    #[test]
    fn v_side_decomposition() {
        let r = bup_decompose(&fig1_graph(), Side::V, 4);
        assert_eq!(r.tip.len(), 4);
        // v-side of Fig.1: hand-check v3 (0-indexed v... id 3): shares only
        // butterfly (u2,u3)x(v2,v3) -> its butterflies: 1.
        assert!(r.tip[3] >= 1);
    }

    #[test]
    fn peel_wedges_prediction_matches_actual() {
        let g = gen::uniform(50, 40, 300, 8);
        let view = g.view(Side::U);
        let predicted = bup_peel_wedges(view);
        let counts = butterfly::count_graph(&g);
        let (_, actual) = peel_all(view, &counts.u, 4);
        assert_eq!(predicted, actual);
    }

    #[test]
    fn fibonacci_queue_peels_identically() {
        // The §5.1 ablation: the queue implementation must not affect the
        // computed tip numbers or the wedge workload.
        for seed in 0..4 {
            let g = gen::zipf(60, 35, 350, 0.5, 0.9, seed);
            let counts = butterfly::count_graph(&g);
            let view = g.view(Side::U);
            let (heap_tips, heap_wedges) = peel_all(view, &counts.u, 4);
            let fib = crate::fibheap::FibonacciHeap::new(&counts.u);
            let (fib_tips, fib_wedges) = peel_all_with_queue(view, counts.u.len(), fib);
            assert_eq!(heap_tips, fib_tips, "seed {seed}");
            assert_eq!(heap_wedges, fib_wedges);
        }
    }

    #[test]
    fn heap_arity_does_not_change_tips() {
        let g = gen::zipf(50, 30, 300, 0.4, 0.9, 2);
        let a = bup_decompose(&g, Side::U, 2);
        let b = bup_decompose(&g, Side::U, 8);
        assert_eq!(a.tip, b.tip);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteCsr::empty(3, 3);
        let r = bup_decompose(&g, Side::U, 4);
        assert_eq!(r.tip, vec![0; 3]);
        assert_eq!(r.wedges_peel, 0);
    }
}

//! Wing (edge) decomposition — the §7 extension.
//!
//! A k-wing is the edge analogue of a k-tip: a maximal subgraph where every
//! *edge* participates in at least `k` butterflies. The wing number of an
//! edge is the largest `k` for which a k-wing contains it. This module
//! implements bottom-up edge peeling (Sariyüce–Pinar style) on top of the
//! per-edge counting of [`butterfly::per_edge`], with the same
//! clamped-minimum semantics as vertex peeling. The paper notes the RECEIPT
//! range machinery carries over to edges with one extra care point —
//! several edges of one butterfly can be peeled in the same iteration — so
//! the sequential peel here checks liveness of all three partner edges per
//! butterfly.

use crate::heap::IndexedMinHeap;
use bigraph::{SideGraph, VertexId};

/// Result of a wing decomposition.
#[derive(Debug, Clone)]
pub struct WingDecomposition {
    /// Edges in primary-CSR order (`(u, v)` with `u` on the primary side).
    pub edges: Vec<(VertexId, VertexId)>,
    /// `wing[e]` = wing number of `edges[e]`.
    pub wing: Vec<u64>,
    /// Wedge/intersection work performed (diagnostic).
    pub work: u64,
}

impl WingDecomposition {
    pub fn wing_of(&self, u: VertexId, v: VertexId) -> Option<u64> {
        self.edges
            .iter()
            .position(|&e| e == (u, v))
            .map(|i| self.wing[i])
    }

    pub fn max_wing(&self) -> u64 {
        self.wing.iter().copied().max().unwrap_or(0)
    }
}

/// Edge-id lookup table over the primary CSR layout.
pub(crate) struct EdgeIndex {
    offsets: Vec<usize>,
}

impl EdgeIndex {
    pub(crate) fn new(view: SideGraph<'_>) -> Self {
        let np = view.num_primary();
        let mut offsets = vec![0usize; np + 1];
        for p in 0..np {
            offsets[p + 1] = offsets[p] + view.deg_primary(p as VertexId);
        }
        EdgeIndex { offsets }
    }

    pub(crate) fn id(&self, view: SideGraph<'_>, u: VertexId, v: VertexId) -> Option<usize> {
        view.neighbors_primary(u)
            .binary_search(&v)
            .ok()
            .map(|pos| self.offsets[u as usize] + pos)
    }
}

/// Sequential bottom-up wing decomposition of the primary-side edges.
///
/// ```
/// use bigraph::Side;
/// // K(2,2): the single butterfly makes every edge a 1-wing member.
/// let g = bigraph::builder::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
/// let d = receipt::wing::wing_decompose(g.view(Side::U), 4);
/// assert_eq!(d.wing, vec![1, 1, 1, 1]);
/// ```
pub fn wing_decompose(view: SideGraph<'_>, heap_arity: usize) -> WingDecomposition {
    let counts = butterfly::per_edge::per_edge_counts(view);
    let m = counts.len();
    let index = EdgeIndex::new(view);
    let edges: Vec<(VertexId, VertexId)> = (0..view.num_primary() as VertexId)
        .flat_map(|u| view.neighbors_primary(u).iter().map(move |&v| (u, v)))
        .collect();
    debug_assert_eq!(edges.len(), m);

    let mut heap = IndexedMinHeap::new(heap_arity, &counts);
    let mut wing = vec![0u64; m];
    let mut work = 0u64;

    while let Some((e, theta)) = heap.pop_min() {
        wing[e as usize] = theta;
        let (u, v) = edges[e as usize];
        // Enumerate live butterflies (u, v, u2, v2) containing this edge.
        for &v2 in view.neighbors_primary(u) {
            if v2 == v {
                continue;
            }
            let Some(e_uv2) = index.id(view, u, v2) else {
                continue;
            };
            if !heap.contains(e_uv2 as u32) {
                continue; // (u, v2) already peeled: those butterflies died
            }
            // u2 ∈ N(v) ∩ N(v2), u2 ≠ u — sorted-merge intersection.
            let (nv, nv2) = (view.neighbors_secondary(v), view.neighbors_secondary(v2));
            let (mut i, mut j) = (0, 0);
            while i < nv.len() && j < nv2.len() {
                work += 1;
                match nv[i].cmp(&nv2[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let u2 = nv[i];
                        i += 1;
                        j += 1;
                        if u2 == u {
                            continue;
                        }
                        let (Some(e_u2v), Some(e_u2v2)) =
                            (index.id(view, u2, v), index.id(view, u2, v2))
                        else {
                            continue;
                        };
                        let (e3, e4) = (e_u2v as u32, e_u2v2 as u32);
                        if heap.contains(e3) && heap.contains(e4) {
                            // One live butterfly dies; its three surviving
                            // edges lose one butterfly each (clamped).
                            for other in [e_uv2 as u32, e3, e4] {
                                if let Some(k) = heap.key(other) {
                                    heap.decrease_key(other, k.saturating_sub(1).max(theta));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    WingDecomposition { edges, wing, work }
}

/// The k-wings of the graph: butterfly-connected components of the edges
/// with `wing ≥ k`, each returned as a sorted list of edge ids (positions
/// in [`WingDecomposition::edges`]). Two edges are adjacent when some
/// butterfly within the qualifying edge set contains both. Edges in no
/// qualifying butterfly only appear when `k = 0`.
pub fn kwing_components(
    view: SideGraph<'_>,
    decomposition: &WingDecomposition,
    k: u64,
) -> Vec<Vec<usize>> {
    let m = decomposition.wing.len();
    let index = EdgeIndex::new(view);
    let qualifies = |e: usize| decomposition.wing[e] >= k;
    // Union-find over edge ids.
    let mut parent: Vec<u32> = (0..m as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    let mut in_butterfly = vec![false; m];

    for (e, &(u, v)) in decomposition.edges.iter().enumerate() {
        if !qualifies(e) {
            continue;
        }
        for &v2 in view.neighbors_primary(u) {
            if v2 <= v {
                continue; // enumerate each butterfly once per (v, v2) pair
            }
            let Some(e2) = index.id(view, u, v2) else {
                continue;
            };
            if !qualifies(e2) {
                continue;
            }
            let (nv, nv2) = (view.neighbors_secondary(v), view.neighbors_secondary(v2));
            let (mut i, mut j) = (0, 0);
            while i < nv.len() && j < nv2.len() {
                match nv[i].cmp(&nv2[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let u2 = nv[i];
                        i += 1;
                        j += 1;
                        if u2 <= u {
                            continue; // and once per (u, u2) pair
                        }
                        let (Some(e3), Some(e4)) = (index.id(view, u2, v), index.id(view, u2, v2))
                        else {
                            continue;
                        };
                        if qualifies(e3) && qualifies(e4) {
                            for &(a, b) in &[(e, e2), (e, e3), (e, e4)] {
                                let (ra, rb) =
                                    (find(&mut parent, a as u32), find(&mut parent, b as u32));
                                if ra != rb {
                                    parent[ra.max(rb) as usize] = ra.min(rb);
                                }
                            }
                            for &x in &[e, e2, e3, e4] {
                                in_butterfly[x] = true;
                            }
                        }
                    }
                }
            }
        }
    }

    let mut by_root: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
    for (e, &in_b) in in_butterfly.iter().enumerate() {
        if qualifies(e) && (in_b || k == 0) {
            let r = find(&mut parent, e as u32);
            by_root.entry(r).or_default().push(e);
        }
    }
    by_root.into_values().collect()
}

/// Reference oracle: recomputes per-edge butterfly counts on the live
/// subgraph before every single-edge peel. `O(m² · Σd²)` — tests only.
pub fn naive_wing_decompose(view: SideGraph<'_>) -> WingDecomposition {
    let edges: Vec<(VertexId, VertexId)> = (0..view.num_primary() as VertexId)
        .flat_map(|u| view.neighbors_primary(u).iter().map(move |&v| (u, v)))
        .collect();
    let m = edges.len();
    let mut alive = vec![true; m];
    let mut wing = vec![0u64; m];
    let mut theta = 0u64;

    for _ in 0..m {
        // Rebuild the live subgraph and count butterflies per live edge.
        let live_edges: Vec<(VertexId, VertexId)> = edges
            .iter()
            .zip(&alive)
            .filter(|(_, &a)| a)
            .map(|(&e, _)| e)
            .collect();
        let sub =
            bigraph::builder::from_edges(view.num_primary(), view.num_secondary(), &live_edges)
                .unwrap();
        let sub_counts = butterfly::per_edge::per_edge_counts(sub.view(bigraph::Side::U));
        // Map live-edge counts back to original ids (same sort order).
        let mut live_ids: Vec<usize> = (0..m).filter(|&e| alive[e]).collect();
        live_ids.sort_by_key(|&e| edges[e]);
        let (min_pos, min_cnt) = sub_counts
            .iter()
            .enumerate()
            .min_by_key(|&(i, &c)| (c, i))
            .map(|(i, &c)| (i, c))
            .expect("live edges remain");
        let victim = live_ids[min_pos];
        theta = theta.max(min_cnt);
        wing[victim] = theta;
        alive[victim] = false;
    }

    WingDecomposition {
        edges,
        wing,
        work: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::from_edges;
    use bigraph::{gen, Side};

    #[test]
    fn single_butterfly_wings() {
        let g = from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let w = wing_decompose(g.view(Side::U), 4);
        assert_eq!(w.wing, vec![1, 1, 1, 1]);
        assert_eq!(w.max_wing(), 1);
        assert_eq!(w.wing_of(0, 1), Some(1));
        assert_eq!(w.wing_of(1, 9), None);
    }

    #[test]
    fn k33_wings() {
        let mut e = Vec::new();
        for u in 0..3 {
            for v in 0..3 {
                e.push((u, v));
            }
        }
        let g = from_edges(3, 3, &e).unwrap();
        let w = wing_decompose(g.view(Side::U), 4);
        // K(3,3) is edge-transitive; every edge sits in 4 butterflies and
        // the whole graph is a 4-wing.
        assert!(w.wing.iter().all(|&x| x == 4), "{:?}", w.wing);
    }

    #[test]
    fn path_has_zero_wings() {
        let g = from_edges(3, 2, &[(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap();
        let w = wing_decompose(g.view(Side::U), 4);
        assert!(w.wing.iter().all(|&x| x == 0));
    }

    #[test]
    fn matches_naive_oracle_on_small_graphs() {
        for seed in 0..5 {
            let g = gen::uniform(8, 8, 28, seed);
            let fast = wing_decompose(g.view(Side::U), 4);
            let slow = naive_wing_decompose(g.view(Side::U));
            assert_eq!(fast.wing, slow.wing, "seed {seed}");
        }
    }

    #[test]
    fn matches_naive_on_planted_block_with_noise() {
        let g = gen::planted_bicliques(8, 8, 1, 3, 3, 12, 3);
        let fast = wing_decompose(g.view(Side::U), 4);
        let slow = naive_wing_decompose(g.view(Side::U));
        assert_eq!(fast.wing, slow.wing);
    }

    #[test]
    fn wing_bounded_by_edge_butterfly_count() {
        let g = gen::zipf(20, 15, 80, 0.5, 0.8, 2);
        let counts = butterfly::per_edge::per_edge_counts(g.view(Side::U));
        let w = wing_decompose(g.view(Side::U), 4);
        for (e, (&wing, &cnt)) in w.wing.iter().zip(&counts).enumerate() {
            assert!(wing <= cnt, "edge {e}: wing {wing} > count {cnt}");
        }
    }

    #[test]
    fn kwing_components_on_two_blocks() {
        // Two disjoint butterflies: each is its own 1-wing.
        let g = from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        )
        .unwrap();
        let view = g.view(Side::U);
        let d = wing_decompose(view, 4);
        let comps = kwing_components(view, &d, 1);
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|c| c.len() == 4));
        // Above max wing: nothing.
        assert!(kwing_components(view, &d, d.max_wing() + 1).is_empty());
    }

    #[test]
    fn kwing_components_nest_and_respect_wing_numbers() {
        let g = gen::planted_bicliques(12, 12, 2, 4, 4, 20, 8);
        let view = g.view(Side::U);
        let d = wing_decompose(view, 4);
        let wmax = d.max_wing();
        let hi: Vec<usize> = kwing_components(view, &d, wmax)
            .into_iter()
            .flatten()
            .collect();
        let lo: Vec<usize> = kwing_components(view, &d, 1)
            .into_iter()
            .flatten()
            .collect();
        for e in &hi {
            assert!(lo.contains(e), "edge {e} lost down-hierarchy");
        }
        // Every member of a k-level really has wing >= k.
        for e in hi {
            assert!(d.wing[e] >= wmax);
        }
    }

    #[test]
    fn v_side_wing_total_consistency() {
        // Wing numbers are a property of edges; peeling from either view
        // must produce the same multiset (edge identities permute).
        let g = gen::uniform(10, 10, 40, 9);
        let mut a = wing_decompose(g.view(Side::U), 4).wing;
        let mut b = wing_decompose(g.view(Side::V), 4).wing;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

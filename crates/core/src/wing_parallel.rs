//! RECEIPT-style parallel wing decomposition — the §7 extension, fully
//! worked out.
//!
//! The vertex machinery carries over with one extra care point the paper
//! calls out: *"there could be conflicts during parallel edge peeling as
//! multiple edges in a butterfly could get deleted in the same iteration.
//! Only one of the peeled edges should update the support of other edges
//! in the butterfly, which can be achieved by imposing a priority ordering
//! of edges."* We use the edge id (primary-CSR position) as that priority:
//! within one coarse iteration, a dying butterfly is propagated only by
//! its minimum-id peeled edge.
//!
//! The fine phase differs from vertex FD in one structural way: a
//! butterfly has **four** edges, so induced "subgraphs" on an edge subset
//! would lose butterflies that straddle subsets. Instead, each fine task
//! peels its subset on the *full* graph, treating a butterfly as live iff
//! every edge of it belongs to a subset with an equal-or-higher range
//! (same-range edges must additionally still be unpeeled). Tasks read only
//! the immutable subset labels plus their own heap, so they stay
//! independent and lock-free.

use crate::heap::IndexedMinHeap;
use crate::wing::{EdgeIndex, WingDecomposition};
use bigraph::{SideGraph, VertexId};
use parking_lot::Mutex;
use parutil::saturating_sub_floor;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Metrics for a parallel wing decomposition run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WingMetrics {
    /// Butterfly-enumeration work (merge steps) in the coarse phase.
    pub work_cd: u64,
    /// Same, fine phase.
    pub work_fd: u64,
    /// Coarse peeling iterations (synchronization rounds).
    pub sync_rounds: u64,
    /// Edge subsets produced.
    pub partitions_used: usize,
}

/// Parallel wing decomposition of the primary-side edges.
///
/// Produces exactly the wing numbers of [`crate::wing::wing_decompose`]
/// (sequential bottom-up edge peeling), computed with RECEIPT's two-phase
/// structure. `partitions` plays the role of `P`.
pub fn receipt_wing_decompose(
    view: SideGraph<'_>,
    partitions: usize,
    heap_arity: usize,
) -> (WingDecomposition, WingMetrics) {
    let m = view.num_edges();
    let p_target = partitions.max(1);
    let index = EdgeIndex::new(view);
    let edges: Vec<(VertexId, VertexId)> = (0..view.num_primary() as VertexId)
        .flat_map(|u| view.neighbors_primary(u).iter().map(move |&v| (u, v)))
        .collect();

    // ---- Support initialization: parallel per-edge butterfly counts ----
    let counts = butterfly::per_edge::par_per_edge_counts(view);
    let support: Vec<AtomicU64> = counts.iter().map(|&c| AtomicU64::new(c)).collect();
    // Subset label per edge; u32::MAX = still unassigned (alive).
    const UNASSIGNED: u32 = u32::MAX;
    let subset_of: Vec<AtomicU64> = (0..m).map(|_| AtomicU64::new(UNASSIGNED as u64)).collect();
    // Iteration stamp: edges peeled in the *current* coarse iteration.
    let stamp: Vec<AtomicU64> = (0..m).map(|_| AtomicU64::new(u64::MAX)).collect();

    // Work proxy per edge for range balancing: its wedge-enumeration cost.
    let w: Vec<u64> = edges
        .par_iter()
        .map(|&(u, v)| (view.deg_primary(u) + view.deg_secondary(v)) as u64)
        .collect();
    let mut remaining_w: u64 = w.iter().sum();

    let mut init_support = vec![0u64; m];
    let mut subsets: Vec<Vec<u32>> = Vec::new();
    let mut bounds: Vec<u64> = vec![0];
    let mut live = m;
    let work_cd = AtomicU64::new(0);
    let mut rounds = 0u64;
    let mut scale = 1.0f64;

    let is_alive =
        |e: u32| -> bool { subset_of[e as usize].load(Ordering::Relaxed) == UNASSIGNED as u64 };

    // ---- Coarse phase ----
    for i in 0..p_target {
        if live == 0 {
            break;
        }
        let theta_lo = *bounds.last().expect("non-empty");
        // Snapshot ⋈init for alive edges.
        init_support
            .par_iter_mut()
            .enumerate()
            .for_each(|(e, slot)| {
                if is_alive(e as u32) {
                    *slot = support[e].load(Ordering::Relaxed);
                }
            });
        // Range bound.
        let parts_left = (p_target - i) as u64;
        let tgt = (((remaining_w.div_ceil(parts_left)).max(1) as f64) * scale).max(1.0) as u64;
        let hi = find_hi_edges(&support, &w, &subset_of, tgt, theta_lo, UNASSIGNED);

        let mut active: Vec<u32> = (0..m as u32)
            .into_par_iter()
            .filter(|&e| is_alive(e) && support[e as usize].load(Ordering::Relaxed) < hi)
            .collect();
        let mut subset: Vec<u32> = Vec::new();
        let mut iter_id = 0u64;
        while !active.is_empty() {
            rounds += 1;
            let cur_stamp = (i as u64) << 32 | iter_id;
            iter_id += 1;
            for &e in &active {
                subset_of[e as usize].store(i as u64, Ordering::Relaxed);
                stamp[e as usize].store(cur_stamp, Ordering::Relaxed);
            }
            live -= active.len();
            subset.extend_from_slice(&active);

            // Propagate dying butterflies, min-peeled-edge as representative.
            let updated: Vec<u32> = active
                .par_iter()
                .fold(Vec::new, |mut acc, &e| {
                    let wk = propagate_edge_peel(
                        view,
                        &index,
                        &edges,
                        e,
                        theta_lo,
                        &support,
                        |f| subset_of[f as usize].load(Ordering::Relaxed),
                        |f| stamp[f as usize].load(Ordering::Relaxed),
                        cur_stamp,
                        i as u64,
                        UNASSIGNED as u64,
                        &mut acc,
                    );
                    work_cd.fetch_add(wk, Ordering::Relaxed);
                    acc
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });

            let mut next: Vec<u32> = updated
                .into_iter()
                .filter(|&f| is_alive(f) && support[f as usize].load(Ordering::Relaxed) < hi)
                .collect();
            next.sort_unstable();
            next.dedup();
            active = next;
        }

        let subset_w: u64 = subset.iter().map(|&e| w[e as usize]).sum();
        remaining_w = remaining_w.saturating_sub(subset_w);
        scale = if subset_w > 0 {
            (tgt as f64 / subset_w as f64).min(1.0)
        } else {
            1.0
        };
        bounds.push(hi);
        subsets.push(subset);
    }
    if live > 0 {
        init_support
            .par_iter_mut()
            .enumerate()
            .for_each(|(e, slot)| {
                if is_alive(e as u32) {
                    *slot = support[e].load(Ordering::Relaxed);
                }
            });
        let rest: Vec<u32> = (0..m as u32).filter(|&e| is_alive(e)).collect();
        let last = subsets.len() as u64;
        for &e in &rest {
            subset_of[e as usize].store(last, Ordering::Relaxed);
        }
        subsets.push(rest);
        bounds.push(u64::MAX);
    }

    // ---- Fine phase: independent per-subset refinement ----
    let subset_label: Vec<u64> = subset_of
        .iter()
        .map(|s| s.load(Ordering::Relaxed))
        .collect();
    let next_task = AtomicUsize::new(0);
    let work_fd = AtomicU64::new(0);
    let results: Mutex<Vec<(u32, u64)>> = Mutex::new(Vec::with_capacity(m));
    // Workload-aware ordering: heaviest subsets first.
    let mut order: Vec<usize> = (0..subsets.len()).collect();
    let weight = |i: usize| -> u64 { subsets[i].iter().map(|&e| w[e as usize]).sum() };
    let weights: Vec<u64> = (0..subsets.len()).map(weight).collect();
    order.sort_unstable_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));

    let threads = rayon::current_num_threads().min(subsets.len().max(1));
    // rayon::scope: workers run as pool jobs and inherit the ambient pool
    // budget; subset refinement inside a worker forks adaptively onto the
    // worker's own deque, where idle workers steal it (see fd.rs).
    rayon::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut local: Vec<(u32, u64)> = Vec::new();
                let mut local_work = 0u64;
                loop {
                    let slot = next_task.fetch_add(1, Ordering::Relaxed);
                    if slot >= order.len() {
                        break;
                    }
                    let sid = order[slot];
                    let subset = &subsets[sid];
                    if subset.is_empty() {
                        continue;
                    }
                    local_work += refine_wing_subset(
                        view,
                        &index,
                        &edges,
                        subset,
                        sid as u64,
                        &subset_label,
                        &init_support,
                        heap_arity,
                        &mut local,
                    );
                }
                work_fd.fetch_add(local_work, Ordering::Relaxed);
                results.lock().append(&mut local);
            });
        }
    });

    let mut wing = vec![0u64; m];
    for (e, theta) in results.into_inner() {
        wing[e as usize] = theta;
    }

    let metrics = WingMetrics {
        work_cd: work_cd.into_inner(),
        work_fd: work_fd.into_inner(),
        sync_rounds: rounds,
        partitions_used: subsets.len(),
    };
    (
        WingDecomposition {
            edges,
            wing,
            work: metrics.work_cd + metrics.work_fd,
        },
        metrics,
    )
}

/// Coarse-phase butterfly propagation for one peeled edge `e = (u, v)`:
/// enumerates live butterflies through `e`, skips butterflies already
/// destroyed in earlier iterations, and — when several current-iteration
/// edges share the butterfly — lets only the minimum-id one apply the
/// decrements. Collects updated alive edges into `acc`; returns the
/// enumeration work.
#[allow(clippy::too_many_arguments)]
fn propagate_edge_peel(
    view: SideGraph<'_>,
    index: &EdgeIndex,
    edges: &[(VertexId, VertexId)],
    e: u32,
    floor: u64,
    support: &[AtomicU64],
    subset_of: impl Fn(u32) -> u64,
    stamp_of: impl Fn(u32) -> u64,
    cur_stamp: u64,
    cur_subset: u64,
    unassigned: u64,
    acc: &mut Vec<u32>,
) -> u64 {
    let (u, v) = edges[e as usize];
    let mut work = 0u64;
    // Edge state: alive, peeled-now (this iteration), or dead-prior.
    let state = |f: u32| -> EdgeState {
        let s = subset_of(f);
        if s == unassigned {
            EdgeState::Alive
        } else if s == cur_subset && stamp_of(f) == cur_stamp {
            EdgeState::PeeledNow
        } else {
            EdgeState::DeadPrior
        }
    };
    for &v2 in view.neighbors_primary(u) {
        if v2 == v {
            continue;
        }
        let Some(e_uv2) = index.id(view, u, v2) else {
            continue;
        };
        let e_uv2 = e_uv2 as u32;
        let s_uv2 = state(e_uv2);
        if s_uv2 == EdgeState::DeadPrior {
            continue;
        }
        let (nv, nv2) = (view.neighbors_secondary(v), view.neighbors_secondary(v2));
        let (mut i, mut j) = (0, 0);
        while i < nv.len() && j < nv2.len() {
            work += 1;
            match nv[i].cmp(&nv2[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let u2 = nv[i];
                    i += 1;
                    j += 1;
                    if u2 == u {
                        continue;
                    }
                    let (Some(e3), Some(e4)) = (index.id(view, u2, v), index.id(view, u2, v2))
                    else {
                        continue;
                    };
                    let (e3, e4) = (e3 as u32, e4 as u32);
                    let (s3, s4) = (state(e3), state(e4));
                    if s3 == EdgeState::DeadPrior || s4 == EdgeState::DeadPrior {
                        continue; // butterfly already gone
                    }
                    // Representative: minimum id among this iteration's
                    // peeled edges of the butterfly.
                    let mut min_peeled = e;
                    for (f, s) in [(e_uv2, s_uv2), (e3, s3), (e4, s4)] {
                        if s == EdgeState::PeeledNow && f < min_peeled {
                            min_peeled = f;
                        }
                    }
                    if min_peeled != e {
                        continue;
                    }
                    for (f, s) in [(e_uv2, s_uv2), (e3, s3), (e4, s4)] {
                        if s == EdgeState::Alive {
                            let prev = saturating_sub_floor(&support[f as usize], 1, floor);
                            if prev > floor {
                                acc.push(f);
                            }
                        }
                    }
                }
            }
        }
    }
    work
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeState {
    Alive,
    PeeledNow,
    DeadPrior,
}

/// Fine-phase refinement of one edge subset: sequential bottom-up peeling
/// where a butterfly is live iff all its edges carry a subset label
/// `≥ sid`, same-label ones still in the heap.
#[allow(clippy::too_many_arguments)]
fn refine_wing_subset(
    view: SideGraph<'_>,
    index: &EdgeIndex,
    edges: &[(VertexId, VertexId)],
    subset: &[u32],
    sid: u64,
    subset_label: &[u64],
    init_support: &[u64],
    heap_arity: usize,
    out: &mut Vec<(u32, u64)>,
) -> u64 {
    // Local dense ids for the heap.
    let mut local_of: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for (l, &e) in subset.iter().enumerate() {
        local_of.insert(e, l as u32);
    }
    let keys: Vec<u64> = subset.iter().map(|&e| init_support[e as usize]).collect();
    let mut heap = IndexedMinHeap::new(heap_arity, &keys);
    let mut work = 0u64;

    while let Some((l, theta)) = heap.pop_min() {
        let e = subset[l as usize];
        out.push((e, theta));
        let (u, v) = edges[e as usize];
        // A partner edge is live if its subset is > sid, or == sid and
        // still in the heap. (Partners never equal `e` itself: they differ
        // from it in at least one endpoint.)
        // Some(Some(local)) = live same-subset; Some(None) = live higher
        // subset; None = dead.
        fn live(
            heap: &IndexedMinHeap,
            local_of: &std::collections::HashMap<u32, u32>,
            subset_label: &[u64],
            sid: u64,
            f: u32,
        ) -> Option<Option<u32>> {
            let s = subset_label[f as usize];
            if s > sid {
                Some(None)
            } else if s == sid {
                let lf = *local_of.get(&f).expect("same-subset edge is local");
                heap.contains(lf).then_some(Some(lf))
            } else {
                None
            }
        }
        for &v2 in view.neighbors_primary(u) {
            if v2 == v {
                continue;
            }
            let Some(e2) = index.id(view, u, v2) else {
                continue;
            };
            let Some(l2) = live(&heap, &local_of, subset_label, sid, e2 as u32) else {
                continue;
            };
            let (nv, nv2) = (view.neighbors_secondary(v), view.neighbors_secondary(v2));
            let (mut i, mut j) = (0, 0);
            while i < nv.len() && j < nv2.len() {
                work += 1;
                match nv[i].cmp(&nv2[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let u2 = nv[i];
                        i += 1;
                        j += 1;
                        if u2 == u {
                            continue;
                        }
                        let (Some(e3), Some(e4)) = (index.id(view, u2, v), index.id(view, u2, v2))
                        else {
                            continue;
                        };
                        let (Some(l3), Some(l4)) = (
                            live(&heap, &local_of, subset_label, sid, e3 as u32),
                            live(&heap, &local_of, subset_label, sid, e4 as u32),
                        ) else {
                            continue;
                        };
                        // Butterfly is live: decrement the same-subset
                        // partners (higher-subset edges are handled by
                        // their own task via ⋈init).
                        for lf in [l2, l3, l4].into_iter().flatten() {
                            if let Some(cur) = heap.key(lf) {
                                heap.decrease_key(lf, cur.saturating_sub(1).max(theta));
                            }
                        }
                    }
                }
            }
        }
    }
    work
}

/// `findHi` over edges.
fn find_hi_edges(
    support: &[AtomicU64],
    w: &[u64],
    subset_of: &[AtomicU64],
    tgt: u64,
    theta_lo: u64,
    unassigned: u32,
) -> u64 {
    let work: std::collections::HashMap<u64, u64> = (0..support.len())
        .into_par_iter()
        .filter(|&e| subset_of[e].load(Ordering::Relaxed) == unassigned as u64)
        .fold(
            std::collections::HashMap::new,
            |mut acc: std::collections::HashMap<u64, u64>, e| {
                *acc.entry(support[e].load(Ordering::Relaxed)).or_default() += w[e];
                acc
            },
        )
        .reduce(std::collections::HashMap::new, |mut a, b| {
            for (k, v) in b {
                *a.entry(k).or_default() += v;
            }
            a
        });
    let mut keys: Vec<u64> = work.keys().copied().collect();
    keys.sort_unstable();
    let mut acc = 0u64;
    for &s in &keys {
        acc += work[&s];
        if acc >= tgt {
            return s + 1;
        }
    }
    keys.last().map(|&s| s + 1).unwrap_or(theta_lo + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wing::wing_decompose;
    use bigraph::{gen, Side};

    fn check_matches_sequential(g: &bigraph::BipartiteCsr, p: usize) {
        let seq = wing_decompose(g.view(Side::U), 4);
        let (par, metrics) = receipt_wing_decompose(g.view(Side::U), p, 4);
        assert_eq!(seq.wing, par.wing, "P = {p}");
        assert!(metrics.partitions_used >= 1);
    }

    #[test]
    fn single_butterfly() {
        let g = bigraph::builder::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let (d, m) = receipt_wing_decompose(g.view(Side::U), 3, 4);
        assert_eq!(d.wing, vec![1, 1, 1, 1]);
        assert!(m.sync_rounds >= 1);
    }

    #[test]
    fn k33_all_four() {
        let mut e = Vec::new();
        for u in 0..3 {
            for v in 0..3 {
                e.push((u, v));
            }
        }
        let g = bigraph::builder::from_edges(3, 3, &e).unwrap();
        check_matches_sequential(&g, 1);
        check_matches_sequential(&g, 4);
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..6 {
            let g = gen::uniform(14, 14, 70, seed);
            for p in [1usize, 2, 5, 50] {
                check_matches_sequential(&g, p);
            }
        }
    }

    #[test]
    fn matches_sequential_on_skewed_and_blocks() {
        check_matches_sequential(&gen::zipf(25, 15, 120, 0.4, 1.0, 3), 6);
        check_matches_sequential(&gen::planted_bicliques(16, 16, 2, 4, 4, 30, 5), 6);
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let g = gen::uniform(20, 20, 110, 9);
        let a = parutil::with_pool(1, || receipt_wing_decompose(g.view(Side::U), 5, 4));
        let b = parutil::with_pool(4, || receipt_wing_decompose(g.view(Side::U), 5, 4));
        assert_eq!(a.0.wing, b.0.wing);
        assert_eq!(a.1.sync_rounds, b.1.sync_rounds);
    }

    #[test]
    fn empty_graph() {
        let g = bigraph::BipartiteCsr::empty(3, 3);
        let (d, _) = receipt_wing_decompose(g.view(Side::U), 4, 4);
        assert!(d.wing.is_empty());
    }

    #[test]
    fn coarse_rounds_do_not_exceed_edge_count() {
        let g = gen::uniform(20, 20, 100, 1);
        let (_, m) = receipt_wing_decompose(g.view(Side::U), 8, 4);
        assert!(m.sync_rounds <= 100);
    }
}

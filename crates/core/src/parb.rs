//! ParB — ParButterfly-style parallel bottom-up peeling (the paper's
//! state-of-the-art parallel baseline \[54\], BATCH aggregation mode with the
//! Julienne bucketing structure \[13\]).
//!
//! Every round extracts *all* vertices with the minimum support and peels
//! them concurrently; the support updates computed in a round decide the
//! next round's batch, so rounds are inherently serialized — that is the
//! synchronization bottleneck RECEIPT removes (ρ here is typically 100–1000×
//! the RECEIPT CD round count, Table 3).

use crate::bucket::BucketQueue;
use crate::bup::BaselineResult;
use crate::peel::{peel_vertex, PeelScratch, WedgeCounter};
use crate::support::SupportVec;
use bigraph::{BipartiteCsr, Side, VertexId};
use parutil::ScratchPool;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Number of open buckets used by ParButterfly (via Julienne).
pub const PARB_OPEN_BUCKETS: usize = 128;

/// Batches smaller than this are peeled on the calling thread — a real
/// runtime would still barrier, so the round is counted either way.
const SEQ_BATCH_CUTOFF: usize = 16;

/// Parallel bottom-up tip decomposition of `side`.
pub fn parb_decompose(g: &BipartiteCsr, side: Side, heap_arity_unused: usize) -> BaselineResult {
    let _ = heap_arity_unused; // ParB uses buckets, not heaps; kept for API symmetry.
    let t0 = Instant::now();
    let ranked = bigraph::RankedGraph::from_csr(g);
    let counts = butterfly::parallel::par_vertex_priority_counts(&ranked);
    let time_count = t0.elapsed();

    let view = g.view(side);
    let n = view.num_primary();
    let t1 = Instant::now();

    let support = SupportVec::from_counts(counts.side(side));
    let alive: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(true)).collect();
    let mut queue = BucketQueue::new(PARB_OPEN_BUCKETS, &support.snapshot());
    let mut tip = vec![0u64; n];
    let wedges = WedgeCounter::new();
    let scratch_pool = ScratchPool::new(move || PeelScratch::new(n));
    let mut rounds = 0u64;

    loop {
        let batch = queue.pop_min_batch(
            |id| {
                // Claim: flip alive -> false exactly once.
                if alive[id as usize].swap(false, Ordering::Relaxed) {
                    Some(support.get(id))
                } else {
                    None
                }
            },
            |id| {
                if alive[id as usize].load(Ordering::Relaxed) {
                    Some(support.get(id))
                } else {
                    None
                }
            },
        );
        let Some((theta, batch)) = batch else { break };
        rounds += 1;
        for &u in &batch {
            tip[u as usize] = theta;
        }

        // Peel the batch; collect every vertex whose support changed so it
        // can be (lazily) re-filed in the bucket structure.
        let updated: Vec<VertexId> = if batch.len() < SEQ_BATCH_CUTOFF {
            let mut scratch = scratch_pool.acquire();
            let mut local = Vec::new();
            for &u in &batch {
                let w = peel_vertex(&view, u, theta, &support, &alive, &mut scratch, |u2| {
                    local.push(u2)
                });
                wedges.add(w);
            }
            local
        } else {
            batch
                .par_iter()
                .fold(Vec::new, |mut acc, &u| {
                    let mut scratch = scratch_pool.acquire();
                    let w = peel_vertex(&view, u, theta, &support, &alive, &mut scratch, |u2| {
                        acc.push(u2)
                    });
                    wedges.add(w);
                    acc
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                })
        };
        for u2 in updated {
            if alive[u2 as usize].load(Ordering::Relaxed) {
                queue.insert(u2, support.get(u2));
            }
        }
    }

    BaselineResult {
        side,
        tip,
        wedges_count: counts.wedges_traversed,
        wedges_peel: wedges.get(),
        rounds,
        time_count,
        time_peel: t1.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bup::bup_decompose;
    use bigraph::builder::from_edges;
    use bigraph::gen;

    #[test]
    fn matches_bup_on_fig1() {
        let g = from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        )
        .unwrap();
        let r = parb_decompose(&g, Side::U, 4);
        assert_eq!(r.tip, vec![2, 3, 3, 1]);
    }

    #[test]
    fn matches_bup_on_random_graphs() {
        for seed in 0..6 {
            let g = gen::zipf(80, 50, 500, 0.5, 0.9, seed);
            for side in [Side::U, Side::V] {
                let bup = bup_decompose(&g, side, 4);
                let parb = parb_decompose(&g, side, 4);
                assert_eq!(bup.tip, parb.tip, "seed {seed} side {side}");
                assert_eq!(
                    bup.wedges_peel, parb.wedges_peel,
                    "ParB must traverse the same wedges as BUP (Table 3)"
                );
            }
        }
    }

    #[test]
    fn rounds_at_most_distinct_peel_values_and_at_most_n() {
        let g = gen::uniform(60, 60, 500, 3);
        let r = parb_decompose(&g, Side::U, 4);
        assert!(r.rounds <= 60);
        assert!(r.rounds >= 1);
        // At least as many rounds as distinct tip values (each round peels
        // a single support value).
        let mut distinct = r.tip.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(r.rounds >= distinct.len() as u64);
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let g = gen::zipf(70, 40, 400, 0.4, 0.8, 12);
        let a = parutil::with_pool(1, || parb_decompose(&g, Side::U, 4));
        let b = parutil::with_pool(3, || parb_decompose(&g, Side::U, 4));
        assert_eq!(a.tip, b.tip);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.wedges_peel, b.wedges_peel);
    }

    #[test]
    fn empty_and_star_graphs() {
        let g = BipartiteCsr::empty(4, 2);
        let r = parb_decompose(&g, Side::U, 4);
        assert_eq!(r.tip, vec![0; 4]);
        assert_eq!(r.rounds, 1, "all zeros peel in one round");

        let star = from_edges(5, 1, &[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]).unwrap();
        let r = parb_decompose(&star, Side::U, 4);
        assert_eq!(r.tip, vec![0; 5]);
    }
}

//! Named versions over a durable store — tags, diffs, and time travel
//! (`VERSIONING.md`, normative).
//!
//! A [`VersionStore`] lives next to a [`crate::wal::Store`]'s
//! `checkpoint.meta` and `wal.log` as one checksummed `versions.meta`
//! file (VERSIONING.md §2). Each [`VersionRef`] names an LSN of the
//! store's batch history together with the butterfly total and both
//! sides' tip checksums of that state, binding the name to the *state*
//! rather than to a mere offset. On top of the refs:
//!
//! * [`VersionStore::diff`] materializes the net [`EdgeOp`] batch
//!   between two versions by scanning the WAL interval (§5);
//! * [`StreamEngine::open_at`] replays from the checkpoint to a tagged
//!   LSN through the normal batch path and publishes the state behind
//!   the usual lock-free snapshot surface (§4);
//! * the derive operators (`bigraph::derive`, `tipdecomp derive`)
//!   build new graphs from the materialized time-travel states (§6).
//!
//! Every failure is a typed [`VersionError`] (§7); readers fail closed
//! and never repair — `versions.meta` is replaced atomically, so any
//! defect is corruption, not a crash signature.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use bigraph::bytes::{array_at, le_u32_at, le_u64_at};
use bigraph::dynamic::EdgeOp;

use crate::dynamic::fnv1a_u64;
use crate::engine::{EngineOptions, EngineSnapshot, StreamEngine};
use crate::wal::{Store, StoreError, Wal};

/// Magic bytes opening `versions.meta` (VERSIONING.md §2.1).
pub const VER_MAGIC: [u8; 8] = *b"RCPTVER\0";
/// Current `versions.meta` format version.
pub const VER_VERSION: u32 = 1;
/// Endianness canary, same value as every other format in FORMATS.md.
pub const VER_ENDIAN_TAG: u32 = 0x0102_0304;
/// Header length in bytes (magic + version + endianness + count).
pub const VER_HEADER_LEN: u64 = 24;
/// Smallest well-formed file: header + trailer checksum, zero entries.
pub const VER_MIN_LEN: u64 = VER_HEADER_LEN + 8;
/// Longest name a reader accepts (§2.2); taggers are stricter (§3.1).
pub const VER_MAX_NAME_LEN: usize = 255;
/// Longest name a tagger produces (§3.1).
pub const TAG_MAX_NAME_LEN: usize = 64;

/// One named, immutable version: a tag name bound to an LSN of the
/// store's history plus the checksums of the state reached there
/// (VERSIONING.md §1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionRef {
    /// The tag name (§3.1).
    pub name: String,
    /// Last WAL record included in the version; `0` names the initial
    /// graph the store was created from.
    pub lsn: u64,
    /// Butterfly total of the tagged state.
    pub total_butterflies: u64,
    /// FNV-1a digest of the U-side tip numbers, in id order.
    pub tip_checksum_u: u64,
    /// FNV-1a digest of the V-side tip numbers, in id order.
    pub tip_checksum_v: u64,
}

/// Typed failure of any versioning operation (VERSIONING.md §7).
#[derive(Debug)]
pub enum VersionError {
    /// Underlying I/O failure, with the offending path.
    Io { path: String, error: io::Error },
    /// `versions.meta` does not start with [`VER_MAGIC`].
    BadMagic { path: String, found: [u8; 8] },
    /// Unsupported format version (§8: strict, never guessed around).
    BadVersion { path: String, found: u32 },
    /// Endianness canary mismatch.
    BadEndianness { path: String, found: u32 },
    /// The trailing checksum does not cover the file's words.
    MetaChecksum {
        path: String,
        stored: u64,
        computed: u64,
    },
    /// Structural validation failed (§2.4).
    Corrupt { path: String, what: String },
    /// Tag name rejected at creation (§3.1).
    BadName { name: String, what: String },
    /// A tag with this name already exists (§3.2 — tags never rebind).
    TagExists { name: String },
    /// No tag with this name.
    UnknownTag { name: String },
    /// `tag_lsn > wal_end` — the WAL never durably held the tagged
    /// state (§3.4).
    TagAheadOfWal {
        name: String,
        lsn: u64,
        wal_end: u64,
    },
    /// `tag_lsn < checkpoint_lsn` — the records needed to reach the
    /// tag were folded away (§3.4).
    TagBelowCheckpoint {
        name: String,
        lsn: u64,
        checkpoint_lsn: u64,
    },
    /// `diff(a, b)` with `lsn(a) > lsn(b)` (§5).
    Unordered {
        a: String,
        lsn_a: u64,
        b: String,
        lsn_b: u64,
    },
    /// Replay reached the tagged LSN but the state's checksums differ
    /// from the `VersionRef` (§4 step 5).
    StateMismatch { name: String, what: String },
    /// The underlying store failed to open (FORMATS.md §4).
    Store(StoreError),
}

impl fmt::Display for VersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionError::Io { path, error } => write!(f, "{path}: {error}"),
            VersionError::BadMagic { path, found } => {
                write!(f, "{path}: bad magic {found:02x?} (expected RCPTVER)")
            }
            VersionError::BadVersion { path, found } => {
                write!(
                    f,
                    "{path}: unsupported versions.meta version {found} (expected {VER_VERSION})"
                )
            }
            VersionError::BadEndianness { path, found } => {
                write!(f, "{path}: bad endianness tag {found:#010x}")
            }
            VersionError::MetaChecksum {
                path,
                stored,
                computed,
            } => write!(
                f,
                "{path}: checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            VersionError::Corrupt { path, what } => write!(f, "{path}: corrupt: {what}"),
            VersionError::BadName { name, what } => write!(f, "bad tag name {name:?}: {what}"),
            VersionError::TagExists { name } => {
                write!(f, "tag {name:?} already exists (tags are immutable)")
            }
            VersionError::UnknownTag { name } => write!(f, "unknown tag {name:?}"),
            VersionError::TagAheadOfWal { name, lsn, wal_end } => write!(
                f,
                "tag {name:?} at lsn {lsn} is ahead of the WAL end ({wal_end}) — \
                 the log never durably held that state"
            ),
            VersionError::TagBelowCheckpoint {
                name,
                lsn,
                checkpoint_lsn,
            } => write!(
                f,
                "tag {name:?} at lsn {lsn} is below the checkpoint ({checkpoint_lsn}) — \
                 the records needed to reach it were folded away"
            ),
            VersionError::Unordered { a, lsn_a, b, lsn_b } => write!(
                f,
                "diff({a:?}, {b:?}) is unordered: lsn {lsn_a} > lsn {lsn_b} \
                 (the first version must be the older one)"
            ),
            VersionError::StateMismatch { name, what } => write!(
                f,
                "tag {name:?}: replayed state does not match the version ref: {what}"
            ),
            VersionError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VersionError {}

impl From<StoreError> for VersionError {
    fn from(e: StoreError) -> Self {
        VersionError::Store(e)
    }
}

/// Validates a tag name at creation time (§3.1): 1–64 bytes of
/// `[A-Za-z0-9._-]`, not starting with `-`.
pub fn validate_tag_name(name: &str) -> Result<(), VersionError> {
    let fail = |what: &str| {
        Err(VersionError::BadName {
            name: name.to_string(),
            what: what.to_string(),
        })
    };
    if name.is_empty() {
        return fail("empty");
    }
    if name.len() > TAG_MAX_NAME_LEN {
        return fail("longer than 64 bytes");
    }
    if name.starts_with('-') {
        return fail("must not begin with '-'");
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return fail(&format!("character {c:?} outside [A-Za-z0-9._-]"));
    }
    Ok(())
}

fn encode(entries: &[VersionRef]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(VER_MIN_LEN as usize + 48 * entries.len());
    buf.extend_from_slice(&VER_MAGIC);
    buf.extend_from_slice(&VER_VERSION.to_le_bytes());
    buf.extend_from_slice(&VER_ENDIAN_TAG.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for e in entries {
        buf.extend_from_slice(&e.lsn.to_le_bytes());
        buf.extend_from_slice(&e.total_butterflies.to_le_bytes());
        buf.extend_from_slice(&e.tip_checksum_u.to_le_bytes());
        buf.extend_from_slice(&e.tip_checksum_v.to_le_bytes());
        buf.extend_from_slice(&(e.name.len() as u64).to_le_bytes());
        buf.extend_from_slice(e.name.as_bytes());
        // Zero-pad the name to the next u64 word boundary (§2.2).
        buf.resize(buf.len().div_ceil(8) * 8, 0);
    }
    let words = words_of(&buf);
    buf.extend_from_slice(&fnv1a_u64(&words).to_le_bytes());
    buf
}

/// The §2.3 word view: every aligned little-endian u64 of `bytes`. A
/// trailing partial chunk (impossible for the length-checked callers)
/// is simply not a word.
fn words_of(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| le_u64_at(c, 0).unwrap_or(0))
        .collect()
}

/// Decodes and fully validates a `versions.meta` image in the §2.4
/// order, failing closed at the first violation.
fn decode(path: &Path, bytes: &[u8]) -> Result<Vec<VersionRef>, VersionError> {
    let display = || path.display().to_string();
    let corrupt = |what: String| VersionError::Corrupt {
        path: display(),
        what,
    };
    if (bytes.len() as u64) < VER_MIN_LEN || !bytes.len().is_multiple_of(8) {
        return Err(corrupt(format!(
            "bad length {} (minimum {VER_MIN_LEN}, must be a multiple of 8)",
            bytes.len()
        )));
    }
    // Length is checked above, so these reads are in range; the
    // fail-closed helpers keep even an impossible short read an error.
    let short = |pos: usize| corrupt(format!("truncated read at offset {pos}"));
    let magic: [u8; 8] = array_at(bytes, 0).ok_or_else(|| short(0))?;
    if magic != VER_MAGIC {
        return Err(VersionError::BadMagic {
            path: display(),
            found: magic,
        });
    }
    let version = le_u32_at(bytes, 8).ok_or_else(|| short(8))?;
    if version != VER_VERSION {
        return Err(VersionError::BadVersion {
            path: display(),
            found: version,
        });
    }
    let endian = le_u32_at(bytes, 12).ok_or_else(|| short(12))?;
    if endian != VER_ENDIAN_TAG {
        return Err(VersionError::BadEndianness {
            path: display(),
            found: endian,
        });
    }
    // Trailer checksum over every preceding word (§2.3), before any
    // structural field is trusted.
    let body = &bytes[..bytes.len() - 8];
    let computed = fnv1a_u64(&words_of(body));
    let stored = le_u64_at(bytes, bytes.len() - 8).ok_or_else(|| short(bytes.len() - 8))?;
    if stored != computed {
        return Err(VersionError::MetaChecksum {
            path: display(),
            stored,
            computed,
        });
    }
    // Structure (§2.4).
    let count = le_u64_at(bytes, 16).ok_or_else(|| short(16))?;
    let mut entries = Vec::new();
    let mut at = VER_HEADER_LEN as usize;
    for i in 0..count {
        if body.len() < at + 40 {
            return Err(corrupt(format!("entry {i} truncated at byte {at}")));
        }
        let word = |k: usize| {
            le_u64_at(body, at + 8 * k)
                .ok_or_else(|| corrupt(format!("entry {i} truncated at byte {}", at + 8 * k)))
        };
        let (lsn, total_butterflies) = (word(0)?, word(1)?);
        let (tip_checksum_u, tip_checksum_v) = (word(2)?, word(3)?);
        let name_len = word(4)? as usize;
        if name_len == 0 || name_len > VER_MAX_NAME_LEN {
            return Err(corrupt(format!(
                "entry {i}: name length {name_len} outside 1..=255"
            )));
        }
        let name_at = at + 40;
        let padded = name_len.div_ceil(8) * 8;
        if body.len() < name_at + padded {
            return Err(corrupt(format!(
                "entry {i}: name truncated at byte {name_at}"
            )));
        }
        let name = std::str::from_utf8(&body[name_at..name_at + name_len])
            .map_err(|e| corrupt(format!("entry {i}: name is not UTF-8: {e}")))?
            .to_string();
        if body[name_at + name_len..name_at + padded]
            .iter()
            .any(|&b| b != 0)
        {
            return Err(corrupt(format!("entry {i}: nonzero name padding")));
        }
        if let Some(prev) = entries.last() {
            let prev: &VersionRef = prev;
            if lsn < prev.lsn {
                return Err(corrupt(format!(
                    "entry {i} ({name:?}) at lsn {lsn} below predecessor {:?} at lsn {} \
                     (entries are created in LSN order)",
                    prev.name, prev.lsn
                )));
            }
        }
        if entries.iter().any(|e: &VersionRef| e.name == name) {
            return Err(corrupt(format!("duplicate tag name {name:?}")));
        }
        entries.push(VersionRef {
            name,
            lsn,
            total_butterflies,
            tip_checksum_u,
            tip_checksum_v,
        });
        at = name_at + padded;
    }
    if at != body.len() {
        return Err(corrupt(format!(
            "{} trailing byte(s) after the last entry",
            body.len() - at
        )));
    }
    Ok(entries)
}

/// The version set of one store directory, backed by `versions.meta`
/// (VERSIONING.md §2). Opening a store without the file yields an
/// empty set; the file is created on the first [`Self::tag`].
#[derive(Debug, Clone)]
pub struct VersionStore {
    dir: PathBuf,
    entries: Vec<VersionRef>,
}

impl VersionStore {
    /// The `versions.meta` path inside `dir`.
    pub fn versions_path(dir: &Path) -> PathBuf {
        dir.join("versions.meta")
    }

    /// Loads (and fully validates) the version set of the store at
    /// `dir`. A missing `versions.meta` is an empty set, not an error.
    pub fn open(dir: &Path) -> Result<VersionStore, VersionError> {
        let path = Self::versions_path(dir);
        let entries = match std::fs::read(&path) {
            Ok(bytes) => decode(&path, &bytes)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                return Err(VersionError::Io {
                    path: path.display().to_string(),
                    error: e,
                })
            }
        };
        Ok(VersionStore {
            dir: dir.to_path_buf(),
            entries,
        })
    }

    /// The store directory this version set belongs to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Every version, in creation (= LSN) order.
    pub fn list(&self) -> &[VersionRef] {
        &self.entries
    }

    /// Looks a tag up by name.
    pub fn get(&self, name: &str) -> Option<&VersionRef> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Like [`Self::get`] but failing with [`VersionError::UnknownTag`].
    pub fn lookup(&self, name: &str) -> Result<&VersionRef, VersionError> {
        self.get(name).ok_or_else(|| VersionError::UnknownTag {
            name: name.to_string(),
        })
    }

    /// Tags the state at `lsn` (the store's current end, §3.2) with
    /// `name`, persisting the grown set atomically (§2.5). Returns the
    /// new ref. Fails closed on a bad name, a duplicate, or an LSN
    /// below the last entry's (tags are created in history order).
    pub fn tag(
        &mut self,
        name: &str,
        lsn: u64,
        total_butterflies: u64,
        tip_checksum_u: u64,
        tip_checksum_v: u64,
    ) -> Result<&VersionRef, VersionError> {
        validate_tag_name(name)?;
        if self.get(name).is_some() {
            return Err(VersionError::TagExists {
                name: name.to_string(),
            });
        }
        if let Some(last) = self.entries.last() {
            if lsn < last.lsn {
                return Err(VersionError::Corrupt {
                    path: Self::versions_path(&self.dir).display().to_string(),
                    what: format!(
                        "tag {name:?} at lsn {lsn} below last entry {:?} at lsn {} \
                         (tags name the store's current end)",
                        last.name, last.lsn
                    ),
                });
            }
        }
        self.entries.push(VersionRef {
            name: name.to_string(),
            lsn,
            total_butterflies,
            tip_checksum_u,
            tip_checksum_v,
        });
        let bytes = encode(&self.entries);
        Store::write_atomic(&Self::versions_path(&self.dir), &bytes)?;
        self.entries.last().ok_or_else(|| VersionError::Corrupt {
            path: Self::versions_path(&self.dir).display().to_string(),
            what: "version list empty immediately after tagging".to_string(),
        })
    }

    /// Convenience form of [`Self::tag`] reading the checksums off a
    /// published [`EngineSnapshot`].
    pub fn tag_snapshot(
        &mut self,
        name: &str,
        lsn: u64,
        snapshot: &EngineSnapshot,
    ) -> Result<&VersionRef, VersionError> {
        self.tag(
            name,
            lsn,
            snapshot.total_butterflies(),
            snapshot.tip_checksum(bigraph::Side::U),
            snapshot.tip_checksum(bigraph::Side::V),
        )
    }

    /// Materializes the net `EdgeOp` batch between versions `a` and `b`
    /// (VERSIONING.md §5): the last op per edge across the WAL records
    /// in `(lsn(a), lsn(b)]`, sorted by `(u, v)`. Applying the result
    /// as one batch to the graph of `at(a)` yields the graph of
    /// `at(b)` exactly.
    ///
    /// Requires `lsn(a) ≤ lsn(b)` and both tags inside the §3.4
    /// serviceability window. The WAL is opened strictly — a torn tail
    /// is a recovery concern, not a diff's to repair.
    pub fn diff(&self, a: &str, b: &str) -> Result<Vec<EdgeOp>, VersionError> {
        let ra = self.lookup(a)?.clone();
        let rb = self.lookup(b)?.clone();
        if ra.lsn > rb.lsn {
            return Err(VersionError::Unordered {
                a: ra.name,
                lsn_a: ra.lsn,
                b: rb.name,
                lsn_b: rb.lsn,
            });
        }
        let (wal, records) =
            Wal::open(Store::wal_path(&self.dir)).map_err(|e| VersionError::Store(e.into()))?;
        if rb.lsn > wal.end_lsn() {
            return Err(VersionError::TagAheadOfWal {
                name: rb.name,
                lsn: rb.lsn,
                wal_end: wal.end_lsn(),
            });
        }
        if ra.lsn < wal.base_lsn() {
            return Err(VersionError::TagBelowCheckpoint {
                name: ra.name,
                lsn: ra.lsn,
                checkpoint_lsn: wal.base_lsn(),
            });
        }
        // Last-op-per-edge over the interval; the BTreeMap gives the
        // pinned (u, v)-ascending emission order for free.
        let mut last: BTreeMap<(u32, u32), EdgeOp> = BTreeMap::new();
        for record in &records {
            if record.lsn <= ra.lsn || record.lsn > rb.lsn {
                continue;
            }
            for &op in &record.ops {
                last.insert(op.edge(), op);
            }
        }
        Ok(last.into_values().collect())
    }
}

/// Tags the store's current end state (`VERSIONING.md` §3.2) from the
/// outside: opens the store strictly (a torn WAL tail is an error here —
/// run recovery first, then tag), replays every committed record through
/// the normal batch path to materialize the head state, and appends the
/// tag at `wal_end` with that state's checksums. Returns the created ref.
///
/// This is what `tipdecomp version tag` runs. A live engine tags its own
/// published snapshot instead (serve-mode `tag` via
/// [`VersionStore::tag_snapshot`]) and never re-replays.
pub fn tag_head(
    dir: &Path,
    name: &str,
    options: EngineOptions,
) -> Result<VersionRef, VersionError> {
    validate_tag_name(name)?;
    let mut versions = VersionStore::open(dir)?;
    if versions.get(name).is_some() {
        return Err(VersionError::TagExists {
            name: name.to_string(),
        });
    }
    let rec = Store::open(dir)?;
    let wal_end = rec.wal.end_lsn();
    let engine = StreamEngine::new(rec.graph, options);
    for record in &rec.batches {
        engine
            .apply_batch_inner(&record.ops, false)
            .map_err(|e| VersionError::Corrupt {
                path: Store::wal_path(dir).display().to_string(),
                what: format!("replaying committed lsn {}: {e}", record.lsn),
            })?;
    }
    let snapshot = engine.snapshot();
    versions.tag_snapshot(name, wal_end, &snapshot).cloned()
}

/// What [`StreamEngine::open_at`] found and replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeTravelInfo {
    /// The resolved version ref.
    pub version: VersionRef,
    /// The store's checkpoint LSN (replay started from its snapshot).
    pub checkpoint_lsn: u64,
    /// Committed records found in the WAL.
    pub wal_records: usize,
    /// Records replayed to reach the tag (= `tag_lsn − checkpoint_lsn`).
    pub replayed: usize,
    /// Records already folded into the base snapshot.
    pub skipped_folded: usize,
    /// Records above the tag LSN, deliberately not applied.
    pub skipped_above: usize,
    /// The WAL's last committed LSN.
    pub wal_end: u64,
}

impl StreamEngine {
    /// Time travel (VERSIONING.md §4): opens the store at `dir`
    /// read-only, replays from the checkpoint snapshot to the LSN
    /// tagged `name` through the normal batch path, verifies the
    /// reached state against the [`VersionRef`]'s checksums, and
    /// publishes it as an ordinary read-only [`EngineSnapshot`].
    ///
    /// The returned engine has **no durable log attached**: applying
    /// further batches to it would fork history in memory only, and
    /// the surfaces built on `open_at` never do. Nothing on disk is
    /// modified — not even a torn WAL tail is repaired (that is
    /// recovery's explicit job).
    pub fn open_at(
        dir: &Path,
        name: &str,
        options: EngineOptions,
    ) -> Result<(StreamEngine, TimeTravelInfo), VersionError> {
        let versions = VersionStore::open(dir)?;
        let vref = versions.lookup(name)?.clone();
        let rec = Store::open(dir)?;
        let wal_end = rec.wal.end_lsn();
        if vref.lsn > wal_end {
            return Err(VersionError::TagAheadOfWal {
                name: vref.name,
                lsn: vref.lsn,
                wal_end,
            });
        }
        if vref.lsn < rec.checkpoint_lsn {
            return Err(VersionError::TagBelowCheckpoint {
                name: vref.name,
                lsn: vref.lsn,
                checkpoint_lsn: rec.checkpoint_lsn,
            });
        }
        let engine = StreamEngine::new(rec.graph, options);
        let mut replayed = 0;
        let mut skipped_above = 0;
        for record in &rec.batches {
            if record.lsn > vref.lsn {
                skipped_above += 1;
                continue;
            }
            engine
                .apply_batch_inner(&record.ops, false)
                .map_err(|e| VersionError::Corrupt {
                    path: Store::wal_path(dir).display().to_string(),
                    what: format!("replaying committed lsn {}: {e}", record.lsn),
                })?;
            replayed += 1;
        }
        let snapshot = engine.snapshot();
        let mismatch = |what: String| VersionError::StateMismatch {
            name: vref.name.clone(),
            what,
        };
        if snapshot.total_butterflies() != vref.total_butterflies {
            return Err(mismatch(format!(
                "butterfly total {} != tagged {}",
                snapshot.total_butterflies(),
                vref.total_butterflies
            )));
        }
        for (side, tagged) in [
            (bigraph::Side::U, vref.tip_checksum_u),
            (bigraph::Side::V, vref.tip_checksum_v),
        ] {
            let got = snapshot.tip_checksum(side);
            if got != tagged {
                return Err(mismatch(format!(
                    "{side} tip checksum {got:#018x} != tagged {tagged:#018x}"
                )));
            }
        }
        let info = TimeTravelInfo {
            version: vref,
            checkpoint_lsn: rec.checkpoint_lsn,
            wal_records: rec.skipped + rec.batches.len(),
            replayed,
            skipped_folded: rec.skipped,
            skipped_above,
            wal_end,
        };
        Ok((engine, info))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::gen;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("receipt_version_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn store_with(dir: &Path) -> VersionStore {
        let g = gen::planted_bicliques(10, 10, 1, 3, 3, 10, 5);
        Store::init(dir, &g).unwrap();
        VersionStore::open(dir).unwrap()
    }

    #[test]
    fn empty_store_round_trips() {
        let dir = temp_dir("empty");
        let vs = store_with(&dir);
        assert!(vs.list().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tag_persists_and_reloads() {
        let dir = temp_dir("tag");
        let mut vs = store_with(&dir);
        vs.tag("v0", 0, 9, 1, 2).unwrap();
        vs.tag("release-1.0", 0, 9, 1, 2).unwrap();
        let back = VersionStore::open(&dir).unwrap();
        assert_eq!(back.list().len(), 2);
        assert_eq!(back.get("v0").unwrap().total_butterflies, 9);
        assert_eq!(back.get("release-1.0").unwrap().tip_checksum_v, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_and_bad_names_fail_closed() {
        let dir = temp_dir("names");
        let mut vs = store_with(&dir);
        vs.tag("v0", 0, 0, 0, 0).unwrap();
        assert!(matches!(
            vs.tag("v0", 0, 0, 0, 0),
            Err(VersionError::TagExists { .. })
        ));
        for bad in ["", "-leading", "has space", "sla/sh", &"x".repeat(65)] {
            assert!(
                matches!(vs.tag(bad, 0, 0, 0, 0), Err(VersionError::BadName { .. })),
                "{bad:?}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let dir = temp_dir("flip");
        let mut vs = store_with(&dir);
        vs.tag("v0", 0, 7, 11, 13).unwrap();
        let path = VersionStore::versions_path(&dir);
        let good = std::fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(
                decode(&path, &bad).is_err(),
                "flipping byte {i} went undetected"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_tag_and_unordered_diff() {
        let dir = temp_dir("difftags");
        let mut vs = store_with(&dir);
        let mut wal = Wal::open(Store::wal_path(&dir)).unwrap().0;
        let lsn1 = wal.append(&[EdgeOp::Insert(0, 0)]).unwrap();
        let lsn2 = wal.append(&[EdgeOp::Delete(0, 0)]).unwrap();
        vs.tag("a", lsn1, 0, 0, 0).unwrap();
        vs.tag("b", lsn2, 0, 0, 0).unwrap();
        assert!(matches!(
            vs.diff("a", "nope"),
            Err(VersionError::UnknownTag { .. })
        ));
        assert!(matches!(
            vs.diff("b", "a"),
            Err(VersionError::Unordered { .. })
        ));
        assert_eq!(vs.diff("a", "a").unwrap(), vec![]);
        assert_eq!(vs.diff("a", "b").unwrap(), vec![EdgeOp::Delete(0, 0)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Sorted-set intersection kernels for wedge enumeration.
//!
//! Butterfly counting spends its time intersecting adjacency lists, and
//! real bipartite graphs hand those lists to us with wildly skewed sizes
//! (a hub against a leaf). One kernel cannot be right for every shape,
//! so this module offers three, all over ascending duplicate-free inputs,
//! plus the selection heuristic the dynamic counter uses:
//!
//! * [`intersect_merge`] — the scalar two-pointer sorted merge. Optimal
//!   when the lists are comparable in size; `O(|a| + |b|)`.
//! * [`intersect_gallop`] — exponential (galloping) search of the
//!   *smaller* list's elements into the *larger* list, resuming where the
//!   previous probe left off; `O(|small| · log |large|)`, the classic win
//!   once the size ratio passes [`GALLOP_RATIO`].
//! * [`intersect_bitset`] — membership streaming against a pre-built
//!   [`VertexBitset`] of a hub's neighborhood; `O(|stream|)` per
//!   intersection after an `O(|hub|)` build, amortized across the hub's
//!   many wedges.
//!
//! Every kernel returns its **work in comparable units** — one unit per
//! element visit or comparison probe (merge steps, gallop probes, bitset
//! membership tests). The `update_work`/`recount_work` telemetry the
//! `repro` harness reports therefore keeps its meaning regardless of
//! which kernel ran.
//!
//! The thresholds are deliberately conservative: toy graphs (goldens,
//! unit fixtures) never trip them, so kernel selection cannot perturb
//! pinned work numbers at test scale, while hub-heavy realistic graphs
//! trip them exactly where the asymptotics pay.

use bigraph::VertexId;

/// Minimum large-to-small size ratio before galloping beats the merge.
pub const GALLOP_RATIO: usize = 8;
/// Minimum size of the *larger* list before galloping is considered:
/// below this, both lists fit in cache lines and the merge's simple
/// loop wins on constants.
pub const GALLOP_MIN: usize = 64;
/// Minimum hub degree before building a neighborhood bitset pays. The
/// build is `O(hub degree)` and is amortized over every wedge through
/// the hub, so the bar is the same order as [`GALLOP_MIN`].
pub const BITSET_MIN: usize = 64;

/// Should `small` be galloped into `large`? (Sizes, not slices — the
/// caller knows both degrees before materializing anything.)
pub fn should_gallop(small: usize, large: usize) -> bool {
    large >= GALLOP_MIN && large >= small.saturating_mul(GALLOP_RATIO)
}

/// Scalar two-pointer intersection of two ascending streams; calls `hit`
/// for every common element and returns the number of merge steps.
pub fn intersect_merge(
    a: impl Iterator<Item = VertexId>,
    b: impl Iterator<Item = VertexId>,
    mut hit: impl FnMut(VertexId),
) -> u64 {
    let mut a = a.peekable();
    let mut b = b.peekable();
    let mut steps = 0u64;
    while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
        steps += 1;
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                a.next();
            }
            std::cmp::Ordering::Greater => {
                b.next();
            }
            std::cmp::Ordering::Equal => {
                hit(x);
                a.next();
                b.next();
            }
        }
    }
    steps
}

/// Galloping partition point: the length of the longest prefix of `xs`
/// whose elements satisfy `pred` (which must be prefix-closed over `xs`:
/// true for a prefix, false for the rest — e.g. any threshold predicate
/// over a sorted slice). Exponential step-doubling brackets the
/// boundary in `O(log p)` probes where `p` is the prefix length, then a
/// binary search pins it — cheap when the answer is near the front,
/// which is exactly the rank-boundary case in the wedge loops.
pub fn gallop_partition_point<T>(xs: &[T], mut pred: impl FnMut(&T) -> bool) -> usize {
    match xs.first() {
        None => return 0,
        Some(x) if !pred(x) => return 0,
        Some(_) => {}
    }
    // Invariant: pred(xs[lo]) is true; the boundary is in (lo, lo+step].
    let mut lo = 0usize;
    let mut step = 1usize;
    while lo + step < xs.len() && pred(&xs[lo + step]) {
        lo += step;
        step <<= 1;
    }
    // Boundary is in (lo, lo+step]: pred(xs[lo]) holds, and xs[lo+step]
    // either fails pred or falls off the end.
    let mut hi = (lo + step).min(xs.len());
    let mut l = lo + 1;
    while l < hi {
        let m = l + (hi - l) / 2;
        if pred(&xs[m]) {
            l = m + 1;
        } else {
            hi = m;
        }
    }
    l
}

/// Galloping intersection: walks the (smaller) `small` stream and
/// exponential-searches each element into the (larger, random-access)
/// `large` slice, resuming from the previous match position so the
/// combined probes stay `O(|small| · log |large|)` even adversarially.
/// Calls `hit` per common element; returns the probe count (the work
/// metric, comparable to merge steps — one comparison each).
pub fn intersect_gallop(
    small: impl Iterator<Item = VertexId>,
    large: &[VertexId],
    mut hit: impl FnMut(VertexId),
) -> u64 {
    let mut probes = 0u64;
    let mut rest = large;
    for x in small {
        if rest.is_empty() {
            break;
        }
        // Longest prefix of `rest` strictly below `x`; count every
        // predicate evaluation as one probe.
        let skip = gallop_partition_point(rest, |&y| {
            probes += 1;
            y < x
        });
        rest = &rest[skip..];
        match rest.first() {
            Some(&y) if y == x => {
                hit(x);
                rest = &rest[1..];
            }
            _ => {}
        }
    }
    probes
}

/// Dense membership bitset over a vertex id space, built once per hub
/// neighborhood and streamed against by [`intersect_bitset`].
pub struct VertexBitset {
    words: Vec<u64>,
}

impl VertexBitset {
    /// All-empty bitset covering ids `0..universe`.
    pub fn new(universe: usize) -> Self {
        VertexBitset {
            words: vec![0; universe.div_ceil(64)],
        }
    }

    /// Builds directly from a neighborhood iterator.
    pub fn from_iter(universe: usize, members: impl Iterator<Item = VertexId>) -> Self {
        let mut bs = Self::new(universe);
        for m in members {
            bs.insert(m);
        }
        bs
    }

    pub fn insert(&mut self, v: VertexId) {
        self.words[v as usize / 64] |= 1u64 << (v % 64);
    }

    pub fn contains(&self, v: VertexId) -> bool {
        let i = v as usize / 64;
        self.words.get(i).is_some_and(|w| w >> (v % 64) & 1 == 1)
    }
}

/// Bitset intersection: streams `stream` against a pre-built hub
/// neighborhood bitset, calling `hit` per member. Work is one membership
/// test per streamed element (the build's `O(hub)` cost is charged once
/// by the caller, amortized over the hub's wedges).
pub fn intersect_bitset(
    bits: &VertexBitset,
    stream: impl Iterator<Item = VertexId>,
    mut hit: impl FnMut(VertexId),
) -> u64 {
    let mut tests = 0u64;
    for x in stream {
        tests += 1;
        if bits.contains(x) {
            hit(x);
        }
    }
    tests
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_merge(a: &[VertexId], b: &[VertexId]) -> (Vec<VertexId>, u64) {
        let mut out = Vec::new();
        let w = intersect_merge(a.iter().copied(), b.iter().copied(), |x| out.push(x));
        (out, w)
    }

    fn collect_gallop(small: &[VertexId], large: &[VertexId]) -> (Vec<VertexId>, u64) {
        let mut out = Vec::new();
        let w = intersect_gallop(small.iter().copied(), large, |x| out.push(x));
        (out, w)
    }

    fn collect_bitset(a: &[VertexId], b: &[VertexId]) -> (Vec<VertexId>, u64) {
        let universe = a
            .iter()
            .chain(b)
            .map(|&x| x as usize + 1)
            .max()
            .unwrap_or(0);
        let bits = VertexBitset::from_iter(universe, a.iter().copied());
        let mut out = Vec::new();
        let w = intersect_bitset(&bits, b.iter().copied(), |x| out.push(x));
        (out, w)
    }

    #[test]
    fn kernels_agree_on_fixtures() {
        let cases: Vec<(Vec<VertexId>, Vec<VertexId>)> = vec![
            (vec![], vec![]),
            (vec![1], vec![]),
            (vec![1, 3, 5], vec![2, 4, 6]),
            (vec![1, 3, 5], vec![1, 3, 5]),
            (vec![2, 9, 40], (0..100).collect()),
            ((0..50).map(|x| x * 3).collect(), (0..150).collect()),
        ];
        for (a, b) in cases {
            let (m, _) = collect_merge(&a, &b);
            let (g, _) = collect_gallop(&a, &b);
            let (bs, _) = collect_bitset(&a, &b);
            assert_eq!(m, g, "gallop vs merge on {a:?} ∩ {b:?}");
            // Bitset streams `b`, so hits arrive in `b` order — ascending,
            // same as the others.
            assert_eq!(m, bs, "bitset vs merge on {a:?} ∩ {b:?}");
        }
    }

    #[test]
    fn gallop_partition_point_matches_std() {
        let xs: Vec<VertexId> = (0..257).map(|x| x * 2).collect();
        for threshold in 0..520 {
            assert_eq!(
                gallop_partition_point(&xs, |&x| x < threshold),
                xs.partition_point(|&x| x < threshold),
                "threshold {threshold}"
            );
        }
        assert_eq!(gallop_partition_point::<VertexId>(&[], |_| true), 0);
    }

    #[test]
    fn gallop_work_beats_merge_on_skewed_sizes() {
        let small: Vec<VertexId> = (0..16).map(|x| x * 1000).collect();
        let large: Vec<VertexId> = (0..16_000).collect();
        let (hits_m, work_m) = collect_merge(&small, &large);
        let (hits_g, work_g) = collect_gallop(&small, &large);
        assert_eq!(hits_m, hits_g);
        assert!(
            work_g * 10 < work_m,
            "galloping must be far cheaper on 1000× skew (gallop {work_g}, merge {work_m})"
        );
    }

    #[test]
    fn should_gallop_respects_floor_and_ratio() {
        assert!(!should_gallop(4, 32), "below GALLOP_MIN");
        assert!(!should_gallop(32, 128), "ratio too small");
        assert!(should_gallop(8, 64));
        assert!(should_gallop(0, 64));
    }

    #[test]
    fn bitset_handles_out_of_universe_queries() {
        let bits = VertexBitset::from_iter(10, [1, 9].into_iter());
        assert!(bits.contains(1) && bits.contains(9));
        assert!(!bits.contains(0) && !bits.contains(8));
        assert!(!bits.contains(64), "past the allocated words");
    }
}

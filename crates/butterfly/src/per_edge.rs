//! Per-edge butterfly counting — the support function for wing (edge)
//! decomposition (§7 of the paper).
//!
//! The butterfly count of edge `(u, v)` is
//! `⋈_{(u,v)} = Σ_{u'∈N(v)\{u}} (|N(u) ∩ N(u')| − 1)`:
//! every other endpoint `u'` seen through `v` pairs with each of the other
//! common neighbours of `u` and `u'` to close a quadrangle containing
//! `(u, v)`.

use bigraph::{SideGraph, VertexId};

/// Edge identifier: position in the primary-side CSR adjacency
/// (`offset(u) + index_of(v in N(u))`).
pub type EdgeId = usize;

/// Maps `(u, position-within-N(u))` to an [`EdgeId`].
pub fn edge_id(view: SideGraph<'_>, u: VertexId, pos: usize) -> EdgeId {
    let mut base = 0usize;
    for p in 0..u {
        base += view.deg_primary(p);
    }
    base + pos
}

/// Per-edge butterfly counts, indexed by primary-CSR edge position. Runs in
/// `O(Σ_u Σ_{v∈N_u} d_v)` with a dense common-neighbour scratch.
pub fn per_edge_counts(view: SideGraph<'_>) -> Vec<u64> {
    let np = view.num_primary();
    let m = view.num_edges();
    let mut counts = vec![0u64; m];
    let mut common = vec![0u32; np];
    let mut touched: Vec<VertexId> = Vec::new();

    let mut base = 0usize;
    for u in 0..np as VertexId {
        // Pass 1: common-neighbour counts of u with all 2-hop neighbours.
        for &v in view.neighbors_primary(u) {
            for &u2 in view.neighbors_secondary(v) {
                if u2 != u {
                    if common[u2 as usize] == 0 {
                        touched.push(u2);
                    }
                    common[u2 as usize] += 1;
                }
            }
        }
        // Pass 2: each wedge (u, v, u') contributes common(u,u') − 1
        // butterflies to edge (u, v).
        for (pos, &v) in view.neighbors_primary(u).iter().enumerate() {
            let mut b = 0u64;
            for &u2 in view.neighbors_secondary(v) {
                if u2 != u {
                    b += (common[u2 as usize] - 1) as u64;
                }
            }
            counts[base + pos] = b;
        }
        base += view.deg_primary(u);
        for &u2 in &touched {
            common[u2 as usize] = 0;
        }
        touched.clear();
    }
    counts
}

/// Parallel per-edge counting: each primary vertex owns a disjoint,
/// contiguous output range in the counts vector (its CSR positions), so
/// vertices parallelize with per-task dense scratch and no atomics.
pub fn par_per_edge_counts(view: SideGraph<'_>) -> Vec<u64> {
    use parutil::ScratchPool;
    use rayon::prelude::*;

    let np = view.num_primary();
    let m = view.num_edges();
    let mut counts = vec![0u64; m];
    let pool = ScratchPool::new(move || (vec![0u32; np], Vec::<VertexId>::new()));

    // Pre-split the output into per-vertex slices.
    let mut slices: Vec<&mut [u64]> = Vec::with_capacity(np);
    {
        let mut rest: &mut [u64] = &mut counts;
        for u in 0..np as VertexId {
            let (head, tail) = rest.split_at_mut(view.deg_primary(u));
            slices.push(head);
            rest = tail;
        }
    }
    slices.into_par_iter().enumerate().for_each(|(u, out)| {
        let u = u as VertexId;
        if out.is_empty() {
            return;
        }
        let mut guard = pool.acquire();
        let (common, touched) = &mut *guard;
        for &v in view.neighbors_primary(u) {
            for &u2 in view.neighbors_secondary(v) {
                if u2 != u {
                    if common[u2 as usize] == 0 {
                        touched.push(u2);
                    }
                    common[u2 as usize] += 1;
                }
            }
        }
        for (pos, &v) in view.neighbors_primary(u).iter().enumerate() {
            let mut b = 0u64;
            for &u2 in view.neighbors_secondary(v) {
                if u2 != u {
                    b += (common[u2 as usize] - 1) as u64;
                }
            }
            out[pos] = b;
        }
        for &u2 in touched.iter() {
            common[u2 as usize] = 0;
        }
        touched.clear();
    });
    counts
}

/// Total butterflies from edge counts: each butterfly contains 4 edges.
pub fn total_from_edges(counts: &[u64]) -> u64 {
    counts.iter().sum::<u64>() / 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_total;
    use bigraph::builder::from_edges;
    use bigraph::{gen, Side};

    #[test]
    fn single_butterfly_edges() {
        let g = from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let c = per_edge_counts(g.view(Side::U));
        assert_eq!(c, vec![1, 1, 1, 1]);
        assert_eq!(total_from_edges(&c), 1);
    }

    #[test]
    fn k33_edges() {
        let mut edges = Vec::new();
        for u in 0..3 {
            for v in 0..3 {
                edges.push((u, v));
            }
        }
        let g = from_edges(3, 3, &edges).unwrap();
        let c = per_edge_counts(g.view(Side::U));
        // Every edge of K(3,3) is in (3-1)*(3-1) = 4 butterflies.
        assert!(c.iter().all(|&x| x == 4), "{c:?}");
        assert_eq!(total_from_edges(&c), 9);
    }

    #[test]
    fn totals_match_naive_on_random_graphs() {
        for seed in 0..6 {
            let g = gen::uniform(30, 30, 220, seed);
            let c = per_edge_counts(g.view(Side::U));
            assert_eq!(total_from_edges(&c), naive_total(&g), "seed {seed}");
        }
    }

    #[test]
    fn u_and_v_views_agree_on_total() {
        let g = gen::zipf(40, 30, 260, 0.5, 0.8, 7);
        let cu = per_edge_counts(g.view(Side::U));
        let cv = per_edge_counts(g.view(Side::V));
        assert_eq!(total_from_edges(&cu), total_from_edges(&cv));
    }

    #[test]
    fn edge_id_layout() {
        let g = from_edges(3, 2, &[(0, 0), (0, 1), (2, 1)]).unwrap();
        let v = g.view(Side::U);
        assert_eq!(edge_id(v, 0, 0), 0);
        assert_eq!(edge_id(v, 0, 1), 1);
        assert_eq!(edge_id(v, 2, 0), 2);
    }

    #[test]
    fn parallel_matches_sequential_per_edge() {
        for seed in 0..4 {
            let g = gen::zipf(50, 30, 300, 0.5, 0.9, seed);
            for side in [Side::U, Side::V] {
                let seq = per_edge_counts(g.view(side));
                let par = par_per_edge_counts(g.view(side));
                assert_eq!(seq, par, "seed {seed} side {side}");
            }
        }
    }

    #[test]
    fn parallel_per_edge_deterministic_across_pools() {
        let g = gen::uniform(40, 40, 280, 6);
        let a = parutil::with_pool(1, || par_per_edge_counts(g.view(Side::U)));
        let b = parutil::with_pool(4, || par_per_edge_counts(g.view(Side::U)));
        assert_eq!(a, b);
    }

    #[test]
    fn edge_without_butterflies() {
        // Path graph: every edge count is 0.
        let g = from_edges(3, 2, &[(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap();
        let c = per_edge_counts(g.view(Side::U));
        assert!(c.iter().all(|&x| x == 0));
    }
}

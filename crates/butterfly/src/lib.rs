//! Butterfly ((2,2)-biclique) counting.
//!
//! Counting initializes vertex supports for tip decomposition (Algorithm 2
//! line 1) and doubles as RECEIPT's HUC re-count primitive (§4.1), so both
//! its cost model and its exact per-vertex semantics matter:
//! `⋈_u` = the number of butterflies vertex `u` participates in.
//!
//! * [`naive`] — `O(Σ d²)` wedge-hashing oracle, used to validate the fast
//!   counters and for tiny graphs.
//! * [`count`] — the vertex-priority algorithm of Chiba–Nishizeki with the
//!   degree-descending relabeling of Wang et al. (paper Algorithm 1),
//!   sequential.
//! * [`parallel`] — the parallel variant (per-thread wedge arrays, batch
//!   aggregation) adopted by RECEIPT from ParButterfly.
//! * [`per_edge`] — per-edge butterfly counts, the support function for
//!   wing (edge) decomposition (§7).
//! * [`dynamic`] — incremental maintenance of per-vertex and per-edge
//!   counts across batched edge insertions/deletions.
//! * [`intersect`] — the sorted-set intersection kernels (scalar merge,
//!   galloping search, hub bitset) and the degree-ratio heuristic that
//!   picks between them in the wedge loops.

#![forbid(unsafe_code)]

pub mod approx;
pub mod count;
pub mod dynamic;
pub mod intersect;
pub mod naive;
pub mod parallel;
pub mod per_edge;

pub use dynamic::{BatchDelta, DynamicButterflyIndex};

use bigraph::{BipartiteCsr, Side};

/// Per-vertex butterfly counts for both sides, plus the number of wedges
/// the counter traversed (the paper's `∧_pvBcnt` metric in Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexCounts {
    pub u: Vec<u64>,
    pub v: Vec<u64>,
    pub wedges_traversed: u64,
}

impl VertexCounts {
    /// Counts for the chosen side.
    pub fn side(&self, side: Side) -> &[u64] {
        match side {
            Side::U => &self.u,
            Side::V => &self.v,
        }
    }

    /// Total butterflies in the graph. Each butterfly touches exactly two
    /// `U`-vertices, so the U-side counts sum to `2 ⋈_G`.
    pub fn total(&self) -> u64 {
        self.u.iter().sum::<u64>() / 2
    }
}

/// Convenience: count per-vertex butterflies on `g` with the sequential
/// vertex-priority algorithm (rank construction included).
///
/// ```
/// // One butterfly: u0,u1 x v0,v1.
/// let g = bigraph::builder::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
/// let counts = butterfly::count_graph(&g);
/// assert_eq!(counts.total(), 1);
/// assert_eq!(counts.u, vec![1, 1]);
/// ```
pub fn count_graph(g: &BipartiteCsr) -> VertexCounts {
    let ranked = bigraph::RankedGraph::from_csr(g);
    count::vertex_priority_counts(&ranked)
}

/// Convenience: parallel counting (uses the ambient rayon pool).
pub fn par_count_graph(g: &BipartiteCsr) -> VertexCounts {
    let ranked = bigraph::RankedGraph::from_csr(g);
    parallel::par_vertex_priority_counts(&ranked)
}

//! Incremental butterfly-count maintenance over a [`DynamicBigraph`].
//!
//! A batch of edge insertions/deletions changes only the butterflies that
//! *gain or lose an edge*, so instead of re-running Algorithm 1 the index
//! enumerates exactly those butterflies by wedge expansion around each
//! batch edge and patches the per-vertex counts, the per-edge counts, and
//! the global total in place.
//!
//! Exactness without double counting comes from *min-index charging*: the
//! batch's effective deletions (then insertions) are indexed in op order,
//! and a butterfly is credited to the lowest-indexed batch edge it
//! contains — every changed butterfly is enumerated exactly once even when
//! several of its edges arrived in the same batch. Losses are enumerated
//! on the pre-batch graph (a lost butterfly has all four edges there),
//! gains on the post-batch graph; a butterfly mixing a deleted and an
//! inserted edge exists in neither and is correctly ignored.
//!
//! Enumeration is embarrassingly parallel over the batch (each batch edge
//! scans read-only adjacency), so it fans out on the vendored rayon pool;
//! the per-edge butterfly lists are then applied sequentially in batch
//! order, keeping every maintained counter deterministic regardless of
//! thread count.

use crate::intersect::{
    intersect_bitset, intersect_gallop, intersect_merge, should_gallop, VertexBitset, BITSET_MIN,
};
use crate::VertexCounts;
use bigraph::dynamic::{BatchApplication, DynamicBigraph, EdgeOp};
use bigraph::{BipartiteCsr, Side, VertexId};
use rayon::prelude::*;
use std::collections::HashMap;

/// A butterfly `{u, u2} × {v, v2}` touched by a batch edge `(u, v)`.
type Butterfly = (VertexId, VertexId, VertexId, VertexId);

/// What one batch did to the maintained counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchDelta {
    /// Structural classification from [`DynamicBigraph::apply_batch`].
    pub application: BatchApplication,
    /// Butterflies created by the batch's insertions.
    pub gained: u64,
    /// Butterflies destroyed by the batch's deletions.
    pub lost: u64,
    /// Intersection work spent enumerating the changed butterflies — the
    /// incremental analog of the counter's wedge-traversal metric, and the
    /// quantity to compare against a from-scratch recount's work. Counted
    /// in comparable per-element units whichever kernel the degree-ratio
    /// heuristic picked (merge steps, gallop probes, or bitset membership
    /// tests plus the one-time bitset build; see [`crate::intersect`]).
    pub work: u64,
    /// U-side vertices on a changed butterfly (sorted, deduplicated).
    pub dirty_u: Vec<VertexId>,
    /// V-side vertices on a changed butterfly (sorted, deduplicated).
    pub dirty_v: Vec<VertexId>,
}

impl BatchDelta {
    /// Dirty vertices on the chosen side.
    pub fn dirty_side(&self, side: Side) -> &[VertexId] {
        match side {
            Side::U => &self.dirty_u,
            Side::V => &self.dirty_v,
        }
    }
}

/// Butterfly counts (per vertex, per edge, and total) maintained across
/// batched updates of the underlying graph.
///
/// Per-edge counts live in a flat array aligned with the base CSR's edge
/// ids ([`BipartiteCsr::edge_index`]) — hub-heavy batches touch the same
/// edges over and over, and the flat array turns that hash traffic into
/// indexed stores. Only edges the overlay added since the last compaction
/// fall back to a (small, overlay-bounded) hash map; each compaction folds
/// them into a freshly aligned array.
#[derive(Debug, Clone)]
pub struct DynamicButterflyIndex {
    graph: DynamicBigraph,
    counts_u: Vec<u64>,
    counts_v: Vec<u64>,
    /// Butterfly count per base-CSR edge, indexed by
    /// `graph.base().edge_index(u, v)`. Entries for overlay-removed edges
    /// are 0 by the maintenance invariant (a deleted edge keeps no
    /// butterflies).
    base_edge_counts: Vec<u64>,
    /// Nonzero entries of `base_edge_counts`, maintained across patches so
    /// [`Self::tracked_edges`] needs no scan.
    nonzero_base: usize,
    /// Butterfly counts of overlay-added edges (not in the base CSR);
    /// edges in no butterfly are absent (reads default to 0).
    overlay_edge_counts: HashMap<(VertexId, VertexId), u64>,
    total: u64,
    /// Cumulative enumeration work across all batches.
    work: u64,
}

impl DynamicButterflyIndex {
    /// Builds the index with one full parallel count (Algorithm 1 + the
    /// per-edge counter); every later batch is maintained incrementally.
    pub fn new(base: BipartiteCsr) -> Self {
        Self::with_threshold(base, bigraph::dynamic::DEFAULT_COMPACT_THRESHOLD)
    }

    /// `threshold` is the overlay compaction knob of [`DynamicBigraph`].
    pub fn with_threshold(base: BipartiteCsr, threshold: f64) -> Self {
        let counts = crate::par_count_graph(&base);
        // Already CSR-edge-id-aligned — the kernel's output order is the
        // flat array's index space.
        let base_edge_counts = crate::per_edge::par_per_edge_counts(base.view(Side::U));
        DynamicButterflyIndex {
            total: counts.total(),
            counts_u: counts.u,
            counts_v: counts.v,
            nonzero_base: base_edge_counts.iter().filter(|&&c| c > 0).count(),
            base_edge_counts,
            overlay_edge_counts: HashMap::new(),
            graph: DynamicBigraph::with_threshold(base, threshold),
            work: 0,
        }
    }

    pub fn graph(&self) -> &DynamicBigraph {
        &self.graph
    }

    /// Materializes the current graph (for oracles and full recomputes).
    pub fn materialize(&self) -> BipartiteCsr {
        self.graph.materialize()
    }

    pub fn total_butterflies(&self) -> u64 {
        self.total
    }

    /// Maintained per-vertex counts for one side.
    pub fn counts_side(&self, side: Side) -> &[u64] {
        match side {
            Side::U => &self.counts_u,
            Side::V => &self.counts_v,
        }
    }

    /// Maintained counts in the static counter's shape. The
    /// `wedges_traversed` field carries the cumulative incremental
    /// enumeration work (initial build not included).
    pub fn counts(&self) -> VertexCounts {
        VertexCounts {
            u: self.counts_u.clone(),
            v: self.counts_v.clone(),
            wedges_traversed: self.work,
        }
    }

    /// Butterfly count of edge `(u, v)`; 0 if absent or butterfly-free.
    /// Base edges are an indexed load; only overlay-added edges hash.
    pub fn edge_count(&self, u: VertexId, v: VertexId) -> u64 {
        if let Some(&c) = self.overlay_edge_counts.get(&(u, v)) {
            return c;
        }
        self.graph
            .base()
            .edge_index(u, v)
            .map_or(0, |eid| self.base_edge_counts[eid])
    }

    /// Number of edges currently holding a nonzero maintained count.
    /// Differential checkers compare this against the oracle's nonzero
    /// count so a stale entry for a deleted edge cannot hide (the
    /// per-present-edge comparison alone would never visit it).
    pub fn tracked_edges(&self) -> usize {
        self.nonzero_base + self.overlay_edge_counts.len()
    }

    /// Applies one batch and patches all maintained counts.
    pub fn apply_batch(&mut self, ops: &[EdgeOp]) -> BatchDelta {
        // The graph's own classification (last op per edge wins), taken
        // against the pre-batch state so losses can be enumerated before
        // the graph mutates. `DynamicBigraph::apply_ops` re-runs the
        // same `classify_batch`, so both views agree by construction.
        let pre = self.graph.classify_batch(ops);

        // Losses: butterflies of the pre-batch graph through each deleted
        // edge, charged to the lowest-indexed deleted edge they contain.
        let (lost_lists, lost_work) = enumerate_changed(&self.graph, &pre.deleted);

        // Compaction is deferred until after patching: the flat per-edge
        // array is indexed by *current* base edge ids, and `apply_ops`
        // leaves the base untouched.
        let mut application = self.graph.apply_ops(ops);
        debug_assert_eq!(application.inserted, pre.inserted);
        debug_assert_eq!(application.deleted, pre.deleted);
        // Sides may have grown; new vertices start butterfly-free.
        self.counts_u.resize(self.graph.num_u(), 0);
        self.counts_v.resize(self.graph.num_v(), 0);

        // Gains: butterflies of the post-batch graph through each inserted
        // edge, charged to the lowest-indexed inserted edge they contain.
        let (gained_lists, gained_work) = enumerate_changed(&self.graph, &pre.inserted);

        let mut dirty_u: Vec<VertexId> = Vec::new();
        let mut dirty_v: Vec<VertexId> = Vec::new();
        let mut lost = 0u64;
        for bf in lost_lists.iter().flatten() {
            self.patch(*bf, -1, &mut dirty_u, &mut dirty_v);
            lost += 1;
        }
        for &(u, v) in &application.deleted {
            debug_assert_eq!(
                self.edge_count(u, v),
                0,
                "deleted edge ({u}, {v}) kept butterflies"
            );
        }
        let mut gained = 0u64;
        for bf in gained_lists.iter().flatten() {
            self.patch(*bf, 1, &mut dirty_u, &mut dirty_v);
            gained += 1;
        }
        self.total = self.total + gained - lost;
        let work = lost_work + gained_work;
        self.work += work;

        if self.graph.needs_compaction() {
            self.compact_and_realign();
            application.compacted = true;
        }

        dirty_u.sort_unstable();
        dirty_u.dedup();
        dirty_v.sort_unstable();
        dirty_v.dedup();
        BatchDelta {
            application,
            gained,
            lost,
            work,
            dirty_u,
            dirty_v,
        }
    }

    /// Applies one butterfly's delta to the vertex and edge counts.
    fn patch(
        &mut self,
        (u, u2, v, v2): Butterfly,
        sign: i64,
        dirty_u: &mut Vec<VertexId>,
        dirty_v: &mut Vec<VertexId>,
    ) {
        for x in [u, u2] {
            self.counts_u[x as usize] = self.counts_u[x as usize].wrapping_add_signed(sign);
            dirty_u.push(x);
        }
        for y in [v, v2] {
            self.counts_v[y as usize] = self.counts_v[y as usize].wrapping_add_signed(sign);
            dirty_v.push(y);
        }
        for e in [(u, v), (u, v2), (u2, v), (u2, v2)] {
            match self.graph.base().edge_index(e.0, e.1) {
                Some(eid) => {
                    let before = self.base_edge_counts[eid];
                    let after = before.wrapping_add_signed(sign);
                    self.base_edge_counts[eid] = after;
                    if before == 0 && after != 0 {
                        self.nonzero_base += 1;
                    } else if before != 0 && after == 0 {
                        self.nonzero_base -= 1;
                    }
                }
                None => {
                    let entry = self.overlay_edge_counts.entry(e).or_insert(0);
                    *entry = entry.wrapping_add_signed(sign);
                    if *entry == 0 {
                        self.overlay_edge_counts.remove(&e);
                    }
                }
            }
        }
    }

    /// Folds the overlay into a new base CSR and realigns the flat
    /// per-edge array with the rebuilt edge-id space. Counts are carried
    /// across keyed by endpoint pair; every nonzero count belongs to a
    /// present edge, so all of them land in the new base.
    fn compact_and_realign(&mut self) {
        let mut saved = std::mem::take(&mut self.overlay_edge_counts);
        for ((u, v), &c) in self.graph.base().edges().zip(self.base_edge_counts.iter()) {
            if c > 0 {
                saved.insert((u, v), c);
            }
        }
        self.graph.compact();
        self.base_edge_counts = self
            .graph
            .base()
            .edges()
            .map(|e| saved.get(&e).copied().unwrap_or(0))
            .collect();
        self.nonzero_base = saved.len();
    }
}

/// Enumerates, in parallel over the batch, every butterfly of `g` that
/// contains batch edge `i` and no lower-indexed batch edge. Returns the
/// per-batch-edge butterfly lists (in batch order — applying them in that
/// order keeps the maintained counts thread-count-independent) plus the
/// total intersection work.
fn enumerate_changed(
    g: &DynamicBigraph,
    batch: &[(VertexId, VertexId)],
) -> (Vec<Vec<Butterfly>>, u64) {
    if batch.is_empty() {
        return (Vec::new(), 0);
    }
    let index: HashMap<(VertexId, VertexId), usize> =
        batch.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    let results: Vec<(Vec<Butterfly>, u64)> = batch
        .par_iter()
        .enumerate()
        .map(|(i, &(u, v))| {
            let lower = |a: VertexId, b: VertexId| index.get(&(a, b)).is_some_and(|&j| j < i);
            let mut found: Vec<Butterfly> = Vec::new();
            let mut work = 0u64;
            // N(u) is re-scanned once per wedge middle; materialize the
            // base-plus-overlay merge once instead of re-running the
            // BTreeSet-range merge (and its per-element `removed` lookups)
            // for every u2.
            let nu_adj: Vec<VertexId> = g.neighbors_u(u).collect();
            // Hub path: when the batch edge hangs off a high-degree u,
            // build the N(u) membership bitset once and stream every
            // N(u2) against it — O(deg u2) per wedge middle instead of a
            // merge over the hub's whole list. The build is charged once,
            // in the same element-visit units all kernels report.
            let bitset = (nu_adj.len() >= BITSET_MIN).then(|| {
                work += nu_adj.len() as u64;
                VertexBitset::from_iter(g.num_v(), nu_adj.iter().copied())
            });
            for u2 in g.neighbors_v(v) {
                if u2 == u || lower(u2, v) {
                    continue;
                }
                let hit = |v2: VertexId| {
                    if v2 != v && !lower(u, v2) && !lower(u2, v2) {
                        found.push((u, u2, v, v2));
                    }
                };
                // All kernels emit common neighbours in ascending order,
                // so `found` is kernel-independent and the maintained
                // counts stay deterministic across heuristic decisions.
                work += if let Some(bits) = &bitset {
                    intersect_bitset(bits, g.neighbors_u(u2), hit)
                } else {
                    let d2 = g.degree_u(u2);
                    if should_gallop(nu_adj.len(), d2) {
                        // Gallop the small materialized N(u) into N(u2) —
                        // needs random access, so only when u2's adjacency
                        // is a pure base-CSR slice (no overlay entries).
                        match g.base_only_neighbors_u(u2) {
                            Some(big) => intersect_gallop(nu_adj.iter().copied(), big, hit),
                            None => intersect_merge(nu_adj.iter().copied(), g.neighbors_u(u2), hit),
                        }
                    } else if should_gallop(d2, nu_adj.len()) {
                        // N(u) is the big side and is already a slice.
                        intersect_gallop(g.neighbors_u(u2), &nu_adj, hit)
                    } else {
                        intersect_merge(nu_adj.iter().copied(), g.neighbors_u(u2), hit)
                    }
                };
            }
            (found, work)
        })
        .collect();
    let work = results.iter().map(|(_, w)| w).sum();
    (results.into_iter().map(|(b, _)| b).collect(), work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::from_edges;
    use bigraph::gen;

    /// Recounts from scratch and compares every maintained quantity.
    fn assert_matches_recount(index: &DynamicButterflyIndex) {
        let g = index.materialize();
        let fresh = crate::count_graph(&g);
        assert_eq!(index.counts_side(Side::U), &fresh.u[..], "U counts");
        assert_eq!(index.counts_side(Side::V), &fresh.v[..], "V counts");
        assert_eq!(index.total_butterflies(), fresh.total(), "total");
        let per_edge = crate::per_edge::per_edge_counts(g.view(Side::U));
        assert_eq!(
            index.tracked_edges(),
            per_edge.iter().filter(|&&c| c > 0).count(),
            "stale per-edge entries for absent or butterfly-free edges"
        );
        for ((u, v), expect) in g.edges().zip(per_edge) {
            assert_eq!(
                index.edge_count(u, v),
                expect,
                "edge ({u}, {v}) count diverged"
            );
        }
    }

    #[test]
    fn insertion_completing_a_butterfly() {
        let g = from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let mut index = DynamicButterflyIndex::new(g);
        assert_eq!(index.total_butterflies(), 0);
        let delta = index.apply_batch(&[EdgeOp::Insert(1, 1)]);
        assert_eq!(delta.gained, 1);
        assert_eq!(delta.lost, 0);
        assert_eq!(delta.dirty_u, vec![0, 1]);
        assert_eq!(delta.dirty_v, vec![0, 1]);
        assert_eq!(index.total_butterflies(), 1);
        assert_eq!(index.edge_count(0, 0), 1);
        assert_eq!(index.edge_count(1, 1), 1);
        assert_matches_recount(&index);
    }

    #[test]
    fn deletion_breaking_a_butterfly() {
        let g = from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let mut index = DynamicButterflyIndex::new(g);
        assert_eq!(index.total_butterflies(), 1);
        let delta = index.apply_batch(&[EdgeOp::Delete(0, 1)]);
        assert_eq!(delta.lost, 1);
        assert_eq!(index.total_butterflies(), 0);
        assert_eq!(index.edge_count(0, 0), 0);
        assert_eq!(index.edge_count(0, 1), 0, "deleted edge reads 0");
        assert_matches_recount(&index);
    }

    #[test]
    fn batch_with_shared_butterflies_counts_once() {
        // Inserting two edges of the same butterfly in one batch: the
        // butterfly contains both, so min-index charging must count it
        // exactly once.
        let g = from_edges(2, 2, &[(0, 0), (0, 1)]).unwrap();
        let mut index = DynamicButterflyIndex::new(g);
        let delta = index.apply_batch(&[EdgeOp::Insert(1, 0), EdgeOp::Insert(1, 1)]);
        assert_eq!(delta.gained, 1);
        assert_eq!(index.total_butterflies(), 1);
        assert_matches_recount(&index);
    }

    #[test]
    fn batch_deleting_two_edges_of_one_butterfly() {
        let g = from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let mut index = DynamicButterflyIndex::new(g);
        let delta = index.apply_batch(&[EdgeOp::Delete(0, 0), EdgeOp::Delete(1, 1)]);
        assert_eq!(delta.lost, 1);
        assert_eq!(index.total_butterflies(), 0);
        assert_matches_recount(&index);
    }

    #[test]
    fn mixed_insert_delete_batch() {
        // K(2,2) plus a pendant; delete one butterfly edge and insert an
        // edge forming a different butterfly in the same batch.
        let g = from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]).unwrap();
        let mut index = DynamicButterflyIndex::new(g);
        let delta = index.apply_batch(&[
            EdgeOp::Delete(0, 1),
            EdgeOp::Insert(2, 0),
            EdgeOp::Insert(0, 2),
        ]);
        // Lost: {0,1}×{0,1}. Gained: inspect via recount equality.
        assert_eq!(delta.lost, 1);
        assert_matches_recount(&index);
    }

    #[test]
    fn growth_batches_extend_counts() {
        let g = from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let mut index = DynamicButterflyIndex::new(g);
        index.apply_batch(&[EdgeOp::Insert(4, 3), EdgeOp::Insert(4, 0)]);
        assert_eq!(index.counts_side(Side::U).len(), 5);
        assert_eq!(index.counts_side(Side::V).len(), 4);
        assert_matches_recount(&index);
    }

    #[test]
    fn random_schedules_match_recount_after_every_batch() {
        for seed in 0..3u64 {
            let g = gen::zipf(50, 40, 250, 0.5, 0.9, seed);
            let schedule = bigraph::dynamic::seeded_schedule(&g, 5, 30, seed + 100);
            let mut index = DynamicButterflyIndex::with_threshold(g, 0.2);
            for batch in &schedule {
                index.apply_batch(batch);
                assert_matches_recount(&index);
            }
            assert!(index.graph().compactions() > 0 || index.graph().overlay_len() > 0);
        }
    }

    #[test]
    fn hub_batches_engage_fast_kernels_and_stay_exact() {
        // A hub u=0 whose degree clears BITSET_MIN, plus leaf vertices
        // with tiny degrees: batch edges on the hub take the bitset path,
        // wedges pairing leaves against the hub satisfy the gallop
        // ratio, and everything else falls back to the merge. Exactness
        // is pinned by full recount; work must be positive and counted.
        let hub_deg = (BITSET_MIN * 3) as VertexId;
        let mut edges: Vec<(VertexId, VertexId)> = (0..hub_deg).map(|v| (0, v)).collect();
        for i in 0..40u32 {
            // Leaves sharing a couple of the hub's neighbours.
            edges.push((1 + i, (i * 7) % hub_deg));
            edges.push((1 + i, (i * 7 + 1) % hub_deg));
        }
        let g = from_edges(41, hub_deg as usize, &edges).unwrap();
        let mut index = DynamicButterflyIndex::with_threshold(g, 100.0);
        // Batch edges incident to the hub (bitset path) and to leaves
        // (gallop/merge paths), inserts and deletes mixed.
        let delta = index.apply_batch(&[
            EdgeOp::Insert(0, hub_deg),
            EdgeOp::Insert(3, 5),
            EdgeOp::Delete(0, 0),
            EdgeOp::Insert(40, 2),
        ]);
        assert!(delta.work > 0);
        assert_matches_recount(&index);
        // And once more after the overlay grew (base-only slices now
        // unavailable for touched vertices — the fallbacks must agree).
        index.apply_batch(&[EdgeOp::Insert(0, 0), EdgeOp::Delete(3, 5)]);
        assert_matches_recount(&index);
    }

    #[test]
    fn deltas_are_identical_across_pool_sizes() {
        let g = gen::uniform(40, 40, 200, 21);
        let schedule = bigraph::dynamic::seeded_schedule(&g, 4, 25, 77);
        let run = |threads: usize| {
            parutil::with_pool(threads, || {
                let mut index = DynamicButterflyIndex::new(g.clone());
                schedule
                    .iter()
                    .map(|b| index.apply_batch(b))
                    .collect::<Vec<_>>()
            })
        };
        assert_eq!(run(1), run(4));
    }
}

//! Naive wedge-hashing butterfly counting — the correctness oracle.
//!
//! For each primary vertex `u`, count common neighbours with every 2-hop
//! neighbour `u' > u`; each pair sharing `c ≥ 2` secondary vertices closes
//! `C(c, 2)` butterflies. `O(Σ_{u} Σ_{v∈N_u} d_v)` time — fine for the
//! small graphs used in tests, far too slow for the evaluation datasets
//! (which is the paper's point).

use bigraph::{Side, SideGraph, VertexId};

/// Per-vertex butterfly counts for the primary side of `view`.
pub fn naive_primary_counts(view: SideGraph<'_>) -> Vec<u64> {
    let np = view.num_primary();
    let mut counts = vec![0u64; np];
    let mut common = vec![0u32; np];
    let mut touched: Vec<VertexId> = Vec::new();

    for u in 0..np as VertexId {
        for &v in view.neighbors_primary(u) {
            for &u2 in view.neighbors_secondary(v) {
                if u2 > u {
                    if common[u2 as usize] == 0 {
                        touched.push(u2);
                    }
                    common[u2 as usize] += 1;
                }
            }
        }
        for &u2 in &touched {
            let c = common[u2 as usize] as u64;
            common[u2 as usize] = 0;
            let b = c * (c - 1) / 2;
            counts[u as usize] += b;
            counts[u2 as usize] += b;
        }
        touched.clear();
    }
    counts
}

/// Both sides via two passes.
pub fn naive_counts(g: &bigraph::BipartiteCsr) -> crate::VertexCounts {
    crate::VertexCounts {
        u: naive_primary_counts(g.view(Side::U)),
        v: naive_primary_counts(g.view(Side::V)),
        wedges_traversed: 0, // the oracle does not track workload
    }
}

/// Total butterflies, computed pairwise from the U side.
pub fn naive_total(g: &bigraph::BipartiteCsr) -> u64 {
    naive_primary_counts(g.view(Side::U)).iter().sum::<u64>() / 2
}

/// Butterflies shared between a specific primary pair `(a, b)`:
/// `C(|N(a) ∩ N(b)|, 2)`. Used by peeling tests.
pub fn shared_butterflies(view: SideGraph<'_>, a: VertexId, b: VertexId) -> u64 {
    let (na, nb) = (view.neighbors_primary(a), view.neighbors_primary(b));
    let mut i = 0;
    let mut j = 0;
    let mut c = 0u64;
    while i < na.len() && j < nb.len() {
        match na[i].cmp(&nb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c * c.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::from_edges;

    #[test]
    fn single_butterfly() {
        let g = from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let c = naive_counts(&g);
        assert_eq!(c.u, vec![1, 1]);
        assert_eq!(c.v, vec![1, 1]);
        assert_eq!(c.total(), 1);
        assert_eq!(naive_total(&g), 1);
    }

    #[test]
    fn complete_k33() {
        // K(3,3): C(3,2)^2 = 9 butterflies; each vertex in C(2,1)*... each
        // u participates in C(2,1) choices of partner * C(3,2) v-pairs = 6.
        let mut edges = Vec::new();
        for u in 0..3 {
            for v in 0..3 {
                edges.push((u, v));
            }
        }
        let g = from_edges(3, 3, &edges).unwrap();
        let c = naive_counts(&g);
        assert_eq!(c.total(), 9);
        assert!(c.u.iter().all(|&x| x == 6));
        assert!(c.v.iter().all(|&x| x == 6));
    }

    #[test]
    fn star_has_no_butterflies() {
        let g = from_edges(4, 1, &[(0, 0), (1, 0), (2, 0), (3, 0)]).unwrap();
        assert_eq!(naive_total(&g), 0);
        assert!(naive_counts(&g).u.iter().all(|&x| x == 0));
    }

    #[test]
    fn path_has_no_butterflies() {
        // u0-v0-u1-v1-u2: wedges but no closed quadrangle.
        let g = from_edges(3, 2, &[(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap();
        assert_eq!(naive_total(&g), 0);
    }

    #[test]
    fn figure_1_example() {
        // The paper's Fig.1 graph: u1..u4 × v1..v4 (0-indexed here).
        // Edges: u1-{v1,v2}, u2-{v1,v2,v3}, u3-{v1,v2,v3,v4}, u4-{v3,v4}.
        let g = from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        )
        .unwrap();
        let c = naive_counts(&g);
        // Paper: u4 participates in 1 butterfly, u1 in 2, u3 in 5.
        assert_eq!(c.u[3], 1);
        assert_eq!(c.u[0], 2);
        assert_eq!(c.u[2], 5);
    }

    #[test]
    fn shared_butterflies_pairwise() {
        let g = from_edges(
            3,
            3,
            &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2), (2, 0)],
        )
        .unwrap();
        let v = g.view(Side::U);
        // u0, u1 share 3 neighbours -> C(3,2) = 3 butterflies.
        assert_eq!(shared_butterflies(v, 0, 1), 3);
        // u0, u2 share only v0 -> 0 butterflies.
        assert_eq!(shared_butterflies(v, 0, 2), 0);
    }

    #[test]
    fn empty_graph() {
        let g = bigraph::BipartiteCsr::empty(3, 3);
        assert_eq!(naive_total(&g), 0);
    }
}

//! Approximate butterfly counting.
//!
//! The paper's related-work section (§6) surveys approximate counters
//! (Sanei-Mehri et al. \[47\], FLEET \[48\]) as the cheap alternative when
//! exact per-vertex counts are not required. Two classical estimators are
//! provided, mainly as a substrate for workload planning (e.g. sizing `P`
//! before a run) and as a sanity oracle at scales where even
//! vertex-priority counting is too slow:
//!
//! * [`vertex_sampling_estimate`] — sample primary vertices uniformly,
//!   count their incident butterflies exactly, scale. Unbiased because
//!   `E[⋈_u] = 2⋈_G / |U|`.
//! * [`sparsification_estimate`] — keep each edge independently with
//!   probability `p`, count exactly on the sparsified graph, scale by
//!   `p⁻⁴` (a butterfly survives iff its four edges survive).

use bigraph::{BipartiteCsr, SideGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Unbiased total-butterfly estimate from `samples` uniformly chosen
/// primary vertices. Returns 0 for empty graphs. Deterministic for a fixed
/// seed.
pub fn vertex_sampling_estimate(view: SideGraph<'_>, samples: usize, seed: u64) -> f64 {
    let np = view.num_primary();
    if np == 0 || samples == 0 {
        return 0.0;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut common = vec![0u32; np];
    let mut touched: Vec<VertexId> = Vec::new();
    let mut total = 0u64;
    for _ in 0..samples {
        let u = rng.random_range(0..np) as VertexId;
        total += butterflies_of(view, u, &mut common, &mut touched);
    }
    // E[⋈_u] = Σ_u ⋈_u / |U| = 2 ⋈_G / |U|.
    (total as f64 / samples as f64) * np as f64 / 2.0
}

/// Exact butterflies incident on one vertex, via common-neighbour
/// counting (`O(Σ_{v∈N_u} d_v)`).
fn butterflies_of(
    view: SideGraph<'_>,
    u: VertexId,
    common: &mut [u32],
    touched: &mut Vec<VertexId>,
) -> u64 {
    for &v in view.neighbors_primary(u) {
        for &u2 in view.neighbors_secondary(v) {
            if u2 != u {
                if common[u2 as usize] == 0 {
                    touched.push(u2);
                }
                common[u2 as usize] += 1;
            }
        }
    }
    let mut b = 0u64;
    for &u2 in touched.iter() {
        let c = common[u2 as usize] as u64;
        common[u2 as usize] = 0;
        b += c * (c - 1) / 2;
    }
    touched.clear();
    b
}

/// Unbiased total-butterfly estimate via edge sparsification: each edge is
/// kept independently with probability `p ∈ (0, 1]`; the sparsified graph
/// is counted exactly and the count scaled by `p⁻⁴`.
pub fn sparsification_estimate(g: &BipartiteCsr, p: f64, seed: u64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "keep-probability must be in (0, 1]");
    if (p - 1.0).abs() < f64::EPSILON {
        return crate::naive::naive_total(g) as f64;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let kept: Vec<(VertexId, VertexId)> = g.edges().filter(|_| rng.random::<f64>() < p).collect();
    let sample = bigraph::builder::from_edges(g.num_u(), g.num_v(), &kept)
        .expect("sparsified edges are in range");
    let exact = crate::count_graph(&sample).total();
    exact as f64 / p.powi(4)
}

/// Averages `runs` independent sparsification estimates (variance of a
/// single run is high for small `p`).
pub fn sparsification_estimate_avg(g: &BipartiteCsr, p: f64, runs: usize, seed: u64) -> f64 {
    assert!(runs > 0);
    (0..runs)
        .map(|r| sparsification_estimate(g, p, seed.wrapping_add(r as u64)))
        .sum::<f64>()
        / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{gen, Side};

    #[test]
    fn vertex_sampling_exact_when_sampling_everything() {
        // With samples >> |U| the mean concentrates hard; use full census
        // semantics instead: sample each vertex once by hand.
        let g = gen::planted_bicliques(20, 20, 2, 4, 4, 40, 3);
        let view = g.view(Side::U);
        let truth = crate::naive::naive_total(&g) as f64;
        let est = vertex_sampling_estimate(view, 20_000, 42);
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.10, "estimate {est} vs truth {truth} (rel {rel:.3})");
    }

    #[test]
    fn vertex_sampling_zero_cases() {
        let empty = bigraph::BipartiteCsr::empty(0, 0);
        assert_eq!(vertex_sampling_estimate(empty.view(Side::U), 10, 1), 0.0);
        let star = bigraph::builder::from_edges(4, 1, &[(0, 0), (1, 0), (2, 0), (3, 0)]).unwrap();
        assert_eq!(vertex_sampling_estimate(star.view(Side::U), 100, 1), 0.0);
    }

    #[test]
    fn vertex_sampling_deterministic_per_seed() {
        let g = gen::uniform(30, 30, 200, 5);
        let a = vertex_sampling_estimate(g.view(Side::U), 50, 7);
        let b = vertex_sampling_estimate(g.view(Side::U), 50, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn sparsification_p1_is_exact() {
        let g = gen::uniform(25, 25, 180, 9);
        let truth = crate::naive::naive_total(&g) as f64;
        assert_eq!(sparsification_estimate(&g, 1.0, 3), truth);
    }

    #[test]
    fn sparsification_reasonable_at_high_p() {
        let g = gen::planted_bicliques(40, 40, 4, 5, 5, 100, 11);
        let truth = crate::naive::naive_total(&g) as f64;
        let est = sparsification_estimate_avg(&g, 0.8, 24, 100);
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.25, "estimate {est} vs truth {truth} (rel {rel:.3})");
    }

    #[test]
    #[should_panic(expected = "keep-probability")]
    fn sparsification_rejects_bad_p() {
        let g = gen::uniform(5, 5, 10, 1);
        sparsification_estimate(&g, 0.0, 1);
    }
}

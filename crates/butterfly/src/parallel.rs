//! Parallel per-vertex butterfly counting.
//!
//! Start vertices are processed concurrently (the `do in parallel` of
//! Algorithm 1); every task checks a dense wedge array out of a
//! [`parutil::ScratchPool`] (the paper gives each OpenMP thread a `θ(|W|)`
//! private array — "batch" aggregation mode of ParButterfly) and publishes
//! its contributions with relaxed atomic adds. The per-wedge inner loop is
//! `crate::count::process_start_vertex` (crate-private), shared with the
//! sequential driver, so the rank-boundary galloping there (exponential search for
//! the live-rank prefix instead of a per-endpoint break-scan) accelerates
//! both drivers identically — including the `wedges_traversed` metric,
//! which is unchanged by construction.

use crate::VertexCounts;
use bigraph::{RankedGraph, VertexId};
use parutil::ScratchPool;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

struct Scratch {
    wdg: Vec<u32>,
    nze: Vec<VertexId>,
    nzw: Vec<(VertexId, VertexId)>,
}

/// Parallel Algorithm 1 on the ambient rayon pool.
pub fn par_vertex_priority_counts(g: &RankedGraph) -> VertexCounts {
    let nu = g.num_u();
    let nv = g.num_v();
    let cnt_u: Vec<AtomicU64> = (0..nu).map(|_| AtomicU64::new(0)).collect();
    let cnt_v: Vec<AtomicU64> = (0..nv).map(|_| AtomicU64::new(0)).collect();
    let wedges = AtomicU64::new(0);
    let scratch_len = nu.max(nv);
    let pool = ScratchPool::new(move || Scratch {
        wdg: vec![0u32; scratch_len],
        nze: Vec::new(),
        nzw: Vec::new(),
    });

    // U-side start vertices.
    (0..nu as VertexId).into_par_iter().for_each(|sp| {
        let mut s = pool.acquire();
        let Scratch { wdg, nze, nzw } = &mut *s;
        let w = crate::count::process_start_vertex(
            sp,
            g.rank_u(sp),
            g.neighbors_u(sp),
            |mp| g.rank_v(mp),
            |mp| g.neighbors_v(mp),
            |ep| g.rank_u(ep),
            |_| true,
            |_| true,
            wdg,
            nze,
            nzw,
            |ep, b| {
                cnt_u[ep as usize].fetch_add(b, Ordering::Relaxed);
            },
            |mp, b| {
                cnt_v[mp as usize].fetch_add(b, Ordering::Relaxed);
            },
        );
        wedges.fetch_add(w, Ordering::Relaxed);
    });
    // V-side start vertices.
    (0..nv as VertexId).into_par_iter().for_each(|sp| {
        let mut s = pool.acquire();
        let Scratch { wdg, nze, nzw } = &mut *s;
        let w = crate::count::process_start_vertex(
            sp,
            g.rank_v(sp),
            g.neighbors_v(sp),
            |mp| g.rank_u(mp),
            |mp| g.neighbors_u(mp),
            |ep| g.rank_v(ep),
            |_| true,
            |_| true,
            wdg,
            nze,
            nzw,
            |ep, b| {
                cnt_v[ep as usize].fetch_add(b, Ordering::Relaxed);
            },
            |mp, b| {
                cnt_u[mp as usize].fetch_add(b, Ordering::Relaxed);
            },
        );
        wedges.fetch_add(w, Ordering::Relaxed);
    });

    VertexCounts {
        u: cnt_u.into_iter().map(AtomicU64::into_inner).collect(),
        v: cnt_v.into_iter().map(AtomicU64::into_inner).collect(),
        wedges_traversed: wedges.into_inner(),
    }
}

/// Parallel counting restricted to the *live* subgraph, without compacting
/// first: vertices of `filtered_side` whose `alive` flag is false
/// contribute no wedges and receive no counts. Used by HUC re-counts
/// (§4.1) between DGM compactions — the stale edges are still scanned
/// (and reported in `wedges_traversed`), but their butterflies are
/// excluded exactly as if the graph had been compacted.
pub fn par_counts_with_filter(
    g: &RankedGraph,
    filtered_side: bigraph::Side,
    alive: &[std::sync::atomic::AtomicBool],
) -> VertexCounts {
    use bigraph::Side;
    let nu = g.num_u();
    let nv = g.num_v();
    match filtered_side {
        Side::U => assert_eq!(alive.len(), nu),
        Side::V => assert_eq!(alive.len(), nv),
    }
    let live = |x: VertexId| -> bool { alive[x as usize].load(Ordering::Relaxed) };

    let cnt_u: Vec<AtomicU64> = (0..nu).map(|_| AtomicU64::new(0)).collect();
    let cnt_v: Vec<AtomicU64> = (0..nv).map(|_| AtomicU64::new(0)).collect();
    let wedges = AtomicU64::new(0);
    let scratch_len = nu.max(nv);
    let pool = ScratchPool::new(move || Scratch {
        wdg: vec![0u32; scratch_len],
        nze: Vec::new(),
        nzw: Vec::new(),
    });

    // U-side start vertices (middles on V, endpoints on U).
    (0..nu as VertexId).into_par_iter().for_each(|sp| {
        if filtered_side == Side::U && !live(sp) {
            return;
        }
        let mut s = pool.acquire();
        let Scratch { wdg, nze, nzw } = &mut *s;
        let w = crate::count::process_start_vertex(
            sp,
            g.rank_u(sp),
            g.neighbors_u(sp),
            |mp| g.rank_v(mp),
            |mp| g.neighbors_v(mp),
            |ep| g.rank_u(ep),
            |mp| filtered_side != Side::V || live(mp),
            |ep| filtered_side != Side::U || live(ep),
            wdg,
            nze,
            nzw,
            |ep, b| {
                cnt_u[ep as usize].fetch_add(b, Ordering::Relaxed);
            },
            |mp, b| {
                cnt_v[mp as usize].fetch_add(b, Ordering::Relaxed);
            },
        );
        wedges.fetch_add(w, Ordering::Relaxed);
    });
    // V-side start vertices (middles on U, endpoints on V).
    (0..nv as VertexId).into_par_iter().for_each(|sp| {
        if filtered_side == Side::V && !live(sp) {
            return;
        }
        let mut s = pool.acquire();
        let Scratch { wdg, nze, nzw } = &mut *s;
        let w = crate::count::process_start_vertex(
            sp,
            g.rank_v(sp),
            g.neighbors_v(sp),
            |mp| g.rank_u(mp),
            |mp| g.neighbors_u(mp),
            |ep| g.rank_v(ep),
            |mp| filtered_side != Side::U || live(mp),
            |ep| filtered_side != Side::V || live(ep),
            wdg,
            nze,
            nzw,
            |ep, b| {
                cnt_v[ep as usize].fetch_add(b, Ordering::Relaxed);
            },
            |mp, b| {
                cnt_u[mp as usize].fetch_add(b, Ordering::Relaxed);
            },
        );
        wedges.fetch_add(w, Ordering::Relaxed);
    });

    VertexCounts {
        u: cnt_u.into_iter().map(AtomicU64::into_inner).collect(),
        v: cnt_v.into_iter().map(AtomicU64::into_inner).collect(),
        wedges_traversed: wedges.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::vertex_priority_counts;
    use bigraph::gen;
    use bigraph::RankedGraph;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn filtered_count_matches_compacted_count() {
        for side in [bigraph::Side::U, bigraph::Side::V] {
            let g = gen::zipf(60, 40, 380, 0.5, 0.9, 21);
            let ranked = RankedGraph::from_csr(&g);
            let n = match side {
                bigraph::Side::U => 60,
                bigraph::Side::V => 40,
            };
            let alive: Vec<AtomicBool> = (0..n).map(|i| AtomicBool::new(i % 4 != 1)).collect();
            let filtered = par_counts_with_filter(&ranked, side, &alive);

            // Reference: physically remove the dead vertices' edges.
            let flags: Vec<bool> = (0..n).map(|i| i % 4 != 1).collect();
            let (au, av) = match side {
                bigraph::Side::U => (flags.clone(), vec![true; 40]),
                bigraph::Side::V => (vec![true; 60], flags.clone()),
            };
            let compacted = bigraph::compact::compact(&g, &au, &av);
            let reference = crate::count_graph(&compacted);
            assert_eq!(filtered.u, reference.u, "{side}");
            assert_eq!(filtered.v, reference.v, "{side}");
        }
    }

    #[test]
    fn filtered_count_with_all_alive_equals_plain() {
        let g = gen::uniform(40, 40, 300, 2);
        let ranked = RankedGraph::from_csr(&g);
        let alive: Vec<AtomicBool> = (0..40).map(|_| AtomicBool::new(true)).collect();
        let filtered = par_counts_with_filter(&ranked, bigraph::Side::U, &alive);
        let plain = par_vertex_priority_counts(&ranked);
        assert_eq!(filtered.u, plain.u);
        assert_eq!(filtered.v, plain.v);
        assert_eq!(filtered.wedges_traversed, plain.wedges_traversed);
    }

    #[test]
    fn parallel_matches_sequential() {
        for seed in 0..5 {
            let g = gen::zipf(120, 60, 800, 0.5, 0.9, seed);
            let ranked = RankedGraph::from_csr(&g);
            let seq = vertex_priority_counts(&ranked);
            let par = par_vertex_priority_counts(&ranked);
            assert_eq!(seq.u, par.u);
            assert_eq!(seq.v, par.v);
            assert_eq!(seq.wedges_traversed, par.wedges_traversed);
        }
    }

    #[test]
    fn parallel_deterministic_across_pool_sizes() {
        let g = gen::uniform(100, 100, 900, 4);
        let ranked = RankedGraph::from_csr(&g);
        let a = parutil::with_pool(1, || par_vertex_priority_counts(&ranked));
        let b = parutil::with_pool(4, || par_vertex_priority_counts(&ranked));
        assert_eq!(a.u, b.u);
        assert_eq!(a.v, b.v);
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn empty_graph() {
        let g = bigraph::BipartiteCsr::empty(2, 2);
        let c = par_vertex_priority_counts(&RankedGraph::from_csr(&g));
        assert_eq!(c.total(), 0);
    }
}

//! Sequential vertex-priority per-vertex butterfly counting (Algorithm 1).
//!
//! Every wedge `(sp, mp, ep)` is traversed only when the endpoint `ep` has
//! strictly lower priority (higher global rank value means lower priority;
//! rank 0 is the highest-degree vertex) than both the start `sp` and middle
//! `mp`. This charges each butterfly to its highest-priority vertex exactly
//! once and bounds traversal by `O(Σ_{(u,v)∈E} min(d_u, d_v)) = O(α·m)`.

use crate::VertexCounts;
use bigraph::{RankedGraph, VertexId};

/// One start-vertex pass of Algorithm 1, shared by the sequential and
/// parallel drivers.
///
/// `neigh_sp` are the (rank-sorted) middle vertices of `sp`;
/// `neigh_mid(mp)` yields the (rank-sorted) endpoints of a middle vertex.
/// `wdg` is a dense endpoint-indexed scratch that must be all-zero on entry
/// and is restored to all-zero on exit. Calls `emit_same(ep_or_sp, bcnt)`
/// for same-side contributions and `emit_opp(mp, bcnt)` for middle-vertex
/// contributions. Returns the number of wedges traversed.
///
/// `mid_alive` / `end_alive` support HUC re-counts on a graph whose peeled
/// vertices have not been compacted away yet: wedges through a dead middle
/// or ending at a dead endpoint are skipped (their traversal cost is still
/// reported — the work is really done). Pass `|_| true` for plain counting;
/// the closures monomorphize away.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_start_vertex<'g>(
    sp: VertexId,
    rank_sp: u32,
    neigh_sp: &[VertexId],
    rank_mid: impl Fn(VertexId) -> u32,
    neigh_mid: impl Fn(VertexId) -> &'g [VertexId],
    rank_end: impl Fn(VertexId) -> u32,
    mid_alive: impl Fn(VertexId) -> bool,
    end_alive: impl Fn(VertexId) -> bool,
    wdg: &mut [u32],
    nze: &mut Vec<VertexId>,
    nzw: &mut Vec<(VertexId, VertexId)>,
    mut emit_same: impl FnMut(VertexId, u64),
    mut emit_opp: impl FnMut(VertexId, u64),
) -> u64 {
    nze.clear();
    nzw.clear();
    let mut skipped = 0u64;
    for &mp in neigh_sp {
        if !mid_alive(mp) {
            continue;
        }
        let r_mp = rank_mid(mp);
        let cap = r_mp.min(rank_sp);
        // Endpoints are rank-sorted ascending, so the wedges to traverse
        // are exactly the prefix with rank below `cap`. Galloping
        // (exponential + binary search) finds that boundary in
        // O(log prefix) rank lookups instead of one per endpoint, and the
        // prefix walk below then needs no rank checks at all. The prefix
        // is identical to what the old per-element break-scan visited, so
        // the traversed-wedge count — and every golden pinned to it — is
        // unchanged by construction.
        let neigh = neigh_mid(mp);
        let prefix = crate::intersect::gallop_partition_point(neigh, |&ep| rank_end(ep) < cap);
        for &ep in &neigh[..prefix] {
            if !end_alive(ep) {
                skipped += 1;
                continue;
            }
            if wdg[ep as usize] == 0 {
                nze.push(ep);
            }
            wdg[ep as usize] += 1;
            nzw.push((mp, ep));
        }
    }
    let wedges = nzw.len() as u64 + skipped;

    // Same-side contribution: every pair of wedges ending at `ep` closes a
    // butterfly containing both `sp` and `ep`.
    let mut sp_total = 0u64;
    for &ep in nze.iter() {
        let c = wdg[ep as usize] as u64;
        let bcnt = c * (c - 1) / 2;
        if bcnt > 0 {
            emit_same(ep, bcnt);
            sp_total += bcnt;
        }
    }
    if sp_total > 0 {
        emit_same(sp, sp_total);
    }

    // Opposite-side contribution: the wedge (sp, mp, ep) pairs with the
    // `wdg[ep] - 1` other wedges ending at `ep`, all through `mp`.
    for &(mp, ep) in nzw.iter() {
        let bcnt = (wdg[ep as usize] - 1) as u64;
        if bcnt > 0 {
            emit_opp(mp, bcnt);
        }
    }

    for &ep in nze.iter() {
        wdg[ep as usize] = 0;
    }
    wedges
}

/// Sequential Algorithm 1: per-vertex butterfly counts for both sides.
pub fn vertex_priority_counts(g: &RankedGraph) -> VertexCounts {
    let nu = g.num_u();
    let nv = g.num_v();
    let mut cnt_u = vec![0u64; nu];
    let mut cnt_v = vec![0u64; nv];
    let mut wedges = 0u64;

    let mut wdg = vec![0u32; nu.max(nv)];
    let mut nze: Vec<VertexId> = Vec::new();
    let mut nzw: Vec<(VertexId, VertexId)> = Vec::new();

    // Start vertices on U: middles on V, endpoints on U.
    for sp in 0..nu as VertexId {
        wedges += process_start_vertex(
            sp,
            g.rank_u(sp),
            g.neighbors_u(sp),
            |mp| g.rank_v(mp),
            |mp| g.neighbors_v(mp),
            |ep| g.rank_u(ep),
            |_| true,
            |_| true,
            &mut wdg,
            &mut nze,
            &mut nzw,
            |ep, b| cnt_u[ep as usize] += b,
            |mp, b| cnt_v[mp as usize] += b,
        );
    }
    // Start vertices on V: middles on U, endpoints on V.
    for sp in 0..nv as VertexId {
        wedges += process_start_vertex(
            sp,
            g.rank_v(sp),
            g.neighbors_v(sp),
            |mp| g.rank_u(mp),
            |mp| g.neighbors_u(mp),
            |ep| g.rank_v(ep),
            |_| true,
            |_| true,
            &mut wdg,
            &mut nze,
            &mut nzw,
            |ep, b| cnt_v[ep as usize] += b,
            |mp, b| cnt_u[mp as usize] += b,
        );
    }

    VertexCounts {
        u: cnt_u,
        v: cnt_v,
        wedges_traversed: wedges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_counts;
    use bigraph::builder::from_edges;
    use bigraph::gen;
    use bigraph::RankedGraph;

    fn check_matches_naive(g: &bigraph::BipartiteCsr) {
        let fast = vertex_priority_counts(&RankedGraph::from_csr(g));
        let slow = naive_counts(g);
        assert_eq!(fast.u, slow.u, "U-side counts diverge");
        assert_eq!(fast.v, slow.v, "V-side counts diverge");
    }

    #[test]
    fn matches_naive_on_small_fixtures() {
        check_matches_naive(&from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap());
        check_matches_naive(
            &from_edges(
                4,
                4,
                &[
                    (0, 0),
                    (0, 1),
                    (1, 0),
                    (1, 1),
                    (1, 2),
                    (2, 0),
                    (2, 1),
                    (2, 2),
                    (2, 3),
                    (3, 2),
                    (3, 3),
                ],
            )
            .unwrap(),
        );
    }

    #[test]
    fn matches_naive_on_complete_graphs() {
        for (a, b) in [(3, 3), (4, 2), (5, 5), (1, 6)] {
            let mut edges = Vec::new();
            for u in 0..a {
                for v in 0..b {
                    edges.push((u, v));
                }
            }
            check_matches_naive(&from_edges(a as usize, b as usize, &edges).unwrap());
        }
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..8 {
            check_matches_naive(&gen::uniform(40, 30, 200, seed));
            check_matches_naive(&gen::zipf(60, 25, 300, 0.4, 1.0, seed));
        }
    }

    #[test]
    fn matches_naive_on_planted_blocks() {
        check_matches_naive(&gen::planted_bicliques(30, 30, 3, 4, 4, 60, 2));
    }

    #[test]
    fn wedge_traversal_is_bounded_by_recount_cost() {
        // The traversal bound Σ min(d_u, d_v) from §2.1.
        let g = gen::zipf(80, 40, 500, 0.5, 0.9, 3);
        let fast = vertex_priority_counts(&RankedGraph::from_csr(&g));
        let bound = bigraph::stats::recount_cost(g.view(bigraph::Side::U));
        assert!(
            fast.wedges_traversed <= bound,
            "{} wedges > bound {}",
            fast.wedges_traversed,
            bound
        );
    }

    #[test]
    fn empty_graph_counts() {
        let g = bigraph::BipartiteCsr::empty(4, 4);
        let c = vertex_priority_counts(&RankedGraph::from_csr(&g));
        assert!(c.u.iter().all(|&x| x == 0));
        assert_eq!(c.wedges_traversed, 0);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn total_is_consistent_across_sides() {
        let g = gen::zipf(50, 50, 400, 0.6, 0.6, 9);
        let c = vertex_priority_counts(&RankedGraph::from_csr(&g));
        assert_eq!(
            c.u.iter().sum::<u64>(),
            c.v.iter().sum::<u64>(),
            "each butterfly has two vertices on each side"
        );
    }
}

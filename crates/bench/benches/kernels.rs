//! Micro-benchmarks of the data-structure kernels behind the paper's
//! design choices: the k-way indexed heap vs the Julienne bucket queue
//! (§5.1 implementation notes), graph compaction (DGM, §4.2), induced
//! subgraph construction (FD, Algorithm 4 line 5), and ranking.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rayon::prelude::*;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let g = common::skewed_graph();
    let n = 100_000usize;
    // Synthetic support values with a heavy tail, like real butterfly
    // counts.
    let keys: Vec<u64> = (0..n as u64)
        .map(|i| (i * i * 2_654_435_761) % 1_000_000)
        .collect();

    let mut group = c.benchmark_group("kernels");

    // Heap arity sweep (the paper picked a k-way heap over buckets/fib).
    for arity in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("heap_sort", arity), &arity, |b, &a| {
            b.iter(|| {
                let mut h = receipt::heap::IndexedMinHeap::new(a, &keys);
                let mut out = 0u64;
                while let Some((_, k)) = h.pop_min() {
                    out = out.wrapping_add(k);
                }
                black_box(out)
            })
        });
    }

    // Fibonacci heap over the same keys (§5.1: the paper found the k-way
    // heap faster in practice despite the Fibonacci heap's asymptotics).
    group.bench_function("fib_heap_sort", |b| {
        b.iter(|| {
            let mut h = receipt::fibheap::FibonacciHeap::new(&keys);
            let mut out = 0u64;
            while let Some((_, k)) = h.pop_min() {
                out = out.wrapping_add(k);
            }
            black_box(out)
        })
    });

    // Bucket queue drain over the same keys.
    group.bench_function("bucket_drain", |b| {
        b.iter(|| {
            let mut q = receipt::bucket::BucketQueue::new(128, &keys);
            let claimed: Vec<std::cell::Cell<bool>> =
                (0..n).map(|_| std::cell::Cell::new(false)).collect();
            let mut total = 0usize;
            while let Some((_, batch)) = q.pop_min_batch(
                |id| {
                    if !claimed[id as usize].get() {
                        claimed[id as usize].set(true);
                        Some(keys[id as usize])
                    } else {
                        None
                    }
                },
                |id| {
                    if claimed[id as usize].get() {
                        None
                    } else {
                        Some(keys[id as usize])
                    }
                },
            ) {
                total += batch.len();
            }
            black_box(total)
        })
    });

    // DGM compaction with half the primary side dead.
    let alive_u: Vec<bool> = (0..g.num_u()).map(|u| u % 2 == 0).collect();
    let alive_v = vec![true; g.num_v()];
    group.bench_function("compact_half_dead", |b| {
        b.iter(|| black_box(bigraph::compact::compact(&g, &alive_u, &alive_v)))
    });

    // Rank-preserving compaction (the PeelGraph/HUC path).
    let ranked = bigraph::RankedGraph::from_csr(&g);
    group.bench_function("ranked_compact_half_dead", |b| {
        b.iter(|| black_box(ranked.compact(&alive_u, &alive_v)))
    });

    // Induced subgraph on a 10% subset (FD task setup).
    let subset: Vec<u32> = (0..g.num_u() as u32).step_by(10).collect();
    group.bench_function("induce_10pct", |b| {
        b.iter(|| {
            black_box(bigraph::InducedGraph::new(
                g.view(bigraph::Side::U),
                &subset,
            ))
        })
    });

    // Generator throughput (workload setup cost).
    group.bench_function("gen_zipf_30k_edges", |b| {
        b.iter(|| black_box(bigraph::gen::zipf(12_000, 5_000, 30_000, 0.5, 1.1, 7)))
    });

    // Intersection kernels at the skewed size ratio the degree-ratio
    // heuristic targets: a 128-element list against a 64k-element one
    // (ratio 512 ≫ GALLOP_RATIO). Merge pays O(|small| + |large|) steps,
    // gallop O(|small| log |large|) probes, bitset one test per streamed
    // element after a one-time build amortized across the batch (modeled
    // here by building once outside the timing loop).
    let small: Vec<u32> = (0..128u32).map(|i| i * 509).collect();
    let large: Vec<u32> = (0..65_536u32).collect();
    group.bench_function("intersect_merge_128_vs_64k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            let w = butterfly::intersect::intersect_merge(
                small.iter().copied(),
                large.iter().copied(),
                |_| hits += 1,
            );
            black_box((hits, w))
        })
    });
    group.bench_function("intersect_gallop_128_vs_64k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            let w = butterfly::intersect::intersect_gallop(small.iter().copied(), &large, |_| {
                hits += 1
            });
            black_box((hits, w))
        })
    });
    let bits = butterfly::intersect::VertexBitset::from_iter(65_536, large.iter().copied());
    group.bench_function("intersect_bitset_128_vs_64k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            let w =
                butterfly::intersect::intersect_bitset(&bits, small.iter().copied(), |_| hits += 1);
            black_box((hits, w))
        })
    });

    // Parallel merge sort in the rayon shim: 1M random u64 across budgets.
    // Every RECEIPT phase that ranks or relabels funnels through
    // par_sort_unstable*, so this is the scaling-critical kernel. The
    // vendored criterion has no iter_batched, so each iteration includes
    // the ~8MB clone; that constant is identical across budgets but does
    // NOT cancel in ratios — it dilutes measured speedups, so cross-budget
    // ratios from this bench are a lower bound on the sort-only speedup.
    let unsorted: Vec<u64> = (0..1_000_000u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i >> 11))
        .collect();
    group.bench_function("sort_1m_u64_std_seq", |b| {
        b.iter(|| {
            let mut v = unsorted.clone();
            v.sort_unstable();
            black_box(v.len())
        })
    });
    for budget in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("par_sort_1m_u64", budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    let mut v = unsorted.clone();
                    parutil::with_pool(budget, || v.par_sort_unstable());
                    black_box(v.len())
                })
            },
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench_kernels
}
criterion_main!(benches);

//! Shared fixtures for the criterion benches: small, seeded graphs whose
//! shape mirrors the dataset analogs (heavy-hub secondary side for the
//! "U-peel" regime, mild skew for the "V-peel" regime) but sized so the
//! whole bench suite completes in minutes on one core.
//!
//! Each bench target compiles this module independently and uses a subset
//! of the fixtures, so unused-in-this-target items are expected.
#![allow(dead_code)]

use bigraph::BipartiteCsr;

/// ~30k-edge graph with a skewed secondary side — a miniature `TrU` regime
/// (`∧_peel ≫ ∧_cnt`, HUC-friendly).
pub fn skewed_graph() -> BipartiteCsr {
    bigraph::gen::zipf(12_000, 5_000, 30_000, 0.5, 1.1, 7)
}

/// ~30k-edge near-uniform graph — the `V`-side regime where re-counting
/// never pays off.
pub fn mild_graph() -> BipartiteCsr {
    bigraph::gen::zipf(8_000, 8_000, 30_000, 0.4, 0.4, 8)
}

/// Dense planted-community graph for hierarchy-heavy benches.
pub fn community_graph() -> BipartiteCsr {
    bigraph::gen::planted_bicliques(2_000, 2_000, 20, 8, 8, 10_000, 9)
}

/// Criterion settings tuned for a single-core container: few samples,
/// short measurement windows.
pub fn quick() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

//! Phase costs (Figures 8–9): counting, coarse decomposition, and
//! fine-grained decomposition measured separately.

mod common;

use bigraph::Side;
use criterion::{criterion_group, criterion_main, Criterion};
use receipt::{cd, fd, Config};
use std::hint::black_box;

fn bench_phases(c: &mut Criterion) {
    let g = common::skewed_graph();
    let cfg = Config::default().with_partitions(32);

    let mut group = c.benchmark_group("fig8_9_phases");
    group.bench_function("pvBcnt", |b| {
        b.iter(|| black_box(butterfly::par_count_graph(&g)))
    });
    group.bench_function("cd", |b| {
        b.iter(|| black_box(cd::coarse_decompose(&g, Side::U, &cfg)))
    });
    // FD alone, with a precomputed coarse result.
    let coarse = cd::coarse_decompose(&g, Side::U, &cfg);
    group.bench_function("fd", |b| {
        b.iter(|| black_box(fd::fine_decompose(g.view(Side::U), coarse.clone(), &cfg)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench_phases
}
criterion_main!(benches);

//! RECEIPT sensitivity to the partition count P (Figure 5).

mod common;

use bigraph::Side;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use receipt::Config;
use std::hint::black_box;

fn bench_partitions(c: &mut Criterion) {
    let g = common::skewed_graph();
    let mut group = c.benchmark_group("fig5_partitions");
    for p in [4usize, 16, 64, 150, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                black_box(receipt::tip_decompose(
                    &g,
                    Side::U,
                    &Config::default().with_partitions(p),
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench_partitions
}
criterion_main!(benches);

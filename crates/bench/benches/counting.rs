//! Per-vertex butterfly counting kernels (the `pvBcnt` rows of Table 3).
//!
//! Compares the naive `O(Σ d²)` counter, the sequential vertex-priority
//! algorithm (Algorithm 1), and its parallel variant.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_counting(c: &mut Criterion) {
    let skewed = common::skewed_graph();
    let mild = common::mild_graph();

    let mut group = c.benchmark_group("counting");
    for (name, g) in [("skewed", &skewed), ("mild", &mild)] {
        let ranked = bigraph::RankedGraph::from_csr(g);
        group.bench_function(format!("vertex_priority/{name}"), |b| {
            b.iter(|| black_box(butterfly::count::vertex_priority_counts(&ranked)))
        });
        group.bench_function(format!("parallel/{name}"), |b| {
            b.iter(|| black_box(butterfly::parallel::par_vertex_priority_counts(&ranked)))
        });
        group.bench_function(format!("ranking/{name}"), |b| {
            b.iter(|| black_box(bigraph::RankedGraph::from_csr(g)))
        });
    }
    // The naive oracle only on a downscaled graph (it is quadratic).
    let tiny = bigraph::gen::zipf(1_500, 800, 6_000, 0.5, 0.9, 3);
    group.bench_function("naive/tiny", |b| {
        b.iter(|| black_box(butterfly::naive::naive_counts(&tiny)))
    });
    let tiny_ranked = bigraph::RankedGraph::from_csr(&tiny);
    group.bench_function("vertex_priority/tiny", |b| {
        b.iter(|| black_box(butterfly::count::vertex_priority_counts(&tiny_ranked)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench_counting
}
criterion_main!(benches);

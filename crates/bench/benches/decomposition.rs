//! End-to-end tip decomposition: BUP vs ParB vs RECEIPT (the `t(s)` columns
//! of Table 3, miniature scale).

mod common;

use bigraph::Side;
use criterion::{criterion_group, criterion_main, Criterion};
use receipt::Config;
use std::hint::black_box;

fn bench_decomposition(c: &mut Criterion) {
    let skewed = common::skewed_graph();
    let mild = common::mild_graph();

    let mut group = c.benchmark_group("decomposition");
    for (name, g) in [("skewed", &skewed), ("mild", &mild)] {
        group.bench_function(format!("bup/{name}"), |b| {
            b.iter(|| black_box(receipt::bup::bup_decompose(g, Side::U, 4)))
        });
        group.bench_function(format!("parb/{name}"), |b| {
            b.iter(|| black_box(receipt::parb::parb_decompose(g, Side::U, 4)))
        });
        group.bench_function(format!("receipt/{name}"), |b| {
            b.iter(|| {
                black_box(receipt::tip_decompose(
                    g,
                    Side::U,
                    &Config::default().with_partitions(32),
                ))
            })
        });
    }
    // Wing decomposition (the §7 extension) on the community graph.
    let community = common::community_graph();
    group.bench_function("wing/community", |b| {
        b.iter(|| black_box(receipt::wing::wing_decompose(community.view(Side::U), 4)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench_decomposition
}
criterion_main!(benches);

//! HUC/DGM ablation (Figures 6–7): RECEIPT vs RECEIPT- (no DGM) vs
//! RECEIPT-- (no DGM, no HUC), on both workload regimes.

mod common;

use bigraph::Side;
use criterion::{criterion_group, criterion_main, Criterion};
use receipt::Config;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let skewed = common::skewed_graph();
    let mild = common::mild_graph();

    let mut group = c.benchmark_group("fig6_7_ablation");
    for (name, g) in [("skewed", &skewed), ("mild", &mild)] {
        let configs = [
            ("receipt", Config::default().with_partitions(32)),
            (
                "receipt_minus",
                Config::default().with_partitions(32).without_dgm(),
            ),
            (
                "receipt_minus_minus",
                Config::default().with_partitions(32).baseline_variant(),
            ),
        ];
        for (cfg_name, cfg) in configs {
            group.bench_function(format!("{cfg_name}/{name}"), |b| {
                b.iter(|| black_box(receipt::tip_decompose(g, Side::U, &cfg)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench_ablation
}
criterion_main!(benches);

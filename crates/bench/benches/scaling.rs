//! Thread scaling (Figures 10–11). On the single-core reference container
//! this measures parallel-overhead neutrality rather than speedup; on a
//! multicore machine the same bench produces the paper's scaling curves.

mod common;

use bigraph::Side;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use receipt::Config;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let g = common::skewed_graph();
    let mut group = c.benchmark_group("fig10_11_scaling");
    for side in [Side::U, Side::V] {
        for threads in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("side_{side}"), threads),
                &threads,
                |b, &t| {
                    b.iter(|| {
                        black_box(receipt::tip_decompose(
                            &g,
                            side,
                            &Config::default().with_partitions(32).with_threads(t),
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = common::quick();
    targets = bench_scaling
}
criterion_main!(benches);

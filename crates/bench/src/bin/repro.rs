//! `repro` — regenerates every table and figure of the RECEIPT paper's
//! evaluation (§5) on the synthetic dataset analogs.
//!
//! ```text
//! cargo run --release -p receipt-bench --bin repro -- <experiment> [--json] [--out FILE]
//!   table2   dataset statistics (sizes, butterflies, wedges, θ_max)
//!   table3   t / wedges / sync-rounds for pvBcnt, BUP, ParB, RECEIPT
//!   fig4     cumulative tip-number distribution (Tr analog, both sides)
//!   fig5     RECEIPT execution time vs partition count P
//!   fig6     ablation: wedges for RECEIPT / RECEIPT- / RECEIPT--
//!   fig7     ablation: time for RECEIPT / RECEIPT- / RECEIPT--
//!   fig8     wedge-traversal breakup (CD / FD / pvBcnt)
//!   fig9     execution-time breakup (CD / FD / pvBcnt)
//!   fig10    thread scaling, peeling U
//!   fig11    thread scaling, peeling V
//!   wing     §7 extension: parallel vs sequential wing decomposition
//!   dynamic  batch-dynamic maintenance: per-batch incremental update cost
//!            vs from-scratch recount + re-peel, oracle-checked
//!   serve    mixed read/update throughput: a writer applies the dynamic
//!            schedule through the epoch-snapshot engine while reader
//!            threads answer point queries from published snapshots
//!   recover  durability crash matrix: cut the WAL at (and inside) every
//!            batch boundary, recover, and require the reference state
//!            plus a from-scratch oracle pass; checkpoint folding and
//!            binary-vs-text load cost ride along
//!   versions named snapshots over the WAL (`VERSIONING.md`): tag every
//!            batch boundary of the dynamic schedule, time-travel to each
//!            tag with an oracle check, verify the diff law, and
//!            cross-check the derive operators against brute force
//!   projection  §1 motivation: unipartite-projection blowup
//!   smoke    small deterministic oracle-checked runs (CI / golden snapshot)
//!   all      everything above except smoke, in order
//!
//!   check-threads FILE...   CI gate: decode two or more `--json` reports
//!            (e.g. the same experiment at RAYON_NUM_THREADS 1 and 4),
//!            scrub timings + scheduler telemetry, and fail (exit 1) unless
//!            every machine-independent field is identical — different
//!            thread counts must produce the same decomposition results
//!   check-sched FILE        CI gate: decode one `--json` report's
//!            `scheduler` section and fail (exit 1) unless the counters
//!            match the run's thread budget — ≥ 2 threads must show > 1
//!            worker executing tasks and ≥ 1 successful steal, 1 thread
//!            must show zero steals (the single-thread fast path)
//! ```
//!
//! `--json` emits a versioned [`receipt_bench::report::ReproReport`]
//! document instead of text (supported for `table2`, `table3`, `wing`,
//! `dynamic`, `serve`, `recover`, `versions`, `smoke` — the figure
//! experiments are timing curves
//! with no structured content beyond what table3 already covers). Every JSON document carries
//! a `scheduler` section (work-stealing counters; `smoke` first drives a
//! deterministic fork-join workload through the pool so the section
//! reflects nested-parallel scheduling even though the smoke graphs are
//! tiny). `--out FILE` redirects either format. `EXPERIMENTS.md` records
//! one full text run; `tests/golden/repro_smoke.json` pins the
//! timing-and-scheduler-scrubbed smoke document.

#![forbid(unsafe_code)]

use bigraph::Side;
use receipt::{hierarchy, Config};
use receipt_bench::report::ReproReport;
use receipt_bench::runner::*;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut out: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--out" | "--output" => match it.next() {
                Some(path) => out = Some(path.clone()),
                None => fail("--out expects a file path"),
            },
            flag if flag.starts_with('-') => fail(&format!("unknown flag `{flag}`")),
            positional_arg => positional.push(positional_arg.to_string()),
        }
    }
    let what = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let operands = &positional[positional.len().min(1)..];

    // The check subcommands consume file operands; everything else is a
    // single experiment name.
    match what.as_str() {
        "check-threads" => {
            if operands.len() < 2 {
                fail("check-threads expects two or more report files");
            }
            check_threads(operands);
            return;
        }
        "check-sched" => {
            let [file] = operands else {
                fail("check-sched expects exactly one report file");
            };
            check_sched(file);
            return;
        }
        _ if !operands.is_empty() => fail(&format!("unexpected argument `{}`", operands[0])),
        _ => {}
    }

    if json {
        let report = match build_json(&what) {
            Some(report) => report,
            None if KNOWN_EXPERIMENTS.contains(&what.as_str()) => fail(&format!(
                "`{what}` has no JSON form; supported: table2, table3, wing, dynamic, serve, \
                 recover, versions, smoke"
            )),
            None => fail(&format!(
                "unknown experiment `{what}`; see --help in the module docs"
            )),
        };
        let text = serde_json::to_string_pretty(&report).expect("report serializes");
        match &out {
            None => println!("{text}"),
            Some(path) => write_file(path, &format!("{text}\n")),
        }
        return;
    }

    if let Some(path) = &out {
        // Text mode with --out: capture is not implemented; keep the
        // interface honest instead of silently printing to stdout.
        fail(&format!(
            "--out {path} requires --json (text tables always print to stdout)"
        ));
    }

    match what.as_str() {
        "table2" => table2(),
        "table3" => table3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6_fig7(true),
        "fig7" => fig6_fig7(false),
        "fig8" => fig8_fig9(true),
        "fig9" => fig8_fig9(false),
        "fig10" => fig10_fig11(Side::U),
        "fig11" => fig10_fig11(Side::V),
        "wing" => wing_extension(),
        "dynamic" => dynamic_experiment(),
        "serve" => serve_experiment(),
        "recover" => recover_experiment(),
        "versions" => versions_experiment(),
        "projection" => projection_motivation(),
        "smoke" => smoke(),
        "all" => {
            table2();
            table3();
            fig4();
            fig5();
            fig6_fig7(true);
            fig6_fig7(false);
            fig8_fig9(true);
            fig8_fig9(false);
            fig10_fig11(Side::U);
            fig10_fig11(Side::V);
            wing_extension();
            dynamic_experiment();
            serve_experiment();
            recover_experiment();
            versions_experiment();
            projection_motivation();
        }
        other => fail(&format!(
            "unknown experiment `{other}`; see --help in the module docs"
        )),
    }
}

const KNOWN_EXPERIMENTS: &[&str] = &[
    "table2",
    "table3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "wing",
    "dynamic",
    "serve",
    "recover",
    "versions",
    "projection",
    "smoke",
    "all",
];

/// Reader-thread count of the `serve` experiment (fixed so the
/// machine-independent rows are comparable across runs; the telemetry
/// section absorbs the machine-dependent part).
const SERVE_READERS: usize = 4;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn write_file(path: &str, text: &str) {
    let mut f =
        std::fs::File::create(path).unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
    f.write_all(text.as_bytes())
        .unwrap_or_else(|e| fail(&format!("write to {path} failed: {e}")));
    eprintln!("wrote {path}");
}

/// The structured form of the experiments that have one.
fn build_json(what: &str) -> Option<ReproReport> {
    let mut report = ReproReport::new(what);
    match what {
        "table2" => report.table2 = Some(table2_rows()),
        "table3" => report.table3 = Some(table3_rows()),
        "wing" => report.wing = Some(wing_rows()),
        "dynamic" => report.dynamic = Some(dynamic_rows()),
        "serve" => report.serve = Some(serve_report(SERVE_READERS)),
        "recover" => report.recover = Some(recover_report()),
        "versions" => report.versions = Some(versions_report()),
        "smoke" => {
            report.smoke = Some(smoke_report());
            // The smoke graphs are deliberately tiny, so drive one
            // deterministic fork-join workload through the pool before
            // snapshotting: the scheduler section must witness nested
            // parallelism for the CI steal gate to be meaningful.
            scheduler_exercise();
        }
        _ => return None,
    }
    report.scheduler = Some(scheduler_report());
    Some(report)
}

/// Exit for a failed CI gate: distinct from argument errors (exit 2) so
/// workflows can tell misuse from a genuine regression.
fn gate_fail(msg: &str) -> ! {
    eprintln!("check failed: {msg}");
    std::process::exit(1);
}

fn read_report_value(path: &str) -> serde_json::Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| gate_fail(&format!("cannot read {path}: {e}")));
    serde_json::from_str_value(&text)
        .unwrap_or_else(|e| gate_fail(&format!("{path} is not valid JSON: {e}")))
}

/// `repro check-threads a.json b.json ...` — all reports must describe the
/// same machine-independent results once timings and scheduler telemetry
/// (the only legitimately thread-count-dependent content) are scrubbed.
fn check_threads(files: &[String]) {
    let mut scrubbed: Vec<serde_json::Value> = Vec::with_capacity(files.len());
    for path in files {
        let mut value = read_report_value(path);
        receipt::report::scrub_timings(&mut value);
        receipt::report::scrub_scheduler(&mut value);
        scrubbed.push(value);
    }
    for (path, value) in files.iter().zip(&scrubbed).skip(1) {
        if let Some(diff) = first_diff(&scrubbed[0], value, String::new()) {
            gate_fail(&format!(
                "{path} diverges from {} at `{diff}`: \
                 different thread counts must produce identical results",
                files[0]
            ));
        }
    }
    println!(
        "check-threads ok: {} reports agree on all machine-independent fields",
        files.len()
    );
}

/// First JSON-pointer-ish path where two scrubbed documents differ.
fn first_diff(a: &serde_json::Value, b: &serde_json::Value, path: String) -> Option<String> {
    use serde_json::Value;
    match (a, b) {
        (Value::Object(ma), Value::Object(mb)) => {
            for (key, va) in ma.iter() {
                match mb.get(key) {
                    None => return Some(format!("{path}/{key} (missing in second)")),
                    Some(vb) => {
                        if let Some(d) = first_diff(va, vb, format!("{path}/{key}")) {
                            return Some(d);
                        }
                    }
                }
            }
            for (key, _) in mb.iter() {
                if ma.get(key).is_none() {
                    return Some(format!("{path}/{key} (missing in first)"));
                }
            }
            None
        }
        (Value::Array(xs), Value::Array(ys)) => {
            if xs.len() != ys.len() {
                return Some(format!(
                    "{path} (array lengths {} vs {})",
                    xs.len(),
                    ys.len()
                ));
            }
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                if let Some(d) = first_diff(x, y, format!("{path}/{i}")) {
                    return Some(d);
                }
            }
            None
        }
        _ => (a != b).then(|| {
            if path.is_empty() {
                "/".to_string()
            } else {
                path
            }
        }),
    }
}

/// `repro check-sched report.json` — the scheduler section must match the
/// run's thread budget: parallel runs prove the work-stealing path ran
/// (> 1 worker executed tasks, ≥ 1 successful steal), single-thread runs
/// prove the inline fast path stayed off the queues (zero steals).
fn check_sched(file: &str) {
    let text = std::fs::read_to_string(file)
        .unwrap_or_else(|e| gate_fail(&format!("cannot read {file}: {e}")));
    let report: ReproReport = serde_json::from_str(&text)
        .unwrap_or_else(|e| gate_fail(&format!("{file} is not a ReproReport: {e}")));
    let Some(sched) = report.scheduler else {
        gate_fail(&format!("{file} has no scheduler section"));
    };
    if sched.tasks_executed != sched.jobs_submitted {
        gate_fail(&format!(
            "{file}: tasks_executed ({}) != jobs_submitted ({}) — \
             the report was built at a non-quiescent point or accounting leaked",
            sched.tasks_executed, sched.jobs_submitted
        ));
    }
    if sched.steals_succeeded > sched.steals_attempted {
        gate_fail(&format!(
            "{file}: steals_succeeded ({}) > steals_attempted ({})",
            sched.steals_succeeded, sched.steals_attempted
        ));
    }
    let busy_workers = sched
        .per_worker_executed
        .iter()
        .filter(|&&count| count > 0)
        .count();
    // The submitting caller is the budget's first executor; the pool only
    // spawns `threads - 1` workers. So a budget-2 run can prove load
    // sharing only as "one worker plus the helping caller", while budget
    // >= 3 (two or more workers) must show > 1 worker executing tasks.
    let busy_executors = busy_workers + usize::from(sched.helper_executed > 0);
    if sched.threads >= 2 {
        if busy_executors <= 1 {
            gate_fail(&format!(
                "{file}: {} threads but only {busy_executors} executor(s) ran tasks \
                 (per_worker_executed = {:?}, helper_executed = {})",
                sched.threads, sched.per_worker_executed, sched.helper_executed
            ));
        }
        if sched.threads >= 3 && busy_workers <= 1 {
            gate_fail(&format!(
                "{file}: {} threads but only {busy_workers} worker(s) executed tasks \
                 (per_worker_executed = {:?})",
                sched.threads, sched.per_worker_executed
            ));
        }
        if sched.steals_succeeded == 0 {
            gate_fail(&format!(
                "{file}: {} threads but zero successful steals \
                 ({} attempted) — the work-stealing path never ran",
                sched.threads, sched.steals_attempted
            ));
        }
    } else if sched.steals_succeeded != 0 {
        gate_fail(&format!(
            "{file}: single-thread run performed {} steal(s) — \
             the budget-1 fast path must stay off the queues",
            sched.steals_succeeded
        ));
    }
    println!(
        "check-sched ok: threads={} workers_spawned={} busy_workers={busy_workers} \
         steals={}/{} injector={}/{} tasks={} idle_timeouts={}",
        sched.threads,
        sched.workers_spawned,
        sched.steals_succeeded,
        sched.steals_attempted,
        sched.injector_pops,
        sched.injector_pushes,
        sched.tasks_executed,
        sched.idle_timeouts,
    );
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Table 2: dataset statistics, including θ_max for both sides (which
/// requires a full decomposition per side).
fn table2() {
    header("Table 2: bipartite dataset analogs (wedges/butterflies in millions)");
    println!(
        "{:<5} {:>8} {:>8} {:>9} {:>11} {:>10} {:>10} {:>10} {:>10}",
        "name", "|U|", "|V|", "|E|", "dU/dV", "bf(M)", "wedge(M)", "thmaxU", "thmaxV"
    );
    for r in table2_rows() {
        println!(
            "{:<5} {:>8} {:>8} {:>9} {:>11} {:>10} {:>10} {:>10} {:>10}",
            r.name,
            r.num_u,
            r.num_v,
            r.num_edges,
            format!("{:.1}/{:.1}", r.avg_degree_u, r.avg_degree_v),
            millions(r.butterflies),
            millions(r.wedges),
            r.theta_max_u,
            r.theta_max_v,
        );
    }
}

/// Table 3: execution time, wedges traversed, and synchronization rounds
/// for each algorithm. Also prints the `r = ∧_peel/∧_cnt` ratio of §5.2.2.
fn table3() {
    header("Table 3: t(s) / wedges(M) / sync rounds for all algorithms");
    println!(
        "{:<5} {:>9} {:>9} {:>9} {:>10} | {:>9} {:>9} {:>10} | {:>8} {:>8} | {:>9}",
        "data",
        "t_pvBcnt",
        "t_BUP",
        "t_ParB",
        "t_RECEIPT",
        "W_BUP",
        "W_RCPT",
        "W_pvBcnt",
        "rho_ParB",
        "rho_RCPT",
        "r"
    );
    for r in table3_rows() {
        println!(
            "{:<5} {:>9.3} {:>9.3} {:>9.3} {:>10.3} | {:>9} {:>9} {:>10} | {:>8} {:>8} | {:>9.1}",
            r.workload,
            r.time_pvbcnt_secs,
            r.time_bup_secs,
            r.time_parb_secs,
            r.time_receipt_secs,
            millions(r.wedges_bup),
            millions(r.wedges_receipt),
            millions(r.wedges_pvbcnt),
            r.rounds_parb,
            r.rounds_receipt,
            r.peel_to_count_ratio,
        );
    }
}

/// Figure 4: cumulative tip-number distribution for the Tr analog.
fn fig4() {
    header("Figure 4: tip-number cumulative distribution (Tr analog)");
    for side in [Side::U, Side::V] {
        let w = workload_by_label(&format!("Tr{side}")).unwrap();
        let d = run_receipt(&w, &Config::default());
        let cdf = d.cumulative_distribution();
        println!("-- {} (theta_max = {}) --", w.label(), d.theta_max());
        println!("{:>12} {:>10}", "theta", "% <= theta");
        // Sample the curve at log-spaced thetas like the paper's log x-axis.
        let mut last_printed = f64::NEG_INFINITY;
        for &(theta, frac) in &cdf {
            let pct = frac * 100.0;
            if pct - last_printed >= 4.0 || theta == cdf.last().unwrap().0 {
                println!("{:>12} {:>10.2}", theta, pct);
                last_printed = pct;
            }
        }
        // Paper's observation: the overwhelming majority of vertices sit far
        // below θ_max.
        let theta_max = d.theta_max();
        let below = d
            .tip
            .iter()
            .filter(|&&t| (t as f64) < 0.03 * theta_max as f64)
            .count();
        println!(
            "   {:.2}% of vertices have theta < 3% of theta_max",
            100.0 * below as f64 / d.tip.len() as f64
        );
        // k-tip sanity: the densest tip is non-trivial.
        let top = hierarchy::vertices_with_tip_at_least(&d.tip, theta_max);
        println!("   {} vertices attain theta_max", top.len());
    }
}

/// Figure 5: execution time vs number of partitions P.
fn fig5() {
    header("Figure 5: RECEIPT execution time (s) vs P");
    let sweeps = [10usize, 25, 50, 100, 150, 250, 400];
    print!("{:<5}", "data");
    for p in sweeps {
        print!(" {:>8}", format!("P={p}"));
    }
    println!();
    for label in ["TrU", "OrU", "EnU", "LjU", "DeU", "ItU"] {
        let w = workload_by_label(label).unwrap();
        print!("{:<5}", w.label());
        for p in sweeps {
            let d = run_receipt(&w, &Config::default().with_partitions(p));
            print!(" {:>8}", secs(d.metrics.time_total()));
        }
        println!();
    }
}

/// Figures 6 and 7: effect of the workload optimizations. Values are
/// normalized against RECEIPT-- (no DGM, no HUC), as in the paper.
fn fig6_fig7(wedges: bool) {
    header(if wedges {
        "Figure 6: normalized wedge traversal (RECEIPT / RECEIPT- / RECEIPT--)"
    } else {
        "Figure 7: normalized execution time (RECEIPT / RECEIPT- / RECEIPT--)"
    });
    println!(
        "{:<5} {:>10} {:>10} {:>10}",
        "data", "RECEIPT", "RECEIPT-", "RECEIPT--"
    );
    for w in all_workloads() {
        let full = run_receipt(&w, &Config::default());
        let minus = run_receipt(&w, &Config::default().without_dgm());
        let mm = run_receipt(&w, &Config::default().baseline_variant());
        let val = |d: &receipt::TipDecomposition| {
            if wedges {
                d.metrics.wedges_total() as f64
            } else {
                d.metrics.time_total().as_secs_f64()
            }
        };
        let base = val(&mm).max(1e-12);
        println!(
            "{:<5} {:>10.3} {:>10.3} {:>10.3}",
            w.label(),
            val(&full) / base,
            val(&minus) / base,
            1.0
        );
    }
}

/// Figures 8 and 9: per-phase breakup of wedges / time.
fn fig8_fig9(wedges: bool) {
    header(if wedges {
        "Figure 8: wedge-traversal breakup (%)"
    } else {
        "Figure 9: execution-time breakup (%)"
    });
    println!(
        "{:<5} {:>10} {:>12} {:>12}",
        "data", "pvBcnt", "RECEIPT_CD", "RECEIPT_FD"
    );
    for w in all_workloads() {
        let d = run_receipt(&w, &Config::default());
        let (c, cd, fd) = if wedges {
            d.metrics.wedge_breakdown()
        } else {
            d.metrics.time_breakdown()
        };
        println!(
            "{:<5} {:>10.1} {:>12.1} {:>12.1}",
            w.label(),
            c * 100.0,
            cd * 100.0,
            fd * 100.0
        );
    }
}

/// §1 motivation: projecting a bipartite graph to run unipartite
/// decompositions blows up the edge count (quadratically in hub degrees).
fn projection_motivation() {
    header("§1 motivation: unipartite-projection blowup (|E_proj| / |E|)");
    println!(
        "{:<5} {:>10} {:>14} {:>10} {:>14} {:>10}",
        "name", "|E|", "projU edges", "blowupU", "projV edges", "blowupV"
    );
    for spec in bigraph::datasets::all() {
        let g = spec.generate();
        let pu = bigraph::projection::projected_edge_count(g.view(Side::U));
        let pv = bigraph::projection::projected_edge_count(g.view(Side::V));
        println!(
            "{:<5} {:>10} {:>14} {:>10.1} {:>14} {:>10.1}",
            spec.name,
            g.num_edges(),
            pu,
            pu as f64 / g.num_edges() as f64,
            pv,
            pv as f64 / g.num_edges() as f64,
        );
    }
}

/// §7 extension: RECEIPT-style parallel wing decomposition vs sequential
/// bottom-up edge peeling, on downscaled analogs (edge peeling is an order
/// of magnitude costlier than vertex peeling, as the paper notes).
fn wing_extension() {
    header("§7 extension: wing decomposition (sequential vs RECEIPT-style parallel)");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>9} {:>9} {:>8} {:>9}",
        "graph", "|E|", "t_seq(s)", "t_rcpt(s)", "work_seq", "work_rcpt", "rounds", "max_wing"
    );
    for r in wing_rows() {
        println!(
            "{:<10} {:>8} {:>10.3} {:>10.3} {:>9} {:>9} {:>8} {:>9}",
            r.graph,
            r.num_edges,
            r.time_seq_secs,
            r.time_par_secs,
            millions(r.work_seq),
            millions(r.work_par),
            r.sync_rounds,
            r.max_wing,
        );
    }
    println!("(work in millions of intersection steps; wing numbers verified equal)");
}

/// Batch-dynamic maintenance: per-batch incremental update cost against
/// the from-scratch recount + re-peel it replaces. Divergence from the
/// oracles panics inside `dynamic_rows`.
fn dynamic_experiment() {
    header("dynamic: batch-dynamic butterfly + tip maintenance vs from-scratch");
    println!(
        "{:<10} {:>5} {:>5} {:>5} {:>7} {:>7} {:>9} {:>9} {:>9} {:>15} {:>8} {:>10} {:>10}",
        "family",
        "batch",
        "+ins",
        "-del",
        "gained",
        "lost",
        "total_bf",
        "W_upd",
        "W_scratch",
        "policy",
        "dirty%",
        "t_upd(s)",
        "t_scr(s)"
    );
    for r in dynamic_rows() {
        println!(
            "{:<10} {:>5} {:>5} {:>5} {:>7} {:>7} {:>9} {:>9} {:>9} {:>15} {:>8.2} {:>10.4} {:>10.4}",
            r.family,
            r.batch,
            r.inserted,
            r.deleted,
            r.butterflies_gained,
            r.butterflies_lost,
            r.total_butterflies,
            r.update_work,
            r.recount_work,
            r.policy.as_str(),
            r.dirty_fraction * 100.0,
            r.time_update_secs,
            r.time_recount_secs,
        );
    }
    println!("(W = wedge/intersection work; every row recount- and BUP-verified)");
}

/// Mixed read/update throughput through the epoch-snapshot engine.
fn serve_experiment() {
    header("serve: mixed read/update throughput through the epoch-snapshot engine");
    let report = serve_report(SERVE_READERS);
    println!(
        "{} with {} reader thread(s); every batch verified before publication",
        report.family, report.readers
    );
    println!(
        "{:>6} {:>5} {:>5} {:>7} {:>7} {:>9} {:>8} {:>8} {:>10} {:>10}",
        "epoch",
        "+ins",
        "-del",
        "gained",
        "lost",
        "total_bf",
        "thmaxU",
        "thmaxV",
        "t_upd(s)",
        "t_ver(s)"
    );
    for r in &report.batches {
        println!(
            "{:>6} {:>5} {:>5} {:>7} {:>7} {:>9} {:>8} {:>8} {:>10.4} {:>10.4}",
            r.epoch,
            r.inserted,
            r.deleted,
            r.butterflies_gained,
            r.butterflies_lost,
            r.total_butterflies,
            r.theta_max_u,
            r.theta_max_v,
            r.time_update_secs,
            r.time_verify_secs,
        );
    }
    let t = report.serve_telemetry.as_ref().expect("telemetry present");
    println!(
        "readers completed {} consistent rounds over {} epoch(s) in {:.3}s ({:.0} reads/s); \
         final epoch {} verified = {}",
        t.reads_total,
        t.epochs_observed,
        t.time_session_secs,
        t.reads_per_sec,
        report.final_epoch,
        report.final_verified,
    );
}

/// The durability crash matrix, in human-readable form. Divergence from
/// the reference trajectory or the oracle panics inside `recover_report`.
fn recover_experiment() {
    header("recover: WAL crash matrix, checkpoint folding, and load cost");
    let report = recover_report();
    println!(
        "{} over {} durable batch(es); every recovery oracle-verified",
        report.family, report.batches
    );
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10} {:>10}",
        "crash kind",
        "boundary",
        "records",
        "replayed",
        "repaired",
        "torn(B)",
        "total_bf",
        "t_rec(s)"
    );
    for r in &report.crash_matrix {
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10} {:>10.4}",
            r.kind,
            r.boundary,
            r.wal_records,
            r.replayed,
            r.repaired,
            r.discarded_bytes,
            r.total_butterflies,
            r.time_recover_secs,
        );
    }
    let f = &report.checkpoint_fold;
    println!(
        "fold: checkpoint every {} -> checkpoint lsn {}, replayed {}, skipped {} (of {})",
        f.checkpoint_every, f.checkpoint_lsn, f.replayed, f.skipped, f.batches
    );
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "graph", "|E|", "text(B)", "binary(B)", "ratio", "t_text(s)", "t_binary(s)"
    );
    for r in &report.load_cost {
        println!(
            "{:<10} {:>8} {:>10} {:>10} {:>8.2} {:>12.5} {:>12.5}",
            r.graph,
            r.num_edges,
            r.text_bytes,
            r.binary_bytes,
            r.text_bytes as f64 / r.binary_bytes as f64,
            r.time_text_load_secs,
            r.time_binary_load_secs,
        );
    }
    println!("(crash states matched the uninterrupted run at every boundary)");
}

/// The graph-versioning experiment, in human-readable form. Divergence
/// from the reference trajectory, a failed oracle, a broken diff law, or
/// a derive mismatch panics inside `versions_report`.
fn versions_experiment() {
    header("versions: named snapshots, time travel, diffs, and derive");
    let report = versions_report();
    println!(
        "{} over {} durable batch(es); every time travel oracle-verified",
        report.family, report.batches
    );
    println!(
        "{:<8} {:>6} {:>12} {:>18} {:>18}",
        "tag", "lsn", "total_bf", "tip_checksum_u", "tip_checksum_v"
    );
    for t in &report.tags {
        println!(
            "{:<8} {:>6} {:>12} {:>18x} {:>18x}",
            t.name, t.lsn, t.total_butterflies, t.tip_checksum_u, t.tip_checksum_v
        );
    }
    println!(
        "{:<8} {:>6} {:>9} {:>9} {:>9} {:>8} {:>10}",
        "travel", "lsn", "ckpt_lsn", "replayed", "skip_abv", "oracle", "t_open(s)"
    );
    for t in &report.time_travel {
        println!(
            "{:<8} {:>6} {:>9} {:>9} {:>9} {:>8} {:>10.4}",
            t.name,
            t.lsn,
            t.checkpoint_lsn,
            t.replayed,
            t.skipped_above,
            t.oracle_verified,
            t.time_open_secs,
        );
    }
    println!(
        "{:<16} {:>6} {:>8} {:>8} {:>10}",
        "diff law", "ops", "inserts", "deletes", "law_holds"
    );
    for d in &report.diff_law {
        println!(
            "{:<16} {:>6} {:>8} {:>8} {:>10}",
            format!("{} -> {}", d.from, d.to),
            d.ops,
            d.inserts,
            d.deletes,
            d.law_holds,
        );
    }
    let dc = &report.derive_checks;
    println!(
        "derive: subgraph {} edge(s), union {}, difference {} (all match brute force: {})",
        dc.subgraph_edges,
        dc.union_edges,
        dc.difference_edges,
        dc.subgraph_matches && dc.union_matches && dc.difference_matches,
    );
    println!("(every time-travel state matched the uninterrupted run and the oracle)");
}

/// `smoke`: the oracle-checked CI workload, in human-readable form.
fn smoke() {
    header("smoke: RECEIPT vs oracles on small deterministic graphs");
    let s = smoke_report();
    println!(
        "{:<14} {:>4} {:>6} {:>9} {:>12} {:>12}",
        "graph", "side", "|tips|", "theta_max", "butterflies", "matches_bup"
    );
    for r in &s.tip_runs {
        println!(
            "{:<14} {:>4} {:>6} {:>9} {:>12} {:>12}",
            r.graph,
            r.side.suffix(),
            r.num_vertices,
            r.theta_max,
            r.butterflies,
            r.matches_bup,
        );
    }
    println!(
        "{:<14} {:>6} {:>9} {:>18}",
        "graph", "|E|", "max_wing", "matches_sequential"
    );
    for r in &s.wing_runs {
        println!(
            "{:<14} {:>6} {:>9} {:>18}",
            r.graph, r.num_edges, r.max_wing, r.matches_sequential,
        );
    }
    let all_ok = s.tip_runs.iter().all(|r| r.matches_bup)
        && s.wing_runs.iter().all(|r| r.matches_sequential);
    assert!(all_ok, "smoke run diverged from the oracles");
    println!("all runs match their oracles");
}

/// Figures 10 and 11: self-relative parallel speedup. This container has a
/// single core, so wall-clock speedup cannot exceed ~1×; the run exercises
/// the full multi-threaded code paths and reports the (machine-independent)
/// determinism of the outputs alongside the timings. See EXPERIMENTS.md.
fn fig10_fig11(side: Side) {
    header(&format!(
        "Figure {}: parallel speedup peeling {side} (single-core container: see EXPERIMENTS.md)",
        if side == Side::U { 10 } else { 11 }
    ));
    let threads = [1usize, 2, 4];
    print!("{:<5}", "data");
    for t in threads {
        print!(" {:>10}", format!("T={t}"));
    }
    println!("   (speedup vs T=1)");
    for spec in bigraph::datasets::all() {
        let w = workload_by_label(&format!("{}{}", spec.name, side.suffix())).unwrap();
        let mut base = 0.0f64;
        print!("{:<5}", w.label());
        let mut tips1: Option<Vec<u64>> = None;
        for t in threads {
            let d = run_receipt(&w, &Config::default().with_threads(t));
            let secs = d.metrics.time_total().as_secs_f64();
            if t == 1 {
                base = secs;
                tips1 = Some(d.tip);
            } else {
                assert_eq!(
                    tips1.as_ref().unwrap(),
                    &d.tip,
                    "{}: tips changed with T={t}",
                    w.label()
                );
            }
            print!(" {:>10.2}", base / secs.max(1e-12));
        }
        println!();
    }
}

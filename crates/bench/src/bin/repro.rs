//! `repro` — regenerates every table and figure of the RECEIPT paper's
//! evaluation (§5) on the synthetic dataset analogs.
//!
//! ```text
//! cargo run --release -p receipt-bench --bin repro -- <experiment>
//!   table2   dataset statistics (sizes, butterflies, wedges, θ_max)
//!   table3   t / wedges / sync-rounds for pvBcnt, BUP, ParB, RECEIPT
//!   fig4     cumulative tip-number distribution (Tr analog, both sides)
//!   fig5     RECEIPT execution time vs partition count P
//!   fig6     ablation: wedges for RECEIPT / RECEIPT- / RECEIPT--
//!   fig7     ablation: time for RECEIPT / RECEIPT- / RECEIPT--
//!   fig8     wedge-traversal breakup (CD / FD / pvBcnt)
//!   fig9     execution-time breakup (CD / FD / pvBcnt)
//!   fig10    thread scaling, peeling U
//!   fig11    thread scaling, peeling V
//!   wing     §7 extension: parallel vs sequential wing decomposition
//!   projection  §1 motivation: unipartite-projection blowup
//!   all      everything above, in order
//! ```
//!
//! Outputs are plain text tables; `EXPERIMENTS.md` records one full run and
//! compares against the paper.

use bigraph::{stats, Side};
use receipt::{hierarchy, Config};
use receipt_bench::runner::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    match what {
        "table2" => table2(),
        "table3" => table3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6_fig7(true),
        "fig7" => fig6_fig7(false),
        "fig8" => fig8_fig9(true),
        "fig9" => fig8_fig9(false),
        "fig10" => fig10_fig11(Side::U),
        "fig11" => fig10_fig11(Side::V),
        "wing" => wing_extension(),
        "projection" => projection_motivation(),
        "all" => {
            table2();
            table3();
            fig4();
            fig5();
            fig6_fig7(true);
            fig6_fig7(false);
            fig8_fig9(true);
            fig8_fig9(false);
            fig10_fig11(Side::U);
            fig10_fig11(Side::V);
            wing_extension();
            projection_motivation();
        }
        other => {
            eprintln!("unknown experiment `{other}`; see --help in the module docs");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Table 2: dataset statistics, including θ_max for both sides (which
/// requires a full decomposition per side).
fn table2() {
    header("Table 2: bipartite dataset analogs (wedges/butterflies in millions)");
    println!(
        "{:<5} {:>8} {:>8} {:>9} {:>11} {:>10} {:>10} {:>10} {:>10}",
        "name", "|U|", "|V|", "|E|", "dU/dV", "bf(M)", "wedge(M)", "thmaxU", "thmaxV"
    );
    for spec in bigraph::datasets::all() {
        let g = spec.generate();
        let vu = g.view(Side::U);
        let vv = g.view(Side::V);
        let counts = butterfly::par_count_graph(&g);
        let wedges = stats::total_primary_wedges(vu) + stats::total_primary_wedges(vv);
        let cfg = Config::default();
        let tu = receipt::tip_decompose(&g, Side::U, &cfg);
        let tv = receipt::tip_decompose(&g, Side::V, &cfg);
        println!(
            "{:<5} {:>8} {:>8} {:>9} {:>11} {:>10} {:>10} {:>10} {:>10}",
            spec.name,
            g.num_u(),
            g.num_v(),
            g.num_edges(),
            format!(
                "{:.1}/{:.1}",
                stats::avg_primary_degree(vu),
                stats::avg_primary_degree(vv)
            ),
            millions(counts.total()),
            millions(wedges),
            tu.theta_max(),
            tv.theta_max(),
        );
    }
}

/// Table 3: execution time, wedges traversed, and synchronization rounds
/// for each algorithm. Also prints the `r = ∧_peel/∧_cnt` ratio of §5.2.2.
fn table3() {
    header("Table 3: t(s) / wedges(M) / sync rounds for all algorithms");
    println!(
        "{:<5} {:>9} {:>9} {:>9} {:>10} | {:>9} {:>9} {:>10} | {:>8} {:>8} | {:>9}",
        "data",
        "t_pvBcnt",
        "t_BUP",
        "t_ParB",
        "t_RECEIPT",
        "W_BUP",
        "W_RCPT",
        "W_pvBcnt",
        "rho_ParB",
        "rho_RCPT",
        "r"
    );
    for w in all_workloads() {
        let bup = run_bup(&w);
        let parb = run_parb(&w);
        let rcpt = run_receipt(&w, &Config::default());
        assert_eq!(bup.tip, parb.tip, "{}: ParB diverged", w.label());
        assert_eq!(bup.tip, rcpt.tip, "{}: RECEIPT diverged", w.label());
        let r = bup.wedges_peel as f64 / bup.wedges_count.max(1) as f64;
        println!(
            "{:<5} {:>9} {:>9} {:>9} {:>10} | {:>9} {:>9} {:>10} | {:>8} {:>8} | {:>9.1}",
            w.label(),
            secs(bup.time_count),
            secs(bup.time_peel),
            secs(parb.time_peel),
            secs(rcpt.metrics.time_total()),
            millions(bup.wedges_count + bup.wedges_peel),
            millions(rcpt.metrics.wedges_total()),
            millions(bup.wedges_count),
            parb.rounds,
            rcpt.metrics.sync_rounds,
            r,
        );
    }
}

/// Figure 4: cumulative tip-number distribution for the Tr analog.
fn fig4() {
    header("Figure 4: tip-number cumulative distribution (Tr analog)");
    for side in [Side::U, Side::V] {
        let w = workload_by_label(&format!("Tr{side}")).unwrap();
        let d = run_receipt(&w, &Config::default());
        let cdf = d.cumulative_distribution();
        println!("-- {} (theta_max = {}) --", w.label(), d.theta_max());
        println!("{:>12} {:>10}", "theta", "% <= theta");
        // Sample the curve at log-spaced thetas like the paper's log x-axis.
        let mut last_printed = f64::NEG_INFINITY;
        for &(theta, frac) in &cdf {
            let pct = frac * 100.0;
            if pct - last_printed >= 4.0 || theta == cdf.last().unwrap().0 {
                println!("{:>12} {:>10.2}", theta, pct);
                last_printed = pct;
            }
        }
        // Paper's observation: the overwhelming majority of vertices sit far
        // below θ_max.
        let theta_max = d.theta_max();
        let below = d
            .tip
            .iter()
            .filter(|&&t| (t as f64) < 0.03 * theta_max as f64)
            .count();
        println!(
            "   {:.2}% of vertices have theta < 3% of theta_max",
            100.0 * below as f64 / d.tip.len() as f64
        );
        // k-tip sanity: the densest tip is non-trivial.
        let top = hierarchy::vertices_with_tip_at_least(&d.tip, theta_max);
        println!("   {} vertices attain theta_max", top.len());
    }
}

/// Figure 5: execution time vs number of partitions P.
fn fig5() {
    header("Figure 5: RECEIPT execution time (s) vs P");
    let sweeps = [10usize, 25, 50, 100, 150, 250, 400];
    print!("{:<5}", "data");
    for p in sweeps {
        print!(" {:>8}", format!("P={p}"));
    }
    println!();
    for label in ["TrU", "OrU", "EnU", "LjU", "DeU", "ItU"] {
        let w = workload_by_label(label).unwrap();
        print!("{:<5}", w.label());
        for p in sweeps {
            let d = run_receipt(&w, &Config::default().with_partitions(p));
            print!(" {:>8}", secs(d.metrics.time_total()));
        }
        println!();
    }
}

/// Figures 6 and 7: effect of the workload optimizations. Values are
/// normalized against RECEIPT-- (no DGM, no HUC), as in the paper.
fn fig6_fig7(wedges: bool) {
    header(if wedges {
        "Figure 6: normalized wedge traversal (RECEIPT / RECEIPT- / RECEIPT--)"
    } else {
        "Figure 7: normalized execution time (RECEIPT / RECEIPT- / RECEIPT--)"
    });
    println!(
        "{:<5} {:>10} {:>10} {:>10}",
        "data", "RECEIPT", "RECEIPT-", "RECEIPT--"
    );
    for w in all_workloads() {
        let full = run_receipt(&w, &Config::default());
        let minus = run_receipt(&w, &Config::default().without_dgm());
        let mm = run_receipt(&w, &Config::default().baseline_variant());
        let val = |d: &receipt::TipDecomposition| {
            if wedges {
                d.metrics.wedges_total() as f64
            } else {
                d.metrics.time_total().as_secs_f64()
            }
        };
        let base = val(&mm).max(1e-12);
        println!(
            "{:<5} {:>10.3} {:>10.3} {:>10.3}",
            w.label(),
            val(&full) / base,
            val(&minus) / base,
            1.0
        );
    }
}

/// Figures 8 and 9: per-phase breakup of wedges / time.
fn fig8_fig9(wedges: bool) {
    header(if wedges {
        "Figure 8: wedge-traversal breakup (%)"
    } else {
        "Figure 9: execution-time breakup (%)"
    });
    println!(
        "{:<5} {:>10} {:>12} {:>12}",
        "data", "pvBcnt", "RECEIPT_CD", "RECEIPT_FD"
    );
    for w in all_workloads() {
        let d = run_receipt(&w, &Config::default());
        let (c, cd, fd) = if wedges {
            d.metrics.wedge_breakdown()
        } else {
            d.metrics.time_breakdown()
        };
        println!(
            "{:<5} {:>10.1} {:>12.1} {:>12.1}",
            w.label(),
            c * 100.0,
            cd * 100.0,
            fd * 100.0
        );
    }
}

/// §1 motivation: projecting a bipartite graph to run unipartite
/// decompositions blows up the edge count (quadratically in hub degrees).
fn projection_motivation() {
    header("§1 motivation: unipartite-projection blowup (|E_proj| / |E|)");
    println!(
        "{:<5} {:>10} {:>14} {:>10} {:>14} {:>10}",
        "name", "|E|", "projU edges", "blowupU", "projV edges", "blowupV"
    );
    for spec in bigraph::datasets::all() {
        let g = spec.generate();
        let pu = bigraph::projection::projected_edge_count(g.view(Side::U));
        let pv = bigraph::projection::projected_edge_count(g.view(Side::V));
        println!(
            "{:<5} {:>10} {:>14} {:>10.1} {:>14} {:>10.1}",
            spec.name,
            g.num_edges(),
            pu,
            pu as f64 / g.num_edges() as f64,
            pv,
            pv as f64 / g.num_edges() as f64,
        );
    }
}

/// §7 extension: RECEIPT-style parallel wing decomposition vs sequential
/// bottom-up edge peeling, on downscaled analogs (edge peeling is an order
/// of magnitude costlier than vertex peeling, as the paper notes).
fn wing_extension() {
    header("§7 extension: wing decomposition (sequential vs RECEIPT-style parallel)");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>9} {:>9} {:>8} {:>9}",
        "graph", "|E|", "t_seq(s)", "t_rcpt(s)", "work_seq", "work_rcpt", "rounds", "max_wing"
    );
    let workloads = [
        (
            "zipf-40k",
            bigraph::gen::zipf(6_000, 2_500, 40_000, 0.5, 1.0, 5),
        ),
        (
            "blocks",
            bigraph::gen::planted_bicliques(3_000, 3_000, 30, 8, 8, 15_000, 6),
        ),
        (
            "pa-30k",
            bigraph::gen::preferential_attachment(10_000, 4_000, 3, 7),
        ),
    ];
    for (name, g) in &workloads {
        let view = g.view(Side::U);
        let t0 = std::time::Instant::now();
        let seq = receipt::wing::wing_decompose(view, 4);
        let t_seq = t0.elapsed();
        let t1 = std::time::Instant::now();
        let (par, metrics) = receipt::wing_parallel::receipt_wing_decompose(view, 50, 4);
        let t_par = t1.elapsed();
        assert_eq!(seq.wing, par.wing, "{name}: parallel wing diverged");
        println!(
            "{:<10} {:>8} {:>10} {:>10} {:>9} {:>9} {:>8} {:>9}",
            name,
            g.num_edges(),
            secs(t_seq),
            secs(t_par),
            millions(seq.work),
            millions(par.work),
            metrics.sync_rounds,
            par.max_wing(),
        );
    }
    println!("(work in millions of intersection steps; wing numbers verified equal)");
}

/// Figures 10 and 11: self-relative parallel speedup. This container has a
/// single core, so wall-clock speedup cannot exceed ~1×; the run exercises
/// the full multi-threaded code paths and reports the (machine-independent)
/// determinism of the outputs alongside the timings. See EXPERIMENTS.md.
fn fig10_fig11(side: Side) {
    header(&format!(
        "Figure {}: parallel speedup peeling {side} (single-core container: see EXPERIMENTS.md)",
        if side == Side::U { 10 } else { 11 }
    ));
    let threads = [1usize, 2, 4];
    print!("{:<5}", "data");
    for t in threads {
        print!(" {:>10}", format!("T={t}"));
    }
    println!("   (speedup vs T=1)");
    for spec in bigraph::datasets::all() {
        let w = workload_by_label(&format!("{}{}", spec.name, side.suffix())).unwrap();
        let mut base = 0.0f64;
        print!("{:<5}", w.label());
        let mut tips1: Option<Vec<u64>> = None;
        for t in threads {
            let d = run_receipt(&w, &Config::default().with_threads(t));
            let secs = d.metrics.time_total().as_secs_f64();
            if t == 1 {
                base = secs;
                tips1 = Some(d.tip);
            } else {
                assert_eq!(
                    tips1.as_ref().unwrap(),
                    &d.tip,
                    "{}: tips changed with T={t}",
                    w.label()
                );
            }
            print!(" {:>10.2}", base / secs.max(1e-12));
        }
        println!();
    }
}

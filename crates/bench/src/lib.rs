//! Shared plumbing for the experiment harness (see `src/bin/repro.rs` and
//! the criterion benches under `benches/`).

#![forbid(unsafe_code)]

pub mod report;
pub mod runner;

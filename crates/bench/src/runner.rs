//! Shared experiment plumbing: dataset instantiation, algorithm runners,
//! structured row builders, and row formatting for the `repro` harness.

use crate::report::{
    CheckpointFoldRow, CrashRow, DeriveChecksRow, DiffLawRow, LoadCostRow, RecoverExperimentReport,
    SchedulerReport, ServeBatchRow, ServeExperimentReport, ServeTelemetry, SmokeReport,
    SmokeTipRun, SmokeWingRun, Table2Row, Table3Row, TimeTravelRow, VersionTagRow,
    VersionsExperimentReport, WingRow,
};
use bigraph::{datasets::AnalogSpec, stats, BipartiteCsr, Side};
use rayon::prelude::*;
use receipt::engine::{EngineOptions, StreamEngine};
use receipt::{bup::BaselineResult, Config, TipDecomposition};
use std::time::Duration;

/// A dataset instantiated for one peeled side (the paper's `ItU`, `ItV`, …
/// naming).
pub struct Workload {
    pub spec: AnalogSpec,
    pub side: Side,
    pub graph: BipartiteCsr,
}

impl Workload {
    pub fn label(&self) -> String {
        format!("{}{}", self.spec.name, self.side.suffix())
    }
}

/// Instantiates every analog × side pair, in Table 2/3 order.
pub fn all_workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    for spec in bigraph::datasets::all() {
        let graph = spec.generate();
        for side in [Side::U, Side::V] {
            out.push(Workload {
                spec,
                side,
                graph: graph.clone(),
            });
        }
    }
    out
}

/// Instantiates a single named workload, e.g. `TrU` or `it v`.
pub fn workload_by_label(label: &str) -> Option<Workload> {
    let label = label.trim();
    if label.len() < 3 {
        return None;
    }
    let (name, side) = label.split_at(label.len() - 1);
    let side = match side.chars().next()?.to_ascii_uppercase() {
        'U' => Side::U,
        'V' => Side::V,
        _ => return None,
    };
    let spec = bigraph::datasets::by_name(name.trim())?;
    Some(Workload {
        spec,
        side,
        graph: spec.generate(),
    })
}

/// One Table 3 style measurement of RECEIPT on a workload.
pub fn run_receipt(w: &Workload, config: &Config) -> TipDecomposition {
    receipt::tip_decompose(&w.graph, w.side, config)
}

pub fn run_bup(w: &Workload) -> BaselineResult {
    receipt::bup::bup_decompose(&w.graph, w.side, 4)
}

pub fn run_parb(w: &Workload) -> BaselineResult {
    receipt::parb::parb_decompose(&w.graph, w.side, 4)
}

/// FNV-1a over little-endian `u64` words — the digest behind
/// `WingRow::wing_checksum` and `DynamicRow::tip_checksum`
/// (thread-count-invariant decomposition id). Canonical implementation
/// lives with the dynamic-maintenance layer.
pub use receipt::dynamic::fnv1a_u64;

/// Snapshot of the vendored pool's work-stealing counters, shaped for the
/// JSON report. Taken after an experiment ran, so it covers the whole
/// process's scheduling activity.
pub fn scheduler_report() -> SchedulerReport {
    let stats = rayon::scheduler_stats();
    SchedulerReport {
        schema_version: receipt::report::SCHEMA_VERSION,
        threads: rayon::current_num_threads(),
        workers_spawned: stats.workers_spawned,
        jobs_submitted: stats.jobs_submitted,
        tasks_executed: stats.tasks_executed,
        helper_executed: stats.helper_executed,
        per_worker_executed: stats.per_worker_executed,
        injector_pushes: stats.injector_pushes,
        injector_pops: stats.injector_pops,
        steals_attempted: stats.steals_attempted,
        steals_succeeded: stats.steals_succeeded,
        idle_timeouts: stats.idle_timeouts,
    }
}

/// Drives a deterministic fork-join-plus-sort workload through the pool so
/// a following [`scheduler_report`] reflects real nested-parallel
/// scheduling even when an experiment's graphs are small (the smoke
/// workload is seconds-scale by design). At budget 1 every construct here
/// takes the inline fast path — no jobs are submitted, so the `t=1`
/// zero-steal CI gate still observes a quiet scheduler.
pub fn scheduler_exercise() {
    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    // ~50µs of hashing per leaf keeps owners busy long enough for thieves
    // to wake and steal the siblings off their deques.
    fn leaf(x: u64) -> u64 {
        (0..20_000u64).fold(x, |acc, i| mix(acc ^ i))
    }
    fn tree(depth: u32, x: u64) -> u64 {
        if depth == 0 {
            return leaf(x);
        }
        let (a, b) = rayon::join(|| tree(depth - 1, 2 * x), || tree(depth - 1, 2 * x + 1));
        a ^ b
    }
    let mut v: Vec<u64> = (0..200_000u64).map(mix).collect();
    v.par_sort_unstable();
    std::hint::black_box(tree(8, 1));
    std::hint::black_box(v);
}

/// Seconds with 3 decimals, matching the paper's `t(s)` column.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Billions (the paper reports wedges in billions); here workloads are
/// laptop-scale so we print millions.
pub fn millions(x: u64) -> String {
    format!("{:.2}", x as f64 / 1e6)
}

// ---------------------------------------------------------------------------
// Structured row builders — the single execution path behind both the text
// tables and `repro <exp> --json`.
// ---------------------------------------------------------------------------

/// Table 2 rows: dataset statistics, including θ_max for both sides.
pub fn table2_rows() -> Vec<Table2Row> {
    bigraph::datasets::all()
        .iter()
        .map(|spec| {
            let g = spec.generate();
            let vu = g.view(Side::U);
            let vv = g.view(Side::V);
            let counts = butterfly::par_count_graph(&g);
            let wedges = stats::total_primary_wedges(vu) + stats::total_primary_wedges(vv);
            let cfg = Config::default();
            let tu = receipt::tip_decompose(&g, Side::U, &cfg);
            let tv = receipt::tip_decompose(&g, Side::V, &cfg);
            Table2Row {
                name: spec.name.to_string(),
                num_u: g.num_u(),
                num_v: g.num_v(),
                num_edges: g.num_edges(),
                avg_degree_u: stats::avg_primary_degree(vu),
                avg_degree_v: stats::avg_primary_degree(vv),
                butterflies: counts.total(),
                wedges,
                theta_max_u: tu.theta_max(),
                theta_max_v: tv.theta_max(),
            }
        })
        .collect()
}

/// Table 3 rows. Panics if any algorithm diverges from BUP — the
/// equivalence is the experiment's premise.
pub fn table3_rows() -> Vec<Table3Row> {
    all_workloads()
        .iter()
        .map(|w| {
            let bup = run_bup(w);
            let parb = run_parb(w);
            let rcpt = run_receipt(w, &Config::default());
            assert_eq!(bup.tip, parb.tip, "{}: ParB diverged", w.label());
            assert_eq!(bup.tip, rcpt.tip, "{}: RECEIPT diverged", w.label());
            Table3Row {
                workload: w.label(),
                time_pvbcnt_secs: bup.time_count.as_secs_f64(),
                time_bup_secs: bup.time_peel.as_secs_f64(),
                time_parb_secs: parb.time_peel.as_secs_f64(),
                time_receipt_secs: rcpt.metrics.time_total().as_secs_f64(),
                wedges_bup: bup.wedges_count + bup.wedges_peel,
                wedges_receipt: rcpt.metrics.wedges_total(),
                wedges_pvbcnt: bup.wedges_count,
                rounds_parb: parb.rounds,
                rounds_receipt: rcpt.metrics.sync_rounds,
                peel_to_count_ratio: bup.wedges_peel as f64 / bup.wedges_count.max(1) as f64,
                tips_match: true,
            }
        })
        .collect()
}

/// The §7 wing-extension workloads (downscaled: edge peeling is an order
/// of magnitude costlier than vertex peeling).
pub fn wing_workloads() -> Vec<(&'static str, BipartiteCsr)> {
    vec![
        (
            "zipf-40k",
            bigraph::gen::zipf(6_000, 2_500, 40_000, 0.5, 1.0, 5),
        ),
        (
            "blocks",
            bigraph::gen::planted_bicliques(3_000, 3_000, 30, 8, 8, 15_000, 6),
        ),
        (
            "pa-30k",
            bigraph::gen::preferential_attachment(10_000, 4_000, 3, 7),
        ),
    ]
}

/// Wing-extension rows. Panics if the parallel wing numbers diverge from
/// the sequential peel.
pub fn wing_rows() -> Vec<WingRow> {
    wing_workloads()
        .iter()
        .map(|(name, g)| {
            let view = g.view(Side::U);
            let t0 = std::time::Instant::now();
            let seq = receipt::wing::wing_decompose(view, 4);
            let time_seq = t0.elapsed();
            let t1 = std::time::Instant::now();
            let (par, metrics) = receipt::wing_parallel::receipt_wing_decompose(view, 50, 4);
            let time_par = t1.elapsed();
            assert_eq!(seq.wing, par.wing, "{name}: parallel wing diverged");
            WingRow {
                graph: name.to_string(),
                num_edges: g.num_edges(),
                time_seq_secs: time_seq.as_secs_f64(),
                time_par_secs: time_par.as_secs_f64(),
                work_seq: seq.work,
                work_par: par.work,
                sync_rounds: metrics.sync_rounds,
                max_wing: par.max_wing(),
                wings_match: true,
                wing_checksum: fnv1a_u64(&par.wing),
            }
        })
        .collect()
}

/// The `repro dynamic` workloads: downscaled graph families with a seeded
/// insert/delete schedule each. `(family, graph, batches, ops_per_batch,
/// schedule seed, dirty threshold)` — thresholds are chosen so the rows
/// exercise both the seeded re-peel and the full-recompute fallback.
pub fn dynamic_workloads() -> Vec<(&'static str, BipartiteCsr, usize, usize, u64, f64)> {
    vec![
        (
            "zipf-2k",
            bigraph::gen::zipf(700, 400, 2_000, 0.5, 0.9, 31),
            4,
            120,
            131,
            0.2,
        ),
        (
            "blocks-1k",
            bigraph::gen::planted_bicliques(400, 400, 8, 5, 5, 800, 33),
            4,
            100,
            133,
            0.01,
        ),
        (
            "pa-2k",
            bigraph::gen::preferential_attachment(800, 500, 3, 35),
            4,
            120,
            135,
            0.2,
        ),
    ]
}

/// `repro dynamic` rows: drive each family's schedule through a verifying
/// [`StreamEngine`] — the same epoch-snapshot layer behind `tipdecomp
/// stream`/`serve` — and price every batch against the from-scratch
/// pipeline (parallel recount + BUP re-peel on both sides) that the
/// engine's `verify` mode already runs. Panics if the incremental state
/// diverges from the from-scratch oracles — the differential equality is
/// the experiment's premise, exactly like `table3_rows`.
pub fn dynamic_rows() -> Vec<crate::report::DynamicRow> {
    let mut rows = Vec::new();
    for (family, graph, batches, ops, seed, dirty_threshold) in dynamic_workloads() {
        let schedule = bigraph::dynamic::seeded_schedule(&graph, batches, ops, seed);
        let engine = StreamEngine::new(
            graph,
            EngineOptions {
                config: Config::default().with_partitions(8),
                dirty_threshold,
                verify: true,
                ..EngineOptions::default()
            },
        );
        for (batch_idx, batch) in schedule.iter().enumerate() {
            let outcome = engine
                .apply_batch(batch)
                .unwrap_or_else(|e| panic!("{family} batch {batch_idx}: {e}"));
            let scratch = outcome.scratch.as_ref().expect("verifying engine");
            let update = outcome.update(Side::U);
            let snap = &outcome.snapshot;
            rows.push(crate::report::DynamicRow {
                family: family.to_string(),
                batch: batch_idx,
                inserted: outcome.delta.application.inserted.len(),
                deleted: outcome.delta.application.deleted.len(),
                butterflies_gained: outcome.delta.gained,
                butterflies_lost: outcome.delta.lost,
                total_butterflies: snap.total_butterflies(),
                update_work: outcome.delta.work,
                recount_work: scratch.counts.wedges_traversed + scratch.peel_wedges,
                policy: update.policy,
                dirty_fraction: update.dirty_fraction,
                theta_max: snap.theta_max(Side::U),
                tip_checksum: snap.tip_checksum(Side::U),
                counts_match_recount: true,
                tips_match_bup: true,
                time_update_secs: outcome.time.as_secs_f64(),
                time_recount_secs: outcome.time_verify.expect("verifying engine").as_secs_f64(),
            });
        }
    }
    rows
}

/// `repro serve`: mixed read/update throughput against one in-process
/// [`StreamEngine`]. A writer thread applies the zipf family's seeded
/// schedule (every batch differentially verified before publication)
/// while `readers` threads loop grabbing the published snapshot and
/// answering point queries from it, each round checked for internal
/// consistency with that snapshot's epoch. Panics on any divergence.
pub fn serve_report(readers: usize) -> ServeExperimentReport {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let (family, graph, batches, ops, seed, dirty_threshold) = dynamic_workloads().remove(0);
    let schedule = bigraph::dynamic::seeded_schedule(&graph, batches, ops, seed);
    let engine = StreamEngine::new(
        graph,
        EngineOptions {
            config: Config::default().with_partitions(8),
            dirty_threshold,
            verify: true,
            ..EngineOptions::default()
        },
    );

    let stop = AtomicBool::new(false);
    let inconsistencies = AtomicU64::new(0);
    let t0 = std::time::Instant::now();
    let mut rows: Vec<ServeBatchRow> = Vec::with_capacity(schedule.len());
    let mut reads_per_reader: Vec<u64> = vec![0; readers];
    let mut epochs_observed = std::collections::BTreeSet::new();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let engine = &engine;
                let stop = &stop;
                let inconsistencies = &inconsistencies;
                scope.spawn(move || {
                    let mut reads = 0u64;
                    let mut seen = std::collections::BTreeSet::new();
                    let mut probe = r as u32;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = engine.snapshot();
                        seen.insert(snap.epoch());
                        // Each round answers the serve-mode point-query mix
                        // from ONE snapshot; the invariants tie every
                        // answer to that snapshot's single epoch.
                        let total = snap.total_butterflies();
                        let nu = snap.num_side(Side::U) as u32;
                        let sum_u: u64 = snap.counts_side(Side::U).iter().sum();
                        let tip_ok = snap.tip(Side::U, probe % nu).is_some();
                        let top = snap.top_k_densest(Side::U, 4);
                        let top_ok = top.first().is_none_or(|d| d.tip == snap.theta_max(Side::U));
                        if sum_u != 2 * total || !tip_ok || !top_ok {
                            inconsistencies.fetch_add(1, Ordering::Relaxed);
                        }
                        probe = probe.wrapping_add(7);
                        reads += 1;
                    }
                    (reads, seen)
                })
            })
            .collect();

        for (batch_idx, batch) in schedule.iter().enumerate() {
            let outcome = engine
                .apply_batch(batch)
                .unwrap_or_else(|e| panic!("{family} batch {batch_idx}: {e}"));
            let snap = &outcome.snapshot;
            rows.push(ServeBatchRow {
                epoch: outcome.epoch,
                inserted: outcome.delta.application.inserted.len(),
                deleted: outcome.delta.application.deleted.len(),
                butterflies_gained: outcome.delta.gained,
                butterflies_lost: outcome.delta.lost,
                total_butterflies: snap.total_butterflies(),
                theta_max_u: snap.theta_max(Side::U),
                theta_max_v: snap.theta_max(Side::V),
                tip_checksum_u: snap.tip_checksum(Side::U),
                tip_checksum_v: snap.tip_checksum(Side::V),
                time_update_secs: outcome.time.as_secs_f64(),
                time_verify_secs: outcome.time_verify.expect("verifying engine").as_secs_f64(),
            });
        }
        stop.store(true, Ordering::Relaxed);
        for (r, handle) in handles.into_iter().enumerate() {
            let (reads, seen) = handle.join().expect("reader thread");
            reads_per_reader[r] = reads;
            epochs_observed.extend(seen);
        }
    });
    let time_session = t0.elapsed().as_secs_f64();

    let final_verified = engine
        .verify_against_scratch()
        .map(|_| true)
        .unwrap_or_else(|e| panic!("{family} final verify: {e}"));
    let bad = inconsistencies.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(bad, 0, "{family}: {bad} inconsistent reader round(s)");
    let reads_total: u64 = reads_per_reader.iter().sum();
    ServeExperimentReport {
        family: family.to_string(),
        readers,
        batches: rows,
        final_verified,
        final_epoch: engine.epoch(),
        final_total_butterflies: engine.snapshot().total_butterflies(),
        serve_telemetry: Some(ServeTelemetry {
            reads_total,
            reads_per_reader,
            epochs_observed: epochs_observed.len(),
            inconsistencies: bad,
            time_session_secs: time_session,
            reads_per_sec: reads_total as f64 / time_session.max(1e-9),
        }),
    }
}

/// A unique scratch directory for the recover experiment (wiped first so a
/// rerun starts clean).
fn recover_scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("repro_recover_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
    dir
}

/// Clones the reference store into `dir` with its WAL truncated to
/// `wal_len` bytes — the on-disk picture a crash at that point leaves.
fn clone_store_cut(reference: &std::path::Path, dir: &std::path::Path, wal_len: u64) {
    use receipt::wal::Store;
    for path in [
        Store::snapshot_path(reference, 0),
        Store::meta_path(reference),
    ] {
        let name = path.file_name().unwrap();
        std::fs::copy(&path, dir.join(name)).unwrap_or_else(|e| panic!("copy {name:?}: {e}"));
    }
    let wal = std::fs::read(Store::wal_path(reference)).expect("reference wal");
    assert!(wal_len as usize <= wal.len(), "cut past end of wal");
    std::fs::write(Store::wal_path(dir), &wal[..wal_len as usize]).expect("write cut wal");
}

/// `repro recover`: the durability crash matrix (`FORMATS.md` §4). An
/// uninterrupted durable run over a seeded schedule yields the reference
/// trajectory and a WAL with one record per batch; for every batch
/// boundary the store is cloned with the WAL cut there — at the exact
/// record end for the two kill kinds (identical bytes; the post-batch
/// state must come back) and mid-record for `torn-append` (the tail must
/// be repaired and the previous batch's state come back). Every recovery
/// is oracle-verified. Panics on any mismatch.
pub fn recover_report() -> RecoverExperimentReport {
    use receipt::wal::{Store, Wal};

    let (family, graph, batches, ops, seed, dirty_threshold) = dynamic_workloads().remove(0);
    let schedule = bigraph::dynamic::seeded_schedule(&graph, batches, ops, seed);
    let options = || EngineOptions {
        config: Config::default().with_partitions(8),
        dirty_threshold,
        verify: false,
        ..EngineOptions::default()
    };

    // Reference run: no checkpoint folding, so the WAL keeps every record.
    let ref_dir = recover_scratch("reference");
    let (engine, info) = StreamEngine::open_durable(&ref_dir, Some(graph.clone()), options(), 0)
        .unwrap_or_else(|e| panic!("{family} reference init: {e}"));
    assert!(info.created);
    // reference[b] = (total butterflies, tip checksums) after batch b.
    let state_of = |snap: &receipt::engine::EngineSnapshot| {
        (
            snap.total_butterflies(),
            snap.tip_checksum(Side::U),
            snap.tip_checksum(Side::V),
        )
    };
    let mut reference = vec![state_of(&engine.snapshot())];
    for (batch_idx, batch) in schedule.iter().enumerate() {
        let outcome = engine
            .apply_batch(batch)
            .unwrap_or_else(|e| panic!("{family} batch {batch_idx}: {e}"));
        reference.push(state_of(&outcome.snapshot));
    }
    let spans = Wal::scan(Store::wal_path(&ref_dir)).expect("reference wal scans clean");
    assert_eq!(spans.len(), schedule.len(), "one record per batch");

    let mut crash_matrix = Vec::new();
    let recover_into =
        |dir: &std::path::Path| -> (StreamEngine, receipt::engine::RecoveryInfo, f64) {
            let t0 = std::time::Instant::now();
            let (engine, info) = StreamEngine::open_durable(dir, None, options(), 0)
                .unwrap_or_else(|e| panic!("recovery in {} failed: {e}", dir.display()));
            let secs = t0.elapsed().as_secs_f64();
            engine
                .verify_against_scratch()
                .unwrap_or_else(|e| panic!("oracle after recovery in {}: {e}", dir.display()));
            (engine, info, secs)
        };
    for (b, span) in spans.iter().enumerate() {
        let boundary = b + 1; // = span.lsn
        let record_end = span.offset + span.len;
        // The two kill kinds leave identical bytes (the record is fully
        // durable); both must land on the post-batch state.
        for kind in ["kill-after-append", "kill-after-apply"] {
            let dir = recover_scratch(&format!("{kind}-{boundary}"));
            clone_store_cut(&ref_dir, &dir, record_end);
            let (engine, info, secs) = recover_into(&dir);
            let got = state_of(&engine.snapshot());
            assert_eq!(got, reference[boundary], "{kind} @ {boundary}");
            crash_matrix.push(CrashRow {
                kind: kind.to_string(),
                boundary,
                wal_records: info.wal_records,
                replayed: info.replayed,
                repaired: info.repaired.is_some(),
                discarded_bytes: 0,
                total_butterflies: got.0,
                tip_checksum_u: got.1,
                tip_checksum_v: got.2,
                matches_reference: true,
                oracle_verified: true,
                time_recover_secs: secs,
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
        // Torn append: the crash hit mid-write, leaving a partial record.
        // Recovery truncates it and lands on the previous batch's state.
        let torn = span.len - 5;
        let dir = recover_scratch(&format!("torn-append-{boundary}"));
        clone_store_cut(&ref_dir, &dir, span.offset + torn);
        let (engine, info, secs) = recover_into(&dir);
        let got = state_of(&engine.snapshot());
        assert_eq!(got, reference[boundary - 1], "torn-append @ {boundary}");
        let repair = info.repaired.expect("torn tail must be repaired");
        assert_eq!(repair.discarded_bytes, torn, "torn bytes discarded");
        crash_matrix.push(CrashRow {
            kind: "torn-append".to_string(),
            boundary,
            wal_records: info.wal_records,
            replayed: info.replayed,
            repaired: true,
            discarded_bytes: repair.discarded_bytes,
            total_butterflies: got.0,
            tip_checksum_u: got.1,
            tip_checksum_v: got.2,
            matches_reference: true,
            oracle_verified: true,
            time_recover_secs: secs,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&ref_dir);

    // Checkpoint folding: same schedule with a fold every 2 batches; only
    // the post-fold tail replays, and the final state still matches.
    let fold_every = 2u64;
    let fold_dir = recover_scratch("fold");
    let (engine, _) =
        StreamEngine::open_durable(&fold_dir, Some(graph.clone()), options(), fold_every)
            .unwrap_or_else(|e| panic!("{family} fold init: {e}"));
    for (batch_idx, batch) in schedule.iter().enumerate() {
        engine
            .apply_batch(batch)
            .unwrap_or_else(|e| panic!("{family} fold batch {batch_idx}: {e}"));
    }
    drop(engine);
    let (engine, info, fold_secs) = recover_into(&fold_dir);
    let got = state_of(&engine.snapshot());
    assert_eq!(got, reference[schedule.len()], "fold recovery");
    let expected_ckpt = (schedule.len() as u64 / fold_every) * fold_every;
    assert_eq!(info.checkpoint_lsn, expected_ckpt);
    let checkpoint_fold = CheckpointFoldRow {
        checkpoint_every: fold_every,
        batches: schedule.len(),
        checkpoint_lsn: info.checkpoint_lsn,
        replayed: info.replayed,
        skipped: info.skipped,
        matches_reference: true,
        oracle_verified: true,
        time_recover_secs: fold_secs,
    };
    let _ = std::fs::remove_dir_all(&fold_dir);

    // Load cost: the same graphs on disk as text vs binary image.
    let mut load_cost = Vec::new();
    let io_dir = recover_scratch("loadcost");
    for (name, g, ..) in dynamic_workloads() {
        let text_path = io_dir.join(format!("{name}.tsv"));
        let bin_path = io_dir.join(format!("{name}.bgr"));
        bigraph::io::write_graph_path(&g, &text_path).expect("write text");
        bigraph::binfmt::write_binary_graph_path(&bin_path, &g).expect("write binary");
        let t0 = std::time::Instant::now();
        let from_text = bigraph::io::read_graph_path(&text_path).expect("read text");
        let time_text = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let from_bin = bigraph::binfmt::read_binary_graph_path(&bin_path).expect("read binary");
        let time_bin = t0.elapsed().as_secs_f64();
        let identical = from_text.edges().eq(g.edges()) && from_bin.graph.edges().eq(g.edges());
        assert!(identical, "{name}: load round trip diverged");
        load_cost.push(LoadCostRow {
            graph: name.to_string(),
            num_edges: g.num_edges(),
            text_bytes: std::fs::metadata(&text_path).unwrap().len(),
            binary_bytes: std::fs::metadata(&bin_path).unwrap().len(),
            round_trip_identical: identical,
            time_text_load_secs: time_text,
            time_binary_load_secs: time_bin,
        });
    }
    let _ = std::fs::remove_dir_all(&io_dir);

    RecoverExperimentReport {
        family: family.to_string(),
        batches: schedule.len(),
        crash_matrix,
        checkpoint_fold,
        load_cost,
        all_recoveries_verified: true,
    }
}

/// `repro versions`: the graph-versioning experiment (`VERSIONING.md`).
/// The zipf dynamic schedule streams through a durable store with
/// checkpoint folding disabled (every tag stays serviceable, §3.4); a
/// version is tagged at every batch boundary including the `v0` base.
/// Every tag is then time-travelled to with `open_at` and the state is
/// required to equal the reference trajectory AND pass the from-scratch
/// oracle; the diff law `apply(at(a), diff(a, b)) = at(b)` (§5.3) is
/// checked on every adjacent pair plus the full span; and the derive
/// operators are compared against brute-force set algebra (§6). Panics
/// on any mismatch.
pub fn versions_report() -> VersionsExperimentReport {
    use receipt::version::VersionStore;
    use std::collections::BTreeSet;

    let (family, graph, batches, ops, seed, dirty_threshold) = dynamic_workloads().remove(0);
    let schedule = bigraph::dynamic::seeded_schedule(&graph, batches, ops, seed);
    let options = || EngineOptions {
        config: Config::default().with_partitions(8),
        dirty_threshold,
        verify: false,
        ..EngineOptions::default()
    };

    // Streaming run: checkpoint_every = 0 so the WAL keeps every record
    // and every tag stays inside the §3.4 serviceability window.
    let dir = recover_scratch("versions");
    let (engine, info) = StreamEngine::open_durable(&dir, Some(graph.clone()), options(), 0)
        .unwrap_or_else(|e| panic!("{family} versions init: {e}"));
    assert!(info.created);
    let state_of = |snap: &receipt::engine::EngineSnapshot| {
        (
            snap.total_butterflies(),
            snap.tip_checksum(Side::U),
            snap.tip_checksum(Side::V),
        )
    };
    // Tag v0 at the base, then v{b} after batch b; keep the reference
    // trajectory (state + materialized edge set) alongside.
    let mut store = VersionStore::open(&dir).expect("version store opens");
    let mut reference = Vec::new();
    let mut tag_at_boundary = |engine: &StreamEngine, boundary: usize| {
        let snapshot = engine.snapshot();
        let name = format!("v{boundary}");
        store
            .tag_snapshot(&name, engine.end_lsn().unwrap_or(0), &snapshot)
            .unwrap_or_else(|e| panic!("tag {name}: {e}"));
        let edges: BTreeSet<(u32, u32)> = snapshot.graph().edges().collect();
        reference.push((state_of(&snapshot), edges));
    };
    tag_at_boundary(&engine, 0);
    for (batch_idx, batch) in schedule.iter().enumerate() {
        engine
            .apply_batch(batch)
            .unwrap_or_else(|e| panic!("{family} batch {batch_idx}: {e}"));
        tag_at_boundary(&engine, batch_idx + 1);
    }
    drop(engine);

    // Reload the metadata strictly — what the rows report is what a fresh
    // process would read back, not the in-memory builder.
    let store = VersionStore::open(&dir).expect("versions.meta round trips");
    let tags: Vec<VersionTagRow> = store
        .list()
        .iter()
        .map(|r| VersionTagRow {
            name: r.name.clone(),
            lsn: r.lsn,
            total_butterflies: r.total_butterflies,
            tip_checksum_u: r.tip_checksum_u,
            tip_checksum_v: r.tip_checksum_v,
        })
        .collect();
    assert_eq!(tags.len(), schedule.len() + 1, "one tag per boundary");

    // Time travel: open every tag and hold the engines for the diff-law
    // and derive checks below. Each state must match the trajectory and
    // pass the from-scratch oracle — the experiment's acceptance bar.
    let mut time_travel = Vec::new();
    let mut states = Vec::new();
    for (boundary, row) in tags.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let (historic, tt) = StreamEngine::open_at(&dir, &row.name, options())
            .unwrap_or_else(|e| panic!("open_at {}: {e}", row.name));
        let secs = t0.elapsed().as_secs_f64();
        let got = state_of(&historic.snapshot());
        assert_eq!(got, reference[boundary].0, "time travel to {}", row.name);
        let edges: BTreeSet<(u32, u32)> = historic.snapshot().graph().edges().collect();
        assert_eq!(edges, reference[boundary].1, "{} edge set", row.name);
        historic
            .verify_against_scratch()
            .unwrap_or_else(|e| panic!("oracle at {}: {e}", row.name));
        time_travel.push(TimeTravelRow {
            name: row.name.clone(),
            lsn: row.lsn,
            checkpoint_lsn: tt.checkpoint_lsn,
            replayed: tt.replayed,
            skipped_above: tt.skipped_above,
            matches_reference: true,
            oracle_verified: true,
            time_open_secs: secs,
        });
        states.push(historic);
    }

    // Diff law (§5.3): every adjacent pair, plus the full span v0 → vN.
    let mut pairs: Vec<(usize, usize)> = (1..tags.len()).map(|b| (b - 1, b)).collect();
    pairs.push((0, tags.len() - 1));
    let mut diff_law = Vec::new();
    for (ia, ib) in pairs {
        let (a, b) = (&tags[ia].name, &tags[ib].name);
        let diff = store
            .diff(a, b)
            .unwrap_or_else(|e| panic!("diff({a}, {b}): {e}"));
        let inserts = diff
            .iter()
            .filter(|op| matches!(op, bigraph::EdgeOp::Insert(..)))
            .count();
        let replay = StreamEngine::new(states[ia].snapshot().graph().clone(), options());
        if !diff.is_empty() {
            replay
                .apply_batch(&diff)
                .unwrap_or_else(|e| panic!("apply diff({a}, {b}): {e}"));
        }
        let got = state_of(&replay.snapshot());
        assert_eq!(got, reference[ib].0, "diff law {a} -> {b}");
        let edges: BTreeSet<(u32, u32)> = replay.snapshot().graph().edges().collect();
        assert_eq!(edges, reference[ib].1, "diff law {a} -> {b} edge set");
        diff_law.push(DiffLawRow {
            from: a.clone(),
            to: b.clone(),
            ops: diff.len(),
            inserts,
            deletes: diff.len() - inserts,
            law_holds: true,
        });
    }

    // Derive operators (§6) on the first and last tagged states, checked
    // against brute-force set algebra.
    let ga = states[0].snapshot().graph().clone();
    let gb = states[tags.len() - 1].snapshot().graph().clone();
    let ea: BTreeSet<(u32, u32)> = ga.edges().collect();
    let eb: BTreeSet<(u32, u32)> = gb.edges().collect();

    // Compare the induced subgraph in *global* coordinates: induction
    // reindexes both sides, so map its edges back through the id maps.
    let subset: Vec<u32> = (0..ga.num_u() as u32).step_by(3).collect();
    let keep: BTreeSet<u32> = subset.iter().copied().collect();
    let induced = bigraph::InducedGraph::new(ga.view(Side::U), &subset);
    let brute_subgraph: BTreeSet<(u32, u32)> = ea
        .iter()
        .copied()
        .filter(|&(u, _)| keep.contains(&u))
        .collect();
    let got_subgraph: BTreeSet<(u32, u32)> = induced
        .csr()
        .edges()
        .map(|(u, v)| (induced.primary_global(u), induced.secondary_global(v)))
        .collect();
    assert_eq!(
        got_subgraph, brute_subgraph,
        "induced subgraph vs brute force"
    );

    let union = bigraph::derive::union(&ga, &gb);
    let brute_union: BTreeSet<(u32, u32)> = ea.union(&eb).copied().collect();
    let got_union: BTreeSet<(u32, u32)> = union.edges().collect();
    assert_eq!(got_union, brute_union, "union vs brute force");

    let difference = bigraph::derive::difference(&ga, &gb);
    let brute_difference: BTreeSet<(u32, u32)> = ea.difference(&eb).copied().collect();
    let got_difference: BTreeSet<(u32, u32)> = difference.edges().collect();
    assert_eq!(
        got_difference, brute_difference,
        "difference vs brute force"
    );

    let derive_checks = DeriveChecksRow {
        subgraph_edges: got_subgraph.len(),
        union_edges: got_union.len(),
        difference_edges: got_difference.len(),
        subgraph_matches: true,
        union_matches: true,
        difference_matches: true,
    };

    drop(states);
    let _ = std::fs::remove_dir_all(&dir);

    VersionsExperimentReport {
        family: family.to_string(),
        batches: schedule.len(),
        tags,
        time_travel,
        diff_law,
        derive_checks,
        all_time_travels_verified: true,
    }
}

/// `repro smoke`: seconds-scale deterministic runs on small generated
/// graphs, cross-checked against the sequential (BUP) and naive
/// (wedge-hashing) oracles. This is the workload behind the committed
/// golden snapshot `tests/golden/repro_smoke.json`.
pub fn smoke_report() -> SmokeReport {
    let zipf = bigraph::gen::zipf(400, 200, 1_500, 0.6, 0.9, 11);
    let tip_graphs: Vec<(&str, BipartiteCsr, Side)> = vec![
        (
            "blocks-30x30",
            bigraph::gen::planted_bicliques(30, 30, 2, 4, 4, 60, 5),
            Side::U,
        ),
        ("zipf-400x200", zipf.clone(), Side::U),
        ("zipf-400x200", zipf, Side::V),
    ];
    let cfg = Config::default().with_partitions(8);
    let tip_runs = tip_graphs
        .iter()
        .map(|(name, g, side)| {
            let d = receipt::tip_decompose(g, *side, &cfg);
            let oracle = receipt::bup::bup_decompose(g, *side, cfg.heap_arity);
            SmokeTipRun {
                graph: name.to_string(),
                side: *side,
                config: cfg.clone(),
                num_vertices: d.tip.len(),
                theta_max: d.theta_max(),
                tip: d.tip.clone(),
                butterflies: butterfly::naive::naive_total(g),
                matches_bup: d.tip == oracle.tip,
                metrics: d.metrics.clone(),
            }
        })
        .collect();
    let wing_graphs: Vec<(&str, BipartiteCsr)> = vec![
        (
            "blocks-60x60",
            bigraph::gen::planted_bicliques(60, 60, 3, 4, 4, 120, 9),
        ),
        (
            "zipf-300x150",
            bigraph::gen::zipf(300, 150, 900, 0.5, 0.8, 3),
        ),
    ];
    let wing_runs = wing_graphs
        .iter()
        .map(|(name, g)| {
            let view = g.view(Side::U);
            let seq = receipt::wing::wing_decompose(view, 4);
            let (par, metrics) = receipt::wing_parallel::receipt_wing_decompose(view, 6, 4);
            SmokeWingRun {
                graph: name.to_string(),
                num_edges: g.num_edges(),
                max_wing: par.max_wing(),
                wing: par.wing.clone(),
                matches_sequential: par.wing == seq.wing,
                wing_metrics: metrics,
            }
        })
        .collect();
    SmokeReport {
        tip_runs,
        wing_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_labels() {
        let w = workload_by_label("ItU").unwrap();
        assert_eq!(w.label(), "ItU");
        assert_eq!(w.side, Side::U);
        assert!(workload_by_label("XxU").is_none());
        assert!(workload_by_label("U").is_none());
        let w = workload_by_label("tr v").unwrap();
        assert_eq!(w.label(), "TrV");
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(millions(2_500_000), "2.50");
    }

    #[test]
    fn wing_checksum_is_order_and_value_sensitive() {
        assert_eq!(fnv1a_u64(&[]), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a_u64(&[1, 2, 3]), fnv1a_u64(&[3, 2, 1]));
        assert_ne!(fnv1a_u64(&[1, 2, 3]), fnv1a_u64(&[1, 2, 4]));
        assert_eq!(fnv1a_u64(&[7, 8]), fnv1a_u64(&[7, 8]));
    }

    #[test]
    fn scheduler_report_is_internally_consistent() {
        scheduler_exercise();
        let report = scheduler_report();
        assert_eq!(report.threads, rayon::current_num_threads());
        assert_eq!(report.per_worker_executed.len(), report.workers_spawned);
        assert!(report.steals_succeeded <= report.steals_attempted);
        assert_eq!(
            report.tasks_executed,
            report.helper_executed + report.per_worker_executed.iter().sum::<u64>()
        );
    }
}

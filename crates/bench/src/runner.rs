//! Shared experiment plumbing: dataset instantiation, algorithm runners,
//! and row formatting for the `repro` harness.

use bigraph::{datasets::AnalogSpec, BipartiteCsr, Side};
use receipt::{bup::BaselineResult, Config, TipDecomposition};
use std::time::Duration;

/// A dataset instantiated for one peeled side (the paper's `ItU`, `ItV`, …
/// naming).
pub struct Workload {
    pub spec: AnalogSpec,
    pub side: Side,
    pub graph: BipartiteCsr,
}

impl Workload {
    pub fn label(&self) -> String {
        format!("{}{}", self.spec.name, self.side.suffix())
    }
}

/// Instantiates every analog × side pair, in Table 2/3 order.
pub fn all_workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    for spec in bigraph::datasets::all() {
        let graph = spec.generate();
        for side in [Side::U, Side::V] {
            out.push(Workload {
                spec,
                side,
                graph: graph.clone(),
            });
        }
    }
    out
}

/// Instantiates a single named workload, e.g. `TrU` or `it v`.
pub fn workload_by_label(label: &str) -> Option<Workload> {
    let label = label.trim();
    if label.len() < 3 {
        return None;
    }
    let (name, side) = label.split_at(label.len() - 1);
    let side = match side.chars().next()?.to_ascii_uppercase() {
        'U' => Side::U,
        'V' => Side::V,
        _ => return None,
    };
    let spec = bigraph::datasets::by_name(name.trim())?;
    Some(Workload {
        spec,
        side,
        graph: spec.generate(),
    })
}

/// One Table 3 style measurement of RECEIPT on a workload.
pub fn run_receipt(w: &Workload, config: &Config) -> TipDecomposition {
    receipt::tip_decompose(&w.graph, w.side, config)
}

pub fn run_bup(w: &Workload) -> BaselineResult {
    receipt::bup::bup_decompose(&w.graph, w.side, 4)
}

pub fn run_parb(w: &Workload) -> BaselineResult {
    receipt::parb::parb_decompose(&w.graph, w.side, 4)
}

/// Seconds with 3 decimals, matching the paper's `t(s)` column.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Billions (the paper reports wedges in billions); here workloads are
/// laptop-scale so we print millions.
pub fn millions(x: u64) -> String {
    format!("{:.2}", x as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_labels() {
        let w = workload_by_label("ItU").unwrap();
        assert_eq!(w.label(), "ItU");
        assert_eq!(w.side, Side::U);
        assert!(workload_by_label("XxU").is_none());
        assert!(workload_by_label("U").is_none());
        let w = workload_by_label("tr v").unwrap();
        assert_eq!(w.label(), "TrV");
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(millions(2_500_000), "2.50");
    }
}

//! Structured result documents for the `repro` harness (`repro <exp>
//! --json`).
//!
//! Same conventions as [`receipt::report`]: a `schema_version`/`kind`
//! envelope, timing fields named `time_*` so
//! [`receipt::report::scrub_timings`] canonicalizes them, and everything
//! else machine-independent so two runs of the same binary diff clean.

use bigraph::Side;
use receipt::wing_parallel::WingMetrics;
use receipt::{Config, Metrics};
use serde::{Deserialize, Serialize};

/// One `repro` invocation. Exactly one experiment section is populated;
/// the others stay `null`. Every JSON experiment additionally carries a
/// [`SchedulerReport`] snapshot taken after the experiment ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproReport {
    pub schema_version: u32,
    /// Always `"repro"`.
    pub kind: String,
    /// The experiment argument (`table2`, `table3`, `wing`, `smoke`).
    pub experiment: String,
    pub table2: Option<Vec<Table2Row>>,
    pub table3: Option<Vec<Table3Row>>,
    pub wing: Option<Vec<WingRow>>,
    pub dynamic: Option<Vec<DynamicRow>>,
    pub serve: Option<ServeExperimentReport>,
    pub recover: Option<RecoverExperimentReport>,
    pub versions: Option<VersionsExperimentReport>,
    pub smoke: Option<SmokeReport>,
    /// Cumulative work-stealing scheduler counters at the end of the run.
    /// Nondeterministic (OS-scheduling-dependent), so snapshot/diff
    /// consumers scrub it via `receipt::report::scrub_scheduler`; the CI
    /// scheduler gate (`repro check-sched`) asserts on it instead.
    pub scheduler: Option<SchedulerReport>,
}

impl ReproReport {
    pub fn new(experiment: impl Into<String>) -> Self {
        ReproReport {
            schema_version: receipt::report::SCHEMA_VERSION,
            kind: "repro".to_string(),
            experiment: experiment.into(),
            table2: None,
            table3: None,
            wing: None,
            dynamic: None,
            serve: None,
            recover: None,
            versions: None,
            smoke: None,
            scheduler: None,
        }
    }
}

/// Snapshot of the vendored rayon pool's work-stealing scheduler counters
/// (`rayon::scheduler_stats()`), cumulative over the process. This is what
/// makes thread-scaling runs machine-checkable: CI parses it from
/// `repro smoke --json` and gates on steal activity instead of eyeballing
/// `time` output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerReport {
    pub schema_version: u32,
    /// Ambient parallelism budget of the run (`RAYON_NUM_THREADS` or the
    /// machine default) — what the CI gate keys its expectations on.
    pub threads: usize,
    /// OS worker threads the pool spawned (`total_workers_spawned()`).
    pub workers_spawned: usize,
    /// Jobs handed to the scheduler (inline fast-path work not included).
    pub jobs_submitted: u64,
    /// Jobs finished; equals `jobs_submitted` at exit (the process is
    /// quiescent when the report is built) — `check-sched` asserts it.
    pub tasks_executed: u64,
    /// Jobs executed by non-worker threads helping while blocked.
    pub helper_executed: u64,
    /// Jobs executed by each pool worker, indexed by worker id.
    pub per_worker_executed: Vec<u64>,
    /// External submissions pushed to the shared injector queue.
    pub injector_pushes: u64,
    /// Jobs checked out of the injector.
    pub injector_pops: u64,
    /// Victim deques probed during steal scans.
    pub steals_attempted: u64,
    /// Jobs actually taken from another worker's deque.
    pub steals_succeeded: u64,
    /// Park-timeout wakeups that found no pending work and re-parked
    /// without scanning. Wall-clock-dependent (a function of how long the
    /// pool sat idle), so scrubbed alongside the other scheduler fields;
    /// `check-sched` only sanity-checks it, never pins a value.
    pub idle_timeouts: u64,
}

/// Table 2: per-dataset statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    pub name: String,
    pub num_u: usize,
    pub num_v: usize,
    pub num_edges: usize,
    pub avg_degree_u: f64,
    pub avg_degree_v: f64,
    pub butterflies: u64,
    /// Wedges with endpoints on either side, summed.
    pub wedges: u64,
    pub theta_max_u: u64,
    pub theta_max_v: u64,
}

/// Table 3: one workload × all algorithms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    pub workload: String,
    pub time_pvbcnt_secs: f64,
    pub time_bup_secs: f64,
    pub time_parb_secs: f64,
    pub time_receipt_secs: f64,
    pub wedges_bup: u64,
    pub wedges_receipt: u64,
    pub wedges_pvbcnt: u64,
    pub rounds_parb: u64,
    pub rounds_receipt: u64,
    /// `r = ∧_peel / ∧_cnt` (§5.2.2).
    pub peel_to_count_ratio: f64,
    /// RECEIPT and ParB agreed with BUP (asserted during the run; recorded
    /// for differential consumers).
    pub tips_match: bool,
}

/// §7 wing extension: sequential vs RECEIPT-style parallel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WingRow {
    pub graph: String,
    pub num_edges: usize,
    pub time_seq_secs: f64,
    pub time_par_secs: f64,
    pub work_seq: u64,
    pub work_par: u64,
    pub sync_rounds: u64,
    pub max_wing: u64,
    pub wings_match: bool,
    /// FNV-1a digest of the parallel run's wing numbers, in edge order.
    /// Lets `repro check-threads` compare the full decomposition across
    /// thread counts without embedding tens of thousands of values.
    pub wing_checksum: u64,
}

/// One batch of the `repro dynamic` experiment: incremental maintenance
/// cost vs the cost of recounting + re-peeling from scratch, with the
/// differential equalities recorded (and asserted during the run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicRow {
    pub family: String,
    /// 0-based batch index within the family's schedule.
    pub batch: usize,
    pub inserted: usize,
    pub deleted: usize,
    pub butterflies_gained: u64,
    pub butterflies_lost: u64,
    pub total_butterflies: u64,
    /// Intersection steps the incremental counter spent on the batch.
    pub update_work: u64,
    /// Wedges a from-scratch pipeline (Algorithm 1 recount + BUP peel)
    /// traverses on the materialized graph — what the batch avoided.
    pub recount_work: u64,
    /// Tip-update policy the dirty-fraction heuristic chose.
    pub policy: receipt::dynamic::UpdatePolicy,
    pub dirty_fraction: f64,
    pub theta_max: u64,
    /// FNV-1a digest of the maintained tip numbers after the batch.
    pub tip_checksum: u64,
    /// Maintained per-vertex + per-edge counts equal a from-scratch
    /// recount (asserted during the run).
    pub counts_match_recount: bool,
    /// Maintained tips equal `bup_decompose` on the materialized graph.
    pub tips_match_bup: bool,
    pub time_update_secs: f64,
    pub time_recount_secs: f64,
}

/// The `repro serve` experiment: a scripted mixed read/update session
/// against an in-process [`receipt::engine::StreamEngine`] — one writer
/// thread applies a seeded batch schedule (every batch differentially
/// verified) while reader threads hammer point queries against the
/// published snapshots. The per-epoch rows are machine-independent (the
/// decomposition trajectory does not depend on reader interleaving); the
/// throughput side lives in [`ServeTelemetry`], which
/// `receipt::report::scrub_scheduler` nulls for snapshot/diff consumers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeExperimentReport {
    pub family: String,
    /// Concurrent reader threads querying while the writer applied batches.
    pub readers: usize,
    pub batches: Vec<ServeBatchRow>,
    /// Final state passed `verify_against_scratch` after the session.
    pub final_verified: bool,
    pub final_epoch: u64,
    pub final_total_butterflies: u64,
    /// Nondeterministic throughput counters (reader-interleaving- and
    /// machine-dependent) — scrubbed by `scrub_scheduler`, asserted on by
    /// the run itself instead.
    pub serve_telemetry: Option<ServeTelemetry>,
}

/// One verified batch of the `repro serve` writer, keyed by the epoch it
/// published. Everything here must be identical across thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBatchRow {
    pub epoch: u64,
    pub inserted: usize,
    pub deleted: usize,
    pub butterflies_gained: u64,
    pub butterflies_lost: u64,
    pub total_butterflies: u64,
    pub theta_max_u: u64,
    pub theta_max_v: u64,
    pub tip_checksum_u: u64,
    pub tip_checksum_v: u64,
    pub time_update_secs: f64,
    pub time_verify_secs: f64,
}

/// Reader-side throughput of one `repro serve` session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeTelemetry {
    /// Snapshot-grab-plus-query rounds completed across all readers.
    pub reads_total: u64,
    pub reads_per_reader: Vec<u64>,
    /// Distinct epochs readers observed (≥ 1; ≤ batches + 1).
    pub epochs_observed: usize,
    /// Reader consistency checks that failed (must be 0; also asserted).
    pub inconsistencies: u64,
    pub time_session_secs: f64,
    pub reads_per_sec: f64,
}

/// The `repro recover` experiment: the durability crash matrix. An
/// uninterrupted durable run of a seeded batch schedule records the
/// per-epoch reference trajectory; then, for every batch boundary, the
/// store is cloned with its WAL cut at that boundary (simulating a crash)
/// and recovered, and the recovered state is required to equal the
/// reference state at the boundary AND pass the from-scratch oracle. A
/// checkpoint-fold run and the binary-vs-text load-cost comparison ride
/// along. Everything except the `time_*_secs` fields is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverExperimentReport {
    pub family: String,
    /// Batches in the reference schedule (= WAL records = boundaries).
    pub batches: usize,
    pub crash_matrix: Vec<CrashRow>,
    pub checkpoint_fold: CheckpointFoldRow,
    pub load_cost: Vec<LoadCostRow>,
    /// Every crash-matrix and fold recovery passed `verify_against_scratch`
    /// and matched the reference trajectory (also asserted during the run).
    pub all_recoveries_verified: bool,
}

/// One simulated crash + recovery. `kind` is where the crash hit:
/// `kill-after-append` (WAL record durable, crash before the in-memory
/// apply), `kill-after-apply` (crash after apply but before anything
/// else — on disk these are the same bytes, so both must recover to the
/// post-batch state), or `torn-append` (crash mid-write: the final record
/// is incomplete, recovery truncates it and lands on the previous batch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashRow {
    pub kind: String,
    /// 1-based batch boundary (= LSN of the record the cut lands in).
    pub boundary: usize,
    /// Committed records the recovery found in the cut WAL.
    pub wal_records: usize,
    pub replayed: usize,
    /// Recovery truncated a torn tail.
    pub repaired: bool,
    pub discarded_bytes: u64,
    pub total_butterflies: u64,
    pub tip_checksum_u: u64,
    pub tip_checksum_v: u64,
    /// Recovered checksums equal the uninterrupted run's at the expected
    /// epoch (asserted during the run).
    pub matches_reference: bool,
    /// `verify_against_scratch` passed on the recovered engine.
    pub oracle_verified: bool,
    pub time_recover_secs: f64,
}

/// Recovery of a run that folded periodic checkpoints: only the records
/// past the last fold replay, and the result still matches the reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointFoldRow {
    pub checkpoint_every: u64,
    pub batches: usize,
    /// LSN the last fold pinned (records at or below it are in the base).
    pub checkpoint_lsn: u64,
    pub replayed: usize,
    pub skipped: usize,
    pub matches_reference: bool,
    pub oracle_verified: bool,
    pub time_recover_secs: f64,
}

/// Binary (`.bgr`) vs text edge-list load cost for one graph: bytes on
/// disk and parse time, with the round trip checked for equality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadCostRow {
    pub graph: String,
    pub num_edges: usize,
    pub text_bytes: u64,
    pub binary_bytes: u64,
    /// The binary image decoded to the identical graph (asserted).
    pub round_trip_identical: bool,
    pub time_text_load_secs: f64,
    pub time_binary_load_secs: f64,
}

/// `repro versions`: the graph-versioning experiment (`VERSIONING.md`).
///
/// The zipf dynamic schedule is streamed through a durable store with
/// checkpoint folding disabled (so every tag stays serviceable, §3.4) and
/// a version is tagged at every batch boundary. Then every tag is
/// time-travelled to with [`receipt::version`]'s `open_at` and the
/// materialized state is required to equal the reference trajectory AND
/// pass the from-scratch oracle; `diff(a, b)` applied to `at(a)` must
/// equal `at(b)` (§5); and the derive operators are compared against
/// brute-force set algebra (§6). Everything except the `time_*_secs`
/// fields is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionsExperimentReport {
    pub family: String,
    /// Batches in the schedule (one tag per boundary, plus the `v0` base).
    pub batches: usize,
    /// The tags as recorded in `versions.meta`, in LSN order.
    pub tags: Vec<VersionTagRow>,
    pub time_travel: Vec<TimeTravelRow>,
    pub diff_law: Vec<DiffLawRow>,
    pub derive_checks: DeriveChecksRow,
    /// Every time-travel state matched the reference trajectory and passed
    /// `verify_against_scratch` (also asserted during the run).
    pub all_time_travels_verified: bool,
}

/// One named version as tagged during the streaming run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionTagRow {
    pub name: String,
    pub lsn: u64,
    pub total_butterflies: u64,
    pub tip_checksum_u: u64,
    pub tip_checksum_v: u64,
}

/// One `open_at` time travel to a tagged version. `replayed` is the tag
/// distance in WAL records — the replay-cost-vs-tag-distance data point
/// (`EXPERIMENTS.md`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeTravelRow {
    pub name: String,
    pub lsn: u64,
    pub checkpoint_lsn: u64,
    /// WAL records replayed to reach the tag (= tag distance from base).
    pub replayed: usize,
    /// Committed records past the tag that were skipped.
    pub skipped_above: usize,
    /// Recovered butterflies + both tip checksums equal the reference
    /// trajectory's at this boundary (asserted during the run).
    pub matches_reference: bool,
    /// `verify_against_scratch` passed on the time-travelled engine.
    pub oracle_verified: bool,
    pub time_open_secs: f64,
}

/// One check of the diff law `apply(at(a), diff(a, b)) = at(b)`
/// (`VERSIONING.md` §5.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffLawRow {
    pub from: String,
    pub to: String,
    /// Ops in the materialized diff (last-op-per-edge, so at most one per
    /// touched edge).
    pub ops: usize,
    pub inserts: usize,
    pub deletes: usize,
    /// Applying the diff to `at(from)` produced a state with the same edge
    /// set, butterfly count, and tip checksums as `at(to)` (asserted).
    pub law_holds: bool,
}

/// Derive operators (`VERSIONING.md` §6) cross-checked against brute-force
/// set algebra on the first and last tagged states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeriveChecksRow {
    pub subgraph_edges: usize,
    pub union_edges: usize,
    pub difference_edges: usize,
    /// Each operator's edge set equalled the brute-force construction
    /// (asserted during the run).
    pub subgraph_matches: bool,
    pub union_matches: bool,
    pub difference_matches: bool,
}

/// `repro smoke`: small deterministic runs cross-checked against the
/// sequential/naive oracles — the CI golden-snapshot workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmokeReport {
    pub tip_runs: Vec<SmokeTipRun>,
    pub wing_runs: Vec<SmokeWingRun>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmokeTipRun {
    pub graph: String,
    pub side: Side,
    pub config: Config,
    pub num_vertices: usize,
    pub theta_max: u64,
    pub tip: Vec<u64>,
    /// Total butterflies per the naive wedge-hashing oracle.
    pub butterflies: u64,
    /// RECEIPT tips equal sequential bottom-up peeling.
    pub matches_bup: bool,
    pub metrics: Metrics,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmokeWingRun {
    pub graph: String,
    pub num_edges: usize,
    pub max_wing: u64,
    pub wing: Vec<u64>,
    /// Parallel wing numbers equal the sequential peel.
    pub matches_sequential: bool,
    pub wing_metrics: WingMetrics,
}

//! Golden-snapshot tests for `repro smoke --json`, `repro dynamic --json`,
//! `repro serve --json`, `repro recover --json`, and `repro versions
//! --json`.
//!
//! Runs the real harness binary, scrubs timings, and pins the documents
//! against `tests/golden/repro_{smoke,dynamic,serve,recover,versions}.json`
//! at the repository root. Refresh after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p receipt-bench --test repro_golden
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/golden/{name}"))
}

fn run_repro_json(experiment: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([experiment, "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "repro {experiment} --json: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn run_smoke_json() -> String {
    run_repro_json("smoke")
}

fn assert_matches_golden(experiment: &str, golden_file: &str) {
    let doc = run_repro_json(experiment);
    let mut value = serde_json::from_str_value(&doc)
        .unwrap_or_else(|e| panic!("repro emitted invalid JSON ({e}):\n{doc}"));
    receipt::report::scrub_timings(&mut value);
    // Scheduler counters depend on OS scheduling; `repro check-sched`
    // gates on them, snapshots do not.
    receipt::report::scrub_scheduler(&mut value);
    let normalized = serde_json::to_string_pretty(&value).unwrap() + "\n";
    let path = golden_path(golden_file);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &normalized).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path:?}: {e}\nregenerate with: \
             UPDATE_GOLDEN=1 cargo test -p receipt-bench --test repro_golden"
        )
    });
    assert_eq!(
        normalized, golden,
        "{golden_file} drifted; if the change is intentional, regenerate \
         with: UPDATE_GOLDEN=1 cargo test -p receipt-bench --test repro_golden"
    );
}

#[test]
fn smoke_json_matches_golden() {
    assert_matches_golden("smoke", "repro_smoke.json");
}

#[test]
fn dynamic_json_matches_golden() {
    assert_matches_golden("dynamic", "repro_dynamic.json");
}

#[test]
fn serve_json_matches_golden() {
    // Timings and the reader-throughput telemetry are the only
    // machine-dependent content; `scrub_timings` + `scrub_scheduler`
    // (which also nulls `serve_telemetry`) canonicalize both.
    assert_matches_golden("serve", "repro_serve.json");
}

#[test]
fn serve_report_confirms_consistency() {
    let doc = run_repro_json("serve");
    let report: receipt_bench::report::ReproReport = serde_json::from_str(&doc).unwrap();
    assert_eq!(report.experiment, "serve");
    let serve = report.serve.expect("serve section populated");
    assert!(serve.final_verified);
    assert!(!serve.batches.is_empty());
    assert_eq!(serve.final_epoch, serve.batches.len() as u64);
    for (i, row) in serve.batches.iter().enumerate() {
        assert_eq!(row.epoch, i as u64 + 1, "epochs count batches");
    }
    let t = serve
        .serve_telemetry
        .expect("telemetry present in live runs");
    assert_eq!(t.inconsistencies, 0);
    assert!(t.reads_total > 0, "readers must have completed rounds");
    assert_eq!(t.reads_per_reader.len(), serve.readers);
    assert!(t.epochs_observed >= 1 && t.epochs_observed <= serve.batches.len() + 1);
}

#[test]
fn recover_json_matches_golden() {
    assert_matches_golden("recover", "repro_recover.json");
}

#[test]
fn recover_report_confirms_crash_matrix() {
    let doc = run_repro_json("recover");
    let report: receipt_bench::report::ReproReport = serde_json::from_str(&doc).unwrap();
    assert_eq!(report.experiment, "recover");
    let recover = report.recover.expect("recover section populated");
    assert!(recover.all_recoveries_verified);
    assert!(recover.batches >= 2, "matrix needs multiple boundaries");
    // Every boundary appears with all three crash kinds.
    for boundary in 1..=recover.batches {
        for kind in ["kill-after-append", "kill-after-apply", "torn-append"] {
            let row = recover
                .crash_matrix
                .iter()
                .find(|r| r.boundary == boundary && r.kind == kind)
                .unwrap_or_else(|| panic!("missing {kind} @ {boundary}"));
            assert!(row.matches_reference, "{kind} @ {boundary}");
            assert!(row.oracle_verified, "{kind} @ {boundary}");
            // Kill crashes keep the boundary's record; torn ones lose it.
            if kind == "torn-append" {
                assert!(
                    row.repaired && row.discarded_bytes > 0,
                    "{kind} @ {boundary}"
                );
                assert_eq!(row.replayed, boundary - 1, "{kind} @ {boundary}");
            } else {
                assert!(
                    !row.repaired && row.discarded_bytes == 0,
                    "{kind} @ {boundary}"
                );
                assert_eq!(row.replayed, boundary, "{kind} @ {boundary}");
            }
        }
    }
    // The two kill kinds leave identical bytes, so their recovered states
    // must agree row for row.
    for boundary in 1..=recover.batches {
        let find = |kind: &str| {
            recover
                .crash_matrix
                .iter()
                .find(|r| r.boundary == boundary && r.kind == kind)
                .unwrap()
        };
        let (a, b) = (find("kill-after-append"), find("kill-after-apply"));
        assert_eq!(a.tip_checksum_u, b.tip_checksum_u);
        assert_eq!(a.tip_checksum_v, b.tip_checksum_v);
        assert_eq!(a.total_butterflies, b.total_butterflies);
    }
    let fold = &recover.checkpoint_fold;
    assert!(fold.matches_reference && fold.oracle_verified);
    assert!(fold.checkpoint_lsn > 0, "folding must have checkpointed");
    assert!(!recover.load_cost.is_empty());
    for row in &recover.load_cost {
        assert!(row.round_trip_identical, "{}", row.graph);
    }
}

#[test]
fn versions_json_matches_golden() {
    assert_matches_golden("versions", "repro_versions.json");
}

#[test]
fn versions_report_confirms_oracles() {
    let doc = run_repro_json("versions");
    let report: receipt_bench::report::ReproReport = serde_json::from_str(&doc).unwrap();
    assert_eq!(report.experiment, "versions");
    let versions = report.versions.expect("versions section populated");
    assert!(versions.all_time_travels_verified);
    // One tag per boundary plus the v0 base, LSNs counting batches.
    assert_eq!(versions.tags.len(), versions.batches + 1);
    for (b, tag) in versions.tags.iter().enumerate() {
        assert_eq!(tag.name, format!("v{b}"));
        assert_eq!(tag.lsn, b as u64);
    }
    // Every tag was travelled to, replaying exactly its LSN prefix, and
    // both the reference comparison and the from-scratch oracle held.
    assert_eq!(versions.time_travel.len(), versions.tags.len());
    for (b, row) in versions.time_travel.iter().enumerate() {
        assert_eq!(row.replayed, b, "{} replays its prefix", row.name);
        assert_eq!(row.skipped_above, versions.batches - b, "{}", row.name);
        assert!(row.matches_reference, "{}", row.name);
        assert!(row.oracle_verified, "{}", row.name);
    }
    // Diff law on every adjacent pair plus the full span; the span diff
    // is bounded by last-op-per-edge (≤ sum of the per-batch diffs).
    assert_eq!(versions.diff_law.len(), versions.batches + 1);
    let adjacent_ops: usize = versions.diff_law[..versions.batches]
        .iter()
        .map(|d| d.ops)
        .sum();
    let span = versions.diff_law.last().unwrap();
    assert!(span.ops <= adjacent_ops, "span diff must coalesce ops");
    for d in &versions.diff_law {
        assert!(d.law_holds, "{} -> {}", d.from, d.to);
        assert_eq!(d.ops, d.inserts + d.deletes, "{} -> {}", d.from, d.to);
    }
    let dc = &versions.derive_checks;
    assert!(dc.subgraph_matches && dc.union_matches && dc.difference_matches);
}

#[test]
fn dynamic_report_confirms_oracles_and_policies() {
    let doc = run_repro_json("dynamic");
    let report: receipt_bench::report::ReproReport = serde_json::from_str(&doc).unwrap();
    assert_eq!(report.experiment, "dynamic");
    let rows = report.dynamic.expect("dynamic section populated");
    assert!(!rows.is_empty());
    for row in &rows {
        assert!(
            row.counts_match_recount,
            "{} batch {} counts diverged",
            row.family, row.batch
        );
        assert!(
            row.tips_match_bup,
            "{} batch {} tips diverged",
            row.family, row.batch
        );
        assert!(row.dirty_fraction >= 0.0 && row.dirty_fraction <= 1.0);
    }
    // The workloads are sized to exercise both recompute policies.
    use receipt::dynamic::UpdatePolicy;
    assert!(rows.iter().any(|r| r.policy == UpdatePolicy::SeededRepeel));
    assert!(rows.iter().any(|r| r.policy == UpdatePolicy::FullRecompute));
}

#[test]
fn smoke_report_confirms_oracles() {
    // Decode the emitted document with the typed schema and assert every
    // run matched its oracle — the smoke JSON is what CI archives, so the
    // oracle bits must actually be in the document, not just asserted
    // inside the binary.
    let doc = run_smoke_json();
    let report: receipt_bench::report::ReproReport = serde_json::from_str(&doc).unwrap();
    assert_eq!(report.experiment, "smoke");
    let smoke = report.smoke.expect("smoke section populated");
    assert!(!smoke.tip_runs.is_empty() && !smoke.wing_runs.is_empty());
    for run in &smoke.tip_runs {
        assert!(
            run.matches_bup,
            "{} {:?} diverged from BUP",
            run.graph, run.side
        );
        assert_eq!(run.tip.len(), run.num_vertices, "{}", run.graph);
        assert_eq!(
            run.tip.iter().copied().max().unwrap_or(0),
            run.theta_max,
            "{}",
            run.graph
        );
    }
    for run in &smoke.wing_runs {
        assert!(
            run.matches_sequential,
            "{} diverged from the sequential peel",
            run.graph
        );
        assert_eq!(run.wing.len(), run.num_edges, "{}", run.graph);
    }
}

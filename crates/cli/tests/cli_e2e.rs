//! Black-box tests of the `tipdecomp` binary: spawn the real executable
//! and check its stdout/stderr/exit codes end to end.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tipdecomp"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tipdecomp_e2e_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small graph with a known decomposition: one butterfly + a pendant.
fn write_fixture(dir: &Path) -> PathBuf {
    let path = dir.join("g.tsv");
    std::fs::write(&path, "% fixture\n0 0\n0 1\n1 0\n1 1\n2 0\n").unwrap();
    path
}

#[test]
fn help_and_unknown_command() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // No args prints usage and succeeds.
    let out = bin().output().unwrap();
    assert!(out.status.success());
}

#[test]
fn tip_pipeline_on_fixture() {
    let dir = temp_dir("tip");
    let graph = write_fixture(&dir);
    let out = bin()
        .args(["tip", graph.to_str().unwrap(), "--stats"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // u0 and u1 form the butterfly (tip 1), u2 is pendant (tip 0).
    assert!(stdout.contains("0\t1"), "{stdout}");
    assert!(stdout.contains("1\t1"), "{stdout}");
    assert!(stdout.contains("2\t0"), "{stdout}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("theta_max=1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_then_stats_round_trip() {
    let dir = temp_dir("gen");
    let path = dir.join("it.tsv");
    let out = bin()
        .args(["generate", "It", "--output", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    // PRNG determinism: a second generation of the same analog must
    // produce a byte-identical edge list (no baked-in |E| constant, which
    // would silently break whenever the generator or PRNG stream evolves).
    let path2 = dir.join("it_again.tsv");
    let out = bin()
        .args(["generate", "It", "--output", path2.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let first = std::fs::read(&path).unwrap();
    let second = std::fs::read(&path2).unwrap();
    assert!(!first.is_empty(), "generated edge list must be non-empty");
    assert_eq!(first, second, "It-analog generation must be deterministic");

    let out = bin()
        .args(["stats", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("|E| = "), "{stdout}");
    assert!(stdout.contains("butterflies"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wing_and_ktips_on_fixture() {
    let dir = temp_dir("wing");
    let graph = write_fixture(&dir);
    let out = bin()
        .args(["wing", graph.to_str().unwrap(), "--partitions", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Butterfly edges have wing 1; pendant edge (2,0) has wing 0.
    assert!(stdout.contains("2\t0\t0"), "{stdout}");
    assert!(stdout.contains("0\t0\t1"), "{stdout}");

    let out = bin()
        .args(["ktips", graph.to_str().unwrap(), "-k", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 1-tip component"), "{stdout}");
    assert!(stdout.contains("0,1"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parse_errors_exit_2_with_usage() {
    // Missing required input: exit 2, message plus full usage text.
    let out = bin().arg("tip").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("needs an input file"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");

    // Bad flag value: same contract.
    let out = bin()
        .args(["tip", "g.tsv", "--partitions", "many"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--partitions"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn run_errors_exit_1_with_subcommand_context() {
    // Run errors (valid arguments, failing execution) exit 1 and name the
    // failing subcommand so batch logs are attributable.
    let out = bin().args(["tip", "/no/such/file.tsv"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("failed to read"), "{stderr}");
    assert!(stderr.contains("while running `tipdecomp tip`"), "{stderr}");

    let out = bin().args(["wing", "/no/such/file.tsv"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("while running `tipdecomp wing`"),
        "{stderr}"
    );

    let out = bin().args(["generate", "Zz"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown preset"), "{stderr}");
    assert!(
        stderr.contains("while running `tipdecomp generate`"),
        "{stderr}"
    );
}

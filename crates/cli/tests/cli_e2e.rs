//! Black-box tests of the `tipdecomp` binary: spawn the real executable
//! and check its stdout/stderr/exit codes end to end.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tipdecomp"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tipdecomp_e2e_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small graph with a known decomposition: one butterfly + a pendant.
fn write_fixture(dir: &Path) -> PathBuf {
    let path = dir.join("g.tsv");
    std::fs::write(&path, "% fixture\n0 0\n0 1\n1 0\n1 1\n2 0\n").unwrap();
    path
}

#[test]
fn help_and_unknown_command() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // No args prints usage and succeeds.
    let out = bin().output().unwrap();
    assert!(out.status.success());
}

#[test]
fn tip_pipeline_on_fixture() {
    let dir = temp_dir("tip");
    let graph = write_fixture(&dir);
    let out = bin()
        .args(["tip", graph.to_str().unwrap(), "--stats"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // u0 and u1 form the butterfly (tip 1), u2 is pendant (tip 0).
    assert!(stdout.contains("0\t1"), "{stdout}");
    assert!(stdout.contains("1\t1"), "{stdout}");
    assert!(stdout.contains("2\t0"), "{stdout}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("theta_max=1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_then_stats_round_trip() {
    let dir = temp_dir("gen");
    let path = dir.join("it.tsv");
    let out = bin()
        .args(["generate", "It", "--output", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    // PRNG determinism: a second generation of the same analog must
    // produce a byte-identical edge list (no baked-in |E| constant, which
    // would silently break whenever the generator or PRNG stream evolves).
    let path2 = dir.join("it_again.tsv");
    let out = bin()
        .args(["generate", "It", "--output", path2.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let first = std::fs::read(&path).unwrap();
    let second = std::fs::read(&path2).unwrap();
    assert!(!first.is_empty(), "generated edge list must be non-empty");
    assert_eq!(first, second, "It-analog generation must be deterministic");

    let out = bin()
        .args(["stats", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("|E| = "), "{stdout}");
    assert!(stdout.contains("butterflies"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wing_and_ktips_on_fixture() {
    let dir = temp_dir("wing");
    let graph = write_fixture(&dir);
    let out = bin()
        .args(["wing", graph.to_str().unwrap(), "--partitions", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Butterfly edges have wing 1; pendant edge (2,0) has wing 0.
    assert!(stdout.contains("2\t0\t0"), "{stdout}");
    assert!(stdout.contains("0\t0\t1"), "{stdout}");

    let out = bin()
        .args(["ktips", graph.to_str().unwrap(), "-k", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 1-tip component"), "{stdout}");
    assert!(stdout.contains("0,1"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parse_errors_exit_2_with_usage() {
    // Missing required input: exit 2, message plus full usage text.
    let out = bin().arg("tip").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("needs an input file"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");

    // Bad flag value: same contract.
    let out = bin()
        .args(["tip", "g.tsv", "--partitions", "many"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--partitions"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn run_errors_exit_1_with_subcommand_context() {
    // Run errors (valid arguments, failing execution) exit 1, name the
    // failing subcommand so batch logs are attributable, and name the
    // offending file (the path travels inside `IoError::File`).
    let out = bin().args(["tip", "/no/such/file.tsv"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("failed to read /no/such/file.tsv"),
        "{stderr}"
    );
    assert!(stderr.contains("while running `tipdecomp tip`"), "{stderr}");

    let out = bin().args(["wing", "/no/such/file.tsv"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("while running `tipdecomp wing`"),
        "{stderr}"
    );

    let out = bin().args(["generate", "Zz"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown preset"), "{stderr}");
    assert!(
        stderr.contains("while running `tipdecomp generate`"),
        "{stderr}"
    );
}

#[test]
fn parse_error_in_graph_file_names_path_and_line() {
    let dir = temp_dir("badfile");
    let path = dir.join("broken.tsv");
    std::fs::write(&path, "0 0\nword salad\n").unwrap();
    let out = bin()
        .args(["count", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("broken.tsv"), "{stderr}");
    assert!(stderr.contains("parse error on line 2"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stream_pipeline_on_fixture() {
    let dir = temp_dir("stream");
    let graph = write_fixture(&dir);
    let ops = dir.join("ops.txt");
    // Batch 1: break the butterfly. Batch 2: rebuild it plus a second one.
    std::fs::write(
        &ops,
        "% stream fixture\n-0 1\n\n+0 1\n+2 1\n# u2 completes two butterflies\n",
    )
    .unwrap();
    let out = bin()
        .args([
            "stream",
            graph.to_str().unwrap(),
            ops.to_str().unwrap(),
            "--verify",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let rows: Vec<&str> = stdout.lines().skip(1).collect();
    assert_eq!(rows.len(), 2, "{stdout}");
    // Batch 0 loses the single butterfly; batch 1 regains butterflies.
    assert!(rows[0].starts_with("0\t0\t1\t0\t0\t1\t0"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("all batches verified"), "{stderr}");

    // JSON form without --out streams NDJSON: one compact row per batch
    // (flushed as it completes, so the stream can be tailed) followed by
    // the full report document, and agrees with the text run.
    let out = bin()
        .args([
            "stream",
            graph.to_str().unwrap(),
            ops.to_str().unwrap(),
            "--json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "2 rows + final document: {stdout}");
    let row0: receipt::report::StreamBatchReport = serde_json::from_str(lines[0]).unwrap();
    assert_eq!(row0.butterflies_lost, 1);
    let report: receipt::report::StreamReport = serde_json::from_str(lines[2]).unwrap();
    assert_eq!(report.batches.len(), 2);
    assert_eq!(report.batches[0].butterflies_lost, 1);
    assert!(report.final_total_butterflies >= 2);
    assert_eq!(report.batches[0], row0, "row line matches the document");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_round_trips_byte_identically() {
    let dir = temp_dir("convert");
    let graph = write_fixture(&dir);
    let canon = dir.join("canon.tsv");
    let bgr = dir.join("g.bgr");
    let bgr2 = dir.join("g2.bgr");
    let back = dir.join("back.tsv");

    // Canonicalize the hand-written fixture through the text writer, then
    // text -> binary -> text must reproduce it byte for byte.
    for args in [
        vec![
            "convert",
            graph.to_str().unwrap(),
            canon.to_str().unwrap(),
            "--to",
            "text",
        ],
        vec!["convert", canon.to_str().unwrap(), bgr.to_str().unwrap()],
        vec!["convert", bgr.to_str().unwrap(), back.to_str().unwrap()],
        vec!["convert", bgr.to_str().unwrap(), bgr2.to_str().unwrap()],
    ] {
        let out = bin().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(
        std::fs::read(&canon).unwrap(),
        std::fs::read(&back).unwrap(),
        "text -> binary -> text round trip"
    );
    assert_eq!(
        std::fs::read(&bgr).unwrap(),
        std::fs::read(&bgr2).unwrap(),
        "binary -> binary round trip"
    );

    // `--json` report carries the conversion facts.
    let out = bin()
        .args([
            "convert",
            canon.to_str().unwrap(),
            bgr.to_str().unwrap(),
            "--json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let report: receipt::report::ConvertReport =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(report.kind, "convert");
    assert_eq!(report.from, "text");
    assert_eq!(report.to, "binary");
    assert_eq!(report.num_edges, 5);
    assert_eq!(report.bytes_out, std::fs::metadata(&bgr).unwrap().len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_rejects_corrupt_binary_with_pathful_error() {
    let dir = temp_dir("convert_bad");
    let bad = dir.join("bad.bgr");
    // Long enough to hold a full 56-byte header, but the magic is wrong.
    std::fs::write(&bad, [b"NOTABGR!".as_slice(), &[0u8; 64]].concat()).unwrap();
    let out = bin()
        .args([
            "convert",
            bad.to_str().unwrap(),
            dir.join("out.tsv").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad.bgr"), "{stderr}");
    assert!(stderr.contains("magic"), "{stderr}");
    assert!(
        stderr.contains("while running `tipdecomp convert`"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Two durable applies, then a clean shutdown; `recover` must replay both,
/// pass the oracle, and a second `serve --wal` must resume from the store.
#[test]
fn serve_wal_then_recover_end_to_end() {
    let dir = temp_dir("recover");
    let graph = write_fixture(&dir);
    let store = dir.join("store");
    let req = dir.join("req.txt");
    // +2 1 completes two extra butterflies; -0 0 breaks u0's pair.
    std::fs::write(
        &req,
        "{\"op\": \"apply\", \"ops\": [\"+2 1\"]}\n\
         {\"op\": \"apply\", \"ops\": [\"-0 0\"]}\n\
         {\"op\": \"shutdown\"}\n",
    )
    .unwrap();
    let out = bin()
        .args([
            "serve",
            graph.to_str().unwrap(),
            "--requests",
            req.to_str().unwrap(),
            "--wal",
            store.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("initialized store"),
        "fresh dir initializes"
    );

    let out = bin()
        .args(["recover", store.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: receipt::report::RecoverReport =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(report.kind, "recover");
    assert_eq!(report.checkpoint_lsn, 0);
    assert_eq!(report.wal_records, 2);
    assert_eq!(report.replayed, 2);
    assert_eq!(report.end_lsn, 2);
    assert!(!report.torn_tail_repaired);
    assert!(report.verified);
    // After +2 1 there are 3 butterflies; -0 0 leaves only (u1, u2).
    assert_eq!(report.total_butterflies, 1);
    assert_eq!(report.final_epoch, 2);

    // Reopening the store resumes at the recovered epoch: `stats` answers
    // from epoch 2 even though the graph file on the command line still
    // describes epoch 0.
    std::fs::write(&req, "{\"op\": \"stats\"}\n{\"op\": \"shutdown\"}\n").unwrap();
    let out = bin()
        .args([
            "serve",
            graph.to_str().unwrap(),
            "--requests",
            req.to_str().unwrap(),
            "--wal",
            store.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("recovered store"),
        "existing dir recovers"
    );
    let doc = String::from_utf8_lossy(&out.stdout);
    let value = serde_json::from_str_value(&doc).unwrap();
    let stats = &value["responses"].as_array().unwrap()[0]["stats"];
    assert_eq!(stats["epoch"].as_u64(), Some(2), "{doc}");
    assert_eq!(stats["total_butterflies"].as_u64(), Some(1), "{doc}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_without_store_exits_1() {
    let dir = temp_dir("recover_missing");
    let out = bin()
        .args(["recover", dir.join("nothing").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no store at"), "{stderr}");
    assert!(stderr.contains("nothing"), "{stderr}");
    assert!(
        stderr.contains("while running `tipdecomp recover`"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stream_errors_name_the_ops_file() {
    let dir = temp_dir("stream_err");
    let graph = write_fixture(&dir);
    let out = bin()
        .args(["stream", graph.to_str().unwrap(), "/no/such/ops.txt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("failed to read /no/such/ops.txt"),
        "{stderr}"
    );
    assert!(
        stderr.contains("while running `tipdecomp stream`"),
        "{stderr}"
    );

    // Malformed op line: run error naming the file and line.
    let ops = dir.join("bad_ops.txt");
    std::fs::write(&ops, "+0 0\n0 1\n").unwrap();
    let out = bin()
        .args(["stream", graph.to_str().unwrap(), ops.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad_ops.txt"), "{stderr}");
    assert!(stderr.contains("parse error on line 2"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

//! Golden-snapshot tests for `tipdecomp --json`.
//!
//! Each test runs the real binary on a fixed fixture graph, parses the
//! emitted JSON with the vendored `serde_json`, canonicalizes timing fields
//! via `receipt::report::scrub_timings`, and compares the pretty-printed
//! document byte-for-byte against the committed snapshot under
//! `tests/golden/` at the repository root.
//!
//! To refresh after an intentional schema or algorithm change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p receipt_cli --test json_golden
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

/// The cli_e2e fixture: one butterfly (u0, u1 × v0, v1) plus a pendant u2.
const FIXTURE: &str = "% fixture\n0 0\n0 1\n1 0\n1 1\n2 0\n";

fn fixture_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tipdecomp_golden_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("g.tsv"), FIXTURE).unwrap();
    dir
}

fn golden_path(file: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(file)
}

/// Runs `tipdecomp` with `args` inside `dir` (so the `input` field in the
/// report is the stable relative path `g.tsv`) and returns stdout.
fn run_json(dir: &Path, args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_tipdecomp"))
        .args(args)
        .current_dir(dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "tipdecomp {args:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// Scrubs timings and asserts the document matches the committed snapshot
/// (or rewrites it under `UPDATE_GOLDEN=1`).
fn assert_golden(document: &str, file: &str) {
    let mut value = serde_json::from_str_value(document)
        .unwrap_or_else(|e| panic!("binary emitted invalid JSON ({e}):\n{document}"));
    receipt::report::scrub_timings(&mut value);
    let normalized = serde_json::to_string_pretty(&value).unwrap() + "\n";
    let path = golden_path(file);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &normalized).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path:?}: {e}\nregenerate with: \
             UPDATE_GOLDEN=1 cargo test -p receipt_cli --test json_golden"
        )
    });
    assert_eq!(
        normalized, golden,
        "golden snapshot {file} drifted; if the change is intentional, \
         regenerate with: UPDATE_GOLDEN=1 cargo test -p receipt_cli --test json_golden"
    );
}

#[test]
fn tip_json_matches_golden() {
    let dir = fixture_dir("tip");
    let doc = run_json(&dir, &["tip", "g.tsv", "--json"]);
    assert_golden(&doc, "tip_fixture.json");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wing_json_matches_golden() {
    let dir = fixture_dir("wing");
    let doc = run_json(&dir, &["wing", "g.tsv", "--partitions", "2", "--json"]);
    assert_golden(&doc, "wing_fixture.json");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn count_json_matches_golden() {
    let dir = fixture_dir("count");
    let doc = run_json(&dir, &["count", "g.tsv", "--json"]);
    assert_golden(&doc, "count_fixture.json");
    std::fs::remove_dir_all(&dir).ok();
}

/// A scripted serve session exercising every op, including a per-request
/// error (`ok: false`) and an `apply` batch that advances the epoch. The
/// fixture graph is 0-based, so wire ids are 0-based too.
const SERVE_SCRIPT: &str = "\
# serve golden fixture
{\"op\": \"stats\"}
{\"op\": \"epoch\"}
{\"op\": \"tip\", \"vertex\": 0}
{\"op\": \"butterflies\", \"vertex\": 1, \"side\": \"V\"}
{\"op\": \"butterflies\", \"u\": 0, \"v\": 1}
{\"op\": \"topk\", \"k\": 2}
{\"op\": \"tip\", \"vertex\": 99}
{\"op\": \"apply\", \"ops\": [\"+2 1\"]}
{\"op\": \"tip\", \"vertex\": 2}
{\"op\": \"stats\"}
{\"op\": \"shutdown\"}
";

#[test]
fn serve_session_json_matches_golden() {
    let dir = fixture_dir("serve");
    std::fs::write(dir.join("req.txt"), SERVE_SCRIPT).unwrap();
    let doc = run_json(
        &dir,
        &["serve", "g.tsv", "--requests", "req.txt", "--verify"],
    );
    assert_golden(&doc, "serve_fixture.json");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_json_matches_golden() {
    let dir = fixture_dir("convert");
    let doc = run_json(&dir, &["convert", "g.tsv", "g.bgr", "--json"]);
    assert_golden(&doc, "convert_fixture.json");
    std::fs::remove_dir_all(&dir).ok();
}

/// Builds a deterministic store (init + two durable applies) via a
/// scripted serve session, then snapshots the `recover` report — LSNs,
/// replay counts, and tip checksums are all machine-independent.
#[test]
fn recover_json_matches_golden() {
    let dir = fixture_dir("recover");
    std::fs::write(
        dir.join("req.txt"),
        "{\"op\": \"apply\", \"ops\": [\"+2 1\"]}\n\
         {\"op\": \"apply\", \"ops\": [\"-0 0\"]}\n\
         {\"op\": \"shutdown\"}\n",
    )
    .unwrap();
    run_json(
        &dir,
        &["serve", "g.tsv", "--requests", "req.txt", "--wal", "store"],
    );
    let doc = run_json(&dir, &["recover", "store", "--json"]);
    assert_golden(&doc, "recover_fixture.json");
    std::fs::remove_dir_all(&dir).ok();
}

/// Builds a deterministic tagged store for the versioning goldens: tag
/// the base as `v0`, then tag after each of two durable applies. LSNs,
/// checksums, and diff contents are all machine-independent.
fn tagged_store_dir(tag: &str) -> PathBuf {
    let dir = fixture_dir(tag);
    std::fs::write(
        dir.join("req.txt"),
        "{\"op\": \"tag\", \"name\": \"v0\"}\n\
         {\"op\": \"apply\", \"ops\": [\"+2 1\"]}\n\
         {\"op\": \"tag\", \"name\": \"v1\"}\n\
         {\"op\": \"apply\", \"ops\": [\"-0 0\", \"+0 1\"]}\n\
         {\"op\": \"tag\", \"name\": \"v2\"}\n\
         {\"op\": \"shutdown\"}\n",
    )
    .unwrap();
    run_json(
        &dir,
        &["serve", "g.tsv", "--requests", "req.txt", "--wal", "store"],
    );
    dir
}

#[test]
fn version_list_json_matches_golden() {
    let dir = tagged_store_dir("version_list");
    let doc = run_json(&dir, &["version", "list", "store", "--json"]);
    assert_golden(&doc, "version_list_fixture.json");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_diff_json_matches_golden() {
    let dir = tagged_store_dir("version_diff");
    let doc = run_json(&dir, &["version", "diff", "store", "v0", "v2", "--json"]);
    assert_golden(&doc, "version_diff_fixture.json");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_at_json_matches_golden() {
    let dir = tagged_store_dir("version_at");
    let doc = run_json(
        &dir,
        &["version", "at", "store", "v1", "--verify", "--json"],
    );
    assert_golden(&doc, "version_at_fixture.json");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn derive_subgraph_json_matches_golden() {
    let dir = fixture_dir("derive_subgraph");
    let doc = run_json(
        &dir,
        &[
            "derive", "subgraph", "g.tsv", "--ids", "0,1", "--side", "U", "--output", "sub.tsv",
            "--json",
        ],
    );
    assert_golden(&doc, "derive_subgraph_fixture.json");
    // The derived graph is on disk and loadable: the one butterfly of the
    // fixture lives entirely inside {u0, u1}.
    let sub = std::fs::read_to_string(dir.join("sub.tsv")).unwrap();
    assert_eq!(sub.lines().filter(|l| !l.starts_with('%')).count(), 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn derive_union_json_matches_golden() {
    let dir = fixture_dir("derive_union");
    std::fs::write(dir.join("h.tsv"), "% second input\n0 0\n3 2\n").unwrap();
    let doc = run_json(
        &dir,
        &[
            "derive", "union", "g.tsv", "h.tsv", "--output", "u.bgr", "--json",
        ],
    );
    assert_golden(&doc, "derive_union_fixture.json");
    // Round trip through the binary image: 5 + 1 new edge.
    let round = bigraph::binfmt::read_binary_graph_path(dir.join("u.bgr")).unwrap();
    assert_eq!(round.graph.num_edges(), 6);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_round_trips_byte_identically() {
    // Independent of the snapshots: whatever the binary emits must
    // parse → re-serialize to the identical bytes (modulo the trailing
    // newline the CLI appends).
    let dir = fixture_dir("roundtrip");
    for args in [
        vec!["tip", "g.tsv", "--json"],
        vec!["wing", "g.tsv", "--json"],
        vec!["wing", "g.tsv", "--partitions", "3", "--json"],
        vec!["count", "g.tsv", "--json"],
    ] {
        let doc = run_json(&dir, &args);
        let trimmed = doc.strip_suffix('\n').expect("doc ends with newline");
        let value = serde_json::from_str_value(trimmed).unwrap();
        assert_eq!(
            serde_json::to_string_pretty(&value).unwrap(),
            trimmed,
            "{args:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_out_flag_writes_file() {
    let dir = fixture_dir("outfile");
    let out = Command::new(env!("CARGO_BIN_EXE_tipdecomp"))
        .args(["tip", "g.tsv", "--json", "--out", "report.json"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "report went to the file, not stdout");
    let doc = std::fs::read_to_string(dir.join("report.json")).unwrap();
    let value = serde_json::from_str_value(&doc).unwrap();
    assert_eq!(value["kind"].as_str(), Some("tip"));
    assert_eq!(value["theta_max"].as_u64(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

//! Implementation of the `tipdecomp` command-line tool.
//!
//! Lives in a library so the argument parsing and command execution are
//! unit-testable; `main.rs` is a thin shim.

use bigraph::{BipartiteCsr, Side};
use receipt::{hierarchy, Config};
use std::io::Write;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `tip <input> [--side U|V] [--partitions N] [--threads N]
    /// [--no-huc] [--no-dgm] [--output FILE] [--json] [--stats]`
    Tip {
        input: String,
        side: Side,
        config: Config,
        output: Option<String>,
        json: bool,
        stats: bool,
    },
    /// `wing <input> [--side U|V] [--partitions N] [--output FILE] [--json]`
    Wing {
        input: String,
        side: Side,
        partitions: usize,
        output: Option<String>,
        json: bool,
    },
    /// `count <input> [--output FILE] [--json]`
    Count {
        input: String,
        output: Option<String>,
        json: bool,
    },
    /// `ktips <input> -k N [--side U|V]`
    KTips {
        input: String,
        side: Side,
        k: u64,
    },
    /// `stats <input>`
    Stats {
        input: String,
    },
    /// `generate <preset> [--output FILE]` — emit a dataset analog.
    Generate {
        preset: String,
        output: Option<String>,
    },
    Help,
}

impl Command {
    /// The subcommand keyword, used in run-error context.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Tip { .. } => "tip",
            Command::Wing { .. } => "wing",
            Command::Count { .. } => "count",
            Command::KTips { .. } => "ktips",
            Command::Stats { .. } => "stats",
            Command::Generate { .. } => "generate",
            Command::Help => "help",
        }
    }
}

/// Argument-parsing failure with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

pub const USAGE: &str = "\
tipdecomp — tip/wing decomposition of bipartite graphs (RECEIPT, VLDB 2020)

USAGE:
  tipdecomp tip <edges.tsv>   [--side U|V] [--partitions N] [--threads N]
                              [--no-huc] [--no-dgm] [--output FILE] [--json]
                              [--stats]
  tipdecomp wing <edges.tsv>  [--side U|V] [--partitions N] [--output FILE]
                              [--json]
  tipdecomp count <edges.tsv> [--output FILE] [--json]
  tipdecomp ktips <edges.tsv> -k N [--side U|V]
  tipdecomp stats <edges.tsv>
  tipdecomp generate <It|De|Or|Lj|En|Tr> [--output FILE]

Input: whitespace-separated `u v` pairs; `%`/`#` comments ignored;
1-based ids auto-detected (KONECT format).
Output: `--json` emits a versioned report document (see README, \"JSON
output\") instead of TSV; `--out` is an alias for `--output`.
";

/// Parses `args` (without the binary name).
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let rest: Vec<&String> = it.collect();
    let positional = |rest: &[&String]| -> Result<String, UsageError> {
        rest.first()
            .filter(|s| !s.starts_with('-'))
            .map(|s| s.to_string())
            .ok_or_else(|| UsageError(format!("`{cmd}` needs an input file")))
    };
    let flag = |name: &str| rest.iter().any(|a| a.as_str() == name);
    let opt = |name: &str| -> Option<&String> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1))
            .copied()
    };
    let opt_usize = |name: &str, default: usize| -> Result<usize, UsageError> {
        match opt(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| UsageError(format!("{name} expects an integer, got {s:?}"))),
        }
    };
    let side = match opt("--side").map(|s| s.to_ascii_uppercase()) {
        None => Side::U,
        Some(s) if s == "U" => Side::U,
        Some(s) if s == "V" => Side::V,
        Some(s) => return Err(UsageError(format!("--side expects U or V, got {s:?}"))),
    };

    // `--out` is an alias for `--output`.
    let output = || opt("--output").or_else(|| opt("--out")).cloned();

    match cmd.as_str() {
        "tip" => {
            let mut config = Config::default();
            config.partitions = opt_usize("--partitions", config.partitions)?;
            config.threads = opt_usize("--threads", 0)?;
            config.huc = !flag("--no-huc");
            config.dgm = !flag("--no-dgm");
            Ok(Command::Tip {
                input: positional(&rest)?,
                side,
                config,
                output: output(),
                json: flag("--json"),
                stats: flag("--stats"),
            })
        }
        "wing" => Ok(Command::Wing {
            input: positional(&rest)?,
            side,
            partitions: opt_usize("--partitions", 0)?,
            output: output(),
            json: flag("--json"),
        }),
        "count" => Ok(Command::Count {
            input: positional(&rest)?,
            output: output(),
            json: flag("--json"),
        }),
        "ktips" => {
            let k = opt("-k")
                .ok_or_else(|| UsageError("ktips needs -k N".into()))?
                .parse()
                .map_err(|_| UsageError("-k expects an integer".into()))?;
            Ok(Command::KTips {
                input: positional(&rest)?,
                side,
                k,
            })
        }
        "stats" => Ok(Command::Stats {
            input: positional(&rest)?,
        }),
        "generate" => Ok(Command::Generate {
            preset: positional(&rest)?,
            output: output(),
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(UsageError(format!("unknown command {other:?}"))),
    }
}

fn load(input: &str) -> Result<BipartiteCsr, String> {
    bigraph::io::read_graph_path(input).map_err(|e| format!("failed to read {input}: {e}"))
}

fn sink(output: &Option<String>) -> Result<Box<dyn Write>, String> {
    match output {
        None => Ok(Box::new(std::io::stdout().lock())),
        Some(path) => std::fs::File::create(path)
            .map(|f| Box::new(std::io::BufWriter::new(f)) as Box<dyn Write>)
            .map_err(|e| format!("cannot create {path}: {e}")),
    }
}

/// Pretty-prints a report document (plus trailing newline) to the sink.
fn emit_json<T: serde::Serialize>(report: &T, output: &Option<String>) -> Result<(), String> {
    let mut out = sink(output)?;
    let text = serde_json::to_string_pretty(report).map_err(|e| e.to_string())?;
    writeln!(out, "{text}").map_err(|e| e.to_string())
}

/// Executes a parsed command. Returns the process exit code.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Tip {
            input,
            side,
            config,
            output,
            json,
            stats,
        } => {
            let g = load(&input)?;
            let d = receipt::tip_decompose(&g, side, &config);
            if json {
                emit_json(
                    &receipt::report::TipReport::new(&input, &config, &d),
                    &output,
                )?;
            } else {
                let mut out = sink(&output)?;
                writeln!(out, "# vertex\ttip_number").map_err(|e| e.to_string())?;
                for (u, t) in d.tip.iter().enumerate() {
                    writeln!(out, "{u}\t{t}").map_err(|e| e.to_string())?;
                }
            }
            if stats {
                let m = &d.metrics;
                eprintln!(
                    "theta_max={} wedges={} (count {}, cd {}, fd {}) rounds={} \
                     recounts={} compactions={} partitions={} time={:.3}s",
                    d.theta_max(),
                    m.wedges_total(),
                    m.wedges_count,
                    m.wedges_cd,
                    m.wedges_fd,
                    m.sync_rounds,
                    m.recounts,
                    m.compactions,
                    m.partitions_used,
                    m.time_total().as_secs_f64()
                );
            }
            Ok(())
        }
        Command::Wing {
            input,
            side,
            partitions,
            output,
            json,
        } => {
            let g = load(&input)?;
            let view = g.view(side);
            let (d, wing_metrics) = if partitions > 0 {
                let (d, m) = receipt::wing_parallel::receipt_wing_decompose(view, partitions, 4);
                (d, Some(m))
            } else {
                (receipt::wing::wing_decompose(view, 4), None)
            };
            if json {
                let report =
                    receipt::report::WingReport::new(&input, side, partitions, &d, wing_metrics);
                emit_json(&report, &output)?;
            } else {
                let mut out = sink(&output)?;
                writeln!(out, "# u\tv\twing_number").map_err(|e| e.to_string())?;
                for (e, &(u, v)) in d.edges.iter().enumerate() {
                    writeln!(out, "{u}\t{v}\t{}", d.wing[e]).map_err(|e| e.to_string())?;
                }
            }
            Ok(())
        }
        Command::Count {
            input,
            output,
            json,
        } => {
            let g = load(&input)?;
            let c = butterfly::par_count_graph(&g);
            if json {
                emit_json(&receipt::report::CountReport::new(&input, &c), &output)?;
            } else {
                let mut out = sink(&output)?;
                writeln!(out, "# side\tvertex\tbutterflies").map_err(|e| e.to_string())?;
                for (u, b) in c.u.iter().enumerate() {
                    writeln!(out, "U\t{u}\t{b}").map_err(|e| e.to_string())?;
                }
                for (v, b) in c.v.iter().enumerate() {
                    writeln!(out, "V\t{v}\t{b}").map_err(|e| e.to_string())?;
                }
                eprintln!("total butterflies: {}", c.total());
            }
            Ok(())
        }
        Command::KTips { input, side, k } => {
            let g = load(&input)?;
            let d = receipt::tip_decompose(&g, side, &Config::default());
            let comps = hierarchy::ktip_components(g.view(side), &d.tip, k);
            println!("# {} {k}-tip component(s)", comps.len());
            for (i, c) in comps.iter().enumerate() {
                println!(
                    "{i}\t{}\t{}",
                    c.len(),
                    c.iter()
                        .map(|u| u.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                );
            }
            Ok(())
        }
        Command::Stats { input } => {
            let g = load(&input)?;
            let vu = g.view(Side::U);
            let vv = g.view(Side::V);
            let c = butterfly::par_count_graph(&g);
            println!("|U| = {}", g.num_u());
            println!("|V| = {}", g.num_v());
            println!("|E| = {}", g.num_edges());
            println!(
                "avg degree U/V = {:.2} / {:.2}",
                bigraph::stats::avg_primary_degree(vu),
                bigraph::stats::avg_primary_degree(vv)
            );
            println!("butterflies = {}", c.total());
            println!(
                "wedges (U endpoints) = {}",
                bigraph::stats::total_primary_wedges(vu)
            );
            println!(
                "wedges (V endpoints) = {}",
                bigraph::stats::total_primary_wedges(vv)
            );
            Ok(())
        }
        Command::Generate { preset, output } => {
            let spec = bigraph::datasets::by_name(&preset)
                .ok_or_else(|| format!("unknown preset {preset:?} (It|De|Or|Lj|En|Tr)"))?;
            let g = spec.generate();
            match output {
                None => bigraph::io::write_graph(&g, std::io::stdout().lock())
                    .map_err(|e| e.to_string()),
                Some(path) => {
                    bigraph::io::write_graph_path(&g, &path).map_err(|e| e.to_string())?;
                    eprintln!(
                        "wrote {} ({} x {}, {} edges)",
                        path,
                        g.num_u(),
                        g.num_v(),
                        g.num_edges()
                    );
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_tip_defaults() {
        let cmd = parse(&sv(&["tip", "g.tsv"])).unwrap();
        match cmd {
            Command::Tip {
                input,
                side,
                config,
                output,
                json,
                stats,
            } => {
                assert_eq!(input, "g.tsv");
                assert_eq!(side, Side::U);
                assert_eq!(config, Config::default());
                assert!(output.is_none());
                assert!(!json);
                assert!(!stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_tip_flags() {
        let cmd = parse(&sv(&[
            "tip",
            "g.tsv",
            "--side",
            "v",
            "--partitions",
            "42",
            "--no-dgm",
            "--stats",
            "--output",
            "out.tsv",
        ]))
        .unwrap();
        match cmd {
            Command::Tip {
                side,
                config,
                output,
                stats,
                ..
            } => {
                assert_eq!(side, Side::V);
                assert_eq!(config.partitions, 42);
                assert!(!config.dgm);
                assert!(config.huc);
                assert_eq!(output.as_deref(), Some("out.tsv"));
                assert!(stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&sv(&["tip"])).is_err());
        assert!(parse(&sv(&["tip", "--side"])).is_err());
        assert!(parse(&sv(&["tip", "g.tsv", "--side", "X"])).is_err());
        assert!(parse(&sv(&["ktips", "g.tsv"])).is_err());
        assert!(parse(&sv(&["frobnicate"])).is_err());
        assert!(parse(&sv(&["tip", "g.tsv", "--partitions", "many"])).is_err());
    }

    #[test]
    fn parse_help_and_empty() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&sv(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn end_to_end_tip_roundtrip() {
        // Generate, decompose, read back.
        let dir = std::env::temp_dir().join("tipdecomp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.tsv");
        let out_path = dir.join("tips.tsv");
        let g = bigraph::gen::planted_bicliques(10, 10, 1, 4, 4, 8, 3);
        // Pin the last ids so read-back sizing (max observed id) matches.
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        edges.push((9, 9));
        let g = bigraph::builder::from_edges(10, 10, &edges).unwrap();
        bigraph::io::write_graph_path(&g, &graph_path).unwrap();

        run(Command::Tip {
            input: graph_path.to_string_lossy().into_owned(),
            side: Side::U,
            config: Config::default(),
            output: Some(out_path.to_string_lossy().into_owned()),
            json: false,
            stats: false,
        })
        .unwrap();

        let text = std::fs::read_to_string(&out_path).unwrap();
        let rows: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(rows.len(), 10);
        // Block members (u0..u3) have tip number (4-1)*C(4,2) = 18 or more.
        let first: u64 = rows[0].split('\t').nth(1).unwrap().parse().unwrap();
        assert!(first >= 18, "block member tip = {first}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_missing_file_fails() {
        let err = run(Command::Stats {
            input: "/nonexistent/g.tsv".into(),
        })
        .unwrap_err();
        assert!(err.contains("failed to read"));
    }

    #[test]
    fn generate_unknown_preset_fails() {
        let err = run(Command::Generate {
            preset: "Zz".into(),
            output: None,
        })
        .unwrap_err();
        assert!(err.contains("unknown preset"));
    }
}

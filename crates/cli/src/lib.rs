//! Implementation of the `tipdecomp` command-line tool.
//!
//! Lives in a library so the argument parsing and command execution are
//! unit-testable; `main.rs` is a thin shim.

#![forbid(unsafe_code)]

use bigraph::{BipartiteCsr, Side};
use receipt::engine::{EngineOptions, StreamEngine};
use receipt::report::{ServeResponse, ServeSessionReport, ServeStats, TopKEntry};
use receipt::{hierarchy, Config};
use std::io::{BufRead, Write};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `tip <input> [--side U|V] [--partitions N] [--threads N]
    /// [--no-huc] [--no-dgm] [--output FILE] [--json] [--stats]`
    Tip {
        input: String,
        side: Side,
        config: Config,
        output: Option<String>,
        json: bool,
        stats: bool,
    },
    /// `wing <input> [--side U|V] [--partitions N] [--output FILE] [--json]`
    Wing {
        input: String,
        side: Side,
        partitions: usize,
        output: Option<String>,
        json: bool,
    },
    /// `count <input> [--output FILE] [--json]`
    Count {
        input: String,
        output: Option<String>,
        json: bool,
    },
    /// `stream <input> <ops> [--side U|V] [--dirty-threshold F]
    /// [--compact-threshold F] [--verify] [--output FILE] [--json]`
    Stream {
        input: String,
        ops: String,
        side: Side,
        config: Config,
        dirty_threshold: f64,
        compact_threshold: f64,
        verify: bool,
        output: Option<String>,
        json: bool,
    },
    /// `serve <input> [--dirty-threshold F] [--compact-threshold F]
    /// [--verify] [--requests FILE] [--socket PATH] [--output FILE]
    /// [--wal DIR] [--checkpoint-every N]`
    Serve {
        input: String,
        config: Config,
        dirty_threshold: f64,
        compact_threshold: f64,
        verify: bool,
        /// Scripted session: newline-delimited JSON requests; the run
        /// emits one `serve-session` report document instead of framing.
        requests: Option<String>,
        /// Speak the framed protocol over a Unix socket instead of
        /// stdin/stdout.
        socket: Option<String>,
        output: Option<String>,
        /// Durable store directory: applied batches are WAL-logged before
        /// they take effect, and an existing store is recovered (the graph
        /// file is only used to initialize a fresh store).
        wal: Option<String>,
        /// Fold a fresh checkpoint every N durable batches (0 = never).
        checkpoint_every: u64,
    },
    /// `convert <input> <output> [--from text|binary] [--to text|binary]
    /// [--json]` — formats inferred from `.bgr` extensions when not given.
    Convert {
        input: String,
        output: String,
        from: Option<String>,
        to: Option<String>,
        json: bool,
    },
    /// `recover <dir> [--json] [--output FILE]` — open a durable store,
    /// repair a torn WAL tail, replay past the checkpoint, verify against
    /// the from-scratch oracle.
    Recover {
        dir: String,
        json: bool,
        output: Option<String>,
    },
    /// `version <tag|list|diff|at> <dir> [names..] [--verify]
    /// [--dump FILE] [--json] [--output FILE]` — named versions over a
    /// durable store (`VERSIONING.md`).
    Version {
        /// `"tag"`, `"list"`, `"diff"`, or `"at"`.
        op: String,
        dir: String,
        /// Tag names: one for `tag`/`at`, two for `diff`, none for `list`.
        names: Vec<String>,
        /// `at` only: additionally oracle-verify the materialized state.
        verify: bool,
        /// `at` only: write the materialized graph here (text, or the
        /// `.bgr` binary image by extension) for `derive` to consume.
        dump: Option<String>,
        json: bool,
        output: Option<String>,
    },
    /// `derive <subgraph|union|diff> <a> [<b>] [--ids LIST] [--side U|V]
    /// --output FILE [--json]` — set-algebraic graph construction
    /// (`VERSIONING.md` §6).
    Derive {
        /// `"subgraph"`, `"union"`, or `"diff"`.
        op: String,
        a: String,
        /// Second input (`union`/`diff`).
        b: Option<String>,
        /// Comma-separated primary-side ids (`subgraph`).
        ids: Vec<u32>,
        side: Side,
        output: String,
        json: bool,
    },
    /// `ktips <input> -k N [--side U|V]`
    KTips {
        input: String,
        side: Side,
        k: u64,
    },
    /// `stats <input>`
    Stats {
        input: String,
    },
    /// `generate <preset> [--output FILE]` — emit a dataset analog.
    Generate {
        preset: String,
        output: Option<String>,
    },
    Help,
}

impl Command {
    /// The subcommand keyword, used in run-error context.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Tip { .. } => "tip",
            Command::Wing { .. } => "wing",
            Command::Count { .. } => "count",
            Command::Stream { .. } => "stream",
            Command::Serve { .. } => "serve",
            Command::Convert { .. } => "convert",
            Command::Recover { .. } => "recover",
            Command::Version { .. } => "version",
            Command::Derive { .. } => "derive",
            Command::KTips { .. } => "ktips",
            Command::Stats { .. } => "stats",
            Command::Generate { .. } => "generate",
            Command::Help => "help",
        }
    }
}

/// Argument-parsing failure with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

pub const USAGE: &str = "\
tipdecomp — tip/wing decomposition of bipartite graphs (RECEIPT, VLDB 2020)

USAGE:
  tipdecomp tip <edges.tsv>   [--side U|V] [--partitions N] [--threads N]
                              [--no-huc] [--no-dgm] [--output FILE] [--json]
                              [--stats]
  tipdecomp wing <edges.tsv>  [--side U|V] [--partitions N] [--output FILE]
                              [--json]
  tipdecomp count <edges.tsv> [--output FILE] [--json]
  tipdecomp stream <edges.tsv> <ops.txt> [--side U|V] [--dirty-threshold F]
                              [--compact-threshold F] [--verify]
                              [--output FILE] [--json]
  tipdecomp serve <edges.tsv> [--dirty-threshold F] [--compact-threshold F]
                              [--verify] [--requests FILE] [--socket PATH]
                              [--output FILE] [--wal DIR]
                              [--checkpoint-every N]
  tipdecomp convert <in> <out> [--from text|binary] [--to text|binary]
                              [--json]
  tipdecomp recover <dir>     [--json] [--output FILE]
  tipdecomp version tag  <dir> <name>      [--json]
  tipdecomp version list <dir>             [--json] [--output FILE]
  tipdecomp version diff <dir> <a> <b>     [--json] [--output FILE]
  tipdecomp version at   <dir> <name>      [--verify] [--dump FILE]
                              [--json] [--output FILE]
  tipdecomp derive subgraph <a> --ids 0,2,5 [--side U|V] --output FILE
                              [--json]
  tipdecomp derive union <a> <b>  --output FILE [--json]
  tipdecomp derive diff  <a> <b>  --output FILE [--json]
  tipdecomp ktips <edges.tsv> -k N [--side U|V]
  tipdecomp stats <edges.tsv>
  tipdecomp generate <It|De|Or|Lj|En|Tr> [--output FILE]

Input: whitespace-separated `u v` pairs; `%`/`#` comments ignored; a
`% m nu nv` header pins side sizes and 0-based ids, otherwise 1-based
ids are auto-detected (KONECT format).
Stream ops: `+ u v` inserts, `- u v` deletes (sign may be glued to u);
blank lines separate batches. Ops share the graph file's id base (a
1-based graph file means 1-based ops). Each batch updates butterfly
counts incrementally and re-peels per the dirty-fraction policy;
`--verify` additionally checks every batch against a from-scratch
recount + BUP. Without `--output`, stream rows are flushed after every
batch so long-running streams can be tailed (`--json` then emits one
compact row per line followed by the full report document).
Serve: resident epoch-snapshot engine answering point queries (tip,
butterflies, topk, stats, epoch) and `apply` batches. Default speaks
length-prefixed JSON frames (ASCII byte length, newline, payload) on
stdin/stdout, `--socket` the same over a Unix socket; `--requests FILE`
replays newline-delimited JSON requests and emits one `serve-session`
report document. See README, \"Serve mode\".
Durability: `serve --wal DIR` logs every applied batch to a write-ahead
log before it takes effect and folds periodic checkpoints; if DIR
already holds a store the graph file is ignored and the store is
recovered instead. `convert` translates between the KONECT text format
and the checksummed `.bgr` binary image (formats inferred from the
`.bgr` extension unless `--from`/`--to` say otherwise). `recover DIR`
repairs a torn WAL tail, replays committed records past the
checkpoint, and verifies the result against a from-scratch recount +
re-peel. On-disk layouts are pinned in FORMATS.md.
Versioning: `version tag DIR NAME` names the store's current end state
as an immutable version; `list` shows every version; `diff A B` emits
the net `+/-` batch between two versions (stream-compatible lines);
`at NAME` replays to the tagged LSN, checks the state's checksums
against the ref, and (with `--dump`) writes the materialized graph for
`derive` to consume. `derive` builds new graphs set-algebraically:
`subgraph` induces on `--ids` of `--side` (the subset becomes the new
U side), `union`/`diff` merge or subtract edge sets. Contracts and
`versions.meta` bytes are pinned in VERSIONING.md; serve mode speaks
the same `tag`/`at` as request ops.
Output: `--json` emits a versioned report document (see README, \"JSON
output\") instead of TSV; `--out` is an alias for `--output`.
";

/// Positional (non-flag) arguments, skipping the value of every option
/// in `value_opts` so `--output FILE` and friends are not mistaken for
/// inputs. Used by the multi-positional subcommands (`version`,
/// `derive`).
fn positionals(rest: &[&String], value_opts: &[&str]) -> Vec<String> {
    rest.iter()
        .enumerate()
        .filter(|(i, s)| {
            !s.starts_with('-') && (*i == 0 || !value_opts.contains(&rest[i - 1].as_str()))
        })
        .map(|(_, s)| s.to_string())
        .collect()
}

/// Parses `args` (without the binary name).
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let rest: Vec<&String> = it.collect();
    let positional = |rest: &[&String]| -> Result<String, UsageError> {
        rest.first()
            .filter(|s| !s.starts_with('-'))
            .map(|s| s.to_string())
            .ok_or_else(|| UsageError(format!("`{cmd}` needs an input file")))
    };
    let flag = |name: &str| rest.iter().any(|a| a.as_str() == name);
    let opt = |name: &str| -> Option<&String> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1))
            .copied()
    };
    let opt_usize = |name: &str, default: usize| -> Result<usize, UsageError> {
        match opt(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| UsageError(format!("{name} expects an integer, got {s:?}"))),
        }
    };
    let opt_f64 = |name: &str, default: f64| -> Result<f64, UsageError> {
        match opt(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| UsageError(format!("{name} expects a number, got {s:?}"))),
        }
    };
    let side = match opt("--side").map(|s| s.to_ascii_uppercase()) {
        None => Side::U,
        Some(s) if s == "U" => Side::U,
        Some(s) if s == "V" => Side::V,
        Some(s) => return Err(UsageError(format!("--side expects U or V, got {s:?}"))),
    };

    // `--out` is an alias for `--output`.
    let output = || opt("--output").or_else(|| opt("--out")).cloned();

    match cmd.as_str() {
        "tip" => {
            let mut config = Config::default();
            config.partitions = opt_usize("--partitions", config.partitions)?;
            config.threads = opt_usize("--threads", 0)?;
            config.huc = !flag("--no-huc");
            config.dgm = !flag("--no-dgm");
            Ok(Command::Tip {
                input: positional(&rest)?,
                side,
                config,
                output: output(),
                json: flag("--json"),
                stats: flag("--stats"),
            })
        }
        "wing" => Ok(Command::Wing {
            input: positional(&rest)?,
            side,
            partitions: opt_usize("--partitions", 0)?,
            output: output(),
            json: flag("--json"),
        }),
        "count" => Ok(Command::Count {
            input: positional(&rest)?,
            output: output(),
            json: flag("--json"),
        }),
        "stream" => {
            let input = positional(&rest)?;
            let ops = rest
                .get(1)
                .filter(|s| !s.starts_with('-'))
                .map(|s| s.to_string())
                .ok_or_else(|| UsageError("`stream` needs a graph file and an ops file".into()))?;
            let mut config = Config::default();
            config.partitions = opt_usize("--partitions", config.partitions)?;
            config.threads = opt_usize("--threads", 0)?;
            Ok(Command::Stream {
                input,
                ops,
                side,
                config,
                dirty_threshold: opt_f64(
                    "--dirty-threshold",
                    receipt::dynamic::DEFAULT_DIRTY_THRESHOLD,
                )?,
                compact_threshold: opt_f64(
                    "--compact-threshold",
                    bigraph::dynamic::DEFAULT_COMPACT_THRESHOLD,
                )?,
                verify: flag("--verify"),
                output: output(),
                json: flag("--json"),
            })
        }
        "serve" => {
            let mut config = Config::default();
            config.partitions = opt_usize("--partitions", config.partitions)?;
            config.threads = opt_usize("--threads", 0)?;
            Ok(Command::Serve {
                input: positional(&rest)?,
                config,
                dirty_threshold: opt_f64(
                    "--dirty-threshold",
                    receipt::dynamic::DEFAULT_DIRTY_THRESHOLD,
                )?,
                compact_threshold: opt_f64(
                    "--compact-threshold",
                    bigraph::dynamic::DEFAULT_COMPACT_THRESHOLD,
                )?,
                verify: flag("--verify"),
                requests: opt("--requests").cloned(),
                socket: opt("--socket").cloned(),
                output: output(),
                wal: opt("--wal").cloned(),
                checkpoint_every: opt_usize(
                    "--checkpoint-every",
                    receipt::wal::DEFAULT_CHECKPOINT_EVERY as usize,
                )? as u64,
            })
        }
        "convert" => {
            let input = positional(&rest)?;
            let out = rest
                .get(1)
                .filter(|s| !s.starts_with('-'))
                .map(|s| s.to_string())
                .ok_or_else(|| {
                    UsageError("`convert` needs an input file and an output file".into())
                })?;
            let fmt = |name: &str| -> Result<Option<String>, UsageError> {
                match opt(name).map(|s| s.to_ascii_lowercase()) {
                    None => Ok(None),
                    Some(s) if s == "text" || s == "binary" => Ok(Some(s)),
                    Some(s) => Err(UsageError(format!(
                        "{name} expects text or binary, got {s:?}"
                    ))),
                }
            };
            Ok(Command::Convert {
                input,
                output: out,
                from: fmt("--from")?,
                to: fmt("--to")?,
                json: flag("--json"),
            })
        }
        "recover" => Ok(Command::Recover {
            dir: rest
                .first()
                .filter(|s| !s.starts_with('-'))
                .map(|s| s.to_string())
                .ok_or_else(|| UsageError("`recover` needs a store directory".into()))?,
            json: flag("--json"),
            output: output(),
        }),
        "version" => {
            let non_flags = positionals(&rest, &["--dump", "--output", "--out"]);
            let [op, tail @ ..] = non_flags.as_slice() else {
                return Err(UsageError(
                    "`version` needs an operation: tag, list, diff, or at".into(),
                ));
            };
            let [dir, names @ ..] = tail else {
                return Err(UsageError(format!(
                    "`version {op}` needs a store directory"
                )));
            };
            let arity = match op.as_str() {
                "tag" | "at" => 1,
                "list" => 0,
                "diff" => 2,
                other => {
                    return Err(UsageError(format!(
                        "unknown version operation {other:?} (tag, list, diff, or at)"
                    )))
                }
            };
            if names.len() != arity {
                return Err(UsageError(format!(
                    "`version {op}` takes {arity} tag name(s), got {}",
                    names.len()
                )));
            }
            Ok(Command::Version {
                op: op.clone(),
                dir: dir.clone(),
                names: names.to_vec(),
                verify: flag("--verify"),
                dump: opt("--dump").cloned(),
                json: flag("--json"),
                output: output(),
            })
        }
        "derive" => {
            let non_flags = positionals(&rest, &["--ids", "--side", "--output", "--out"]);
            let [op, inputs @ ..] = non_flags.as_slice() else {
                return Err(UsageError(
                    "`derive` needs an operation: subgraph, union, or diff".into(),
                ));
            };
            let want_b = match op.as_str() {
                "subgraph" => false,
                "union" | "diff" => true,
                other => {
                    return Err(UsageError(format!(
                        "unknown derive operation {other:?} (subgraph, union, or diff)"
                    )))
                }
            };
            let (a, b) = match (inputs, want_b) {
                ([a], false) => (a.clone(), None),
                ([a, b], true) => (a.clone(), Some(b.clone())),
                _ => {
                    return Err(UsageError(format!(
                        "`derive {op}` takes {} input graph(s), got {}",
                        1 + usize::from(want_b),
                        inputs.len()
                    )))
                }
            };
            let ids = match (op.as_str(), opt("--ids")) {
                ("subgraph", Some(list)) => list
                    .split(',')
                    .map(|s| {
                        s.trim().parse::<u32>().map_err(|_| {
                            UsageError(format!("--ids expects comma-separated ids, got {s:?}"))
                        })
                    })
                    .collect::<Result<Vec<u32>, _>>()?,
                ("subgraph", None) => {
                    return Err(UsageError("`derive subgraph` needs --ids LIST".into()))
                }
                _ => Vec::new(),
            };
            Ok(Command::Derive {
                op: op.clone(),
                a,
                b,
                ids,
                side,
                output: output()
                    .ok_or_else(|| UsageError(format!("`derive {op}` needs --output FILE")))?,
                json: flag("--json"),
            })
        }
        "ktips" => {
            let k = opt("-k")
                .ok_or_else(|| UsageError("ktips needs -k N".into()))?
                .parse()
                .map_err(|_| UsageError("-k expects an integer".into()))?;
            Ok(Command::KTips {
                input: positional(&rest)?,
                side,
                k,
            })
        }
        "stats" => Ok(Command::Stats {
            input: positional(&rest)?,
        }),
        "generate" => Ok(Command::Generate {
            preset: positional(&rest)?,
            output: output(),
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(UsageError(format!("unknown command {other:?}"))),
    }
}

fn load(input: &str) -> Result<BipartiteCsr, String> {
    // `read_graph_path` wraps every failure with the offending path
    // (`IoError::File`), so the message already reads "failed to read
    // <path>: ...".
    bigraph::io::read_graph_path(input).map_err(|e| e.to_string())
}

/// Reads a graph in either on-disk format, inferring the FORMATS.md §1
/// binary image from a `.bgr` extension (same rule as `convert`).
fn load_any(path: &str) -> Result<BipartiteCsr, String> {
    if path.ends_with(".bgr") {
        bigraph::binfmt::read_binary_graph_path(path)
            .map(|r| r.graph)
            .map_err(|e| e.to_string())
    } else {
        load(path)
    }
}

/// Writes a graph in either on-disk format, `.bgr` by extension.
fn write_any(g: &BipartiteCsr, path: &str) -> Result<(), String> {
    if path.ends_with(".bgr") {
        bigraph::binfmt::write_binary_graph_path(path, g)
            .map(|_| ())
            .map_err(|e| format!("cannot write {path}: {e}"))
    } else {
        bigraph::io::write_graph_path(g, path).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

fn sink(output: &Option<String>) -> Result<Box<dyn Write>, String> {
    match output {
        None => Ok(Box::new(std::io::stdout().lock())),
        Some(path) => std::fs::File::create(path)
            .map(|f| Box::new(std::io::BufWriter::new(f)) as Box<dyn Write>)
            .map_err(|e| format!("cannot create {path}: {e}")),
    }
}

/// Pretty-prints a report document (plus trailing newline) to the sink.
fn emit_json<T: serde::Serialize>(report: &T, output: &Option<String>) -> Result<(), String> {
    let mut out = sink(output)?;
    let text = serde_json::to_string_pretty(report).map_err(|e| e.to_string())?;
    writeln!(out, "{text}").map_err(|e| e.to_string())
}

/// Aligns ops-file ids with the graph file's id base: a 1-based graph
/// file means a 1-based ops file, so shift the ops down identically.
fn rebase_ops(
    batches: Vec<Vec<bigraph::EdgeOp>>,
    graph_one_based: bool,
    ops_path: &str,
) -> Result<Vec<Vec<bigraph::EdgeOp>>, String> {
    use bigraph::EdgeOp;
    if !graph_one_based {
        return Ok(batches);
    }
    batches
        .into_iter()
        .map(|batch| {
            batch
                .into_iter()
                .map(|op| {
                    let (u, v) = op.edge();
                    if u == 0 || v == 0 {
                        return Err(format!(
                            "{ops_path}: op references id 0 but the graph file is 1-based \
                             (ops share the graph file's id base)"
                        ));
                    }
                    Ok(match op {
                        EdgeOp::Insert(..) => EdgeOp::Insert(u - 1, v - 1),
                        EdgeOp::Delete(..) => EdgeOp::Delete(u - 1, v - 1),
                    })
                })
                .collect()
        })
        .collect()
}

/// Drives a stream of batches through a [`StreamEngine`], producing the
/// versioned per-batch report. `on_row` sees every completed batch row as
/// soon as it exists (the incremental-emission hook: callers flush it so
/// long streams can be tailed). With `verify`, the engine differentially
/// checks every batch against a from-scratch recount and a BUP re-peel of
/// the materialized graph (a mismatch is a run error → exit 1). Honours
/// `config.threads` the same way `tip_decompose` does: a nonzero value
/// runs the whole stream inside a dedicated pool of that size.
#[allow(clippy::too_many_arguments)]
fn run_stream(
    input: &str,
    ops: &str,
    g: bigraph::BipartiteCsr,
    batches: &[Vec<bigraph::EdgeOp>],
    side: Side,
    config: Config,
    dirty_threshold: f64,
    compact_threshold: f64,
    verify: bool,
    on_row: &mut (dyn FnMut(&receipt::report::StreamBatchReport) -> Result<(), String> + Send),
) -> Result<receipt::report::StreamReport, String> {
    let threads = config.threads;
    let options = EngineOptions {
        config: config.clone(),
        dirty_threshold,
        compact_threshold,
        verify,
    };
    let drive = move || -> Result<receipt::report::StreamReport, String> {
        let engine = StreamEngine::new(g, options);
        let mut rows = Vec::with_capacity(batches.len());
        for (i, batch) in batches.iter().enumerate() {
            let outcome = engine
                .apply_batch(batch)
                .map_err(|e| format!("batch {i}: {e}"))?;
            let row = receipt::report::StreamBatchReport::from_outcome(i, side, &outcome);
            on_row(&row)?;
            rows.push(row);
        }
        let snapshot = engine.snapshot();
        Ok(receipt::report::StreamReport {
            schema_version: receipt::report::SCHEMA_VERSION,
            kind: "stream".to_string(),
            input: input.to_string(),
            ops: ops.to_string(),
            side,
            config: config.clone(),
            dirty_threshold,
            verified: verify,
            batches: rows,
            final_num_edges: snapshot.graph().num_edges(),
            final_total_butterflies: snapshot.total_butterflies(),
            final_theta_max: snapshot.theta_max(side),
            final_tip_checksum: snapshot.tip_checksum(side),
        })
    };
    if threads > 0 {
        parutil::with_pool(threads, drive)
    } else {
        drive()
    }
}

// ---------------------------------------------------------------------------
// Serve mode: length-prefixed JSON frames over stdin/stdout or a Unix
// socket, or a scripted newline-delimited session (`--requests`). All ids
// on the wire share the graph file's id base, exactly like stream ops.

/// Reads one length-prefixed frame: an ASCII decimal byte length, a
/// newline, then exactly that many payload bytes. Returns `None` on clean
/// EOF (or a blank line, which closes the session like EOF).
pub fn read_frame(reader: &mut dyn BufRead) -> Result<Option<String>, String> {
    let mut header = String::new();
    let n = reader
        .read_line(&mut header)
        .map_err(|e| format!("serve: failed to read frame header: {e}"))?;
    let header = header.trim();
    if n == 0 || header.is_empty() {
        return Ok(None);
    }
    let len: usize = header.parse().map_err(|_| {
        format!("serve: frame header must be a decimal byte length, got {header:?}")
    })?;
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .map_err(|e| format!("serve: truncated {len}-byte frame: {e}"))?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| format!("serve: frame payload is not UTF-8: {e}"))
}

/// Writes one length-prefixed frame and flushes it.
pub fn write_frame(writer: &mut dyn Write, payload: &str) -> Result<(), String> {
    write!(writer, "{}\n{payload}", payload.len()).map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())
}

/// Reads an optional vertex-id field, shifting it down when the graph
/// file (and therefore the wire protocol) is 1-based.
fn req_id(value: &serde_json::Value, field: &str, one_based: bool) -> Result<Option<u32>, String> {
    let Some(entry) = value.get(field).filter(|e| !e.is_null()) else {
        return Ok(None);
    };
    let id = entry
        .as_u64()
        .ok_or_else(|| format!("{field} must be a non-negative integer"))?;
    if one_based && id == 0 {
        return Err(format!(
            "{field} is 0 but the graph file is 1-based (ids share its base)"
        ));
    }
    let id = if one_based { id - 1 } else { id };
    u32::try_from(id)
        .map(Some)
        .map_err(|_| format!("{field} {id} out of range"))
}

fn req_side(value: &serde_json::Value) -> Result<Side, String> {
    match value.get("side").and_then(|s| s.as_str()) {
        None => Ok(Side::U),
        Some(s) if s.eq_ignore_ascii_case("U") => Ok(Side::U),
        Some(s) if s.eq_ignore_ascii_case("V") => Ok(Side::V),
        Some(other) => Err(format!("side must be U or V, got {other:?}")),
    }
}

/// Answers one serve request. `Ok((response, shutdown))` covers both
/// well-formed answers and per-request errors (`ok: false` responses —
/// unknown op, out-of-range vertex, absent edge); `Err` is reserved for
/// fatal session failures, i.e. an `apply` whose in-engine differential
/// verification diverged.
pub fn handle_request(
    engine: &StreamEngine,
    one_based: bool,
    seq: u64,
    text: &str,
) -> Result<(ServeResponse, bool), String> {
    // Every query answers from ONE snapshot grabbed up front, so the
    // response is internally consistent with a single epoch even while a
    // writer publishes mid-request.
    let snapshot = engine.snapshot();
    let epoch = snapshot.epoch();
    let fail = |op: &str, e: String| Ok((ServeResponse::error(seq, op, epoch, e), false));

    let value = match serde_json::from_str_value(text) {
        Ok(v) => v,
        Err(e) => return fail("?", format!("unparseable request: {e}")),
    };
    let Some(op) = value.get("op").and_then(|v| v.as_str()).map(str::to_owned) else {
        return fail("?", "request needs a string `op` field".into());
    };

    let has_vertex = value.get("vertex").is_some_and(|v| !v.is_null());
    let mut response = ServeResponse::new(seq, &op, epoch);
    match op.as_str() {
        "tip" | "butterflies" if has_vertex || op == "tip" => {
            let side = match req_side(&value) {
                Ok(s) => s,
                Err(e) => return fail(&op, e),
            };
            let vertex = match req_id(&value, "vertex", one_based) {
                Ok(Some(v)) => v,
                Ok(None) => return fail(&op, format!("{op} needs a `vertex` field")),
                Err(e) => return fail(&op, e),
            };
            let answer = match op.as_str() {
                "tip" => snapshot.tip(side, vertex),
                _ => snapshot.vertex_butterflies(side, vertex),
            };
            match answer {
                Some(v) => response.value = Some(v),
                None => return fail(&op, format!("vertex {vertex} out of range on side {side}")),
            }
        }
        "butterflies" => {
            // Edge form: `{"op": "butterflies", "u": .., "v": ..}`.
            let (u, v) = match (
                req_id(&value, "u", one_based),
                req_id(&value, "v", one_based),
            ) {
                (Ok(Some(u)), Ok(Some(v))) => (u, v),
                (Err(e), _) | (_, Err(e)) => return fail(&op, e),
                _ => {
                    return fail(
                        &op,
                        "butterflies needs either `vertex` (+ optional `side`) or `u` and `v`"
                            .into(),
                    )
                }
            };
            match snapshot.edge_butterflies(u, v) {
                Some(c) => response.value = Some(c),
                None => return fail(&op, format!("edge ({u}, {v}) is absent")),
            }
        }
        "topk" => {
            let side = match req_side(&value) {
                Ok(s) => s,
                Err(e) => return fail(&op, e),
            };
            let k = value.get("k").and_then(|v| v.as_u64()).unwrap_or(10) as usize;
            let shift = u32::from(one_based);
            response.topk = Some(
                snapshot
                    .top_k_densest(side, k)
                    .into_iter()
                    .map(|d| TopKEntry {
                        id: d.id + shift,
                        side,
                        tip: d.tip,
                        butterflies: d.butterflies,
                    })
                    .collect(),
            );
        }
        "stats" => response.stats = Some(ServeStats::from_snapshot(&snapshot)),
        "epoch" => response.value = Some(epoch),
        "apply" => {
            let Some(items) = value.get("ops").and_then(|v| v.as_array()) else {
                return fail(
                    &op,
                    "apply needs an `ops` array of \"+u v\" / \"-u v\" strings".into(),
                );
            };
            let mut text = String::new();
            for item in items {
                let Some(line) = item.as_str() else {
                    return fail(&op, "apply ops must be strings".into());
                };
                // Blank entries would split batches in the file format;
                // one request is one batch.
                if line.trim().is_empty() {
                    continue;
                }
                text.push_str(line);
                text.push('\n');
            }
            let batches = match bigraph::dynamic::read_batches(text.as_bytes()) {
                Ok(b) => b,
                Err(e) => return fail(&op, format!("bad apply ops: {e}")),
            };
            let batch: Vec<bigraph::EdgeOp> = batches.into_iter().flatten().collect();
            let batch = match rebase_ops(vec![batch], one_based, "apply request") {
                Ok(mut b) => b.pop().unwrap_or_default(),
                Err(e) => return fail(&op, e),
            };
            // A verification divergence is fatal: the engine state can no
            // longer be trusted, so the session dies rather than `ok:
            // false`-ing its way onward.
            let outcome = engine
                .apply_batch(&batch)
                .map_err(|e| format!("apply (seq {seq}): {e}"))?;
            // A failed checkpoint fold is non-fatal (the batch is
            // committed and published): warn and keep serving.
            if let Some(warning) = &outcome.checkpoint_error {
                eprintln!("wal: warning: {warning}; retrying at the next boundary");
            }
            response.epoch = outcome.epoch;
            response.batch = Some(receipt::report::StreamBatchReport::from_outcome(
                outcome.epoch as usize - 1,
                req_side(&value).unwrap_or(Side::U),
                &outcome,
            ));
        }
        "tag" => {
            // Versioning ops need the durable store next to the WAL
            // (`VERSIONING.md` §2); a memory-only engine has no history
            // to tag.
            let Some(dir) = engine.store_dir() else {
                return fail(&op, "tag requires a durable store (serve --wal DIR)".into());
            };
            let Some(name) = value.get("name").and_then(|v| v.as_str()) else {
                return fail(&op, "tag needs a string `name` field".into());
            };
            let mut versions = match receipt::version::VersionStore::open(&dir) {
                Ok(v) => v,
                Err(e) => return fail(&op, e.to_string()),
            };
            // The tag names the engine's current end state (§3.2): the
            // published snapshot plus the LSN it was committed under.
            let lsn = engine.end_lsn().unwrap_or(0);
            match versions.tag_snapshot(name, lsn, &snapshot) {
                Ok(vref) => {
                    response.version = Some(receipt::report::VersionEntryReport::from_ref(vref))
                }
                Err(e) => return fail(&op, e.to_string()),
            }
        }
        "at" => {
            let Some(dir) = engine.store_dir() else {
                return fail(&op, "at requires a durable store (serve --wal DIR)".into());
            };
            let Some(name) = value.get("name").and_then(|v| v.as_str()) else {
                return fail(&op, "at needs a string `name` field".into());
            };
            // Time travel replays into a throwaway read-only engine;
            // `open_at` already checksum-verifies the reached state, so
            // the per-batch differential oracle stays off.
            let mut options = engine.options().clone();
            options.verify = false;
            match StreamEngine::open_at(&dir, name, options) {
                Ok((historic, info)) => {
                    response.version =
                        Some(receipt::report::VersionEntryReport::from_ref(&info.version));
                    response.stats = Some(ServeStats::from_snapshot(&historic.snapshot()));
                }
                Err(e) => return fail(&op, e.to_string()),
            }
        }
        "shutdown" => return Ok((response, true)),
        other => return fail(other, format!("unknown op {other:?}")),
    }
    Ok((response, false))
}

/// Serves length-prefixed frames until EOF or a `shutdown` request.
/// Returns `true` iff the session ended with an explicit `shutdown` (so a
/// socket server can distinguish "client went away" from "stop serving").
pub fn serve_framed(
    engine: &StreamEngine,
    one_based: bool,
    reader: &mut dyn BufRead,
    writer: &mut dyn Write,
) -> Result<bool, String> {
    let mut seq = 0u64;
    while let Some(text) = read_frame(reader)? {
        let (response, shutdown) = handle_request(engine, one_based, seq, &text)?;
        let payload = serde_json::to_string(&response).map_err(|e| e.to_string())?;
        write_frame(writer, &payload)?;
        seq += 1;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Replays a newline-delimited JSON request script (blank lines and `#`
/// comments skipped) and returns every response in order. Stops early at
/// `shutdown`; fails the whole session on a fatal `apply` divergence.
pub fn run_scripted_session(
    engine: &StreamEngine,
    one_based: bool,
    script: &str,
) -> Result<Vec<ServeResponse>, String> {
    let mut responses = Vec::new();
    let mut seq = 0u64;
    for line in script.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (response, shutdown) = handle_request(engine, one_based, seq, line)?;
        responses.push(response);
        seq += 1;
        if shutdown {
            break;
        }
    }
    Ok(responses)
}

/// Executes a parsed command. Returns the process exit code.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Tip {
            input,
            side,
            config,
            output,
            json,
            stats,
        } => {
            let g = load(&input)?;
            let d = receipt::tip_decompose(&g, side, &config);
            if json {
                emit_json(
                    &receipt::report::TipReport::new(&input, &config, &d),
                    &output,
                )?;
            } else {
                let mut out = sink(&output)?;
                writeln!(out, "# vertex\ttip_number").map_err(|e| e.to_string())?;
                for (u, t) in d.tip.iter().enumerate() {
                    writeln!(out, "{u}\t{t}").map_err(|e| e.to_string())?;
                }
            }
            if stats {
                let m = &d.metrics;
                eprintln!(
                    "theta_max={} wedges={} (count {}, cd {}, fd {}) rounds={} \
                     recounts={} compactions={} partitions={} time={:.3}s",
                    d.theta_max(),
                    m.wedges_total(),
                    m.wedges_count,
                    m.wedges_cd,
                    m.wedges_fd,
                    m.sync_rounds,
                    m.recounts,
                    m.compactions,
                    m.partitions_used,
                    m.time_total().as_secs_f64()
                );
            }
            Ok(())
        }
        Command::Wing {
            input,
            side,
            partitions,
            output,
            json,
        } => {
            let g = load(&input)?;
            let view = g.view(side);
            let (d, wing_metrics) = if partitions > 0 {
                let (d, m) = receipt::wing_parallel::receipt_wing_decompose(view, partitions, 4);
                (d, Some(m))
            } else {
                (receipt::wing::wing_decompose(view, 4), None)
            };
            if json {
                let report =
                    receipt::report::WingReport::new(&input, side, partitions, &d, wing_metrics);
                emit_json(&report, &output)?;
            } else {
                let mut out = sink(&output)?;
                writeln!(out, "# u\tv\twing_number").map_err(|e| e.to_string())?;
                for (e, &(u, v)) in d.edges.iter().enumerate() {
                    writeln!(out, "{u}\t{v}\t{}", d.wing[e]).map_err(|e| e.to_string())?;
                }
            }
            Ok(())
        }
        Command::Count {
            input,
            output,
            json,
        } => {
            let g = load(&input)?;
            let c = butterfly::par_count_graph(&g);
            if json {
                emit_json(&receipt::report::CountReport::new(&input, &c), &output)?;
            } else {
                let mut out = sink(&output)?;
                writeln!(out, "# side\tvertex\tbutterflies").map_err(|e| e.to_string())?;
                for (u, b) in c.u.iter().enumerate() {
                    writeln!(out, "U\t{u}\t{b}").map_err(|e| e.to_string())?;
                }
                for (v, b) in c.v.iter().enumerate() {
                    writeln!(out, "V\t{v}\t{b}").map_err(|e| e.to_string())?;
                }
                eprintln!("total butterflies: {}", c.total());
            }
            Ok(())
        }
        Command::Stream {
            input,
            ops,
            side,
            config,
            dirty_threshold,
            compact_threshold,
            verify,
            output,
            json,
        } => {
            // Ops share the graph file's id base: load both together and
            // shift the ops down when the graph was 1-based.
            let (g, one_based) =
                bigraph::io::read_graph_path_with_base(&input).map_err(|e| e.to_string())?;
            let file =
                std::fs::File::open(&ops).map_err(|e| format!("failed to read {ops}: {e}"))?;
            let batches = bigraph::dynamic::read_batches(file)
                .map_err(|e| format!("failed to read {ops}: {e}"))?;
            let batches = rebase_ops(batches, one_based, &ops)?;
            // Without `--output`, every row is written (and flushed) the
            // moment its batch completes so long-running streams can be
            // tailed: TSV rows in text mode, one compact JSON row per line
            // in `--json` mode (followed by the full report document).
            // With `--output` the whole document is built first and
            // written once — byte-identical to the pre-incremental format,
            // which the golden snapshots rely on.
            let incremental = output.is_none();
            let mut on_row = |b: &receipt::report::StreamBatchReport| -> Result<(), String> {
                if !incremental {
                    return Ok(());
                }
                let mut out = std::io::stdout().lock();
                if json {
                    let line = serde_json::to_string(b).map_err(|e| e.to_string())?;
                    writeln!(out, "{line}").map_err(|e| e.to_string())?;
                } else {
                    if b.batch == 0 {
                        writeln!(
                            out,
                            "# batch\t+ins\t-del\tskip\tgained\tlost\ttotal_bf\tpolicy\tdirty\ttheta_max"
                        )
                        .map_err(|e| e.to_string())?;
                    }
                    writeln!(
                        out,
                        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                        b.batch,
                        b.inserted,
                        b.deleted,
                        b.skipped,
                        b.butterflies_gained,
                        b.butterflies_lost,
                        b.total_butterflies,
                        b.policy.as_str(),
                        b.dirty,
                        b.theta_max,
                    )
                    .map_err(|e| e.to_string())?;
                }
                out.flush().map_err(|e| e.to_string())
            };
            let report = run_stream(
                &input,
                &ops,
                g,
                &batches,
                side,
                config,
                dirty_threshold,
                compact_threshold,
                verify,
                &mut on_row,
            )?;
            if json {
                if incremental {
                    // Compact final document after the NDJSON rows.
                    let mut out = std::io::stdout().lock();
                    let line = serde_json::to_string(&report).map_err(|e| e.to_string())?;
                    writeln!(out, "{line}").map_err(|e| e.to_string())?;
                } else {
                    emit_json(&report, &output)?;
                }
            } else if incremental {
                eprintln!(
                    "{} batches; final: |E| = {}, butterflies = {}, theta_max = {}{}",
                    report.batches.len(),
                    report.final_num_edges,
                    report.final_total_butterflies,
                    report.final_theta_max,
                    if verify { ", all batches verified" } else { "" }
                );
            } else {
                let mut out = sink(&output)?;
                writeln!(
                    out,
                    "# batch\t+ins\t-del\tskip\tgained\tlost\ttotal_bf\tpolicy\tdirty\ttheta_max"
                )
                .map_err(|e| e.to_string())?;
                for b in &report.batches {
                    writeln!(
                        out,
                        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                        b.batch,
                        b.inserted,
                        b.deleted,
                        b.skipped,
                        b.butterflies_gained,
                        b.butterflies_lost,
                        b.total_butterflies,
                        b.policy.as_str(),
                        b.dirty,
                        b.theta_max,
                    )
                    .map_err(|e| e.to_string())?;
                }
                eprintln!(
                    "{} batches; final: |E| = {}, butterflies = {}, theta_max = {}{}",
                    report.batches.len(),
                    report.final_num_edges,
                    report.final_total_butterflies,
                    report.final_theta_max,
                    if verify { ", all batches verified" } else { "" }
                );
            }
            Ok(())
        }
        Command::Serve {
            input,
            config,
            dirty_threshold,
            compact_threshold,
            verify,
            requests,
            socket,
            output,
            wal,
            checkpoint_every,
        } => {
            // Serve shares stream's id-base rule: wire ids follow the
            // graph file (a 1-based file means 1-based requests).
            let (g, one_based) =
                bigraph::io::read_graph_path_with_base(&input).map_err(|e| e.to_string())?;
            let threads = config.threads;
            let options = EngineOptions {
                config,
                dirty_threshold,
                compact_threshold,
                verify,
            };
            let drive = move || -> Result<(), String> {
                let engine = match &wal {
                    None => StreamEngine::new(g, options),
                    Some(dir) => {
                        // Durable: an existing store is the truth (the
                        // graph file only seeds a fresh one).
                        let (engine, info) = StreamEngine::open_durable(
                            std::path::Path::new(dir),
                            Some(g),
                            options,
                            checkpoint_every,
                        )?;
                        if info.created {
                            eprintln!("wal: initialized store at {dir}");
                        } else {
                            eprintln!(
                                "wal: recovered store at {dir}: checkpoint lsn {}, \
                                 replayed {} record(s), end lsn {}{}",
                                info.checkpoint_lsn,
                                info.replayed,
                                info.end_lsn,
                                match info.repaired {
                                    Some(r) => format!(
                                        " (torn tail repaired, -{} bytes)",
                                        r.discarded_bytes
                                    ),
                                    None => String::new(),
                                }
                            );
                        }
                        engine
                    }
                };
                if let Some(path) = requests {
                    // Scripted session: replay the file, emit one report
                    // document.
                    let script = std::fs::read_to_string(&path)
                        .map_err(|e| format!("failed to read {path}: {e}"))?;
                    let t0 = std::time::Instant::now();
                    let responses = run_scripted_session(&engine, one_based, &script)?;
                    let report = ServeSessionReport {
                        schema_version: receipt::report::SCHEMA_VERSION,
                        kind: "serve-session".to_string(),
                        input: input.clone(),
                        requests: path,
                        verified: verify,
                        responses,
                        final_stats: ServeStats::from_snapshot(&engine.snapshot()),
                        time_session_secs: t0.elapsed().as_secs_f64(),
                    };
                    return emit_json(&report, &output);
                }
                if let Some(path) = socket {
                    // One connection at a time; the listener keeps
                    // accepting until a client sends `shutdown`.
                    use std::os::unix::net::UnixListener;
                    let _ = std::fs::remove_file(&path);
                    let listener = UnixListener::bind(&path)
                        .map_err(|e| format!("cannot bind {path}: {e}"))?;
                    eprintln!("serving on {path} (epoch {})", engine.epoch());
                    let result = loop {
                        let (stream, _) = match listener.accept() {
                            Ok(pair) => pair,
                            Err(e) => break Err(format!("accept failed: {e}")),
                        };
                        let mut reader =
                            std::io::BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                        let mut writer = stream;
                        match serve_framed(&engine, one_based, &mut reader, &mut writer) {
                            Ok(true) => break Ok(()),
                            Ok(false) => continue,
                            // A client vanishing mid-session is not fatal
                            // to the server; a verify divergence is.
                            Err(e) if e.contains("apply") => break Err(e),
                            Err(e) => eprintln!("session error: {e}"),
                        }
                    };
                    let _ = std::fs::remove_file(&path);
                    return result;
                }
                let stdin = std::io::stdin();
                let mut reader = stdin.lock();
                let mut writer = std::io::stdout().lock();
                serve_framed(&engine, one_based, &mut reader, &mut writer).map(|_| ())
            };
            if threads > 0 {
                parutil::with_pool(threads, drive)
            } else {
                drive()
            }
        }
        Command::Convert {
            input,
            output,
            from,
            to,
            json,
        } => {
            // `.bgr` means the FORMATS.md §1 binary image; anything else
            // is the KONECT text edge list.
            let infer = |path: &str, explicit: &Option<String>| -> String {
                match explicit {
                    Some(f) => f.clone(),
                    None if path.ends_with(".bgr") => "binary".to_string(),
                    None => "text".to_string(),
                }
            };
            let from = infer(&input, &from);
            let to = infer(&output, &to);
            let t0 = std::time::Instant::now();
            let g = if from == "binary" {
                bigraph::binfmt::read_binary_graph_path(&input)
                    .map_err(|e| e.to_string())?
                    .graph
            } else {
                load(&input)?
            };
            if to == "binary" {
                bigraph::binfmt::write_binary_graph_path(&output, &g)
                    .map_err(|e| format!("cannot write {output}: {e}"))?;
            } else {
                bigraph::io::write_graph_path(&g, &output)
                    .map_err(|e| format!("cannot write {output}: {e}"))?;
            }
            let time_convert_secs = t0.elapsed().as_secs_f64();
            let size = |p: &str| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
            let report = receipt::report::ConvertReport {
                schema_version: receipt::report::SCHEMA_VERSION,
                kind: "convert".to_string(),
                input: input.clone(),
                output: output.clone(),
                from: from.clone(),
                to: to.clone(),
                num_u: g.num_u(),
                num_v: g.num_v(),
                num_edges: g.num_edges(),
                bytes_in: size(&input),
                bytes_out: size(&output),
                time_convert_secs,
            };
            if json {
                emit_json(&report, &None)?;
            } else {
                eprintln!(
                    "{input} ({from}) -> {output} ({to}): {} x {}, {} edges, {} -> {} bytes",
                    report.num_u, report.num_v, report.num_edges, report.bytes_in, report.bytes_out
                );
            }
            Ok(())
        }
        Command::Recover { dir, json, output } => {
            if !receipt::wal::Store::exists(std::path::Path::new(&dir)) {
                return Err(format!(
                    "no store at {dir} (expected checkpoint.meta; see FORMATS.md \u{a7}4)"
                ));
            }
            let options = EngineOptions {
                config: Config::default(),
                dirty_threshold: receipt::dynamic::DEFAULT_DIRTY_THRESHOLD,
                compact_threshold: bigraph::dynamic::DEFAULT_COMPACT_THRESHOLD,
                verify: false,
            };
            let t0 = std::time::Instant::now();
            let (engine, info) =
                StreamEngine::open_durable(std::path::Path::new(&dir), None, options, 0)?;
            let time_recover_secs = t0.elapsed().as_secs_f64();
            // "Provable" recovery: the replayed state must agree with a
            // from-scratch recount + re-peel of the materialized graph.
            let t1 = std::time::Instant::now();
            engine
                .verify_against_scratch()
                .map_err(|e| format!("recovered state failed oracle verification: {e}"))?;
            let time_verify_secs = t1.elapsed().as_secs_f64();
            let snapshot = engine.snapshot();
            let report = receipt::report::RecoverReport {
                schema_version: receipt::report::SCHEMA_VERSION,
                kind: "recover".to_string(),
                dir: dir.clone(),
                checkpoint_lsn: info.checkpoint_lsn,
                wal_records: info.wal_records,
                replayed: info.replayed,
                skipped: info.skipped,
                torn_tail_repaired: info.repaired.is_some(),
                discarded_bytes: info.repaired.map(|r| r.discarded_bytes).unwrap_or(0),
                end_lsn: info.end_lsn,
                final_epoch: snapshot.epoch(),
                num_u: snapshot.graph().num_u(),
                num_v: snapshot.graph().num_v(),
                num_edges: snapshot.graph().num_edges(),
                total_butterflies: snapshot.total_butterflies(),
                tip_checksum_u: snapshot.tip_checksum(Side::U),
                tip_checksum_v: snapshot.tip_checksum(Side::V),
                verified: true,
                time_recover_secs,
                time_verify_secs,
            };
            if json {
                emit_json(&report, &output)?;
            } else {
                let mut out = sink(&output)?;
                writeln!(
                    out,
                    "recovered {dir}: checkpoint lsn {}, replayed {}/{} record(s) \
                     (skipped {} folded), end lsn {}{}",
                    report.checkpoint_lsn,
                    report.replayed,
                    report.wal_records,
                    report.skipped,
                    report.end_lsn,
                    if report.torn_tail_repaired {
                        format!(", torn tail repaired (-{} bytes)", report.discarded_bytes)
                    } else {
                        String::new()
                    }
                )
                .map_err(|e| e.to_string())?;
                writeln!(
                    out,
                    "state: {} x {}, {} edges, {} butterflies, tip checksums \
                     {:#018x}/{:#018x}, oracle verified",
                    report.num_u,
                    report.num_v,
                    report.num_edges,
                    report.total_butterflies,
                    report.tip_checksum_u,
                    report.tip_checksum_v
                )
                .map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        Command::Version {
            op,
            dir,
            names,
            verify,
            dump,
            json,
            output,
        } => {
            use receipt::report::{
                TimeTravelReport, VersionDiffReport, VersionEntryReport, VersionReport,
            };
            use receipt::version::{self, VersionStore};
            let dpath = std::path::Path::new(&dir);
            if !receipt::wal::Store::exists(dpath) {
                return Err(format!(
                    "no store at {dir} (expected checkpoint.meta; see FORMATS.md \u{a7}4)"
                ));
            }
            let options = || EngineOptions {
                config: Config::default(),
                dirty_threshold: receipt::dynamic::DEFAULT_DIRTY_THRESHOLD,
                compact_threshold: bigraph::dynamic::DEFAULT_COMPACT_THRESHOLD,
                verify: false,
            };
            let entry_line = |e: &VersionEntryReport| {
                format!(
                    "{}\tlsn {}\t{} butterflies\ttip checksums {:#018x}/{:#018x}",
                    e.name, e.lsn, e.total_butterflies, e.tip_checksum_u, e.tip_checksum_v
                )
            };
            let mut report = VersionReport::new(&op, &dir);
            match op.as_str() {
                "tag" => {
                    let vref = version::tag_head(dpath, &names[0], options())
                        .map_err(|e| e.to_string())?;
                    report.tagged = Some(VersionEntryReport::from_ref(&vref));
                    let vs = VersionStore::open(dpath).map_err(|e| e.to_string())?;
                    report.versions =
                        Some(vs.list().iter().map(VersionEntryReport::from_ref).collect());
                    if json {
                        emit_json(&report, &output)?;
                    } else {
                        let mut out = sink(&output)?;
                        writeln!(
                            out,
                            "tagged {}",
                            entry_line(report.tagged.as_ref().unwrap())
                        )
                        .map_err(|e| e.to_string())?;
                    }
                }
                "list" => {
                    let vs = VersionStore::open(dpath).map_err(|e| e.to_string())?;
                    report.versions =
                        Some(vs.list().iter().map(VersionEntryReport::from_ref).collect());
                    if json {
                        emit_json(&report, &output)?;
                    } else {
                        let mut out = sink(&output)?;
                        for e in report.versions.as_ref().unwrap() {
                            writeln!(out, "{}", entry_line(e)).map_err(|e| e.to_string())?;
                        }
                    }
                }
                "diff" => {
                    let vs = VersionStore::open(dpath).map_err(|e| e.to_string())?;
                    let ops = vs.diff(&names[0], &names[1]).map_err(|e| e.to_string())?;
                    let lines: Vec<String> = ops
                        .iter()
                        .map(|op| {
                            let (u, v) = op.edge();
                            match op {
                                bigraph::EdgeOp::Insert(..) => format!("+ {u} {v}"),
                                bigraph::EdgeOp::Delete(..) => format!("- {u} {v}"),
                            }
                        })
                        .collect();
                    let count = |f: fn(&String) -> bool| lines.iter().filter(|l| f(l)).count();
                    report.diff = Some(VersionDiffReport {
                        from: VersionEntryReport::from_ref(vs.lookup(&names[0]).unwrap()),
                        to: VersionEntryReport::from_ref(vs.lookup(&names[1]).unwrap()),
                        inserts: count(|l| l.starts_with('+')),
                        deletes: count(|l| l.starts_with('-')),
                        ops: lines,
                    });
                    if json {
                        emit_json(&report, &output)?;
                    } else {
                        // Bare batch lines: `--output FILE` yields a file
                        // that `tipdecomp stream` replays as one batch.
                        let mut out = sink(&output)?;
                        for line in &report.diff.as_ref().unwrap().ops {
                            writeln!(out, "{line}").map_err(|e| e.to_string())?;
                        }
                    }
                }
                "at" => {
                    let t0 = std::time::Instant::now();
                    let (engine, info) = StreamEngine::open_at(dpath, &names[0], options())
                        .map_err(|e| e.to_string())?;
                    let time_travel_secs = t0.elapsed().as_secs_f64();
                    let t1 = std::time::Instant::now();
                    if verify {
                        engine.verify_against_scratch().map_err(|e| {
                            format!("time-travel state failed oracle verification: {e}")
                        })?;
                    }
                    let time_verify_secs = t1.elapsed().as_secs_f64();
                    let snapshot = engine.snapshot();
                    if let Some(path) = &dump {
                        write_any(snapshot.graph(), path)?;
                    }
                    report.at = Some(TimeTravelReport {
                        version: VersionEntryReport::from_ref(&info.version),
                        checkpoint_lsn: info.checkpoint_lsn,
                        wal_records: info.wal_records,
                        replayed: info.replayed,
                        skipped_folded: info.skipped_folded,
                        skipped_above: info.skipped_above,
                        wal_end: info.wal_end,
                        final_epoch: snapshot.epoch(),
                        num_u: snapshot.graph().num_u(),
                        num_v: snapshot.graph().num_v(),
                        num_edges: snapshot.graph().num_edges(),
                        total_butterflies: snapshot.total_butterflies(),
                        theta_max_u: snapshot.theta_max(Side::U),
                        theta_max_v: snapshot.theta_max(Side::V),
                        tip_checksum_u: snapshot.tip_checksum(Side::U),
                        tip_checksum_v: snapshot.tip_checksum(Side::V),
                        verified: verify,
                        time_travel_secs,
                        time_verify_secs,
                    });
                    if json {
                        emit_json(&report, &output)?;
                    } else {
                        let at = report.at.as_ref().unwrap();
                        let mut out = sink(&output)?;
                        writeln!(
                            out,
                            "at {}: checkpoint lsn {}, replayed {}/{} record(s) \
                             (skipped {} folded, {} above the tag), wal end {}",
                            entry_line(&at.version),
                            at.checkpoint_lsn,
                            at.replayed,
                            at.wal_records,
                            at.skipped_folded,
                            at.skipped_above,
                            at.wal_end
                        )
                        .map_err(|e| e.to_string())?;
                        writeln!(
                            out,
                            "state: {} x {}, {} edges, {} butterflies{}",
                            at.num_u,
                            at.num_v,
                            at.num_edges,
                            at.total_butterflies,
                            if at.verified { ", oracle verified" } else { "" }
                        )
                        .map_err(|e| e.to_string())?;
                    }
                }
                _ => unreachable!("parse validated the version operation"),
            }
            Ok(())
        }
        Command::Derive {
            op,
            a,
            b,
            ids,
            side,
            output,
            json,
        } => {
            let t0 = std::time::Instant::now();
            let ga = load_any(&a)?;
            let derived = match op.as_str() {
                "subgraph" => {
                    // VERSIONING.md §6.1: ids strictly increasing,
                    // in-range, non-empty.
                    if ids.is_empty() {
                        return Err(
                            "derive subgraph: --ids must be non-empty (VERSIONING.md \u{a7}6.1)"
                                .into(),
                        );
                    }
                    if let Some(w) = ids.windows(2).find(|w| w[0] >= w[1]) {
                        return Err(format!(
                            "derive subgraph: --ids must be strictly increasing \
                             (VERSIONING.md \u{a7}6.1), got {} before {}",
                            w[0], w[1]
                        ));
                    }
                    let n = match side {
                        Side::U => ga.num_u(),
                        Side::V => ga.num_v(),
                    };
                    let max = *ids.last().unwrap();
                    if max as usize >= n {
                        return Err(format!(
                            "derive subgraph: id {max} out of range (side {side} has {n} \
                             vertices)"
                        ));
                    }
                    bigraph::InducedGraph::new(ga.view(side), &ids)
                        .csr()
                        .clone()
                }
                "union" => {
                    let gb = load_any(b.as_ref().expect("parse guarantees a second input"))?;
                    bigraph::derive::union(&ga, &gb)
                }
                _ => {
                    let gb = load_any(b.as_ref().expect("parse guarantees a second input"))?;
                    bigraph::derive::difference(&ga, &gb)
                }
            };
            write_any(&derived, &output)?;
            let report = receipt::report::DeriveReport {
                schema_version: receipt::report::SCHEMA_VERSION,
                kind: "derive".to_string(),
                op: op.clone(),
                a: a.clone(),
                b: b.clone(),
                subset: if op == "subgraph" { Some(ids) } else { None },
                side: if op == "subgraph" { Some(side) } else { None },
                output: output.clone(),
                num_u: derived.num_u(),
                num_v: derived.num_v(),
                num_edges: derived.num_edges(),
                time_derive_secs: t0.elapsed().as_secs_f64(),
            };
            if json {
                // `output` is the derived graph's destination, so the
                // report document goes to stdout (like `convert`).
                emit_json(&report, &None)?;
            } else {
                eprintln!(
                    "derived {op} -> {output}: {} x {}, {} edges",
                    report.num_u, report.num_v, report.num_edges
                );
            }
            Ok(())
        }
        Command::KTips { input, side, k } => {
            let g = load(&input)?;
            let d = receipt::tip_decompose(&g, side, &Config::default());
            let comps = hierarchy::ktip_components(g.view(side), &d.tip, k);
            println!("# {} {k}-tip component(s)", comps.len());
            for (i, c) in comps.iter().enumerate() {
                println!(
                    "{i}\t{}\t{}",
                    c.len(),
                    c.iter()
                        .map(|u| u.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                );
            }
            Ok(())
        }
        Command::Stats { input } => {
            let g = load(&input)?;
            let vu = g.view(Side::U);
            let vv = g.view(Side::V);
            let c = butterfly::par_count_graph(&g);
            println!("|U| = {}", g.num_u());
            println!("|V| = {}", g.num_v());
            println!("|E| = {}", g.num_edges());
            println!(
                "avg degree U/V = {:.2} / {:.2}",
                bigraph::stats::avg_primary_degree(vu),
                bigraph::stats::avg_primary_degree(vv)
            );
            println!("butterflies = {}", c.total());
            println!(
                "wedges (U endpoints) = {}",
                bigraph::stats::total_primary_wedges(vu)
            );
            println!(
                "wedges (V endpoints) = {}",
                bigraph::stats::total_primary_wedges(vv)
            );
            Ok(())
        }
        Command::Generate { preset, output } => {
            let spec = bigraph::datasets::by_name(&preset)
                .ok_or_else(|| format!("unknown preset {preset:?} (It|De|Or|Lj|En|Tr)"))?;
            let g = spec.generate();
            match output {
                None => bigraph::io::write_graph(&g, std::io::stdout().lock())
                    .map_err(|e| e.to_string()),
                Some(path) => {
                    bigraph::io::write_graph_path(&g, &path).map_err(|e| e.to_string())?;
                    eprintln!(
                        "wrote {} ({} x {}, {} edges)",
                        path,
                        g.num_u(),
                        g.num_v(),
                        g.num_edges()
                    );
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_tip_defaults() {
        let cmd = parse(&sv(&["tip", "g.tsv"])).unwrap();
        match cmd {
            Command::Tip {
                input,
                side,
                config,
                output,
                json,
                stats,
            } => {
                assert_eq!(input, "g.tsv");
                assert_eq!(side, Side::U);
                assert_eq!(config, Config::default());
                assert!(output.is_none());
                assert!(!json);
                assert!(!stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_tip_flags() {
        let cmd = parse(&sv(&[
            "tip",
            "g.tsv",
            "--side",
            "v",
            "--partitions",
            "42",
            "--no-dgm",
            "--stats",
            "--output",
            "out.tsv",
        ]))
        .unwrap();
        match cmd {
            Command::Tip {
                side,
                config,
                output,
                stats,
                ..
            } => {
                assert_eq!(side, Side::V);
                assert_eq!(config.partitions, 42);
                assert!(!config.dgm);
                assert!(config.huc);
                assert_eq!(output.as_deref(), Some("out.tsv"));
                assert!(stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&sv(&["tip"])).is_err());
        assert!(parse(&sv(&["tip", "--side"])).is_err());
        assert!(parse(&sv(&["tip", "g.tsv", "--side", "X"])).is_err());
        assert!(parse(&sv(&["ktips", "g.tsv"])).is_err());
        assert!(parse(&sv(&["frobnicate"])).is_err());
        assert!(parse(&sv(&["tip", "g.tsv", "--partitions", "many"])).is_err());
        assert!(parse(&sv(&["stream", "g.tsv"])).is_err());
        assert!(parse(&sv(&["stream", "g.tsv", "--json"])).is_err());
        assert!(parse(&sv(&[
            "stream",
            "g.tsv",
            "ops.txt",
            "--dirty-threshold",
            "x"
        ]))
        .is_err());
    }

    #[test]
    fn parse_stream_defaults_and_flags() {
        let cmd = parse(&sv(&["stream", "g.tsv", "ops.txt"])).unwrap();
        match cmd {
            Command::Stream {
                input,
                ops,
                side,
                dirty_threshold,
                compact_threshold,
                verify,
                json,
                ..
            } => {
                assert_eq!(input, "g.tsv");
                assert_eq!(ops, "ops.txt");
                assert_eq!(side, Side::U);
                assert_eq!(dirty_threshold, receipt::dynamic::DEFAULT_DIRTY_THRESHOLD);
                assert_eq!(
                    compact_threshold,
                    bigraph::dynamic::DEFAULT_COMPACT_THRESHOLD
                );
                assert!(!verify && !json);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&sv(&[
            "stream",
            "g.tsv",
            "ops.txt",
            "--side",
            "v",
            "--dirty-threshold",
            "0.5",
            "--verify",
            "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Stream {
                side,
                dirty_threshold,
                verify,
                json,
                ..
            } => {
                assert_eq!(side, Side::V);
                assert_eq!(dirty_threshold, 0.5);
                assert!(verify && json);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stream_ops_follow_a_one_based_graph_file() {
        let dir = std::env::temp_dir().join("tipdecomp_stream_base");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.tsv");
        let ops_path = dir.join("ops.txt");
        // Headerless, every id ≥ 1 → the loader shifts to 0-based. K(2,2).
        std::fs::write(&graph_path, "1 1\n1 2\n2 1\n2 2\n").unwrap();
        // 1-based op: deleting the file's edge `2 2` must remove internal
        // edge (1, 1) and break the single butterfly.
        std::fs::write(&ops_path, "-2 2\n").unwrap();
        let out_path = dir.join("stream.json");
        run(Command::Stream {
            input: graph_path.to_string_lossy().into_owned(),
            ops: ops_path.to_string_lossy().into_owned(),
            side: Side::U,
            config: Config::default(),
            dirty_threshold: 0.5,
            compact_threshold: 0.25,
            verify: true,
            output: Some(out_path.to_string_lossy().into_owned()),
            json: true,
        })
        .unwrap();
        let report: receipt::report::StreamReport =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(report.batches[0].deleted, 1);
        assert_eq!(report.batches[0].butterflies_lost, 1);
        assert_eq!(report.final_total_butterflies, 0);

        // An op naming id 0 against a 1-based graph is a run error.
        std::fs::write(&ops_path, "-0 1\n").unwrap();
        let err = run(Command::Stream {
            input: graph_path.to_string_lossy().into_owned(),
            ops: ops_path.to_string_lossy().into_owned(),
            side: Side::U,
            config: Config::default(),
            dirty_threshold: 0.5,
            compact_threshold: 0.25,
            verify: false,
            output: None,
            json: true,
        })
        .unwrap_err();
        assert!(err.contains("1-based"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_end_to_end_with_verification() {
        let dir = std::env::temp_dir().join("tipdecomp_stream_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.tsv");
        let ops_path = dir.join("ops.txt");
        let g = bigraph::gen::zipf(30, 20, 120, 0.5, 0.8, 4);
        bigraph::io::write_graph_path(&g, &graph_path).unwrap();
        // Two batches: close a butterfly, then delete one of its edges.
        std::fs::write(&ops_path, "+0 0\n+0 1\n+1 0\n+1 1\n\n-0 1\n+2 2\n").unwrap();
        let out_path = dir.join("stream.json");
        run(Command::Stream {
            input: graph_path.to_string_lossy().into_owned(),
            ops: ops_path.to_string_lossy().into_owned(),
            side: Side::U,
            config: Config::default(),
            dirty_threshold: 0.2,
            compact_threshold: 0.25,
            verify: true,
            output: Some(out_path.to_string_lossy().into_owned()),
            json: true,
        })
        .unwrap();
        let text = std::fs::read_to_string(&out_path).unwrap();
        let report: receipt::report::StreamReport = serde_json::from_str(&text).unwrap();
        assert_eq!(report.kind, "stream");
        assert_eq!(report.batches.len(), 2);
        assert!(report.verified);
        assert_eq!(
            report.batches.last().unwrap().total_butterflies,
            report.final_total_butterflies
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_convert_and_recover() {
        let cmd = parse(&sv(&["convert", "g.tsv", "g.bgr"])).unwrap();
        match cmd {
            Command::Convert {
                input,
                output,
                from,
                to,
                json,
            } => {
                assert_eq!(input, "g.tsv");
                assert_eq!(output, "g.bgr");
                assert!(from.is_none() && to.is_none() && !json);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&sv(&[
            "convert", "a", "b", "--from", "binary", "--to", "TEXT", "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Convert { from, to, json, .. } => {
                assert_eq!(from.as_deref(), Some("binary"));
                assert_eq!(to.as_deref(), Some("text"));
                assert!(json);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&sv(&["convert", "g.tsv"])).is_err());
        assert!(parse(&sv(&["convert", "a", "b", "--from", "nope"])).is_err());

        let cmd = parse(&sv(&["recover", "store", "--json"])).unwrap();
        match cmd {
            Command::Recover { dir, json, output } => {
                assert_eq!(dir, "store");
                assert!(json && output.is_none());
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&sv(&["recover"])).is_err());
    }

    #[test]
    fn parse_serve_wal_flags() {
        let cmd = parse(&sv(&["serve", "g.tsv"])).unwrap();
        match cmd {
            Command::Serve {
                wal,
                checkpoint_every,
                ..
            } => {
                assert!(wal.is_none());
                assert_eq!(checkpoint_every, receipt::wal::DEFAULT_CHECKPOINT_EVERY);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&sv(&[
            "serve",
            "g.tsv",
            "--wal",
            "store",
            "--checkpoint-every",
            "3",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                wal,
                checkpoint_every,
                ..
            } => {
                assert_eq!(wal.as_deref(), Some("store"));
                assert_eq!(checkpoint_every, 3);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&sv(&["serve", "g.tsv", "--checkpoint-every", "x"])).is_err());
    }

    #[test]
    fn convert_recover_unit_round_trip() {
        let dir = std::env::temp_dir().join("tipdecomp_convert_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let text = dir.join("g.tsv");
        let bin = dir.join("g.bgr");
        let back = dir.join("back.tsv");
        let g = bigraph::gen::zipf(20, 15, 60, 0.5, 0.8, 9);
        bigraph::io::write_graph_path(&g, &text).unwrap();
        run(Command::Convert {
            input: text.to_string_lossy().into_owned(),
            output: bin.to_string_lossy().into_owned(),
            from: None,
            to: None,
            json: false,
        })
        .unwrap();
        run(Command::Convert {
            input: bin.to_string_lossy().into_owned(),
            output: back.to_string_lossy().into_owned(),
            from: None,
            to: None,
            json: false,
        })
        .unwrap();
        // The canonical text writer produced both files, so the round trip
        // is byte-identical.
        assert_eq!(std::fs::read(&text).unwrap(), std::fs::read(&back).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_help_and_empty() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&sv(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn end_to_end_tip_roundtrip() {
        // Generate, decompose, read back.
        let dir = std::env::temp_dir().join("tipdecomp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.tsv");
        let out_path = dir.join("tips.tsv");
        let g = bigraph::gen::planted_bicliques(10, 10, 1, 4, 4, 8, 3);
        // Pin the last ids so read-back sizing (max observed id) matches.
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        edges.push((9, 9));
        let g = bigraph::builder::from_edges(10, 10, &edges).unwrap();
        bigraph::io::write_graph_path(&g, &graph_path).unwrap();

        run(Command::Tip {
            input: graph_path.to_string_lossy().into_owned(),
            side: Side::U,
            config: Config::default(),
            output: Some(out_path.to_string_lossy().into_owned()),
            json: false,
            stats: false,
        })
        .unwrap();

        let text = std::fs::read_to_string(&out_path).unwrap();
        let rows: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(rows.len(), 10);
        // Block members (u0..u3) have tip number (4-1)*C(4,2) = 18 or more.
        let first: u64 = rows[0].split('\t').nth(1).unwrap().parse().unwrap();
        assert!(first >= 18, "block member tip = {first}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_missing_file_fails() {
        let err = run(Command::Stats {
            input: "/nonexistent/g.tsv".into(),
        })
        .unwrap_err();
        assert!(err.contains("failed to read"));
    }

    #[test]
    fn generate_unknown_preset_fails() {
        let err = run(Command::Generate {
            preset: "Zz".into(),
            output: None,
        })
        .unwrap_err();
        assert!(err.contains("unknown preset"));
    }

    #[test]
    fn parse_version_subcommands() {
        let cmd = parse(&sv(&["version", "tag", "store", "v1", "--json"])).unwrap();
        match cmd {
            Command::Version {
                op,
                dir,
                names,
                json,
                ..
            } => {
                assert_eq!(op, "tag");
                assert_eq!(dir, "store");
                assert_eq!(names, vec!["v1".to_string()]);
                assert!(json);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&sv(&["version", "list", "store"])).unwrap();
        match cmd {
            Command::Version { op, names, .. } => {
                assert_eq!(op, "list");
                assert!(names.is_empty());
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&sv(&[
            "version", "diff", "store", "v0", "v2", "--output", "d.txt",
        ]))
        .unwrap();
        match cmd {
            Command::Version {
                op, names, output, ..
            } => {
                assert_eq!(op, "diff");
                assert_eq!(names, vec!["v0".to_string(), "v2".to_string()]);
                assert_eq!(output.as_deref(), Some("d.txt"));
            }
            other => panic!("{other:?}"),
        }
        // A no-value flag before a positional must not swallow it.
        let cmd = parse(&sv(&[
            "version", "at", "store", "--verify", "v1", "--dump", "g.bgr",
        ]))
        .unwrap();
        match cmd {
            Command::Version {
                op,
                names,
                verify,
                dump,
                ..
            } => {
                assert_eq!(op, "at");
                assert_eq!(names, vec!["v1".to_string()]);
                assert!(verify);
                assert_eq!(dump.as_deref(), Some("g.bgr"));
            }
            other => panic!("{other:?}"),
        }
        // Arity is per-op: tag/at take one name, list none, diff two.
        assert!(parse(&sv(&["version"])).is_err());
        assert!(parse(&sv(&["version", "tag", "store"])).is_err());
        assert!(parse(&sv(&["version", "list", "store", "extra"])).is_err());
        assert!(parse(&sv(&["version", "diff", "store", "v0"])).is_err());
        assert!(parse(&sv(&["version", "promote", "store", "v0"])).is_err());
    }

    #[test]
    fn parse_derive_subcommands() {
        let cmd = parse(&sv(&[
            "derive", "subgraph", "a.tsv", "--ids", "0,2,5", "--side", "V", "--output", "s.tsv",
        ]))
        .unwrap();
        match cmd {
            Command::Derive {
                op,
                a,
                b,
                ids,
                side,
                output,
                json,
            } => {
                assert_eq!(op, "subgraph");
                assert_eq!(a, "a.tsv");
                assert!(b.is_none());
                assert_eq!(ids, vec![0, 2, 5]);
                assert_eq!(side, Side::V);
                assert_eq!(output, "s.tsv");
                assert!(!json);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&sv(&[
            "derive", "union", "a.tsv", "b.bgr", "--output", "u.bgr", "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Derive { op, a, b, json, .. } => {
                assert_eq!(op, "union");
                assert_eq!(a, "a.tsv");
                assert_eq!(b.as_deref(), Some("b.bgr"));
                assert!(json);
            }
            other => panic!("{other:?}"),
        }
        // subgraph requires --ids, union/diff require a second input,
        // every op requires --output.
        assert!(parse(&sv(&["derive", "subgraph", "a.tsv", "--output", "s.tsv"])).is_err());
        assert!(parse(&sv(&["derive", "union", "a.tsv", "--output", "u.tsv"])).is_err());
        assert!(parse(&sv(&["derive", "diff", "a.tsv", "b.tsv"])).is_err());
        assert!(parse(&sv(&[
            "derive", "subgraph", "a.tsv", "--ids", "2,x", "--output", "s"
        ]))
        .is_err());
        assert!(parse(&sv(&["derive", "invert", "a.tsv", "--output", "o"])).is_err());
    }
}

//! `tipdecomp` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match receipt_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", receipt_cli::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = receipt_cli::run(cmd) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

//! `tipdecomp` binary entry point.
//!
//! Exit codes: 0 on success, 2 for argument-parse errors (usage printed),
//! 1 for run errors (message names the failing subcommand).

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match receipt_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", receipt_cli::USAGE);
            std::process::exit(2);
        }
    };
    let name = cmd.name();
    if let Err(e) = receipt_cli::run(cmd) {
        eprintln!(
            "error: {e}\n  while running `tipdecomp {name}` (run `tipdecomp help` for usage)"
        );
        std::process::exit(1);
    }
}

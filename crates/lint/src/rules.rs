//! The rule engine: five token-level rules over [`SourceFile`]s.
//!
//! Each rule encodes one of the workspace's load-bearing contracts (see
//! [`crate::config`] for the scoping). Rules are deliberately syntactic —
//! they match the token stream, never type information — so they run on
//! every push in milliseconds and cannot be wrong about *where* something
//! is, only (rarely) about *what* it means; the suppression grammar
//! exists for exactly those rare cases.

use crate::config::{
    ATOMIC_FILES, DURABLE_MODULES, READ_PATH_MODULES, RULE_ATOMIC_ORDERING_JUSTIFIED,
    RULE_NO_LOCK_IN_READ_PATH, RULE_NO_PANIC_IN_DURABLE, RULE_REPORT_HAS_SCHEMA_VERSION,
    RULE_UNSAFE_NEEDS_SAFETY, VERSIONED_CHILDREN,
};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// One diagnostic: rule, position, human message, and the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    pub excerpt: String,
}

impl Finding {
    fn at(rule: &'static str, file: &SourceFile, line: u32, col: u32, message: String) -> Finding {
        Finding {
            rule,
            path: file.rel_path.clone(),
            line,
            col,
            message,
            excerpt: file.line_text(line).trim_end().to_string(),
        }
    }
}

/// Runs every rule over the workspace; findings come back sorted by
/// (path, line, col, rule) with exact duplicates removed.
pub fn run_rules(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        findings.extend(unsafe_needs_safety(file));
        findings.extend(no_panic_in_durable(file));
        findings.extend(atomic_ordering_justified(file));
        findings.extend(no_lock_in_read_path(file));
    }
    findings.extend(report_has_schema_version(files));
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    findings.dedup();
    findings
}

/// Does the justification text for `line` (trailing comment, statement
/// continuation comments, or the comment block above the statement —
/// see [`SourceFile::justification_for`]) contain `marker`?
fn covered_by_comment(file: &SourceFile, line: u32, marker: &str) -> bool {
    file.justification_for(line).contains(marker)
}

/// R1 `unsafe-needs-safety`: every `unsafe` token — block, fn, impl, or
/// trait — must sit under a `// SAFETY:` comment (or a `/// # Safety`
/// doc section; either marker is accepted for any form). Applies to test
/// code too: an unsound test is still unsound.
fn unsafe_needs_safety(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for idx in 0..file.tokens.len() {
        let t = file.tokens[idx];
        if t.kind != TokenKind::Ident || file.token_text(idx) != "unsafe" {
            continue;
        }
        let line = t.line;
        if covered_by_comment(file, line, "SAFETY:") || covered_by_comment(file, line, "# Safety") {
            continue;
        }
        let form = match file.next_code_token(idx).map(|j| file.token_text(j)) {
            Some("fn") => "unsafe fn",
            Some("impl") => "unsafe impl",
            Some("trait") => "unsafe trait",
            _ => "unsafe block",
        };
        let hint = if form == "unsafe fn" {
            "document the caller contract with a `/// # Safety` section or a `// SAFETY:` comment"
        } else {
            "state why the invariants hold in a `// SAFETY:` comment immediately above"
        };
        out.push(Finding::at(
            RULE_UNSAFE_NEEDS_SAFETY,
            file,
            line,
            t.col,
            format!("{form} without a SAFETY comment — {hint}"),
        ));
    }
    out
}

const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// R2 `no-panic-in-durable`: in the fail-closed modules, corruption must
/// surface as a typed error — `.unwrap()`, `.expect(…)`, and the panic
/// macro family (but not `debug_assert!`) are forbidden outside
/// `#[cfg(test)]`.
fn no_panic_in_durable(file: &SourceFile) -> Vec<Finding> {
    if !DURABLE_MODULES.contains(&file.rel_path.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for idx in 0..file.tokens.len() {
        let t = file.tokens[idx];
        if t.kind != TokenKind::Ident || file.in_test(t.start) {
            continue;
        }
        let text = file.token_text(idx);
        let method_call = matches!(text, "unwrap" | "expect")
            && file.prev_code_token(idx).map(|j| file.token_text(j)) == Some(".")
            && file.next_code_token(idx).map(|j| file.token_text(j)) == Some("(");
        let panic_macro = PANIC_MACROS.contains(&text)
            && file.next_code_token(idx).map(|j| file.token_text(j)) == Some("!");
        if method_call {
            out.push(Finding::at(
                RULE_NO_PANIC_IN_DURABLE,
                file,
                t.line,
                t.col,
                format!(
                    "`.{text}()` in a fail-closed durable module — return the module's typed \
                     error instead (FORMATS.md §2: corrupt input must fail closed, not panic)"
                ),
            ));
        } else if panic_macro {
            out.push(Finding::at(
                RULE_NO_PANIC_IN_DURABLE,
                file,
                t.line,
                t.col,
                format!(
                    "`{text}!` in a fail-closed durable module — return the module's typed \
                     error instead (FORMATS.md §2); `debug_assert!` is allowed"
                ),
            ));
        }
    }
    out
}

/// R3 `atomic-ordering-justified`: every line using `Ordering::` in the
/// lock-free scheduler files carries an `// ordering:` comment — trailing
/// on the line or in the comment block above it. One finding per line.
fn atomic_ordering_justified(file: &SourceFile) -> Vec<Finding> {
    if !ATOMIC_FILES.contains(&file.rel_path.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut last_line = 0u32;
    for idx in 0..file.tokens.len() {
        let t = file.tokens[idx];
        if t.kind != TokenKind::Ident
            || file.token_text(idx) != "Ordering"
            || file.in_test(t.start)
            || t.line == last_line
        {
            continue;
        }
        // Require the `::` — a bare `Ordering` (import lists, type
        // positions) picks no ordering and needs no justification.
        let colon1 = file.next_code_token(idx);
        let colon2 = colon1.and_then(|j| file.next_code_token(j));
        let is_use = colon1.map(|j| file.token_text(j)) == Some(":")
            && colon2.map(|j| file.token_text(j)) == Some(":");
        if !is_use {
            continue;
        }
        if covered_by_comment(file, t.line, "ordering:") {
            last_line = t.line;
            continue;
        }
        last_line = t.line;
        out.push(Finding::at(
            RULE_ATOMIC_ORDERING_JUSTIFIED,
            file,
            t.line,
            t.col,
            "atomic `Ordering::` use without an `// ordering:` justification — state why \
             this ordering is sufficient (Lê et al. PPoPP '13 is the reference for the \
             deque's fence placement)"
                .to_string(),
        ));
    }
    out
}

const LOCK_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// R4 `no-lock-in-read-path`: the snapshot read-path modules answer
/// queries from immutable published state — no lock acquisition of any
/// kind may appear there, so `EngineSnapshot` readers provably never
/// block a writer or each other.
fn no_lock_in_read_path(file: &SourceFile) -> Vec<Finding> {
    if !READ_PATH_MODULES.contains(&file.rel_path.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for idx in 0..file.tokens.len() {
        let t = file.tokens[idx];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = file.token_text(idx);
        if LOCK_METHODS.contains(&text)
            && file.prev_code_token(idx).map(|j| file.token_text(j)) == Some(".")
            && file.next_code_token(idx).map(|j| file.token_text(j)) == Some("(")
        {
            out.push(Finding::at(
                RULE_NO_LOCK_IN_READ_PATH,
                file,
                t.line,
                t.col,
                format!(
                    "`.{text}()` in a snapshot read-path module — readers must stay \
                     lock-free; move the acquisition to the engine's write/publish path"
                ),
            ));
        }
    }
    out
}

/// A struct declaration R5 cares about.
#[derive(Debug)]
struct StructDecl {
    name: String,
    file_idx: usize,
    line: u32,
    col: u32,
    is_pub: bool,
    has_serialize: bool,
    has_schema_version: bool,
}

/// R5 `report-has-schema-version`: every `Serialize`-derived
/// `pub struct *Report` / `*Row` declares a `schema_version` field, or is
/// listed in [`VERSIONED_CHILDREN`] under a parent that both exists and
/// is itself versioned. Manifest entries are checked from both ends: a
/// listed child whose parent is missing or unversioned is a finding, and
/// a parent that exists while its listed child has vanished marks the
/// manifest stale.
fn report_has_schema_version(files: &[SourceFile]) -> Vec<Finding> {
    let mut decls: Vec<StructDecl> = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        decls.extend(collect_structs(file, file_idx));
    }
    let mut out = Vec::new();
    for d in &decls {
        let interesting = d.is_pub
            && d.has_serialize
            && (d.name.ends_with("Report") || d.name.ends_with("Row"))
            && !d.has_schema_version;
        if !interesting {
            continue;
        }
        let file = &files[d.file_idx];
        match VERSIONED_CHILDREN
            .iter()
            .find(|(child, _)| *child == d.name)
        {
            None => out.push(Finding::at(
                RULE_REPORT_HAS_SCHEMA_VERSION,
                file,
                d.line,
                d.col,
                format!(
                    "serialized `pub struct {}` has no `schema_version` field and is not \
                     listed under a versioned parent in the lint manifest \
                     (crates/lint/src/config.rs) — downstream tooling cannot dispatch on \
                     its documents",
                    d.name
                ),
            )),
            Some((_, parent)) => {
                let ok = decls
                    .iter()
                    .any(|p| p.name == *parent && p.has_schema_version);
                if !ok {
                    out.push(Finding::at(
                        RULE_REPORT_HAS_SCHEMA_VERSION,
                        file,
                        d.line,
                        d.col,
                        format!(
                            "`{}` relies on manifest parent `{parent}`, but no such struct \
                             with a `schema_version` field exists in this tree — fix the \
                             manifest or version the parent",
                            d.name
                        ),
                    ));
                }
            }
        }
    }
    // Staleness sweep: a parent that exists while its listed child does
    // not means the manifest has rotted (child renamed or deleted).
    for (child, parent) in VERSIONED_CHILDREN {
        if decls.iter().any(|d| d.name == *child) {
            continue;
        }
        if let Some(p) = decls.iter().find(|d| d.name == *parent) {
            let file = &files[p.file_idx];
            out.push(Finding::at(
                RULE_REPORT_HAS_SCHEMA_VERSION,
                file,
                p.line,
                p.col,
                format!(
                    "stale lint manifest: `{child}` is listed under `{parent}` but no \
                     struct of that name exists — update VERSIONED_CHILDREN in \
                     crates/lint/src/config.rs"
                ),
            ));
        }
    }
    out
}

/// Collects struct declarations with their derive and field facts.
fn collect_structs(file: &SourceFile, file_idx: usize) -> Vec<StructDecl> {
    let mut out = Vec::new();
    for idx in 0..file.tokens.len() {
        let t = file.tokens[idx];
        if t.kind != TokenKind::Ident || file.token_text(idx) != "struct" || file.in_test(t.start) {
            continue;
        }
        let Some(name_idx) = file.next_code_token(idx) else {
            continue;
        };
        if file.tokens[name_idx].kind != TokenKind::Ident {
            continue;
        }
        let name = file.token_text(name_idx).to_string();
        // `pub struct` only — a visibility-restricted report is not API.
        let is_pub = file.prev_code_token(idx).map(|j| file.token_text(j)) == Some("pub");
        let decl_start = if is_pub {
            file.prev_code_token(idx).expect("pub token exists")
        } else {
            idx
        };
        let has_serialize = attrs_above(file, decl_start)
            .iter()
            .any(|a| a.contains("derive") && a.contains("Serialize"));
        out.push(StructDecl {
            name,
            file_idx,
            line: t.line,
            col: t.col,
            is_pub,
            has_serialize,
            has_schema_version: struct_has_field(file, name_idx, "schema_version"),
        });
    }
    out
}

/// Texts of the attribute groups (`#[…]`) directly above the declaration
/// starting at code token `decl_start`, walking backward over any number
/// of attributes (doc comments are transparent — they are comment
/// tokens).
fn attrs_above(file: &SourceFile, decl_start: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut k = decl_start;
    while let Some(close) = file.prev_code_token(k) {
        if file.token_text(close) != "]" {
            break;
        }
        // Scan back to the matching `[`.
        let mut depth = 0usize;
        let mut j = close;
        let open = loop {
            match file.token_text(j) {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break j;
                    }
                }
                _ => {}
            }
            let Some(prev) = file.prev_code_token(j) else {
                return out;
            };
            j = prev;
        };
        let Some(hash) = file.prev_code_token(open) else {
            return out;
        };
        if file.token_text(hash) != "#" {
            break;
        }
        let lo = file.tokens[hash].start;
        let hi = file.tokens[close].end;
        out.push(file.text[lo..hi].to_string());
        k = hash;
    }
    out
}

/// Does the struct whose name token is `name_idx` declare `field` at its
/// top level? Scans forward to the body (`{…}`); tuple and unit structs
/// have no named fields.
fn struct_has_field(file: &SourceFile, name_idx: usize, field: &str) -> bool {
    // Find the opening `{`, stopping at `;` (unit) or `(` (tuple).
    let mut k = name_idx;
    let body_open = loop {
        let Some(next) = file.next_code_token(k) else {
            return false;
        };
        match file.token_text(next) {
            "{" => break next,
            ";" | "(" => return false,
            _ => k = next,
        }
    };
    let mut depth = 1usize;
    let mut k = body_open;
    while let Some(next) = file.next_code_token(k) {
        k = next;
        match file.token_text(k) {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            text if depth == 1
                && text == field
                && file.next_code_token(k).map(|j| file.token_text(j)) == Some(":") =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn file_at(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path.into(), src.to_string())
    }

    fn rules_on(path: &str, src: &str) -> Vec<Finding> {
        run_rules(&[file_at(path, src)])
    }

    #[test]
    fn r1_flags_uncommented_unsafe_block() {
        let f = rules_on("src/a.rs", "fn f() {\n    unsafe { danger() };\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_UNSAFE_NEEDS_SAFETY);
        assert_eq!((f[0].line, f[0].col), (2, 5));
        assert!(f[0].message.contains("unsafe block"));
    }

    #[test]
    fn r1_accepts_safety_comment_and_doc_section() {
        let src = "// SAFETY: sound because X.\nunsafe fn g() {}\n\n/// Does things.\n///\n/// # Safety\n/// Caller must Y.\npub unsafe fn h() {}\n\n// SAFETY: covered block.\nfn f() {\n    // SAFETY: local reason.\n    unsafe { danger() };\n}\n";
        assert!(rules_on("src/a.rs", src).is_empty());
    }

    #[test]
    fn r1_attr_between_comment_and_item_is_transparent() {
        let src = "// SAFETY: fine.\n#[inline]\nunsafe fn g() {}\n";
        assert!(rules_on("src/a.rs", src).is_empty());
    }

    #[test]
    fn r1_blank_line_breaks_the_association() {
        let src = "// SAFETY: too far away.\n\nunsafe fn g() {}\n";
        let f = rules_on("src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unsafe fn"));
    }

    #[test]
    fn r1_applies_inside_tests_too() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        unsafe { d.push(1) };\n    }\n}\n";
        assert_eq!(rules_on("src/a.rs", src).len(), 1);
    }

    #[test]
    fn r1_ignores_unsafe_in_strings_and_comments() {
        let src = "// unsafe unsafe unsafe\nconst S: &str = \"unsafe { }\";\n";
        assert!(rules_on("src/a.rs", src).is_empty());
    }

    #[test]
    fn r2_flags_panics_only_in_durable_modules_outside_tests() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\nfn g() {\n    panic!(\"boom\");\n    debug_assert!(true);\n}\n#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) { x.unwrap(); assert!(true); }\n}\n";
        let durable = rules_on("crates/core/src/wal.rs", src);
        assert_eq!(durable.len(), 2, "{durable:?}");
        assert!(durable.iter().all(|f| f.rule == RULE_NO_PANIC_IN_DURABLE));
        assert!(durable[0].message.contains("unwrap"));
        assert!(durable[1].message.contains("panic"));
        // The same source elsewhere is not R2's business (the unsafe-free
        // file produces nothing at all).
        assert!(rules_on("crates/core/src/peel.rs", src).is_empty());
    }

    #[test]
    fn r2_does_not_flag_unwrap_or_else_or_expect_err() {
        let src = "fn f(x: Result<u32, E>) -> u32 {\n    x.unwrap_or_else(|_| 0)\n}\nfn g(x: Result<u32, E>) -> E {\n    x.expect_err_helper()\n}\n";
        assert!(rules_on("crates/core/src/wal.rs", src).is_empty());
    }

    #[test]
    fn r3_requires_ordering_justifications() {
        let src = "fn f(a: &AtomicUsize) {\n    a.load(Ordering::Relaxed);\n    a.store(1, Ordering::SeqCst); // ordering: commit point, totally ordered\n    // ordering: publication; pairs with the Acquire in steal.\n    a.store(2, Ordering::Release);\n}\n";
        let f = rules_on("vendor/rayon/src/deque.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_ATOMIC_ORDERING_JUSTIFIED);
        assert_eq!(f[0].line, 2);
        // Same file content outside the configured files: silent.
        assert!(rules_on("vendor/rayon/src/iter.rs", src).is_empty());
    }

    #[test]
    fn r3_one_finding_per_line_and_bare_ordering_is_fine() {
        let src = "use std::sync::atomic::Ordering;\nfn f(a: &AtomicUsize, o: Ordering) {\n    a.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed);\n}\n";
        let f = rules_on("vendor/rayon/src/pool.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn r4_flags_lock_acquisitions_in_read_path() {
        let src = "fn f(m: &Mutex<u32>, r: &RwLock<u32>) {\n    let a = m.lock();\n    let b = r.read();\n    let c = r.write();\n}\n";
        let f = rules_on("crates/core/src/snapshot.rs", src);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|x| x.rule == RULE_NO_LOCK_IN_READ_PATH));
        assert!(rules_on("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn r5_missing_schema_version_is_flagged() {
        let src =
            "#[derive(Debug, Serialize)]\npub struct OrphanReport {\n    pub rows: Vec<u32>,\n}\n";
        let f = rules_on("crates/core/src/report.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_REPORT_HAS_SCHEMA_VERSION);
        assert!(f[0].message.contains("OrphanReport"));
    }

    #[test]
    fn r5_versioned_or_manifest_covered_structs_pass() {
        let src = "#[derive(Serialize)]\npub struct FineReport {\n    pub schema_version: u32,\n}\n\n#[derive(Serialize)]\npub struct LintReport {\n    pub schema_version: u32,\n}\n\n#[derive(Serialize)]\npub struct FindingRow {\n    pub rule: String,\n}\n";
        assert!(rules_on("crates/core/src/report.rs", src).is_empty());
    }

    #[test]
    fn r5_manifest_child_with_missing_parent_is_flagged() {
        let src = "#[derive(Serialize)]\npub struct FindingRow {\n    pub rule: String,\n}\n";
        let f = rules_on("crates/core/src/report.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("LintReport"), "{}", f[0].message);
    }

    #[test]
    fn r5_stale_manifest_child_is_flagged_when_parent_exists() {
        let src =
            "#[derive(Serialize)]\npub struct LintReport {\n    pub schema_version: u32,\n}\n";
        let f = rules_on("crates/core/src/report.rs", src);
        assert_eq!(f.len(), 1);
        assert!(
            f[0].message.contains("stale lint manifest"),
            "{}",
            f[0].message
        );
        assert!(f[0].message.contains("FindingRow"));
    }

    #[test]
    fn r5_ignores_unserialized_private_and_test_structs() {
        let src = "pub struct PlainReport { pub x: u32 }\n#[derive(Serialize)]\nstruct HiddenReport { x: u32 }\n#[derive(Serialize)]\npub(crate) struct ScopedReport { x: u32 }\n#[cfg(test)]\nmod tests {\n    #[derive(Serialize)]\n    pub struct TestOnlyReport { x: u32 }\n}\n";
        assert!(rules_on("crates/core/src/report.rs", src).is_empty());
    }
}

//! A small hand-rolled Rust lexer.
//!
//! `receipt-lint`'s rules are token-level, so the lexer's one job is to
//! classify source bytes well enough that rules never match inside a
//! string literal or a comment, and always see comments as first-class
//! tokens (the SAFETY/ordering rules read them). It handles the full
//! literal grammar the workspace actually uses: escaped string and char
//! literals, byte strings, raw strings with `#` fences, raw identifiers,
//! lifetimes vs char literals, nested block comments, and numeric
//! literals with type suffixes. It does not build a syntax tree — rules
//! pattern-match on the flat token stream plus per-line classifications
//! (see [`crate::source`]).
//!
//! Offline discipline: like the vendored shims, this is plain `std` —
//! no proc-macro, no external parser crate.

/// What a [`Token`] is. Keywords are `Ident`s; rules compare text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Numeric literal, including suffix (`1_000u64`, `0x2F`, `1.5e-3`).
    Number,
    /// String literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// Lifetime: `'a` (no closing quote).
    Lifetime,
    /// A single punctuation byte; multi-byte operators arrive as runs.
    Punct,
    /// `// …` to end of line (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, nesting tracked.
    BlockComment,
}

/// One lexed token: classification plus byte span and 1-based position.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based byte column of `start` within its line.
    pub col: u32,
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_cont(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Byte offsets where each line starts (index 0 = line 1).
pub fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Lexes `text` into tokens. Unterminated literals and comments are
/// tolerated (the token runs to end of input) — the linter must keep
/// walking a tree even if one file is mid-edit broken.
pub fn lex(text: &str) -> Vec<Token> {
    let b = text.as_bytes();
    let n = b.len();
    let starts = line_starts(text);
    let mut tokens: Vec<Token> = Vec::new();
    let mut i = 0usize;
    let push = |tokens: &mut Vec<Token>, kind: TokenKind, start: usize, end: usize| {
        // line via binary search: last line start <= start.
        let line_idx = starts.partition_point(|&s| s <= start) - 1;
        tokens.push(Token {
            kind,
            start,
            end,
            line: line_idx as u32 + 1,
            col: (start - starts[line_idx]) as u32 + 1,
        });
    };
    while i < n {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        // Comments.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            push(&mut tokens, TokenKind::LineComment, start, i);
            continue;
        }
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            push(&mut tokens, TokenKind::BlockComment, start, i);
            continue;
        }
        // Raw strings, byte strings, raw identifiers. Check before plain
        // identifiers so `r#"…"#` is not read as `r` `#` `"…`.
        if is_ident_start(c) {
            let (is_raw_str, prefix_len) = raw_string_prefix(&b[i..]);
            if is_raw_str {
                i += prefix_len; // past r/br and the #s, at the opening quote
                let fence = prefix_len - raw_prefix_letters(&b[start..]);
                i += 1; // opening quote
                while i < n {
                    if b[i] == b'"'
                        && i + fence < n
                        && b[i + 1..=i + fence].iter().all(|&h| h == b'#')
                    {
                        i += 1 + fence;
                        break;
                    }
                    i += 1;
                }
                push(&mut tokens, TokenKind::Str, start, i);
                continue;
            }
            if c == b'b' && i + 1 < n && (b[i + 1] == b'"' || b[i + 1] == b'\'') {
                let quote = b[i + 1];
                i += 1;
                i = lex_quoted(b, i, quote);
                let kind = if quote == b'"' {
                    TokenKind::Str
                } else {
                    TokenKind::Char
                };
                push(&mut tokens, kind, start, i);
                continue;
            }
            if c == b'r' && i + 2 < n && b[i + 1] == b'#' && is_ident_start(b[i + 2]) {
                i += 2; // raw identifier `r#type`
            }
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            push(&mut tokens, TokenKind::Ident, start, i);
            continue;
        }
        if c == b'"' {
            i = lex_quoted(b, i, b'"');
            push(&mut tokens, TokenKind::Str, start, i);
            continue;
        }
        if c == b'\'' {
            // Lifetime iff an ident follows and no closing quote comes
            // right after it (`'a` vs `'a'`).
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_cont(b[j]) {
                    j += 1;
                }
                if j >= n || b[j] != b'\'' {
                    i = j;
                    push(&mut tokens, TokenKind::Lifetime, start, i);
                    continue;
                }
            }
            i = lex_quoted(b, i, b'\'');
            push(&mut tokens, TokenKind::Char, start, i);
            continue;
        }
        if c.is_ascii_digit() {
            i = lex_number(b, i);
            push(&mut tokens, TokenKind::Number, start, i);
            continue;
        }
        i += 1;
        push(&mut tokens, TokenKind::Punct, start, i);
    }
    tokens
}

/// Length of the `r`/`b` letters in a raw-string prefix at `b[0..]`.
fn raw_prefix_letters(b: &[u8]) -> usize {
    match b {
        [b'b', b'r', ..] => 2,
        [b'r', ..] => 1,
        _ => 0,
    }
}

/// Does `b` open a raw (byte) string? Returns `(true, len)` with `len`
/// the bytes up to (not including) the opening quote.
fn raw_string_prefix(b: &[u8]) -> (bool, usize) {
    let letters = match b {
        [b'b', b'r', rest @ ..] if !rest.is_empty() => 2,
        [b'r', rest @ ..] if !rest.is_empty() => 1,
        _ => return (false, 0),
    };
    let mut j = letters;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        (true, j)
    } else {
        (false, 0)
    }
}

/// Advances past a quoted literal starting at the opening quote `b[i] ==
/// quote`, honoring backslash escapes. Returns the index one past the
/// closing quote (or end of input if unterminated).
fn lex_quoted(b: &[u8], i: usize, quote: u8) -> usize {
    let mut i = i + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            c if c == quote => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Advances past a numeric literal starting at a digit.
fn lex_number(b: &[u8], i: usize) -> usize {
    let mut i = i;
    if b[i] == b'0'
        && i + 1 < b.len()
        && matches!(b[i + 1], b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
    {
        i += 2;
        while i < b.len() && (b[i].is_ascii_hexdigit() || b[i] == b'_') {
            i += 1;
        }
    } else {
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
        // Fractional part — but never eat a `..` range operator or a
        // method call on a literal (`1.max(2)`).
        if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
            i += 1;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
        // Exponent.
        if i < b.len() && matches!(b[i], b'e' | b'E') {
            let mut j = i + 1;
            if j < b.len() && matches!(b[j], b'+' | b'-') {
                j += 1;
            }
            if j < b.len() && b[j].is_ascii_digit() {
                i = j;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
            }
        }
    }
    // Type suffix (`u64`, `f32`, `usize`).
    while i < b.len() && is_ident_cont(b[i]) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, src[t.start..t.end].to_string()))
            .collect()
    }

    #[test]
    fn idents_keywords_and_punct() {
        let toks = kinds("unsafe fn f(x: &mut T) -> u32 {}");
        assert_eq!(toks[0], (TokenKind::Ident, "unsafe".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "fn".into()));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Punct && t.1 == "&"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "unsafe // not a comment \" still";"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("not a comment"));
        assert!(!toks.iter().any(|t| t.0 == TokenKind::LineComment));
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "unsafe"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let a = r#\"has \"quotes\" and \\ backslash\"#; let b = r\"plain\";";
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].1.starts_with("r#\""));
        assert!(strs[0].1.ends_with("\"#"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"let m = b"RCPTBGR\0"; let c = b'\n';"#);
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Str && t.1.starts_with("b\"")));
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Char && t.1.starts_with("b'")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.1 == "'a"));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Char && t.1 == "'x'"));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let q = '\''; let u = '\u{1F980}';");
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, r"'\''");
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.ends_with("outer */"));
        assert_eq!(toks[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn line_comments_stop_at_newline() {
        let src = "x // SAFETY: fine\ny";
        let toks = kinds(src);
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert_eq!(toks[2], (TokenKind::Ident, "y".into()));
        let raw = lex(src);
        assert_eq!((raw[2].line, raw[2].col), (2, 1));
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = kinds("0x2F_u32 1_000usize 1.5e-3 0..10");
        assert_eq!(toks[0], (TokenKind::Number, "0x2F_u32".into()));
        assert_eq!(toks[1], (TokenKind::Number, "1_000usize".into()));
        assert_eq!(toks[2], (TokenKind::Number, "1.5e-3".into()));
        // `0..10` must lex as number, two dots, number.
        assert_eq!(toks[3], (TokenKind::Number, "0".into()));
        assert_eq!(toks[4].0, TokenKind::Punct);
        assert_eq!(toks[5].0, TokenKind::Punct);
        assert_eq!(toks[6], (TokenKind::Number, "10".into()));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "r#type"));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_is_tolerated() {
        let toks = kinds("let s = \"never closed");
        assert_eq!(toks.last().map(|t| t.0), Some(TokenKind::Str));
    }
}

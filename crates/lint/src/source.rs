//! Scanned-file model: tokens plus the per-line and per-region
//! classifications every rule leans on.
//!
//! * **Line kinds** — each source line is `Blank`, `Comment` (nothing but
//!   comment text), `Attr` (starts an attribute), or `Code`. The
//!   SAFETY/ordering rules walk contiguous `Comment` runs upward from a
//!   flagged line, skipping `Attr` lines, exactly like a human reader
//!   associating a comment with the item below it.
//! * **Test regions** — byte ranges covered by a `#[cfg(test)]` item
//!   (almost always `mod tests { … }`). Rules that police production
//!   code only (`no-panic-in-durable`, `atomic-ordering-justified`)
//!   skip findings inside them; `unsafe-needs-safety` deliberately does
//!   not — an unsound test is still unsound.

use crate::lexer::{lex, line_starts, Token, TokenKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How a whole source line classifies (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineKind {
    Blank,
    Comment,
    Attr,
    Code,
}

/// One lexed file plus derived indexes, ready for rules.
pub struct SourceFile {
    /// Path relative to the scan root, forward-slash separated — this is
    /// what diagnostics and the JSON report print, so reports are stable
    /// across machines.
    pub rel_path: String,
    pub text: String,
    pub tokens: Vec<Token>,
    /// Byte offset where each line starts; index 0 = line 1.
    pub line_starts: Vec<usize>,
    /// Classification per line; index 0 = line 1.
    pub line_kinds: Vec<LineKind>,
    /// Concatenated comment text per line (both `//…` bodies and the
    /// per-line slices of block comments); empty for comment-free lines.
    pub line_comments: Vec<String>,
    /// Byte ranges under `#[cfg(test)]`.
    pub test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    pub fn parse(rel_path: String, text: String) -> SourceFile {
        let tokens = lex(&text);
        let line_starts = line_starts(&text);
        let num_lines = line_starts.len();
        let mut has_code = vec![false; num_lines];
        let mut line_comments = vec![String::new(); num_lines];
        let mut first_code_token: Vec<Option<usize>> = vec![None; num_lines];
        for (idx, t) in tokens.iter().enumerate() {
            let first_line = t.line as usize - 1;
            let last_line = line_index(&line_starts, t.end.saturating_sub(1).max(t.start));
            match t.kind {
                TokenKind::LineComment | TokenKind::BlockComment => {
                    // Credit each covered line with its slice of the text.
                    for line in first_line..=last_line {
                        let lo = t.start.max(line_starts[line]);
                        let hi = t.end.min(end_of_line(&text, &line_starts, line));
                        if lo < hi {
                            line_comments[line].push_str(&text[lo..hi]);
                            line_comments[line].push(' ');
                        }
                    }
                }
                _ => {
                    for covered in has_code[first_line..=last_line].iter_mut() {
                        *covered = true;
                    }
                    if first_code_token[first_line].is_none() {
                        first_code_token[first_line] = Some(idx);
                    }
                }
            }
        }
        let mut line_kinds = Vec::with_capacity(num_lines);
        for line in 0..num_lines {
            let kind = if has_code[line] {
                match first_code_token[line] {
                    // `#[…]` or `#![…]` opens an attribute.
                    Some(idx)
                        if token_text(&text, &tokens, idx) == "#"
                            && matches!(
                                token_text_opt(&text, &tokens, idx + 1),
                                Some("[") | Some("!")
                            ) =>
                    {
                        LineKind::Attr
                    }
                    // A line that only *continues* a multi-line token or
                    // expression is still code.
                    _ => LineKind::Code,
                }
            } else if !line_comments[line].is_empty() {
                LineKind::Comment
            } else {
                LineKind::Blank
            };
            line_kinds.push(kind);
        }
        let test_regions = find_test_regions(&text, &tokens);
        SourceFile {
            rel_path,
            text,
            tokens,
            line_starts,
            line_kinds,
            line_comments,
            test_regions,
        }
    }

    /// The text of one 1-based line, without its newline.
    pub fn line_text(&self, line: u32) -> &str {
        let idx = line as usize - 1;
        let lo = self.line_starts[idx];
        let hi = end_of_line(&self.text, &self.line_starts, idx);
        &self.text[lo..hi]
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.line_starts.len()
    }

    /// Is the byte offset inside a `#[cfg(test)]` region?
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| lo <= offset && offset < hi)
    }

    /// Text of token `idx`.
    pub fn token_text(&self, idx: usize) -> &str {
        token_text(&self.text, &self.tokens, idx)
    }

    /// Index of the previous non-comment token before `idx`.
    pub fn prev_code_token(&self, idx: usize) -> Option<usize> {
        self.tokens[..idx]
            .iter()
            .rposition(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    }

    /// Index of the next non-comment token after `idx`.
    pub fn next_code_token(&self, idx: usize) -> Option<usize> {
        self.tokens[idx + 1..]
            .iter()
            .position(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|off| idx + 1 + off)
    }

    /// The comment block a reader would associate with 1-based `line`:
    /// the contiguous run of `Comment` lines directly above it, with
    /// `Attr` lines transparently skipped (doc comments sit above
    /// attributes). Returns the concatenated comment text, or an empty
    /// string if a blank or code line intervenes first.
    pub fn comment_block_above(&self, line: u32) -> String {
        let mut out = String::new();
        let mut idx = line as usize - 1; // 0-based index of the flagged line
        while idx > 0 {
            idx -= 1;
            match self.line_kinds[idx] {
                LineKind::Attr => continue,
                LineKind::Comment => {
                    out.push_str(&self.line_comments[idx]);
                    out.push(' ');
                }
                LineKind::Blank | LineKind::Code => break,
            }
        }
        out
    }

    /// Comment text appearing on `line` itself (e.g. a trailing
    /// `// ordering: …` justification).
    pub fn comment_on_line(&self, line: u32) -> &str {
        &self.line_comments[line as usize - 1]
    }

    /// Every comment a reader would accept as justifying `line`: its own
    /// trailing comment, comments gathered while walking up through the
    /// enclosing statement's continuation lines (a line whose predecessor
    /// does not end in `;`, `{`, or `}` is a continuation — think the
    /// `compare_exchange` line of a builder chain, or the second closure
    /// of a `join(…)` call), and finally the comment block directly above
    /// the statement, with `Attr` lines transparently skipped.
    pub fn justification_for(&self, line: u32) -> String {
        let mut out = String::new();
        out.push_str(self.comment_on_line(line));
        out.push(' ');
        let mut idx = line as usize - 1; // 0-based index of the flagged line
        while idx > 0 {
            let prev = idx - 1;
            match self.line_kinds[prev] {
                LineKind::Attr => idx = prev,
                LineKind::Comment => {
                    out.push_str(&self.line_comments[prev]);
                    out.push(' ');
                    idx = prev;
                }
                LineKind::Code => {
                    if self.line_ends_statement(prev) {
                        break;
                    }
                    out.push_str(&self.line_comments[prev]);
                    out.push(' ');
                    idx = prev;
                }
                LineKind::Blank => break,
            }
        }
        out
    }

    /// Does the 0-based line `idx` end a statement — i.e. is its last
    /// code token `;`, `{`, or `}`? Lines ending mid-expression (`,`,
    /// `(`, an operator…) are statement continuations.
    fn line_ends_statement(&self, idx: usize) -> bool {
        let target = idx as u32 + 1;
        let mut last: Option<&str> = None;
        for (i, t) in self.tokens.iter().enumerate() {
            if t.line > target {
                break;
            }
            if t.line == target
                && !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
            {
                last = Some(self.token_text(i));
            }
        }
        matches!(last, Some(";") | Some("{") | Some("}"))
    }
}

fn token_text<'a>(text: &'a str, tokens: &[Token], idx: usize) -> &'a str {
    let t = &tokens[idx];
    &text[t.start..t.end]
}

fn token_text_opt<'a>(text: &'a str, tokens: &[Token], idx: usize) -> Option<&'a str> {
    tokens.get(idx).map(|t| &text[t.start..t.end])
}

/// 0-based line index containing byte `offset`.
fn line_index(line_starts: &[usize], offset: usize) -> usize {
    line_starts.partition_point(|&s| s <= offset) - 1
}

/// Byte offset one past the last content byte of 0-based line `idx`
/// (excludes the newline).
fn end_of_line(text: &str, line_starts: &[usize], idx: usize) -> usize {
    let hi = if idx + 1 < line_starts.len() {
        line_starts[idx + 1]
    } else {
        text.len()
    };
    // Strip the newline (and a CR before it) from the span.
    let mut hi = hi;
    while hi > line_starts[idx] && matches!(text.as_bytes()[hi - 1], b'\n' | b'\r') {
        hi -= 1;
    }
    hi
}

/// Finds byte ranges of items annotated `#[cfg(test)]`: the attribute's
/// start through the end of the item it decorates (the matching `}` of
/// its block, or the terminating `;`). Only the exact `cfg(test)` form is
/// recognized — that is the only form the workspace uses, and treating
/// e.g. `cfg(not(test))` as test code would silence rules on production
/// paths.
fn find_test_regions(text: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(
                tokens[i].kind,
                TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let word = |k: usize| -> &str {
        let t = &tokens[code[k]];
        &text[t.start..t.end]
    };
    let mut regions = Vec::new();
    let mut k = 0usize;
    while k + 6 < code.len() {
        let is_cfg_test = word(k) == "#"
            && word(k + 1) == "["
            && word(k + 2) == "cfg"
            && word(k + 3) == "("
            && word(k + 4) == "test"
            && word(k + 5) == ")"
            && word(k + 6) == "]";
        if !is_cfg_test {
            k += 1;
            continue;
        }
        let region_start = tokens[code[k]].start;
        // Skip this and any further attributes, then find the item's end:
        // the matching close of its first brace block, or a `;` before
        // any brace opens.
        let mut j = k + 7;
        while j + 1 < code.len() && word(j) == "#" && word(j + 1) == "[" {
            // Skip a whole `#[…]` group by bracket depth.
            let mut depth = 0usize;
            j += 1;
            while j < code.len() {
                match word(j) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let mut depth = 0usize;
        let mut end = None;
        while j < code.len() {
            match word(j) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(tokens[code[j]].end);
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end = Some(tokens[code[j]].end);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let end = end.unwrap_or(text.len());
        regions.push((region_start, end));
        // Continue after the region; nested cfg(test) inside it is moot.
        while k < code.len() && tokens[code[k]].start < end {
            k += 1;
        }
    }
    regions
}

/// Directories never scanned, by component name, anywhere in the tree.
const SKIP_DIR_NAMES: &[&str] = &["target", ".git", ".github"];

/// Root-relative prefixes never scanned (the deliberately-bad lint
/// fixtures must not fail the self-check over the real workspace).
const SKIP_PREFIXES: &[&str] = &["tests/fixtures"];

/// Collects every `.rs` file under `root` in deterministic (sorted
/// byte-order) walk order, as paths relative to `root`.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, Path::new(""), &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(root.join(rel))?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let rel_child = rel.join(&name);
        let ty = entry.file_type()?;
        if ty.is_dir() {
            let name_str = name.to_string_lossy();
            if SKIP_DIR_NAMES.contains(&name_str.as_ref()) {
                continue;
            }
            let rel_str = rel_path_string(&rel_child);
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel_str == *p || rel_str.starts_with(&format!("{p}/")))
            {
                continue;
            }
            walk(root, &rel_child, out)?;
        } else if ty.is_file() && name.to_string_lossy().ends_with(".rs") {
            out.push(rel_child);
        }
    }
    Ok(())
}

/// Forward-slash string form of a relative path.
pub fn rel_path_string(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Reads and parses every source file under `root`.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for rel in collect_files(root)? {
        let text = fs::read_to_string(root.join(&rel))?;
        files.push(SourceFile::parse(rel_path_string(&rel), text));
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("test.rs".into(), src.to_string())
    }

    #[test]
    fn line_kinds_classify() {
        let f = file("// comment\n\n#[derive(Debug)]\nstruct S;\n");
        assert_eq!(f.line_kinds[0], LineKind::Comment);
        assert_eq!(f.line_kinds[1], LineKind::Blank);
        assert_eq!(f.line_kinds[2], LineKind::Attr);
        assert_eq!(f.line_kinds[3], LineKind::Code);
    }

    #[test]
    fn trailing_comment_is_code_line_with_comment_text() {
        let f = file("let x = 1; // ordering: why\n");
        assert_eq!(f.line_kinds[0], LineKind::Code);
        assert!(f.comment_on_line(1).contains("ordering:"));
    }

    #[test]
    fn comment_block_above_skips_attrs_and_stops_at_blank() {
        let f = file("// SAFETY: sound because reasons\n#[inline]\nunsafe fn f() {}\n\n// unrelated\n\nfn g() {}\n");
        assert!(f.comment_block_above(3).contains("SAFETY:"));
        assert_eq!(f.comment_block_above(7), "");
    }

    #[test]
    fn block_comment_lines_classify_as_comment() {
        let f = file("/* multi\n   line\n   SAFETY: here */\nlet x = 1;\n");
        assert_eq!(f.line_kinds[0], LineKind::Comment);
        assert_eq!(f.line_kinds[1], LineKind::Comment);
        assert_eq!(f.line_kinds[2], LineKind::Comment);
        assert!(f.comment_block_above(4).contains("SAFETY:"));
    }

    #[test]
    fn cfg_test_region_covers_the_mod() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let f = file(src);
        assert_eq!(f.test_regions.len(), 1);
        let prod_off = src.find("x.unwrap").unwrap();
        let test_off = src.find("y.unwrap").unwrap();
        let prod2_off = src.find("prod2").unwrap();
        assert!(!f.in_test(prod_off));
        assert!(f.in_test(test_off));
        assert!(!f.in_test(prod2_off));
    }

    #[test]
    fn cfg_test_with_extra_attrs_and_strings_with_braces() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    const S: &str = \"}\";\n}\nfn after() {}\n";
        let f = file(src);
        assert_eq!(f.test_regions.len(), 1);
        assert!(!f.in_test(src.find("after").unwrap()));
        // The `}` inside the string literal must not close the region.
        assert!(f.in_test(src.find("S:").unwrap()));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = file("#[cfg(not(test))]\nmod prod { fn f() { x.unwrap(); } }\n");
        assert!(f.test_regions.is_empty());
    }
}

//! Inline suppressions: `// lint: allow(<rule>[, <rule>…]) -- <why>`.
//!
//! A suppression silences the named rules on its own line (trailing
//! form) or on the line directly below (standalone form). The `-- why`
//! tail is part of the grammar on purpose: an allow without a recorded
//! justification still suppresses — silencing a diagnostic should never
//! be load-bearing on a second diagnostic — but it is itself reported as
//! a `suppression-needs-justification` finding, so unexplained escapes
//! cannot accumulate silently. Meta findings cannot be suppressed.

use crate::config::{
    is_known_rule, RULE_SUPPRESSION_NEEDS_JUSTIFICATION, RULE_SUPPRESSION_UNKNOWN_RULE,
};
use crate::lexer::TokenKind;
use crate::rules::Finding;
use crate::source::SourceFile;

/// One parsed suppression comment.
#[derive(Debug)]
struct Suppression {
    line: u32,
    rules: Vec<String>,
}

/// Scans `file` for suppression comments. Returns the usable
/// suppressions plus any meta findings (missing justification, unknown
/// rule, malformed grammar).
fn scan_file(file: &SourceFile) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut meta = Vec::new();
    for idx in 0..file.tokens.len() {
        let t = file.tokens[idx];
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = file.token_text(idx).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let meta_at = |rule: &'static str, message: String| Finding {
            rule,
            path: file.rel_path.clone(),
            line: t.line,
            col: t.col,
            message,
            excerpt: file.line_text(t.line).trim_end().to_string(),
        };
        // Grammar: allow(<rule>[, <rule>…]) [-- <justification>]
        let parsed = rest
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('('))
            .and_then(|r| r.split_once(')'));
        let Some((inside, tail)) = parsed else {
            meta.push(meta_at(
                RULE_SUPPRESSION_UNKNOWN_RULE,
                "malformed suppression — expected `// lint: allow(<rule>) -- <justification>`"
                    .to_string(),
            ));
            continue;
        };
        let rules: Vec<String> = inside
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            meta.push(meta_at(
                RULE_SUPPRESSION_UNKNOWN_RULE,
                "suppression allows no rules — expected `// lint: allow(<rule>) -- <justification>`"
                    .to_string(),
            ));
            continue;
        }
        for rule in &rules {
            if !is_known_rule(rule) {
                meta.push(meta_at(
                    RULE_SUPPRESSION_UNKNOWN_RULE,
                    format!("suppression names unknown rule `{rule}`"),
                ));
            }
        }
        let justified = tail
            .trim()
            .strip_prefix("--")
            .map(|j| !j.trim().is_empty())
            .unwrap_or(false);
        if !justified {
            meta.push(meta_at(
                RULE_SUPPRESSION_NEEDS_JUSTIFICATION,
                format!(
                    "suppression of `{}` has no `-- <justification>` tail — say why the \
                     rule does not apply here",
                    rules.join(", ")
                ),
            ));
        }
        sups.push(Suppression {
            line: t.line,
            rules,
        });
    }
    (sups, meta)
}

/// Applies suppressions: removes silenced findings, returns the
/// surviving findings (rule findings + meta findings, re-sorted) and the
/// number suppressed.
pub fn apply(files: &[SourceFile], findings: Vec<Finding>) -> (Vec<Finding>, u64) {
    let mut all_sups: Vec<(String, Suppression)> = Vec::new();
    let mut meta = Vec::new();
    for file in files {
        let (sups, m) = scan_file(file);
        all_sups.extend(sups.into_iter().map(|s| (file.rel_path.clone(), s)));
        meta.extend(m);
    }
    let mut suppressed = 0u64;
    let mut kept: Vec<Finding> = Vec::new();
    for f in findings {
        let silenced = all_sups.iter().any(|(path, s)| {
            *path == f.path
                && (s.line == f.line || s.line + 1 == f.line)
                && s.rules.iter().any(|r| r == f.rule)
        });
        if silenced {
            suppressed += 1;
        } else {
            kept.push(f);
        }
    }
    kept.extend(meta);
    kept.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rules;

    fn lint(path: &str, src: &str) -> (Vec<Finding>, u64) {
        let files = vec![SourceFile::parse(path.into(), src.to_string())];
        let findings = run_rules(&files);
        apply(&files, findings)
    }

    #[test]
    fn justified_suppression_silences_and_is_clean() {
        let src = "fn f() {\n    // lint: allow(unsafe-needs-safety) -- exercised by miri upstream\n    unsafe { danger() };\n}\n";
        let (kept, suppressed) = lint("src/a.rs", src);
        assert!(kept.is_empty(), "{kept:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn trailing_suppression_applies_to_its_own_line() {
        let src = "fn f() {\n    unsafe { danger() }; // lint: allow(unsafe-needs-safety) -- fixture\n}\n";
        let (kept, suppressed) = lint("src/a.rs", src);
        assert!(kept.is_empty(), "{kept:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn unjustified_suppression_still_suppresses_but_is_reported() {
        let src =
            "fn f() {\n    // lint: allow(unsafe-needs-safety)\n    unsafe { danger() };\n}\n";
        let (kept, suppressed) = lint("src/a.rs", src);
        assert_eq!(suppressed, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, RULE_SUPPRESSION_NEEDS_JUSTIFICATION);
        assert_eq!(kept[0].line, 2);
    }

    #[test]
    fn unknown_rule_is_reported() {
        let src = "// lint: allow(no-such-rule) -- oops\nfn f() {}\n";
        let (kept, suppressed) = lint("src/a.rs", src);
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, RULE_SUPPRESSION_UNKNOWN_RULE);
        assert!(kept[0].message.contains("no-such-rule"));
    }

    #[test]
    fn malformed_suppression_is_reported() {
        let src = "// lint: allow unsafe-needs-safety -- missing parens\nfn f() {}\n";
        let (kept, _) = lint("src/a.rs", src);
        assert_eq!(kept.len(), 1);
        assert!(kept[0].message.contains("malformed"));
    }

    #[test]
    fn suppression_only_covers_named_rule_and_adjacent_lines() {
        let src = "fn f() {\n    // lint: allow(no-panic-in-durable) -- wrong rule\n    unsafe { danger() };\n\n    // lint: allow(unsafe-needs-safety) -- too far\n\n    unsafe { danger() };\n}\n";
        let (kept, suppressed) = lint("src/a.rs", src);
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 2, "{kept:?}");
    }

    #[test]
    fn meta_findings_cannot_be_suppressed() {
        let src = "// lint: allow(suppression-needs-justification) -- nice try\n// lint: allow(unsafe-needs-safety)\nunsafe fn g() {}\n";
        let (kept, _) = lint("src/a.rs", src);
        // Line 1 allows an unknown (meta) rule -> unknown-rule finding;
        // line 2 is unjustified -> needs-justification finding survives.
        assert_eq!(kept.len(), 2, "{kept:?}");
        assert!(kept.iter().any(|f| f.rule == RULE_SUPPRESSION_UNKNOWN_RULE));
        assert!(kept
            .iter()
            .any(|f| f.rule == RULE_SUPPRESSION_NEEDS_JUSTIFICATION));
    }
}

//! The workspace contract, as data: which files carry which invariant.
//!
//! `receipt-lint` is not a general-purpose linter — its rules encode
//! *this repository's* load-bearing contracts, so the scoping lives here
//! as checked-in configuration rather than CLI flags. Paths are relative
//! to the scan root, forward-slash separated; the fixture tree under
//! `tests/fixtures/lint/` mirrors these shapes so file-scoped rules fire
//! there too.

/// Rule identifiers, also the `allow(…)` names of the suppression
/// grammar. Order here is the order rules run and report.
pub const RULE_IDS: &[&str] = &[
    RULE_UNSAFE_NEEDS_SAFETY,
    RULE_NO_PANIC_IN_DURABLE,
    RULE_ATOMIC_ORDERING_JUSTIFIED,
    RULE_NO_LOCK_IN_READ_PATH,
    RULE_REPORT_HAS_SCHEMA_VERSION,
];

/// R1: every `unsafe` block / fn / impl / trait must carry a `// SAFETY:`
/// comment (or a `/// # Safety` doc section for unsafe fns).
pub const RULE_UNSAFE_NEEDS_SAFETY: &str = "unsafe-needs-safety";
/// R2: no `unwrap`/`expect`/`panic!`/`assert!` family outside
/// `#[cfg(test)]` in the fail-closed durable modules.
pub const RULE_NO_PANIC_IN_DURABLE: &str = "no-panic-in-durable";
/// R3: every `Ordering::` use in the lock-free scheduler files carries an
/// `// ordering:` justification comment.
pub const RULE_ATOMIC_ORDERING_JUSTIFIED: &str = "atomic-ordering-justified";
/// R4: no `.lock()` / `.read()` / `.write()` calls in the snapshot
/// read-path modules.
pub const RULE_NO_LOCK_IN_READ_PATH: &str = "no-lock-in-read-path";
/// R5: every `Serialize`-derived `pub struct *Report` / `*Row` declares
/// `schema_version` or sits under a versioned parent in
/// [`VERSIONED_CHILDREN`].
pub const RULE_REPORT_HAS_SCHEMA_VERSION: &str = "report-has-schema-version";

/// Meta rule: a suppression comment without a `-- justification` tail.
pub const RULE_SUPPRESSION_NEEDS_JUSTIFICATION: &str = "suppression-needs-justification";
/// Meta rule: a suppression naming a rule id that does not exist.
pub const RULE_SUPPRESSION_UNKNOWN_RULE: &str = "suppression-unknown-rule";

/// Fail-closed durable modules (FORMATS.md §2, VERSIONING.md §2): a
/// corrupt byte must surface as a typed error, never a panic, so torn
/// inputs cannot crash recovery half-way through a replay.
pub const DURABLE_MODULES: &[&str] = &[
    "crates/core/src/wal.rs",
    "crates/core/src/version.rs",
    "crates/bigraph/src/binfmt.rs",
];

/// The lock-free scheduler sources whose every atomic ordering must be
/// justified in place — the Chase–Lev/Lê-et-al. fence placement is a
/// machine-checked contract, not folklore.
pub const ATOMIC_FILES: &[&str] = &["vendor/rayon/src/deque.rs", "vendor/rayon/src/pool.rs"];

/// Snapshot read-path modules: everything an `EngineSnapshot` reader
/// executes after cloning the `Arc`. Readers never block, so no lock
/// acquisition of any kind may appear here.
pub const READ_PATH_MODULES: &[&str] = &["crates/core/src/snapshot.rs"];

/// The versioned-parent manifest for R5: `(child struct, versioned
/// ancestor struct)`. A child listed here may omit `schema_version`
/// because it is only ever serialized embedded in its ancestor's
/// document. The manifest itself is checked: a stale child (struct gone
/// or renamed) or an unversioned ancestor is a finding.
pub const VERSIONED_CHILDREN: &[(&str, &str)] = &[
    // receipt::report — rows embedded in StreamReport / VersionReport.
    ("StreamBatchReport", "StreamReport"),
    ("VersionEntryReport", "VersionReport"),
    ("VersionDiffReport", "VersionReport"),
    ("TimeTravelReport", "VersionReport"),
    // receipt_bench::report — every experiment section and row is only
    // ever emitted inside the top-level ReproReport document.
    ("Table2Row", "ReproReport"),
    ("Table3Row", "ReproReport"),
    ("WingRow", "ReproReport"),
    ("DynamicRow", "ReproReport"),
    ("ServeExperimentReport", "ReproReport"),
    ("ServeBatchRow", "ReproReport"),
    ("RecoverExperimentReport", "ReproReport"),
    ("CrashRow", "ReproReport"),
    ("CheckpointFoldRow", "ReproReport"),
    ("LoadCostRow", "ReproReport"),
    ("VersionsExperimentReport", "ReproReport"),
    ("VersionTagRow", "ReproReport"),
    ("TimeTravelRow", "ReproReport"),
    ("DiffLawRow", "ReproReport"),
    ("DeriveChecksRow", "ReproReport"),
    ("SmokeReport", "ReproReport"),
    // receipt_lint::report — findings ride inside the LintReport.
    ("FindingRow", "LintReport"),
];

/// Does `rule` exist (core rules only — meta rules cannot be allowed)?
pub fn is_known_rule(rule: &str) -> bool {
    RULE_IDS.contains(&rule)
}

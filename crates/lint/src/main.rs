//! `receipt-lint` — lint the workspace's load-bearing contracts.
//!
//! Usage: `receipt-lint [ROOT] [--json] [--out FILE]`
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use receipt_lint::report::LintReport;

const USAGE: &str = "usage: receipt-lint [ROOT] [--json] [--out FILE]
  ROOT        directory to scan (default: current directory)
  --json      emit the schema-versioned LintReport JSON instead of text
  --out FILE  write the output to FILE instead of stdout
exit codes: 0 clean, 1 findings, 2 usage/io error";

struct Args {
    root: PathBuf,
    json: bool,
    out: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut out: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--out" => {
                let v = it.next().ok_or("--out requires a path")?;
                out = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => {
                if root.is_some() {
                    return Err(format!("unexpected extra argument `{path}`"));
                }
                root = Some(PathBuf::from(path));
            }
        }
    }
    Ok(Args {
        root: root.unwrap_or_else(|| PathBuf::from(".")),
        json,
        out,
    })
}

fn render_text(report: &LintReport) -> String {
    let mut s = String::new();
    for f in &report.findings {
        s.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            f.path, f.line, f.col, f.rule, f.message
        ));
        if !f.excerpt.is_empty() {
            s.push_str(&format!("    {}\n", f.excerpt));
            let caret_pad = " ".repeat(3 + f.col as usize);
            s.push_str(&format!("{caret_pad}^\n"));
        }
    }
    s.push_str(&format!(
        "{} file(s) scanned, {} finding(s), {} suppressed\n",
        report.files_scanned, report.findings_total, report.suppressed_total
    ));
    s
}

fn run(args: &Args) -> Result<u8, String> {
    let report = receipt_lint::run_lint(&args.root)
        .map_err(|e| format!("scanning {}: {e}", args.root.display()))?;
    let output = if args.json {
        let mut json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("serializing report: {e}"))?;
        json.push('\n');
        json
    } else {
        render_text(&report)
    };
    match &args.out {
        Some(path) => {
            std::fs::write(path, &output).map_err(|e| format!("writing {}: {e}", path.display()))?
        }
        None => print!("{output}"),
    }
    Ok(if report.findings_total == 0 { 0 } else { 1 })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("receipt-lint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("receipt-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

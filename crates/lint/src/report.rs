//! The machine-readable lint report (`--json`), schema-versioned like
//! every other document this workspace emits.

use serde::{Deserialize, Serialize};

use crate::rules::Finding;

/// Bump when the JSON shape changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// Top-level document for `receipt-lint --json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    pub schema_version: u32,
    pub kind: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
    /// The rule set that ran, in execution order.
    pub rules: Vec<String>,
    /// Surviving findings (rule + meta), sorted by (path, line, col).
    pub findings_total: u64,
    /// Findings silenced by inline suppressions.
    pub suppressed_total: u64,
    pub findings: Vec<FindingRow>,
}

/// One finding. Versioned via the `LintReport` parent (see the
/// `VERSIONED_CHILDREN` manifest — this struct is its own dogfood).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FindingRow {
    pub rule: String,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    pub excerpt: String,
}

impl LintReport {
    pub fn new(files_scanned: u64, findings: &[Finding], suppressed_total: u64) -> LintReport {
        LintReport {
            schema_version: SCHEMA_VERSION,
            kind: "lint-report".to_string(),
            files_scanned,
            rules: crate::config::RULE_IDS
                .iter()
                .map(|r| r.to_string())
                .collect(),
            findings_total: findings.len() as u64,
            suppressed_total,
            findings: findings
                .iter()
                .map(|f| FindingRow {
                    rule: f.rule.to_string(),
                    path: f.path.clone(),
                    line: f.line,
                    col: f.col,
                    message: f.message.clone(),
                    excerpt: f.excerpt.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let f = Finding {
            rule: crate::config::RULE_UNSAFE_NEEDS_SAFETY,
            path: "src/a.rs".to_string(),
            line: 3,
            col: 5,
            message: "m".to_string(),
            excerpt: "    unsafe {".to_string(),
        };
        let report = LintReport::new(7, &[f], 2);
        let json = serde_json::to_string_pretty(&report).expect("serialize");
        let back: LintReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.kind, "lint-report");
        assert_eq!(back.findings_total, 1);
        assert_eq!(back.suppressed_total, 2);
    }
}

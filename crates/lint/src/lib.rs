//! `receipt-lint`: workspace-native static analysis.
//!
//! Five rules encode the repository's load-bearing contracts — SAFETY
//! comments on `unsafe`, fail-closed durable modules, justified atomic
//! orderings, a lock-free snapshot read path, and schema-versioned
//! report documents. See `crates/lint/src/config.rs` for the scoping
//! and README.md § "Static analysis" for the user-facing story.
//!
//! The pipeline: [`source::load_workspace`] walks the tree and lexes
//! every `.rs` file ([`lexer`]), [`rules::run_rules`] produces raw
//! findings, [`suppress::apply`] honours `// lint: allow(…) -- why`
//! comments (emitting meta findings for unjustified or unknown ones),
//! and [`report::LintReport`] is the schema-versioned JSON document.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod suppress;

use std::io;
use std::path::Path;

use report::LintReport;

/// Lints the workspace rooted at `root`: loads every `.rs` file, runs
/// all rules, applies suppressions, and returns the report.
pub fn run_lint(root: &Path) -> io::Result<LintReport> {
    let files = source::load_workspace(root)?;
    let raw = rules::run_rules(&files);
    let (findings, suppressed) = suppress::apply(&files, raw);
    Ok(LintReport::new(files.len() as u64, &findings, suppressed))
}

//! End-to-end tests for the `receipt-lint` binary.
//!
//! Two gates:
//!
//! 1. The deliberately-bad fixture tree under `tests/fixtures/lint/`
//!    produces exactly the committed `--json` report, byte for byte —
//!    pinning every rule's trigger, message, location, and the
//!    suppression accounting in one snapshot.
//! 2. The workspace itself lints clean (exit 0, zero findings) — the
//!    self-check that keeps `cargo run -p receipt-lint` a meaningful CI
//!    gate.
//!
//! To refresh the snapshot after an intentional rule or schema change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p receipt-lint --test lint_golden
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run_lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_receipt-lint"))
        .args(args)
        .output()
        .expect("receipt-lint must spawn")
}

#[test]
fn fixture_report_matches_golden() {
    let fixtures = repo_root().join("tests/fixtures/lint");
    let out = run_lint(&[fixtures.to_str().unwrap(), "--json"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "fixture tree must report findings: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let document = String::from_utf8(out.stdout).expect("report is UTF-8");
    let path = repo_root().join("tests/golden/lint_fixture.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &document).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path:?}: {e}\nregenerate with: \
             UPDATE_GOLDEN=1 cargo test -p receipt-lint --test lint_golden"
        )
    });
    assert_eq!(
        document, golden,
        "lint golden snapshot drifted; if the change is intentional, \
         regenerate with: UPDATE_GOLDEN=1 cargo test -p receipt-lint --test lint_golden"
    );
}

#[test]
fn fixture_report_covers_every_rule() {
    // Independent of the exact snapshot bytes: the fixture tree must keep
    // exercising all five rules and both suppression meta-findings, so a
    // rule can never silently lose its regression coverage.
    let fixtures = repo_root().join("tests/fixtures/lint");
    let out = run_lint(&[fixtures.to_str().unwrap(), "--json"]);
    let document = String::from_utf8(out.stdout).unwrap();
    for rule in [
        "unsafe-needs-safety",
        "no-panic-in-durable",
        "atomic-ordering-justified",
        "no-lock-in-read-path",
        "report-has-schema-version",
        "suppression-needs-justification",
        "suppression-unknown-rule",
    ] {
        assert!(
            document.contains(&format!("\"rule\": \"{rule}\"")),
            "fixture report lost its {rule} case"
        );
    }
    assert!(
        document.contains("\"suppressed_total\": 2"),
        "fixture must keep one justified and one unjustified suppression"
    );
}

#[test]
fn workspace_is_lint_clean() {
    let root = repo_root();
    let out = run_lint(&[root.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must lint clean; findings:\n{stdout}"
    );
    assert!(
        stdout.contains(" 0 finding(s)"),
        "summary must confirm zero findings:\n{stdout}"
    );
}

#[test]
fn usage_errors_exit_2() {
    let out = run_lint(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run_lint(&[repo_root().join("does/not/exist").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

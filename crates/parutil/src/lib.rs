//! Parallel building blocks shared by the RECEIPT reproduction crates.
//!
//! The original system is written in C++/OpenMP. This crate provides the
//! Rust equivalents the rest of the workspace relies on:
//!
//! * [`atomic`] — cache-line padded atomics and a floor-saturating
//!   atomic subtract (the support-update primitive from Lemma 2 of the
//!   paper).
//! * [`scan`] — sequential and parallel prefix sums (used by CSR builders
//!   and the range-determination `work` histogram of Algorithm 3).
//! * [`pool`] — a scratch-buffer pool so parallel peeling iterations can
//!   reuse dense per-thread wedge-aggregation arrays without re-allocating
//!   `O(n)` memory per iteration.
//! * [`timer`] — phase timers used to produce the execution-time breakdowns
//!   of Figures 8–9.
//! * [`thread`] — helpers for running a closure inside a rayon pool of an
//!   exact size (the paper sweeps thread counts for Figures 10–11).

#![forbid(unsafe_code)]

pub mod atomic;
pub mod pool;
pub mod scan;
pub mod thread;
pub mod timer;

pub use atomic::{saturating_sub_floor, CachePadded};
pub use pool::ScratchPool;
pub use scan::{exclusive_prefix_sum, inclusive_prefix_sum, par_exclusive_prefix_sum};
pub use thread::with_pool;
pub use timer::PhaseTimer;

//! Thread-pool sizing helpers.
//!
//! The paper's scalability study (Figures 10–11) sweeps 1–36 threads. Rayon's
//! global pool is fixed at startup, so the harness runs each configuration
//! inside a locally built pool of the exact requested size. (Under the
//! vendored shim a `ThreadPool` is a parallelism *budget* over one shared
//! work-stealing worker set — per-worker deques, idle workers steal, see
//! `vendor/rayon/src/pool.rs` — so building pools per configuration is
//! cheap and the OS threads are reused across configurations. The budget
//! caps how many jobs a terminal forks, which is what bounds its
//! concurrency; `rayon::scheduler_stats()` exposes the steal counters the
//! CI thread-scaling gate asserts on.)

/// Runs `f` inside a freshly built rayon pool with exactly `threads` workers.
/// All rayon parallel iterators invoked (transitively) from `f` execute on
/// that pool.
pub fn with_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// Splits `0..len` into at most `parts` contiguous, nearly equal chunks.
/// Returns `(start, end)` pairs; never returns empty chunks.
pub fn balanced_chunks(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn with_pool_controls_thread_count() {
        let seen = with_pool(2, rayon::current_num_threads);
        assert_eq!(seen, 2);
        let seen = with_pool(1, rayon::current_num_threads);
        assert_eq!(seen, 1);
    }

    #[test]
    fn with_pool_runs_parallel_work() {
        let sum: u64 = with_pool(2, || (0u64..1000).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn balanced_chunks_cover_range() {
        for len in [0usize, 1, 7, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let chunks = balanced_chunks(len, parts);
                let covered: usize = chunks.iter().map(|(s, e)| e - s).sum();
                assert_eq!(covered, len);
                for w in chunks.windows(2) {
                    assert_eq!(w[0].1, w[1].0); // contiguous
                }
                for (s, e) in &chunks {
                    assert!(s < e, "no empty chunks");
                }
            }
        }
    }

    #[test]
    fn balanced_chunks_sizes_differ_by_at_most_one() {
        let chunks = balanced_chunks(10, 3);
        let sizes: Vec<usize> = chunks.iter().map(|(s, e)| e - s).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }
}

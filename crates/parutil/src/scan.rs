//! Prefix sums.
//!
//! CSR construction, the `findHi` work histogram of Algorithm 3, and graph
//! compaction (DGM) all reduce to prefix sums over `u64`/`usize` slices.

use rayon::prelude::*;

/// In-place exclusive prefix sum; returns the total.
///
/// `[3, 1, 4]` becomes `[0, 3, 4]` and `8` is returned.
pub fn exclusive_prefix_sum(values: &mut [u64]) -> u64 {
    let mut acc = 0u64;
    for v in values.iter_mut() {
        let next = acc + *v;
        *v = acc;
        acc = next;
    }
    acc
}

/// In-place inclusive prefix sum; returns the total (last element).
pub fn inclusive_prefix_sum(values: &mut [u64]) -> u64 {
    let mut acc = 0u64;
    for v in values.iter_mut() {
        acc += *v;
        *v = acc;
    }
    acc
}

/// Parallel in-place exclusive prefix sum (two-pass chunked scan); returns
/// the total. Falls back to the sequential scan for small inputs where the
/// fork-join overhead dominates.
pub fn par_exclusive_prefix_sum(values: &mut [u64]) -> u64 {
    const SEQ_CUTOFF: usize = 1 << 14;
    if values.len() <= SEQ_CUTOFF {
        return exclusive_prefix_sum(values);
    }
    let chunk = values
        .len()
        .div_ceil(rayon::current_num_threads().max(1) * 4);
    // Pass 1: per-chunk totals.
    let mut chunk_totals: Vec<u64> = values.par_chunks(chunk).map(|c| c.iter().sum()).collect();
    let total = exclusive_prefix_sum(&mut chunk_totals);
    // Pass 2: scan each chunk seeded with its chunk offset.
    values
        .par_chunks_mut(chunk)
        .zip(chunk_totals.par_iter())
        .for_each(|(c, &seed)| {
            let mut acc = seed;
            for v in c.iter_mut() {
                let next = acc + *v;
                *v = acc;
                acc = next;
            }
        });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exclusive_basic() {
        let mut v = vec![3, 1, 4, 1, 5];
        let total = exclusive_prefix_sum(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn inclusive_basic() {
        let mut v = vec![3, 1, 4];
        let total = inclusive_prefix_sum(&mut v);
        assert_eq!(v, vec![3, 4, 8]);
        assert_eq!(total, 8);
    }

    #[test]
    fn empty_slices() {
        let mut v: Vec<u64> = vec![];
        assert_eq!(exclusive_prefix_sum(&mut v), 0);
        assert_eq!(par_exclusive_prefix_sum(&mut v), 0);
        assert_eq!(inclusive_prefix_sum(&mut v), 0);
        assert!(v.is_empty());
    }

    #[test]
    fn length_one_slices() {
        // Exclusive: the single slot becomes the 0 seed, total is its value.
        let mut v = vec![9u64];
        assert_eq!(exclusive_prefix_sum(&mut v), 9);
        assert_eq!(v, vec![0]);

        let mut v = vec![9u64];
        assert_eq!(par_exclusive_prefix_sum(&mut v), 9);
        assert_eq!(v, vec![0]);

        // Inclusive: a singleton is its own running total.
        let mut v = vec![9u64];
        assert_eq!(inclusive_prefix_sum(&mut v), 9);
        assert_eq!(v, vec![9]);
    }

    #[test]
    fn par_matches_seq_large() {
        let n = 100_000;
        let vals: Vec<u64> = (0..n).map(|i| (i * 7 + 3) % 11).collect();
        let mut a = vals.clone();
        let mut b = vals;
        let ta = exclusive_prefix_sum(&mut a);
        let tb = par_exclusive_prefix_sum(&mut b);
        assert_eq!(ta, tb);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn par_matches_seq_prop(vals in proptest::collection::vec(0u64..1000, 0..5000)) {
            let mut a = vals.clone();
            let mut b = vals;
            let ta = exclusive_prefix_sum(&mut a);
            let tb = par_exclusive_prefix_sum(&mut b);
            prop_assert_eq!(ta, tb);
            prop_assert_eq!(a, b);
        }
    }
}

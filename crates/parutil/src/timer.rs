//! Phase timing for the execution-time breakdowns (Figures 8–9 of the paper
//! split total runtime into pvBcnt / RECEIPT CD / RECEIPT FD).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Accumulates wall-clock time per named phase. Phases may be entered
/// repeatedly; durations accumulate.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    totals: BTreeMap<&'static str, Duration>,
}

impl PhaseTimer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` and charges the elapsed time to `phase`.
    pub fn time<R>(&mut self, phase: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Adds an externally measured duration to `phase`.
    pub fn add(&mut self, phase: &'static str, d: Duration) {
        *self.totals.entry(phase).or_default() += d;
    }

    pub fn get(&self, phase: &str) -> Duration {
        self.totals.get(phase).copied().unwrap_or_default()
    }

    pub fn total(&self) -> Duration {
        self.totals.values().sum()
    }

    /// Phase shares in `[0, 1]`, keyed by phase name. Empty if nothing was
    /// timed.
    pub fn shares(&self) -> BTreeMap<&'static str, f64> {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return BTreeMap::new();
        }
        self.totals
            .iter()
            .map(|(k, v)| (*k, v.as_secs_f64() / total))
            .collect()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.totals.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another timer's totals into this one.
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_phases() {
        let mut t = PhaseTimer::new();
        t.add("cd", Duration::from_millis(30));
        t.add("cd", Duration::from_millis(20));
        t.add("fd", Duration::from_millis(50));
        assert_eq!(t.get("cd"), Duration::from_millis(50));
        assert_eq!(t.total(), Duration::from_millis(100));
        let shares = t.shares();
        assert!((shares["cd"] - 0.5).abs() < 1e-9);
        assert!((shares["fd"] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn time_returns_closure_result() {
        let mut t = PhaseTimer::new();
        let v = t.time("work", || 42);
        assert_eq!(v, 42);
        assert!(t.get("work") > Duration::ZERO || t.get("work") == Duration::ZERO);
        assert!(t.iter().count() == 1);
    }

    #[test]
    fn empty_timer_has_no_shares() {
        let t = PhaseTimer::new();
        assert!(t.shares().is_empty());
        assert_eq!(t.total(), Duration::ZERO);
    }

    #[test]
    fn merge_combines() {
        let mut a = PhaseTimer::new();
        a.add("x", Duration::from_millis(10));
        let mut b = PhaseTimer::new();
        b.add("x", Duration::from_millis(5));
        b.add("y", Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.get("x"), Duration::from_millis(15));
        assert_eq!(a.get("y"), Duration::from_millis(1));
    }
}

//! Atomic helpers for parallel peeling.

use std::sync::atomic::{AtomicU64, Ordering};

/// Pads a value to a 64-byte cache line to avoid false sharing between
/// per-thread counters that live next to each other in a `Vec`.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    pub fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Atomically performs `x = max(floor, x.saturating_sub(delta))` and returns
/// the value observed *before* the update.
///
/// This is the support-decrement primitive from the paper (Algorithm 2 line
/// 13 and Lemma 2): when a vertex `u'` loses `delta = ⋈(u,u')` shared
/// butterflies because `u` was peeled, its support must not drop below the
/// current range floor `θ(i)` — vertices whose support reaches the floor are
/// about to be peeled into the current subset anyway, and clamping keeps the
/// subset-membership invariant intact under concurrent updates.
#[inline]
pub fn saturating_sub_floor(cell: &AtomicU64, delta: u64, floor: u64) -> u64 {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if cur <= floor {
            // Already at/below the floor; nothing to do.
            return cur;
        }
        let next = cur.saturating_sub(delta).max(floor);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(prev) => return prev,
            Err(observed) => cur = observed,
        }
    }
}

/// A relaxed monotone counter for metrics (wedges traversed, updates
/// applied). Wraps `AtomicU64` so call sites read as intent, not mechanism.
#[derive(Debug, Default)]
pub struct RelaxedCounter(AtomicU64);

impl RelaxedCounter {
    pub fn new() -> Self {
        RelaxedCounter(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sub_above_floor() {
        let c = AtomicU64::new(10);
        let prev = saturating_sub_floor(&c, 3, 2);
        assert_eq!(prev, 10);
        assert_eq!(c.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn sub_clamps_to_floor() {
        let c = AtomicU64::new(10);
        saturating_sub_floor(&c, 100, 4);
        assert_eq!(c.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn sub_lands_exactly_on_floor() {
        // Lemma 2 boundary: a decrement whose saturated result equals the
        // floor must store exactly the floor, and every later decrement is
        // then a no-op that still reports the floor as the observed value.
        let c = AtomicU64::new(7);
        let prev = saturating_sub_floor(&c, 3, 4);
        assert_eq!(prev, 7);
        assert_eq!(c.load(Ordering::Relaxed), 4);
        let prev = saturating_sub_floor(&c, 3, 4);
        assert_eq!(prev, 4);
        assert_eq!(c.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn sub_at_floor_is_noop() {
        let c = AtomicU64::new(4);
        let prev = saturating_sub_floor(&c, 1, 4);
        assert_eq!(prev, 4);
        assert_eq!(c.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn sub_below_floor_is_noop() {
        // Can happen when the floor rises between ranges.
        let c = AtomicU64::new(3);
        saturating_sub_floor(&c, 1, 4);
        assert_eq!(c.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn sub_saturates_at_zero_floor() {
        let c = AtomicU64::new(2);
        saturating_sub_floor(&c, 100, 0);
        assert_eq!(c.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn concurrent_decrements_sum_exactly() {
        use std::sync::Arc;
        let c = Arc::new(AtomicU64::new(1_000_000));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        saturating_sub_floor(&c, 7, 0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 1_000_000 - 4 * 1000 * 7);
    }

    #[test]
    fn relaxed_counter_accumulates() {
        let c = RelaxedCounter::new();
        c.add(5);
        c.add(7);
        assert_eq!(c.get(), 12);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn cache_padded_is_aligned() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 64);
        let p = CachePadded::new(42u64);
        assert_eq!(*p, 42);
    }
}

//! Reusable scratch buffers for parallel peeling.
//!
//! Every call to the `update()` routine (Algorithm 2) needs a dense
//! wedge-aggregation array sized `|U|` plus a touched-vertex list. Allocating
//! these per peeled vertex would dominate runtime; the paper gives each
//! OpenMP thread a `θ(|W|)` private array. Rayon tasks are not pinned to
//! threads — under the work-stealing shim a task can even migrate its
//! *siblings* to whichever worker steals them — so instead we keep a pool of
//! scratch buffers that tasks check out and return; the pool grows to at
//! most the number of concurrently running tasks (≤ pool thread count).

use parking_lot::Mutex;

/// A pool of reusable `T` buffers. `acquire` pops a cached buffer or builds
/// a fresh one; the guard returns it on drop.
pub struct ScratchPool<T> {
    free: Mutex<Vec<T>>,
    make: Box<dyn Fn() -> T + Send + Sync>,
}

impl<T> ScratchPool<T> {
    pub fn new<F>(make: F) -> Self
    where
        F: Fn() -> T + Send + Sync + 'static,
    {
        ScratchPool {
            free: Mutex::new(Vec::new()),
            make: Box::new(make),
        }
    }

    /// Checks out a buffer. Dropping the guard returns it to the pool.
    pub fn acquire(&self) -> ScratchGuard<'_, T> {
        let item = self.free.lock().pop().unwrap_or_else(|| (self.make)());
        ScratchGuard {
            pool: self,
            item: Some(item),
        }
    }

    /// Number of buffers currently parked in the pool (for tests/metrics).
    pub fn idle_len(&self) -> usize {
        self.free.lock().len()
    }
}

pub struct ScratchGuard<'a, T> {
    pool: &'a ScratchPool<T>,
    item: Option<T>,
}

impl<T> std::ops::Deref for ScratchGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.item.as_ref().expect("scratch present until drop")
    }
}

impl<T> std::ops::DerefMut for ScratchGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("scratch present until drop")
    }
}

impl<T> Drop for ScratchGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            self.pool.free.lock().push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn acquire_creates_then_reuses() {
        let created = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&created);
        let pool = ScratchPool::new(move || {
            c.fetch_add(1, Ordering::Relaxed);
            vec![0u32; 8]
        });
        {
            let mut a = pool.acquire();
            a[0] = 7;
        } // returned
        {
            let b = pool.acquire();
            // Reused buffer keeps stale contents; callers must reset.
            assert_eq!(b[0], 7);
        }
        assert_eq!(created.load(Ordering::Relaxed), 1);
        assert_eq!(pool.idle_len(), 1);
    }

    #[test]
    fn concurrent_acquires_get_distinct_buffers() {
        let pool = Arc::new(ScratchPool::new(|| vec![0u64; 4]));
        let g1 = pool.acquire();
        let g2 = pool.acquire();
        // Two live guards -> two distinct buffers.
        assert_eq!(pool.idle_len(), 0);
        drop(g1);
        drop(g2);
        assert_eq!(pool.idle_len(), 2);
    }

    #[test]
    fn usable_across_rayon_tasks() {
        let pool = ScratchPool::new(|| vec![0u8; 16]);
        rayon::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    let mut b = pool.acquire();
                    b[0] = b[0].wrapping_add(1);
                });
            }
        });
        assert!(pool.idle_len() >= 1);
    }
}

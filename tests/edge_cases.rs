//! Failure injection and degenerate-input coverage: empty graphs, stars,
//! paths, complete bipartite closed forms, malformed edge lists, and
//! configuration extremes.

use bigraph::{builder::from_edges, builder::GraphBuilder, Side};
use receipt::{bup, parb, tip_decompose, Config};

#[test]
fn empty_graph_all_zero() {
    let g = bigraph::BipartiteCsr::empty(7, 3);
    for side in [Side::U, Side::V] {
        let r = tip_decompose(&g, side, &Config::default());
        assert!(r.tip.iter().all(|&t| t == 0));
    }
}

#[test]
fn zero_by_zero_graph() {
    let g = bigraph::BipartiteCsr::empty(0, 0);
    let r = tip_decompose(&g, Side::U, &Config::default());
    assert!(r.tip.is_empty());
    assert_eq!(r.theta_max(), 0);
    assert!(r.cumulative_distribution().is_empty());
}

#[test]
fn single_edge_graph() {
    let g = from_edges(1, 1, &[(0, 0)]).unwrap();
    let r = tip_decompose(&g, Side::U, &Config::default());
    assert_eq!(r.tip, vec![0]);
}

#[test]
fn star_graphs_have_zero_tips() {
    // No butterflies without two vertices of degree >= 2 on each side.
    let star_u = from_edges(6, 1, &[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0), (5, 0)]).unwrap();
    assert!(tip_decompose(&star_u, Side::U, &Config::default())
        .tip
        .iter()
        .all(|&t| t == 0));
    let star_v = star_u.transposed();
    assert!(tip_decompose(&star_v, Side::U, &Config::default())
        .tip
        .iter()
        .all(|&t| t == 0));
}

#[test]
fn path_has_zero_tips() {
    let g = from_edges(3, 3, &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]).unwrap();
    let r = tip_decompose(&g, Side::U, &Config::default());
    assert_eq!(r.tip, vec![0, 0, 0]);
}

#[test]
fn complete_bipartite_closed_form() {
    // In K(a,b) every U-vertex participates in (a-1) * C(b,2) butterflies,
    // and by symmetry + clamping every tip number equals that.
    for (a, b) in [(2usize, 2usize), (3, 3), (4, 2), (2, 5), (5, 5)] {
        let mut edges = Vec::new();
        for u in 0..a as u32 {
            for v in 0..b as u32 {
                edges.push((u, v));
            }
        }
        let g = from_edges(a, b, &edges).unwrap();
        let expected = (a as u64 - 1) * (b as u64 * (b as u64 - 1) / 2);
        let r = tip_decompose(&g, Side::U, &Config::default());
        assert!(
            r.tip.iter().all(|&t| t == expected),
            "K({a},{b}): got {:?}, expected all {expected}",
            r.tip
        );
        // And the baselines agree on the closed form.
        assert!(bup::bup_decompose(&g, Side::U, 4)
            .tip
            .iter()
            .all(|&t| t == expected));
        assert!(parb::parb_decompose(&g, Side::U, 4)
            .tip
            .iter()
            .all(|&t| t == expected));
    }
}

#[test]
fn duplicate_and_unsorted_edges_are_normalized() {
    let g = GraphBuilder::new(2, 2)
        .add_edges([(1, 1), (0, 0), (1, 0), (0, 1), (0, 0), (1, 1)])
        .build()
        .unwrap();
    assert_eq!(g.num_edges(), 4);
    let r = tip_decompose(&g, Side::U, &Config::default());
    assert_eq!(r.tip, vec![1, 1]);
}

#[test]
fn builder_rejects_bad_vertices() {
    assert!(GraphBuilder::new(2, 2).add_edge(5, 0).build().is_err());
    assert!(GraphBuilder::new(2, 2).add_edge(0, 9).build().is_err());
}

#[test]
fn malformed_edge_list_input() {
    assert!(bigraph::io::read_graph("1 2\nnot numbers\n".as_bytes()).is_err());
    assert!(bigraph::io::read_graph("1\n".as_bytes()).is_err());
    // Comments, blanks, trailing columns are all fine.
    let g = bigraph::io::read_graph("% hdr\n\n1 1 3.5\n2 2 9 9\n".as_bytes()).unwrap();
    assert_eq!(g.num_edges(), 2);
}

#[test]
fn extreme_partition_counts() {
    let g = bigraph::gen::uniform(30, 30, 200, 5);
    let reference = tip_decompose(&g, Side::U, &Config::default().with_partitions(1));
    // P = 0 clamps to 1; P far beyond n still works (empty tail ranges).
    for p in [0usize, 1, 29, 30, 31, 10_000] {
        let r = tip_decompose(&g, Side::U, &Config::default().with_partitions(p));
        assert_eq!(reference.tip, r.tip, "P = {p}");
        assert!(r.metrics.partitions_used >= 1);
    }
}

#[test]
fn isolated_vertices_mixed_with_dense_block() {
    // 4 isolated U vertices + a 3x3 complete block.
    let mut edges = Vec::new();
    for u in 4..7u32 {
        for v in 0..3u32 {
            edges.push((u, v));
        }
    }
    let g = from_edges(7, 3, &edges).unwrap();
    let r = tip_decompose(&g, Side::U, &Config::default());
    assert_eq!(&r.tip[0..4], &[0, 0, 0, 0]);
    assert!(r.tip[4..].iter().all(|&t| t == 6)); // (3-1) * C(3,2)
}

#[test]
fn dgm_threshold_extremes() {
    let g = bigraph::gen::zipf(50, 30, 300, 0.5, 0.9, 3);
    let truth = bup::bup_decompose(&g, Side::U, 4).tip;
    // Compact after every iteration (threshold 0) and never (huge).
    for threshold in [0.0f64, 1e18] {
        let cfg = Config {
            dgm_threshold: threshold,
            ..Config::default()
        };
        let r = tip_decompose(&g, Side::U, &cfg);
        assert_eq!(truth, r.tip, "threshold {threshold}");
    }
}

#[test]
fn heap_arity_extremes() {
    let g = bigraph::gen::uniform(40, 40, 250, 9);
    let truth = bup::bup_decompose(&g, Side::U, 4).tip;
    for arity in [1usize, 2, 16, 64] {
        // Arity 1 clamps to 2 internally.
        let cfg = Config {
            heap_arity: arity,
            ..Config::default()
        };
        assert_eq!(truth, tip_decompose(&g, Side::U, &cfg).tip, "arity {arity}");
    }
}

#[test]
fn one_sided_graphs() {
    // nu = 1: no U-side butterflies possible.
    let g = from_edges(1, 5, &[(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
    assert_eq!(tip_decompose(&g, Side::U, &Config::default()).tip, vec![0]);
    // But the V side of the same graph is a star: also no butterflies.
    assert!(tip_decompose(&g, Side::V, &Config::default())
        .tip
        .iter()
        .all(|&t| t == 0));
}

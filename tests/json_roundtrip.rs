//! JSON round-trip coverage for the serialization subsystem: `Metrics` and
//! `Config` must survive serialize → parse → re-serialize byte-identically
//! (compact and pretty), including float formatting corners and
//! empty/`Default` values.

use proptest::prelude::*;
use receipt::{Config, Metrics};
use std::time::Duration;

/// serialize → parse → re-serialize is byte-identical, and the decoded
/// struct equals the original. Returns the compact text for extra checks.
fn assert_round_trip<T>(value: &T) -> String
where
    T: serde::Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let compact = serde_json::to_string(value).unwrap();
    let decoded: T = serde_json::from_str(&compact).unwrap();
    assert_eq!(&decoded, value, "decode(compact) != original");
    let tree = serde_json::from_str_value(&compact).unwrap();
    assert_eq!(
        serde_json::to_string(&tree).unwrap(),
        compact,
        "compact re-serialization drifted"
    );

    let pretty = serde_json::to_string_pretty(value).unwrap();
    let decoded: T = serde_json::from_str(&pretty).unwrap();
    assert_eq!(&decoded, value, "decode(pretty) != original");
    let tree = serde_json::from_str_value(&pretty).unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&tree).unwrap(),
        pretty,
        "pretty re-serialization drifted"
    );
    compact
}

#[test]
fn default_metrics_round_trips() {
    let text = assert_round_trip(&Metrics::default());
    // The empty struct serializes every field explicitly (no omissions),
    // so decoding never hits a missing-field error.
    for field in [
        "wedges_count",
        "wedges_cd",
        "wedges_fd",
        "sync_rounds",
        "recounts",
        "compactions",
        "partitions_used",
        "time_count",
        "time_cd",
        "time_fd",
    ] {
        assert!(text.contains(&format!("\"{field}\"")), "{text}");
    }
}

#[test]
fn populated_metrics_round_trip() {
    let m = Metrics {
        wedges_count: u64::MAX,
        wedges_cd: 123_456_789_012,
        wedges_fd: 1,
        sync_rounds: 42,
        recounts: 7,
        compactions: 3,
        partitions_used: 151,
        time_count: Duration::new(3, 141_592_653),
        time_cd: Duration::from_nanos(1),
        time_fd: Duration::from_secs(86_400),
    };
    let text = assert_round_trip(&m);
    // u64::MAX must survive exactly (not via f64).
    assert!(text.contains("18446744073709551615"), "{text}");
}

#[test]
fn default_config_round_trips() {
    let text = assert_round_trip(&Config::default());
    // Integral float: 1.0 prints as `1`, re-parses as an integer, and the
    // f64 field accepts it — that asymmetry is what keeps the bytes stable.
    assert!(text.contains("\"dgm_threshold\":1,"), "{text}");
}

#[test]
fn config_float_formatting_corners() {
    for threshold in [0.75, 0.1, 2.5, 1e-7, 123.0, 1.0 / 3.0, f64::MIN_POSITIVE] {
        let c = Config {
            dgm_threshold: threshold,
            ..Config::default()
        };
        let text = assert_round_trip(&c);
        let decoded: Config = serde_json::from_str(&text).unwrap();
        assert_eq!(decoded.dgm_threshold.to_bits(), threshold.to_bits());
    }
}

#[test]
fn missing_field_is_an_error() {
    let e = serde_json::from_str::<Config>(r#"{"partitions": 4}"#).unwrap_err();
    assert!(e.to_string().contains("missing field"), "{e}");
}

#[test]
fn unknown_fields_are_ignored() {
    let mut text = serde_json::to_string(&Config::default()).unwrap();
    text.insert_str(1, "\"added_in_schema_v2\": [1, 2, 3],");
    let decoded: Config = serde_json::from_str(&text).unwrap();
    assert_eq!(decoded, Config::default());
}

#[test]
fn type_mismatch_is_an_error() {
    let text = serde_json::to_string(&Config::default())
        .unwrap()
        .replace("\"partitions\":150", "\"partitions\":\"150\"");
    let e = serde_json::from_str::<Config>(&text).unwrap_err();
    assert!(e.to_string().contains("expected number"), "{e}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_metrics_round_trip(
        wedges in (0u64..u64::MAX, 0u64..1 << 40, 0u64..1 << 40),
        rounds in (0u64..10_000, 0u64..100, 0u64..100),
        partitions in 0usize..1000,
        times in (0u64..4_000, 0u32..1_000_000_000, 0u64..4_000, 0u32..1_000_000_000),
    ) {
        let m = Metrics {
            wedges_count: wedges.0,
            wedges_cd: wedges.1,
            wedges_fd: wedges.2,
            sync_rounds: rounds.0,
            recounts: rounds.1,
            compactions: rounds.2,
            partitions_used: partitions,
            time_count: std::time::Duration::new(times.0, times.1),
            time_cd: std::time::Duration::new(times.2, times.3),
            time_fd: std::time::Duration::ZERO,
        };
        let compact = serde_json::to_string(&m).unwrap();
        let decoded: Metrics = serde_json::from_str(&compact).unwrap();
        prop_assert_eq!(&decoded, &m);
        let tree = serde_json::from_str_value(&compact).unwrap();
        prop_assert_eq!(serde_json::to_string(&tree).unwrap(), compact);
    }
}

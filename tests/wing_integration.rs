//! Wing (edge) decomposition integration: sequential vs RECEIPT-style
//! parallel, interplay with tip numbers, and k-wing hierarchy structure.

use bigraph::{gen, Side};
use receipt::wing::{kwing_components, naive_wing_decompose, wing_decompose};
use receipt::wing_parallel::receipt_wing_decompose;

#[test]
fn parallel_wing_matches_sequential_across_partitions_and_graphs() {
    let graphs = [
        ("uniform", gen::uniform(30, 30, 160, 11)),
        ("zipf", gen::zipf(40, 20, 180, 0.4, 1.0, 12)),
        ("blocks", gen::planted_bicliques(24, 24, 3, 4, 4, 50, 13)),
        ("affiliation", gen::affiliation(30, 20, 4, 1, 0.8, 14)),
    ];
    for (name, g) in &graphs {
        for side in [Side::U, Side::V] {
            let seq = wing_decompose(g.view(side), 4);
            for p in [1usize, 3, 8, 64] {
                let (par, metrics) = receipt_wing_decompose(g.view(side), p, 4);
                assert_eq!(seq.wing, par.wing, "{name} {side} P={p}");
                assert!(metrics.partitions_used >= 1);
                assert!(metrics.sync_rounds >= 1 || g.num_edges() == 0);
            }
        }
    }
}

#[test]
fn parallel_wing_matches_naive_oracle() {
    for seed in 0..4 {
        let g = gen::uniform(9, 9, 36, seed);
        let slow = naive_wing_decompose(g.view(Side::U));
        let (fast, _) = receipt_wing_decompose(g.view(Side::U), 4, 4);
        assert_eq!(slow.wing, fast.wing, "seed {seed}");
    }
}

#[test]
fn wing_coarse_rounds_are_fewer_than_distinct_wing_values() {
    // The whole point of coarse ranges: far fewer synchronization rounds
    // than one per support level.
    let g = gen::planted_bicliques(40, 40, 4, 5, 5, 200, 21);
    let (d, metrics) = receipt_wing_decompose(g.view(Side::U), 4, 4);
    let mut distinct = d.wing.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(
        metrics.sync_rounds < g.num_edges() as u64,
        "rounds {} should be far below m {}",
        metrics.sync_rounds,
        g.num_edges()
    );
    let _ = distinct;
}

#[test]
fn max_wing_vertices_sit_in_dense_tips() {
    // Edges of the maximum wing live between vertices with high tip
    // numbers: a k-wing's endpoints all participate in >= k butterflies.
    let g = gen::planted_bicliques(30, 30, 2, 5, 5, 60, 31);
    let wings = wing_decompose(g.view(Side::U), 4);
    let tips = receipt::tip_decompose(&g, Side::U, &receipt::Config::default());
    let wmax = wings.max_wing();
    assert!(wmax > 0);
    for (e, &w) in wings.wing.iter().enumerate() {
        if w == wmax {
            let (u, _) = wings.edges[e];
            assert!(
                tips.tip[u as usize] >= wmax,
                "u{u} has tip {} < max wing {wmax}",
                tips.tip[u as usize]
            );
        }
    }
}

#[test]
fn kwing_hierarchy_is_nested() {
    let g = gen::planted_bicliques(20, 20, 2, 5, 5, 40, 41);
    let view = g.view(Side::U);
    let d = wing_decompose(view, 4);
    let mut covered_prev: Option<usize> = None;
    let mut k = d.max_wing();
    while k > 0 {
        let comps = kwing_components(view, &d, k);
        let covered: usize = comps.iter().map(|c| c.len()).sum();
        if let Some(prev) = covered_prev {
            assert!(covered >= prev, "k={k}: coverage shrank going down");
        }
        covered_prev = Some(covered);
        k /= 2;
    }
}

#[test]
fn wing_numbers_zero_iff_no_butterfly() {
    let g = gen::uniform(25, 25, 90, 51);
    let counts = butterfly::per_edge::per_edge_counts(g.view(Side::U));
    let d = wing_decompose(g.view(Side::U), 4);
    for (e, (&w, &c)) in d.wing.iter().zip(&counts).enumerate() {
        if c == 0 {
            assert_eq!(w, 0, "edge {e} in no butterfly must have wing 0");
        }
    }
}

//! Integration tests for graph versioning (`VERSIONING.md`): named tags
//! over the durable store, time travel, the diff law, derive operators,
//! and hostile `versions.meta` inputs that must fail closed with typed
//! errors. Section numbers cited inline are normative — a test failing
//! here means the implementation diverged from the spec.

use bigraph::{gen, BipartiteCsr};
use receipt::engine::{EngineOptions, StreamEngine};
use receipt::version::{self, VersionError, VersionStore};
use receipt::wal::Store;
use receipt::Config;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("receipt_versioning_{}_{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn options() -> EngineOptions {
    EngineOptions {
        config: Config::default().with_partitions(4),
        verify: false,
        ..EngineOptions::default()
    }
}

/// The state fingerprint the tests compare: total butterflies plus both
/// per-side tip checksums (the same triple a `VersionRef` pins, §3.2).
fn state_of(engine: &StreamEngine) -> (u64, u64, u64) {
    let snap = engine.snapshot();
    (
        snap.total_butterflies(),
        snap.tip_checksum(bigraph::Side::U),
        snap.tip_checksum(bigraph::Side::V),
    )
}

fn edge_set(engine: &StreamEngine) -> BTreeSet<(u32, u32)> {
    engine.snapshot().graph().edges().collect()
}

/// Streams `batches` through a durable store at `dir` with folding
/// disabled (§3.4: `--checkpoint-every 0` keeps every tag serviceable),
/// tagging `v{b}` at every boundary. Returns the reference trajectory,
/// index 0 being the pre-batch state.
fn build_tagged_store(
    dir: &Path,
    g: &BipartiteCsr,
    batches: &[Vec<bigraph::dynamic::EdgeOp>],
) -> Vec<(u64, u64, u64)> {
    let (engine, info) = StreamEngine::open_durable(dir, Some(g.clone()), options(), 0).unwrap();
    assert!(info.created);
    let mut store = VersionStore::open(dir).unwrap();
    store
        .tag_snapshot("v0", engine.end_lsn().unwrap(), &engine.snapshot())
        .unwrap();
    let mut states = vec![state_of(&engine)];
    for (b, ops) in batches.iter().enumerate() {
        engine.apply_batch(ops).unwrap();
        store
            .tag_snapshot(
                &format!("v{}", b + 1),
                engine.end_lsn().unwrap(),
                &engine.snapshot(),
            )
            .unwrap();
        states.push(state_of(&engine));
    }
    states
}

/// §3.2 + §4: time travel to every tagged boundary reproduces the
/// uninterrupted run's state exactly, and each materialized engine
/// passes the from-scratch oracle.
#[test]
fn time_travel_matches_uninterrupted_run_at_every_boundary() {
    let g = gen::zipf(40, 30, 160, 0.5, 0.9, 17);
    let batches = bigraph::dynamic::seeded_schedule(&g, 3, 30, 19);
    let dir = scratch("travel");
    let states = build_tagged_store(&dir, &g, &batches);

    for (boundary, expected) in states.iter().enumerate() {
        let name = format!("v{boundary}");
        let (historic, info) = StreamEngine::open_at(&dir, &name, options()).unwrap();
        assert_eq!(state_of(&historic), *expected, "{name}");
        // §4: records above the tag exist but must not replay.
        assert_eq!(info.replayed, boundary, "{name} replays its LSN prefix");
        assert_eq!(info.skipped_above, batches.len() - boundary, "{name}");
        historic
            .verify_against_scratch()
            .unwrap_or_else(|e| panic!("oracle at {name}: {e}"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// §4: `open_at` fails closed with `StateMismatch` when the tag's pinned
/// checksums disagree with the replayed state — a tampered tag must not
/// be served.
#[test]
fn time_travel_detects_checksum_divergence() {
    let g = gen::zipf(30, 20, 100, 0.5, 0.9, 23);
    let batches = bigraph::dynamic::seeded_schedule(&g, 2, 20, 29);
    let dir = scratch("mismatch");
    build_tagged_store(&dir, &g, &batches);

    // Re-tag the same LSN under a new name with a corrupted butterfly
    // count. The store happily records it (§3.2 checks bytes, not
    // semantics) — `open_at` is the layer that must refuse.
    let mut store = VersionStore::open(&dir).unwrap();
    let honest = store.lookup("v2").unwrap().clone();
    store
        .tag(
            "tampered",
            honest.lsn,
            honest.total_butterflies ^ 1,
            honest.tip_checksum_u,
            honest.tip_checksum_v,
        )
        .unwrap();
    match StreamEngine::open_at(&dir, "tampered", options()) {
        Err(VersionError::StateMismatch { name, .. }) => assert_eq!(name, "tampered"),
        Err(other) => panic!("expected StateMismatch, got {other}"),
        Ok(_) => panic!("expected StateMismatch, got a served engine"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// §5.3: the diff law `apply(at(a), diff(a, b)) = at(b)` — checked on
/// every adjacent pair and on the full span, for both the fingerprint
/// and the exact edge set.
#[test]
fn diff_composed_with_at_reaches_the_target_version() {
    let g = gen::zipf(40, 30, 160, 0.5, 0.9, 41);
    let batches = bigraph::dynamic::seeded_schedule(&g, 3, 30, 43);
    let dir = scratch("difflaw");
    let states = build_tagged_store(&dir, &g, &batches);
    let store = VersionStore::open(&dir).unwrap();

    let mut pairs: Vec<(usize, usize)> = (1..=batches.len()).map(|b| (b - 1, b)).collect();
    pairs.push((0, batches.len()));
    for (ia, ib) in pairs {
        let (a, b) = (format!("v{ia}"), format!("v{ib}"));
        let diff = store.diff(&a, &b).unwrap();
        // §5.2: last-op-per-edge — at most one op per touched edge,
        // sorted by (u, v).
        let keys: Vec<(u32, u32)> = diff.iter().map(|op| op.edge()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "diff({a}, {b}) is sorted and deduplicated");

        let (at_a, _) = StreamEngine::open_at(&dir, &a, options()).unwrap();
        let (at_b, _) = StreamEngine::open_at(&dir, &b, options()).unwrap();
        let replay = StreamEngine::new(at_a.snapshot().graph().clone(), options());
        if !diff.is_empty() {
            replay.apply_batch(&diff).unwrap();
        }
        assert_eq!(state_of(&replay), states[ib], "diff law {a} -> {b}");
        assert_eq!(edge_set(&replay), edge_set(&at_b), "{a} -> {b} edge set");
    }

    // §5.1: a reversed interval is a typed error, not an empty diff.
    match store.diff("v2", "v0") {
        Err(VersionError::Unordered { .. }) => {}
        other => panic!("expected Unordered, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// §6: derive operators against brute-force set algebra, in global
/// coordinates (induction reindexes both sides, so map back through the
/// id maps before comparing).
#[test]
fn derive_operators_match_bruteforce() {
    let a = gen::zipf(30, 25, 120, 0.5, 0.9, 53);
    let b = gen::zipf(35, 20, 110, 0.5, 0.9, 59);
    let ea: BTreeSet<(u32, u32)> = a.edges().collect();
    let eb: BTreeSet<(u32, u32)> = b.edges().collect();

    // §6.1: induced subgraph on a strictly increasing U subset.
    let subset: Vec<u32> = (0..a.num_u() as u32).step_by(4).collect();
    let keep: BTreeSet<u32> = subset.iter().copied().collect();
    let induced = bigraph::InducedGraph::new(a.view(bigraph::Side::U), &subset);
    let got: BTreeSet<(u32, u32)> = induced
        .csr()
        .edges()
        .map(|(u, v)| (induced.primary_global(u), induced.secondary_global(v)))
        .collect();
    let brute: BTreeSet<(u32, u32)> = ea
        .iter()
        .copied()
        .filter(|&(u, _)| keep.contains(&u))
        .collect();
    assert_eq!(got, brute, "subgraph (§6.1)");

    // §6.2: union takes max dimensions and the edge-set union.
    let union = bigraph::derive::union(&a, &b);
    assert_eq!(union.num_u(), a.num_u().max(b.num_u()));
    assert_eq!(union.num_v(), a.num_v().max(b.num_v()));
    let got: BTreeSet<(u32, u32)> = union.edges().collect();
    assert_eq!(got, ea.union(&eb).copied().collect(), "union (§6.2)");

    // §6.3: difference keeps a's dimensions and subtracts b's edges.
    let difference = bigraph::derive::difference(&a, &b);
    assert_eq!(difference.num_u(), a.num_u());
    assert_eq!(difference.num_v(), a.num_v());
    let got: BTreeSet<(u32, u32)> = difference.edges().collect();
    assert_eq!(
        got,
        ea.difference(&eb).copied().collect(),
        "difference (§6.3)"
    );
}

/// §2.3 + §2.4: hostile `versions.meta` bytes fail closed with the typed
/// error the validation order prescribes — never a partial read.
#[test]
fn hostile_versions_meta_fails_closed() {
    let g = gen::zipf(20, 15, 60, 0.5, 0.9, 61);
    let batches = bigraph::dynamic::seeded_schedule(&g, 1, 10, 67);
    let dir = scratch("hostile");
    build_tagged_store(&dir, &g, &batches);
    let path = VersionStore::versions_path(&dir);
    let pristine = std::fs::read(&path).unwrap();

    let corrupt = |mutate: &dyn Fn(&mut Vec<u8>)| -> VersionError {
        let mut bytes = pristine.clone();
        mutate(&mut bytes);
        std::fs::write(&path, &bytes).unwrap();
        let err = VersionStore::open(&dir).expect_err("tampered meta must fail");
        std::fs::write(&path, &pristine).unwrap();
        err
    };

    // §2.4 order: length/alignment before magic before version before
    // endianness before checksum before structure.
    match corrupt(&|b| b.truncate(version::VER_MIN_LEN as usize - 1)) {
        VersionError::Corrupt { .. } => {}
        other => panic!("short file: expected Corrupt, got {other:?}"),
    }
    match corrupt(&|b| b[0] ^= 0x40) {
        VersionError::BadMagic { .. } => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
    match corrupt(&|b| b[8] = 9) {
        VersionError::BadVersion { .. } => {}
        other => panic!("expected BadVersion, got {other:?}"),
    }
    match corrupt(&|b| b[12] ^= 0xff) {
        VersionError::BadEndianness { .. } => {}
        other => panic!("expected BadEndianness, got {other:?}"),
    }
    match corrupt(&|b| {
        let body_byte = version::VER_HEADER_LEN as usize + 1;
        b[body_byte] ^= 0x01;
    }) {
        VersionError::MetaChecksum { .. } => {}
        other => panic!("body flip: expected MetaChecksum, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// §3.1 + §3.3: name discipline and tag immutability are enforced at
/// creation time.
#[test]
fn tag_rules_are_enforced() {
    let g = gen::zipf(20, 15, 60, 0.5, 0.9, 71);
    let dir = scratch("rules");
    let (engine, _) = StreamEngine::open_durable(&dir, Some(g), options(), 0).unwrap();
    let mut store = VersionStore::open(&dir).unwrap();
    let snap = engine.snapshot();
    store.tag_snapshot("release-1.0", 0, &snap).unwrap();

    // §3.3: tags are immutable — re-tagging any existing name fails.
    match store.tag_snapshot("release-1.0", 0, &snap) {
        Err(VersionError::TagExists { name }) => assert_eq!(name, "release-1.0"),
        other => panic!("expected TagExists, got {other:?}"),
    }
    // §3.1: the name grammar is `[A-Za-z0-9._-]{1,64}`, not starting `-`.
    for bad in ["", "-lead", "spa ce", "snap/shot", "ü"] {
        match store.tag_snapshot(bad, 0, &snap) {
            Err(VersionError::BadName { .. }) => {}
            other => panic!("{bad:?}: expected BadName, got {other:?}"),
        }
    }
    let too_long = "x".repeat(version::TAG_MAX_NAME_LEN + 1);
    match store.tag_snapshot(&too_long, 0, &snap) {
        Err(VersionError::BadName { .. }) => {}
        other => panic!("overlong name: expected BadName, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// §3.4: the serviceability window `checkpoint_lsn ≤ tag_lsn ≤ wal_end`
/// is checked at use time — a tag past the WAL end and a tag folded
/// beneath a checkpoint both fail closed with typed errors.
#[test]
fn serviceability_window_is_enforced_at_use_time() {
    // Tag ahead of the WAL: the store records it (tags are just
    // metadata), but `open_at` and `diff` must refuse.
    let g = gen::zipf(20, 15, 60, 0.5, 0.9, 73);
    let batches = bigraph::dynamic::seeded_schedule(&g, 1, 10, 79);
    let dir = scratch("window_ahead");
    build_tagged_store(&dir, &g, &batches);
    let mut store = VersionStore::open(&dir).unwrap();
    store.tag("future", 99, 0, 0, 0).unwrap();
    match StreamEngine::open_at(&dir, "future", options()) {
        Err(VersionError::TagAheadOfWal { lsn, wal_end, .. }) => {
            assert_eq!(lsn, 99);
            assert_eq!(wal_end, batches.len() as u64);
        }
        Err(other) => panic!("expected TagAheadOfWal, got {other}"),
        Ok(_) => panic!("expected TagAheadOfWal, got a served engine"),
    }
    match store.diff("v0", "future") {
        Err(VersionError::TagAheadOfWal { .. }) => {}
        other => panic!("diff: expected TagAheadOfWal, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();

    // Tag below the checkpoint: fold every batch, so the v0 base state
    // is no longer reconstructible from the store (§3.4's orphan case).
    let g = gen::zipf(20, 15, 60, 0.5, 0.9, 83);
    let batches = bigraph::dynamic::seeded_schedule(&g, 2, 10, 89);
    let dir = scratch("window_folded");
    let (engine, info) = StreamEngine::open_durable(&dir, Some(g.clone()), options(), 1).unwrap();
    assert!(info.created);
    let mut store = VersionStore::open(&dir).unwrap();
    store
        .tag_snapshot("v0", engine.end_lsn().unwrap(), &engine.snapshot())
        .unwrap();
    for ops in &batches {
        engine.apply_batch(ops).unwrap();
    }
    drop(engine);
    let rec = Store::open(&dir).unwrap();
    assert!(rec.checkpoint_lsn > 0, "folding advanced the checkpoint");
    match StreamEngine::open_at(&dir, "v0", options()) {
        Err(VersionError::TagBelowCheckpoint { checkpoint_lsn, .. }) => {
            assert_eq!(checkpoint_lsn, rec.checkpoint_lsn);
        }
        Err(other) => panic!("expected TagBelowCheckpoint, got {other}"),
        Ok(_) => panic!("expected TagBelowCheckpoint, got a served engine"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Property-based tests over random bipartite graphs: structural
//! invariants of counting, coarse decomposition, tip numbers, and the
//! k-tip hierarchy.

use bigraph::{builder::from_edges, Side};
use proptest::prelude::*;
use receipt::{bup, cd, hierarchy, tip_decompose, Config};

/// Strategy: a random edge list over bounded side sizes.
fn arb_graph() -> impl Strategy<Value = bigraph::BipartiteCsr> {
    (2usize..24, 2usize..24).prop_flat_map(|(nu, nv)| {
        proptest::collection::vec((0..nu as u32, 0..nv as u32), 0..160)
            .prop_map(move |edges| from_edges(nu, nv, &edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counting_matches_naive(g in arb_graph()) {
        let fast = butterfly::count_graph(&g);
        let slow = butterfly::naive::naive_counts(&g);
        prop_assert_eq!(&fast.u, &slow.u);
        prop_assert_eq!(&fast.v, &slow.v);
        // Side sums agree: each butterfly has two vertices per side.
        prop_assert_eq!(fast.u.iter().sum::<u64>(), fast.v.iter().sum::<u64>());
    }

    #[test]
    fn receipt_equals_bup(g in arb_graph(), p in 1usize..9) {
        for side in [Side::U, Side::V] {
            let truth = bup::bup_decompose(&g, side, 4);
            let r = tip_decompose(&g, side, &Config::default().with_partitions(p));
            prop_assert_eq!(&truth.tip, &r.tip);
        }
    }

    #[test]
    fn tip_bounded_by_support_and_by_theta_max_of_neighbors(g in arb_graph()) {
        let counts = butterfly::count_graph(&g);
        let r = tip_decompose(&g, Side::U, &Config::default());
        for (u, &t) in r.tip.iter().enumerate() {
            prop_assert!(t <= counts.u[u]);
        }
        // Vertices with zero butterflies have tip number 0.
        for (u, &c) in counts.u.iter().enumerate() {
            if c == 0 {
                prop_assert_eq!(r.tip[u], 0);
            }
        }
    }

    #[test]
    fn coarse_ranges_partition_and_contain(g in arb_graph(), p in 1usize..6) {
        let cfg = Config::default().with_partitions(p);
        let coarse = cd::coarse_decompose(&g, Side::U, &cfg);
        let truth = bup::bup_decompose(&g, Side::U, 4);
        // Partition: each vertex exactly once.
        let mut seen = vec![false; g.num_u()];
        for (i, subset) in coarse.subsets.iter().enumerate() {
            for &u in subset {
                prop_assert!(!seen[u as usize]);
                seen[u as usize] = true;
                let t = truth.tip[u as usize];
                prop_assert!(coarse.bounds[i] <= t && t < coarse.bounds[i + 1]);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Ranges are disjoint and ordered.
        prop_assert!(coarse.bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ktip_support_condition(g in arb_graph()) {
        let r = tip_decompose(&g, Side::U, &Config::default());
        let theta_max = r.theta_max();
        for k in [1, theta_max.div_ceil(2).max(1), theta_max.max(1)] {
            prop_assert_eq!(
                hierarchy::verify_ktip_supports(g.view(Side::U), &r.tip, k),
                None
            );
        }
    }

    #[test]
    fn ktip_components_nest(g in arb_graph()) {
        // Every member of a (k+1)-level is present at level k.
        let r = tip_decompose(&g, Side::U, &Config::default());
        let theta_max = r.theta_max();
        if theta_max >= 2 {
            let hi: Vec<u32> = hierarchy::ktip_components(g.view(Side::U), &r.tip, theta_max)
                .into_iter()
                .flatten()
                .collect();
            let lo: Vec<u32> = hierarchy::ktip_components(g.view(Side::U), &r.tip, 1)
                .into_iter()
                .flatten()
                .collect();
            for u in hi {
                prop_assert!(lo.contains(&u), "vertex {u} vanished down-hierarchy");
            }
        }
    }

    #[test]
    fn wing_numbers_match_oracle(
        (nu, nv) in (2usize..8, 2usize..8),
        seed in 0u64..1000,
    ) {
        let m = nu * nv / 2 + 2;
        let g = bigraph::gen::uniform(nu, nv, m, seed);
        let fast = receipt::wing::wing_decompose(g.view(Side::U), 4);
        let slow = receipt::wing::naive_wing_decompose(g.view(Side::U));
        prop_assert_eq!(fast.wing, slow.wing);
    }

    #[test]
    fn compaction_preserves_tip_numbers_of_survivors(g in arb_graph()) {
        // Removing *zero-butterfly* vertices must not change anyone else's
        // tip number (they contribute no butterflies).
        let counts = butterfly::count_graph(&g);
        let alive_u: Vec<bool> = counts.u.iter().map(|&c| c > 0).collect();
        let alive_v = vec![true; g.num_v()];
        let compacted = bigraph::compact::compact(&g, &alive_u, &alive_v);
        let before = tip_decompose(&g, Side::U, &Config::default()).tip;
        let after = tip_decompose(&compacted, Side::U, &Config::default()).tip;
        for u in 0..g.num_u() {
            if alive_u[u] {
                prop_assert_eq!(before[u], after[u], "u = {}", u);
            }
        }
    }
}

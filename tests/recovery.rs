//! Crash-recovery integration tests against the durable store
//! (`FORMATS.md`): a miniature crash matrix driven through the public
//! engine API, and hostile-input cases where every corruption other than
//! a torn tail must fail closed with an error that names the file.

use bigraph::binfmt::{self, BinError};
use bigraph::{gen, BipartiteCsr};
use receipt::dynamic::fnv1a_u64;
use receipt::engine::{EngineOptions, StreamEngine};
use receipt::wal::{Store, StoreError, Wal, WalError, CKP_MAGIC, CKP_VERSION, ENDIAN_TAG};
use receipt::Config;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("receipt_recovery_{}_{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn options() -> EngineOptions {
    EngineOptions {
        config: Config::default().with_partitions(4),
        verify: false,
        ..EngineOptions::default()
    }
}

/// The recovered-state fingerprint the matrix compares: total butterfly
/// count plus both per-side tip checksums.
fn state_of(engine: &StreamEngine) -> (u64, u64, u64) {
    let snap = engine.snapshot();
    (
        snap.total_butterflies(),
        snap.tip_checksum(bigraph::Side::U),
        snap.tip_checksum(bigraph::Side::V),
    )
}

/// Builds a reference store at `dir`: init from `g`, then apply each
/// batch durably (no folding). Returns the per-boundary fingerprints,
/// index 0 being the pre-batch state.
fn build_reference(
    dir: &Path,
    g: &BipartiteCsr,
    batches: &[Vec<bigraph::dynamic::EdgeOp>],
) -> Vec<(u64, u64, u64)> {
    let (engine, info) = StreamEngine::open_durable(dir, Some(g.clone()), options(), 0).unwrap();
    assert!(info.created);
    let mut states = vec![state_of(&engine)];
    for ops in batches {
        engine.apply_batch(ops).unwrap();
        states.push(state_of(&engine));
    }
    states
}

/// Clones `reference` into a fresh store at `dir` whose WAL is truncated
/// to `wal_len` bytes — the on-disk image a crash at that point leaves.
fn clone_store_cut(reference: &Path, dir: &Path, wal_len: u64) {
    std::fs::copy(
        Store::snapshot_path(reference, 0),
        Store::snapshot_path(dir, 0),
    )
    .unwrap();
    std::fs::copy(Store::meta_path(reference), Store::meta_path(dir)).unwrap();
    let wal = std::fs::read(Store::wal_path(reference)).unwrap();
    std::fs::write(Store::wal_path(dir), &wal[..wal_len as usize]).unwrap();
}

#[test]
fn crash_matrix_recovers_every_batch_boundary() {
    let g = gen::zipf(40, 30, 160, 0.5, 0.9, 17);
    let batches = bigraph::dynamic::seeded_schedule(&g, 3, 30, 19);
    let ref_dir = scratch("matrix_ref");
    let states = build_reference(&ref_dir, &g, &batches);
    let spans = Wal::scan(Store::wal_path(&ref_dir)).unwrap();
    assert_eq!(spans.len(), batches.len());

    for (i, span) in spans.iter().enumerate() {
        let boundary = i + 1;

        // A crash right after the append (or right after the in-memory
        // apply — identical bytes either way) keeps the boundary's
        // record: recovery replays through batch `boundary`.
        let dir = scratch(&format!("matrix_kill_{boundary}"));
        clone_store_cut(&ref_dir, &dir, span.offset + span.len);
        let (engine, info) = StreamEngine::open_durable(&dir, None, options(), 0).unwrap();
        assert!(!info.created);
        assert_eq!(info.replayed, boundary);
        assert_eq!(info.end_lsn, boundary as u64);
        assert!(info.repaired.is_none(), "clean cut must not need repair");
        assert_eq!(state_of(&engine), states[boundary]);
        engine.verify_against_scratch().unwrap();

        // A crash mid-append leaves a torn tail: recovery truncates the
        // partial record and lands on the previous boundary.
        let dir = scratch(&format!("matrix_torn_{boundary}"));
        clone_store_cut(&ref_dir, &dir, span.offset + span.len - 5);
        let (engine, info) = StreamEngine::open_durable(&dir, None, options(), 0).unwrap();
        assert_eq!(info.replayed, boundary - 1);
        let repair = info.repaired.expect("torn tail must be repaired");
        assert_eq!(repair.discarded_bytes, span.len - 5);
        assert_eq!(state_of(&engine), states[boundary - 1]);
        engine.verify_against_scratch().unwrap();
    }
}

#[test]
fn torn_wal_tail_fails_strict_open_and_names_the_file() {
    let g = gen::zipf(25, 20, 90, 0.5, 0.8, 23);
    let batches = bigraph::dynamic::seeded_schedule(&g, 2, 20, 29);
    let ref_dir = scratch("torn_ref");
    build_reference(&ref_dir, &g, &batches);
    let spans = Wal::scan(Store::wal_path(&ref_dir)).unwrap();
    let last = spans.last().unwrap();

    let dir = scratch("torn_store");
    clone_store_cut(&ref_dir, &dir, last.offset + last.len - 7);

    // Strict opens — both the raw WAL and the store — refuse the tear.
    let err = Wal::open(Store::wal_path(&dir)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("wal.log"), "no path in: {msg}");
    assert!(msg.contains("torn WAL tail"), "wrong error: {msg}");
    match err {
        WalError::File { error, .. } => {
            assert!(matches!(*error, WalError::TornTail { last_lsn: 1, .. }))
        }
        other => panic!("expected pathful torn tail, got: {other}"),
    }
    let err = Store::open(&dir).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("wal.log") && msg.contains("torn WAL tail"),
        "{msg}"
    );

    // Only the explicit recovery path repairs it.
    let recovered = Store::recover(&dir).unwrap();
    let repair = recovered.repair.expect("recover reports the repair");
    assert_eq!(repair.discarded_bytes, last.len - 7);
    assert_eq!(recovered.batches.len(), spans.len() - 1);
}

#[test]
fn bit_flipped_record_checksum_fails_closed_in_both_modes() {
    let g = gen::zipf(25, 20, 90, 0.5, 0.8, 31);
    let batches = bigraph::dynamic::seeded_schedule(&g, 3, 20, 37);
    let ref_dir = scratch("flip_ref");
    build_reference(&ref_dir, &g, &batches);
    let spans = Wal::scan(Store::wal_path(&ref_dir)).unwrap();

    // Flip one bit in the checksum of an *interior* record. Bit flips
    // are not crashes: even `recover` must refuse, because truncating
    // here would silently drop committed batches after it.
    let dir = scratch("flip_store");
    let wal = std::fs::read(Store::wal_path(&ref_dir)).unwrap();
    clone_store_cut(&ref_dir, &dir, wal.len() as u64);
    let mut wal = wal;
    let victim = (spans[0].offset + spans[0].len - 1) as usize;
    wal[victim] ^= 0x01;
    std::fs::write(Store::wal_path(&dir), &wal).unwrap();

    for result in [Store::open(&dir), Store::recover(&dir)] {
        let Err(err) = result else {
            panic!("corruption must fail closed");
        };
        let msg = err.to_string();
        assert!(msg.contains("wal.log"), "no path in: {msg}");
        assert!(msg.contains("corrupt WAL record at lsn 1"), "{msg}");
    }

    // Flip one bit in the checksum of the *final* record. The record is
    // complete — all its declared bytes are present — so this is
    // corruption of a committed, acknowledged batch, not a torn tail:
    // recovery must refuse to truncate it away (FORMATS.md §2).
    let dir = scratch("flip_final_store");
    let wal = std::fs::read(Store::wal_path(&ref_dir)).unwrap();
    clone_store_cut(&ref_dir, &dir, wal.len() as u64);
    let mut wal = wal;
    let last = spans.last().unwrap();
    let victim = (last.offset + last.len - 1) as usize;
    assert_eq!(victim + 1, wal.len(), "final record ends the file");
    wal[victim] ^= 0x01;
    std::fs::write(Store::wal_path(&dir), &wal).unwrap();

    let last_lsn = spans.len() as u64;
    for result in [Store::open(&dir), Store::recover(&dir)] {
        let Err(err) = result else {
            panic!("final-record corruption must fail closed");
        };
        let msg = err.to_string();
        assert!(msg.contains("wal.log"), "no path in: {msg}");
        assert!(
            msg.contains(&format!("corrupt WAL record at lsn {last_lsn}")),
            "{msg}"
        );
    }
    // And the refusal is read-only: the damaged log is left as evidence.
    assert_eq!(std::fs::read(Store::wal_path(&dir)).unwrap(), wal);
}

#[test]
fn binary_header_rejects_bad_magic_and_bad_version() {
    let g = gen::zipf(15, 12, 40, 0.5, 0.8, 41);
    let dir = scratch("bgr");
    let good = dir.join("good.bgr");
    binfmt::write_binary_graph_path(&good, &g).unwrap();
    let bytes = std::fs::read(&good).unwrap();

    // Magic is checked first (FORMATS.md §2): a flipped identity byte
    // reports BadMagic even though the header checksum is also wrong.
    let bad_magic = dir.join("bad_magic.bgr");
    let mut corrupt = bytes.clone();
    corrupt[0] ^= 0xff;
    std::fs::write(&bad_magic, &corrupt).unwrap();
    let err = binfmt::read_binary_graph_path(&bad_magic).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("bad_magic.bgr") && msg.contains("bad magic"),
        "{msg}"
    );
    match err {
        BinError::File { error, .. } => assert!(matches!(*error, BinError::BadMagic { .. })),
        other => panic!("expected pathful bad magic, got: {other}"),
    }

    // Version comes before the checksum, so a lone version bump is
    // reported as such, not as a checksum mismatch.
    let bad_version = dir.join("bad_version.bgr");
    let mut corrupt = bytes;
    corrupt[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&bad_version, &corrupt).unwrap();
    let err = binfmt::read_binary_graph_path(&bad_version).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("bad_version.bgr"), "{msg}");
    match err {
        BinError::File { error, .. } => {
            assert!(matches!(*error, BinError::BadVersion { found: 99 }))
        }
        other => panic!("expected pathful bad version, got: {other}"),
    }
}

/// Encodes a checkpoint pointer exactly as `FORMATS.md` §3 specifies,
/// independently of the store's own encoder.
fn encode_meta_per_spec(lsn: u64, graph_checksum: u64) -> [u8; 40] {
    let checksum = fnv1a_u64(&[
        u64::from_le_bytes(CKP_MAGIC),
        (u64::from(CKP_VERSION) << 32) | u64::from(ENDIAN_TAG),
        lsn,
        graph_checksum,
    ]);
    let mut bytes = [0u8; 40];
    bytes[0..8].copy_from_slice(&CKP_MAGIC);
    bytes[8..12].copy_from_slice(&CKP_VERSION.to_le_bytes());
    bytes[12..16].copy_from_slice(&ENDIAN_TAG.to_le_bytes());
    bytes[16..24].copy_from_slice(&lsn.to_le_bytes());
    bytes[24..32].copy_from_slice(&graph_checksum.to_le_bytes());
    bytes[32..40].copy_from_slice(&checksum.to_le_bytes());
    bytes
}

#[test]
fn checkpoint_ahead_of_wal_fails_closed() {
    let g = gen::zipf(15, 12, 40, 0.5, 0.8, 43);
    let dir = scratch("ahead");
    Store::init(&dir, &g).unwrap();
    let snapshot = binfmt::read_binary_graph_path(Store::snapshot_path(&dir, 0)).unwrap();

    // Spec conformance first: the hand-encoded pointer for the store's
    // actual state must match what `Store::init` wrote byte for byte.
    let on_disk = std::fs::read(Store::meta_path(&dir)).unwrap();
    assert_eq!(
        on_disk,
        encode_meta_per_spec(0, snapshot.header_checksum),
        "checkpoint.meta disagrees with the FORMATS.md §3 encoding"
    );

    // Now advance the pointer past everything the WAL holds (end lsn 0)
    // with a checksum-valid pointer and a matching snapshot, so the LSN
    // invariant is the *only* thing wrong with the store.
    std::fs::copy(Store::snapshot_path(&dir, 0), Store::snapshot_path(&dir, 7)).unwrap();
    std::fs::write(
        Store::meta_path(&dir),
        encode_meta_per_spec(7, snapshot.header_checksum),
    )
    .unwrap();
    for result in [Store::open(&dir), Store::recover(&dir)] {
        let Err(err) = result else {
            panic!("checkpoint ahead of WAL must fail");
        };
        match &err {
            StoreError::CheckpointAheadOfWal {
                checkpoint_lsn: 7,
                wal_end: 0,
                path,
            } => assert!(path.contains("ahead"), "no store path in {err}"),
            other => panic!("expected CheckpointAheadOfWal, got: {other}"),
        }
    }
}

//! Stress suite for the lock-free Chase–Lev deque behind the worker
//! pool (`rayon::deque`), plus a pool-level quiescence reconciliation.
//!
//! The deque tests drive the raw protocol — one owner thread doing
//! lock-free push/pop at the bottom, `N` thieves CAS-racing at the top —
//! and check the only property that matters: **every pushed element is
//! reclaimed exactly once**, across buffer growth, the one-element race,
//! and arbitrary interleavings. The thief count scales with
//! `RAYON_NUM_THREADS` so CI's deque-stress matrix leg ({2, 4, 8})
//! exercises different contention levels.
//!
//! The owner-side calls are `unsafe` by design (the Chase–Lev protocol
//! requires a unique owner); each test confines them to one thread.

use rayon::deque::{Deque, Steal};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

static SERIAL: Mutex<()> = Mutex::new(());

/// Serializes the pool-level test against the deque tests so its exact
/// scheduler-stats deltas are meaningful (counters are process-global).
fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Thief parallelism for the raw-deque tests: the CI matrix leg sets
/// `RAYON_NUM_THREADS ∈ {2, 4, 8}`; default to 4 locally.
fn thieves() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

/// Runs `total` elements through a deque with one owner (pushing, with
/// interleaved pops controlled by `pop_every`) and `n_thieves` stealing
/// concurrently. Returns (owner_pops, steals, per-element seen counts).
fn run_owner_vs_thieves(total: usize, pop_every: usize, n_thieves: usize) -> (usize, usize) {
    let d: Arc<Deque<usize>> = Arc::new(Deque::new());
    let seen: Arc<Vec<AtomicU64>> = Arc::new((0..total).map(|_| AtomicU64::new(0)).collect());
    let owner_done = Arc::new(AtomicBool::new(false));
    let stolen = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..n_thieves)
        .map(|_| {
            let d = Arc::clone(&d);
            let seen = Arc::clone(&seen);
            let owner_done = Arc::clone(&owner_done);
            let stolen = Arc::clone(&stolen);
            std::thread::spawn(move || loop {
                match d.steal() {
                    Steal::Success(v) => {
                        seen[v].fetch_add(1, Ordering::Relaxed);
                        stolen.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => {
                        if owner_done.load(Ordering::Acquire) && d.is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    let mut owner_pops = 0usize;
    // SAFETY: this thread is the deque's sole owner; thieves only steal.
    unsafe {
        for i in 0..total {
            d.push(i);
            if pop_every != 0 && i % pop_every == 0 {
                if let Some(v) = d.pop() {
                    seen[v].fetch_add(1, Ordering::Relaxed);
                    owner_pops += 1;
                }
            }
        }
        while let Some(v) = d.pop() {
            seen[v].fetch_add(1, Ordering::Relaxed);
            owner_pops += 1;
        }
    }
    owner_done.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    for (i, s) in seen.iter().enumerate() {
        let count = s.load(Ordering::Relaxed);
        assert_eq!(
            count, 1,
            "element {i} reclaimed {count} times, want exactly 1"
        );
    }
    (owner_pops, stolen.load(Ordering::Relaxed))
}

#[test]
fn every_element_reclaimed_exactly_once_under_contention() {
    let (popped, stolen) = run_owner_vs_thieves(200_000, 5, thieves());
    assert_eq!(popped + stolen, 200_000);
}

#[test]
fn push_only_owner_forces_growth_under_racing_thieves() {
    // No interleaved pops: the deque depth grows past several buffer
    // doublings while thieves race the owner's `grow` publications.
    let (popped, stolen) = run_owner_vs_thieves(100_000, 0, thieves());
    assert_eq!(popped + stolen, 100_000);
    assert!(stolen > 0, "thieves must have taken part of the load");
}

#[test]
fn one_element_race_is_won_by_exactly_one_side() {
    // Repeatedly stage the pathological case: a single element fought
    // over by the owner's pop and a pack of thieves. Exactly one side
    // may win each round.
    let d = Arc::new(Deque::new());
    let rounds = 2_000usize;
    let claimed = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..thieves())
        .map(|_| {
            let d = Arc::clone(&d);
            let claimed = Arc::clone(&claimed);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    if d.steal().is_success() {
                        claimed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    let mut owner_wins = 0usize;
    // SAFETY: sole owner thread.
    unsafe {
        for i in 0..rounds {
            d.push(i);
            if d.pop().is_some() {
                owner_wins += 1;
            }
        }
    }
    // Wait for any in-flight winning steal to land before tallying.
    while owner_wins + claimed.load(Ordering::Acquire) < rounds {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        owner_wins + claimed.load(Ordering::Relaxed),
        rounds,
        "each round's single element must be claimed exactly once"
    );
    assert!(d.is_empty());
}

#[test]
fn pool_counters_reconcile_at_quiescence() {
    let _guard = serial();
    // The same exactly-once property, observed end-to-end through the
    // pool's telemetry: at quiescence every submitted job was executed,
    // attributed to exactly one executor.
    let before = rayon::scheduler_stats();
    let jobs = 512usize;
    let ran = AtomicUsize::new(0);
    parutil::with_pool(thieves().max(2), || {
        rayon::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });
    let after = rayon::scheduler_stats();
    assert_eq!(ran.load(Ordering::Relaxed), jobs);
    assert_eq!(after.jobs_submitted - before.jobs_submitted, jobs as u64);
    assert_eq!(after.tasks_executed - before.tasks_executed, jobs as u64);
    let sum =
        |s: &rayon::SchedulerStats| s.helper_executed + s.per_worker_executed.iter().sum::<u64>();
    assert_eq!(sum(&after) - sum(&before), jobs as u64);
    assert!(after.steals_succeeded <= after.steals_attempted);
}

//! Cross-algorithm equivalence: Theorem 2 of the paper says RECEIPT
//! computes exactly the tip numbers of sequential BUP, for any partition
//! count, thread count, and optimization toggles. ParB must agree too.

use bigraph::{gen, Side};
use receipt::{bup, parb, tip_decompose, Config};

fn graphs() -> Vec<(&'static str, bigraph::BipartiteCsr)> {
    vec![
        ("uniform", gen::uniform(60, 50, 400, 1)),
        ("zipf-mild", gen::zipf(80, 40, 500, 0.4, 0.7, 2)),
        ("zipf-skewed", gen::zipf(90, 30, 450, 0.3, 1.2, 3)),
        ("blocks", gen::planted_bicliques(48, 48, 4, 5, 5, 120, 4)),
        ("affiliation", gen::affiliation(70, 50, 6, 2, 0.8, 5)),
        ("sparse", gen::uniform(100, 100, 150, 6)),
        ("dense", gen::uniform(20, 20, 320, 7)),
    ]
}

#[test]
fn receipt_matches_bup_both_sides() {
    for (name, g) in graphs() {
        for side in [Side::U, Side::V] {
            let truth = bup::bup_decompose(&g, side, 4);
            let r = tip_decompose(&g, side, &Config::default().with_partitions(7));
            assert_eq!(truth.tip, r.tip, "{name} side {side}");
        }
    }
}

#[test]
fn parb_matches_bup_both_sides() {
    for (name, g) in graphs() {
        for side in [Side::U, Side::V] {
            let truth = bup::bup_decompose(&g, side, 4);
            let p = parb::parb_decompose(&g, side, 4);
            assert_eq!(truth.tip, p.tip, "{name} side {side}");
        }
    }
}

#[test]
fn receipt_invariant_under_partition_count() {
    let g = gen::zipf(100, 50, 700, 0.5, 0.9, 11);
    let reference = tip_decompose(&g, Side::U, &Config::default().with_partitions(1));
    for p in [2usize, 3, 5, 10, 37, 100, 1000] {
        let r = tip_decompose(&g, Side::U, &Config::default().with_partitions(p));
        assert_eq!(reference.tip, r.tip, "P = {p}");
    }
}

#[test]
fn receipt_invariant_under_optimization_toggles() {
    let g = gen::zipf(90, 45, 600, 0.4, 1.0, 13);
    let full = tip_decompose(&g, Side::U, &Config::default());
    let no_dgm = tip_decompose(&g, Side::U, &Config::default().without_dgm());
    let neither = tip_decompose(&g, Side::U, &Config::default().baseline_variant());
    assert_eq!(full.tip, no_dgm.tip);
    assert_eq!(full.tip, neither.tip);
    // The optimizations must not *increase* traversal.
    assert!(full.metrics.wedges_total() <= neither.metrics.wedges_total());
    assert!(no_dgm.metrics.wedges_total() <= neither.metrics.wedges_total());
}

#[test]
fn receipt_invariant_under_thread_count() {
    let g = gen::zipf(80, 60, 550, 0.5, 0.8, 17);
    let t1 = tip_decompose(&g, Side::U, &Config::default().with_threads(1));
    for t in [2usize, 3, 8] {
        let tt = tip_decompose(&g, Side::U, &Config::default().with_threads(t));
        assert_eq!(t1.tip, tt.tip, "T = {t}");
        // Wedge metrics are deterministic too (iteration structure is
        // thread-independent).
        assert_eq!(t1.metrics.wedges_total(), tt.metrics.wedges_total());
        assert_eq!(t1.metrics.sync_rounds, tt.metrics.sync_rounds);
    }
}

#[test]
fn relabeling_invariance() {
    // Permuting vertex ids must permute tip numbers identically.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let g = gen::zipf(50, 40, 350, 0.5, 0.9, 23);
    let base = tip_decompose(&g, Side::U, &Config::default()).tip;

    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    let mut perm_u: Vec<u32> = (0..50).collect();
    let mut perm_v: Vec<u32> = (0..40).collect();
    perm_u.shuffle(&mut rng);
    perm_v.shuffle(&mut rng);
    let permuted_edges: Vec<(u32, u32)> = g
        .edges()
        .map(|(u, v)| (perm_u[u as usize], perm_v[v as usize]))
        .collect();
    let g2 = bigraph::builder::from_edges(50, 40, &permuted_edges).unwrap();
    let permuted = tip_decompose(&g2, Side::U, &Config::default()).tip;
    for u in 0..50usize {
        assert_eq!(base[u], permuted[perm_u[u] as usize], "u = {u}");
    }
}

#[test]
fn tip_numbers_are_upper_bounded_by_butterfly_counts() {
    for (name, g) in graphs() {
        let counts = butterfly::count_graph(&g);
        for side in [Side::U, Side::V] {
            let r = tip_decompose(&g, side, &Config::default());
            for (u, (&t, &c)) in r.tip.iter().zip(counts.side(side)).enumerate() {
                assert!(t <= c, "{name} {side} u{u}: θ={t} > ⋈={c}");
            }
        }
    }
}

#[test]
fn wedge_accounting_is_consistent() {
    // RECEIPT-- (no HUC/DGM): CD peeling must traverse exactly the BUP
    // wedge workload (it peels every vertex once on the static graph),
    // and FD at most that (induced subgraphs shrink).
    let g = gen::zipf(70, 35, 420, 0.5, 0.9, 31);
    let bup_wedges = receipt::bup::bup_peel_wedges(g.view(Side::U));
    let r = tip_decompose(&g, Side::U, &Config::default().baseline_variant());
    assert_eq!(r.metrics.wedges_cd, bup_wedges);
    assert!(r.metrics.wedges_fd <= bup_wedges);
}

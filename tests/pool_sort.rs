//! Integration tests for the rayon shim's work-stealing worker pool and
//! parallel merge sort: `par_sort_unstable*` against `std` sorting over
//! adversarial input shapes and budgets, budget capping under nested
//! `install`, the pool-reuse regression (parallel terminals must not
//! spawn fresh threads per call), the steal path (other workers must
//! drain a seeded deque), and scheduler-stats accounting.
//!
//! Every test takes [`serial`]: the scheduler counters are process-global
//! and monotone, so exact delta assertions (the stats proptest) are only
//! meaningful when no other test is submitting jobs concurrently.
//! Serializing the binary costs a little wall-clock but buys exactness.

use parutil::with_pool;
use proptest::prelude::*;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

/// Serializes the tests of this binary (a panicking test must not wedge
/// the rest, hence the poison recovery).
fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// SplitMix-style keys: uncorrelated with index order.
fn key(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i >> 9)
}

/// Input shapes the sort must handle: random, pre-sorted, reverse-sorted,
/// and duplicate-heavy (many equal keys stress the merge split).
fn shapes(n: u64) -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("random", (0..n).map(key).collect()),
        ("sorted", (0..n).collect()),
        ("reverse", (0..n).rev().collect()),
        ("dup-heavy", (0..n).map(|i| key(i) % 7).collect()),
    ]
}

#[test]
fn par_sort_matches_std_on_all_shapes_and_budgets() {
    let _guard = serial();
    // 20_000 clears the ~4k sequential cutoff, so merges really run.
    for (shape, data) in shapes(20_000) {
        let mut expect = data.clone();
        expect.sort_unstable();
        for budget in 1..=8usize {
            let mut v = data.clone();
            with_pool(budget, || v.par_sort_unstable());
            assert_eq!(v, expect, "shape {shape}, budget {budget}");
        }
    }
}

#[test]
fn par_sort_by_and_by_key_match_std() {
    let _guard = serial();
    let data: Vec<u64> = (0..30_000).map(key).collect();
    for budget in [1usize, 3, 8] {
        let mut by = data.clone();
        with_pool(budget, || by.par_sort_unstable_by(|a, b| b.cmp(a)));
        let mut expect = data.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(by, expect, "by, budget {budget}");

        let mut by_key = data.clone();
        with_pool(budget, || by_key.par_sort_unstable_by_key(|&x| x % 1024));
        let mut expect = data.clone();
        expect.sort_unstable_by_key(|&x| x % 1024);
        // Unstable sort: only the key order is pinned down.
        let keys = |v: &[u64]| v.iter().map(|&x| x % 1024).collect::<Vec<_>>();
        assert_eq!(keys(&by_key), keys(&expect), "by_key, budget {budget}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn par_sort_equals_std_sort(
        xs in proptest::collection::vec(0u64..1_000_000, 0..9000),
        budget in 1usize..9,
        dup_mod in 1u64..32,
    ) {
        let _guard = serial();
        // Also exercise a duplicate-heavy projection of the same vector.
        for v in [xs.clone(), xs.iter().map(|x| x % dup_mod).collect::<Vec<_>>()] {
            let mut par = v.clone();
            with_pool(budget, || par.par_sort_unstable());
            let mut expect = v;
            expect.sort_unstable();
            prop_assert_eq!(par, expect);
        }
    }

    /// Scheduler accounting closes the books: every submitted job is
    /// executed exactly once, attributed to exactly one executor (a
    /// worker's deque count or the helping caller), and the steal
    /// counters stay ordered. Exact equality is only assertable because
    /// [`serial`] keeps the rest of this binary off the pool.
    #[test]
    fn scheduler_task_counts_sum_to_submitted_jobs(
        jobs in 1usize..48,
        budget in 2usize..6,
    ) {
        let _guard = serial();
        let before = rayon::scheduler_stats();
        with_pool(budget, || {
            rayon::scope(|s| {
                for i in 0..jobs {
                    s.spawn(move |_| {
                        std::hint::black_box(key(i as u64));
                    });
                }
            });
        });
        let after = rayon::scheduler_stats();
        prop_assert_eq!(after.jobs_submitted - before.jobs_submitted, jobs as u64);
        prop_assert_eq!(after.tasks_executed - before.tasks_executed, jobs as u64);
        // Attribution is complete: per-worker counts plus helper
        // executions account for every job (workers spawned mid-case
        // start at zero, so summing `after` minus summing `before` is
        // well-defined even when the registry grew).
        let sum = |s: &rayon::SchedulerStats| {
            s.helper_executed + s.per_worker_executed.iter().sum::<u64>()
        };
        prop_assert_eq!(sum(&after) - sum(&before), jobs as u64);
        prop_assert!(after.steals_succeeded <= after.steals_attempted);
        prop_assert!(after.tasks_executed <= after.jobs_submitted);
    }
}

#[test]
fn single_thread_budget_stays_off_the_queues() {
    let _guard = serial();
    let before = rayon::scheduler_stats();
    let sorted = with_pool(1, || {
        let mut v: Vec<u64> = (0..50_000).map(key).collect();
        v.par_sort_unstable();
        let s: u64 = (0..10_000u64).into_par_iter().sum();
        let (a, b) = rayon::join(|| 1u64 + 1, || 2u64 + 2);
        (v.windows(2).all(|w| w[0] <= w[1]), s, a + b)
    });
    assert_eq!(sorted, (true, 10_000 * 9_999 / 2, 6));
    let after = rayon::scheduler_stats();
    // Budget 1 is the single-thread fast path: terminals run inline on
    // the caller, so nothing is submitted and nothing can be stolen —
    // the invariant CI's t=1 matrix leg gates on via `repro check-sched`.
    assert_eq!(after.jobs_submitted, before.jobs_submitted);
    assert_eq!(after.steals_succeeded, before.steals_succeeded);
}

#[test]
fn steal_path_drains_a_seeded_worker_deque() {
    let _guard = serial();
    let before = rayon::scheduler_stats();
    with_pool(4, || {
        rayon::scope(|s| {
            // One seeder task. While the submitting (main) thread is
            // still parked in this closure's sleep, a pool worker picks
            // the seeder off the injector; the seeder then spawns a long
            // run of jobs, which land on *that worker's own deque*, and
            // keeps the owner busy — so the only way the queue drains
            // fast is other workers stealing from its front.
            s.spawn(|inner| {
                for _ in 0..32 {
                    inner.spawn(|_| std::thread::sleep(Duration::from_millis(2)));
                }
                std::thread::sleep(Duration::from_millis(30));
            });
            std::thread::sleep(Duration::from_millis(20));
        });
    });
    let after = rayon::scheduler_stats();
    assert!(
        after.steals_succeeded > before.steals_succeeded,
        "a seeded deque must be drained by thieves (steals {} -> {})",
        before.steals_succeeded,
        after.steals_succeeded
    );
    // More than one worker executed tasks: the seeder's owner plus at
    // least one thief (the helping main thread is counted separately).
    let busy = after
        .per_worker_executed
        .iter()
        .enumerate()
        .filter(|&(i, &count)| count > before.per_worker_executed.get(i).copied().unwrap_or(0))
        .count();
    assert!(
        busy >= 2,
        "expected >1 worker to execute tasks, got {busy} \
         (per-worker before {:?}, after {:?})",
        before.per_worker_executed,
        after.per_worker_executed
    );
}

#[test]
fn idle_pool_does_not_churn_steal_scans() {
    let _guard = serial();
    // Park some workers by running a parallel batch, then go quiet. The
    // 1 s parking backstop will fire on the idle workers during the quiet
    // window; the regression being pinned: a timeout wakeup must re-check
    // `pending == 0` and re-park, NOT run a steal scan — before the fix,
    // every backstop firing burned a full scan and `steals_attempted`
    // crept up forever during sequential phases.
    with_pool(4, || {
        rayon::scope(|s| {
            for _ in 0..16 {
                s.spawn(|_| {
                    std::hint::black_box(0u64);
                });
            }
        });
    });
    // Let in-flight scans from the batch above settle before baselining.
    std::thread::sleep(Duration::from_millis(200));
    let before = rayon::scheduler_stats();
    // > 1 s of quiescence guarantees at least one backstop firing per
    // parked worker (they re-park on a fresh 1 s window each time).
    std::thread::sleep(Duration::from_millis(2400));
    let after = rayon::scheduler_stats();
    assert_eq!(
        after.steals_attempted, before.steals_attempted,
        "an idle pool must not probe victim deques on parking-timeout wakeups"
    );
    assert_eq!(after.jobs_submitted, before.jobs_submitted);
    assert!(
        after.idle_timeouts > before.idle_timeouts,
        "parked workers must have recorded 1 s backstop timeouts over a \
         2.4 s quiet window (before {}, after {})",
        before.idle_timeouts,
        after.idle_timeouts
    );
}

#[test]
fn nested_install_budgets_cap_concurrency() {
    let _guard = serial();
    // Inside an inner budget-2 install, a terminal may split into at most
    // 2 parts regardless of the outer budget-8 pool; observed concurrency
    // of the per-part jobs is therefore <= 2.
    let live = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    with_pool(8, || {
        with_pool(2, || {
            assert_eq!(rayon::current_num_threads(), 2);
            (0..64u64).into_par_iter().for_each(|_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
            });
        });
        assert_eq!(rayon::current_num_threads(), 8, "outer budget restored");
    });
    let peak = peak.load(Ordering::SeqCst);
    assert!(
        (1..=2).contains(&peak),
        "peak concurrency {peak} exceeds inner budget 2"
    );
}

#[test]
fn consecutive_parallel_terminals_reuse_pool_workers() {
    let _guard = serial();
    // Warm the pool at the largest budget this binary uses, so later
    // rounds cannot legitimately grow it while we measure.
    with_pool(rayon::current_num_threads().max(8), || {
        (0..1024u64).into_par_iter().sum::<u64>()
    });
    let spawned = rayon::total_workers_spawned();
    assert!(spawned >= 1, "warm-up must have populated the pool");
    for round in 0..100u64 {
        // A mix of terminals: par-iter reduce, scope, and a parallel sort.
        let s: u64 = with_pool(4, || (0..10_000u64).into_par_iter().sum());
        assert_eq!(s, 10_000 * 9_999 / 2, "round {round}");
        rayon::scope(|sc| {
            for _ in 0..4 {
                sc.spawn(|_| {
                    std::hint::black_box(0u64);
                });
            }
        });
        let mut v: Vec<u64> = (0..8_192).map(key).collect();
        with_pool(4, || v.par_sort_unstable());
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
    assert_eq!(
        rayon::total_workers_spawned(),
        spawned,
        "parallel terminals must reuse pooled workers instead of spawning per call"
    );
}

#[test]
fn join_composes_with_terminals() {
    let _guard = serial();
    let (evens, odds) = with_pool(4, || {
        rayon::join(
            || {
                (0..100_000u64)
                    .into_par_iter()
                    .filter(|x| x % 2 == 0)
                    .count()
            },
            || {
                (0..100_000u64)
                    .into_par_iter()
                    .filter(|x| x % 2 == 1)
                    .count()
            },
        )
    });
    assert_eq!(evens, 50_000);
    assert_eq!(odds, 50_000);
}

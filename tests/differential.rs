//! Differential suite: the parallel CD+FD decompositions must equal their
//! sequential/naive oracles on several generated graph families — and the
//! comparison goes *through the JSON layer*: both runs are serialized to
//! report documents, parsed back, and compared as decoded structs, so a
//! serialization bug fails the suite just like an algorithmic one.

use bigraph::{builder::from_edges, gen, BipartiteCsr, Side};
use receipt::report::{CountReport, TipReport, WingReport};
use receipt::{Config, Metrics};

/// A handful of vertices share one hub plus a few private leaves — the
/// star-dominated regime where peeling does almost no wedge work.
fn star_heavy() -> BipartiteCsr {
    let mut edges = Vec::new();
    for u in 0..40u32 {
        edges.push((u, 0)); // the hub
        edges.push((u, 1 + u % 7)); // sparse second neighbours
    }
    for u in 0..8u32 {
        edges.push((u, 8 + u)); // private leaves
    }
    from_edges(40, 16, &edges).unwrap()
}

/// Dense planted bicliques — the butterfly-rich regime.
fn bipartite_clique() -> BipartiteCsr {
    gen::planted_bicliques(24, 24, 3, 5, 5, 40, 13)
}

/// Sparse uniform noise.
fn sparse_random() -> BipartiteCsr {
    gen::uniform(80, 60, 200, 17)
}

/// Repeated interactions: every edge appears 2–3 times in the input list
/// and must be merged by the builder before decomposition.
fn duplicate_edge() -> BipartiteCsr {
    let base = [
        (0u32, 0u32),
        (0, 1),
        (1, 0),
        (1, 1),
        (2, 0),
        (2, 2),
        (3, 1),
        (3, 2),
        (3, 3),
        (4, 3),
    ];
    let mut edges = Vec::new();
    for (i, &e) in base.iter().enumerate() {
        edges.push(e);
        edges.push(e);
        if i % 3 == 0 {
            edges.push(e);
        }
    }
    from_edges(5, 4, &edges).unwrap()
}

/// Skewed preferential attachment.
fn preferential() -> BipartiteCsr {
    gen::preferential_attachment(100, 50, 3, 23)
}

fn families() -> Vec<(&'static str, BipartiteCsr)> {
    vec![
        ("star-heavy", star_heavy()),
        ("bipartite-clique", bipartite_clique()),
        ("sparse-random", sparse_random()),
        ("duplicate-edge", duplicate_edge()),
        ("preferential", preferential()),
    ]
}

/// Serialize → parse → decode, asserting the document also re-serializes
/// byte-identically along the way.
fn through_json<T>(report: &T, context: &str) -> T
where
    T: serde::Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let text = serde_json::to_string_pretty(report).unwrap();
    let tree = serde_json::from_str_value(&text)
        .unwrap_or_else(|e| panic!("{context}: emitted invalid JSON: {e}"));
    assert_eq!(
        serde_json::to_string_pretty(&tree).unwrap(),
        text,
        "{context}: re-serialization drifted"
    );
    let decoded: T = serde_json::from_str(&text).unwrap();
    assert_eq!(&decoded, report, "{context}: decode changed the report");
    decoded
}

#[test]
fn wing_parallel_equals_sequential_oracle_via_json() {
    for (name, g) in families() {
        let view = g.view(Side::U);
        // Run 1: the RECEIPT-style parallel CD+FD path.
        let (par, metrics) = receipt::wing_parallel::receipt_wing_decompose(view, 4, 4);
        let par_doc = through_json(
            &WingReport::new(name, Side::U, 4, &par, Some(metrics)),
            name,
        );
        // Run 2: the sequential bottom-up oracle.
        let seq = receipt::wing::wing_decompose(view, 4);
        let seq_doc = through_json(&WingReport::new(name, Side::U, 0, &seq, None), name);
        // Differential comparison happens on the decoded documents.
        assert_eq!(par_doc.edges, seq_doc.edges, "{name}: edge order diverged");
        assert_eq!(par_doc.wing, seq_doc.wing, "{name}: wing numbers diverged");
        assert_eq!(par_doc.max_wing, seq_doc.max_wing, "{name}");
        assert_eq!(par_doc.num_edges, g.num_edges(), "{name}");
    }
}

#[test]
fn tip_cd_fd_equals_bup_oracle_via_json() {
    let config = Config::default().with_partitions(6);
    for (name, g) in families() {
        for side in [Side::U, Side::V] {
            let context = format!("{name}/{side:?}");
            // Run 1: RECEIPT (CD + FD).
            let d = receipt::tip_decompose(&g, side, &config);
            let receipt_doc = through_json(&TipReport::new(name, &config, &d), &context);
            // Run 2: the sequential BUP oracle, wrapped in the same schema.
            let oracle = receipt::bup::bup_decompose(&g, side, config.heap_arity);
            let oracle_report = TipReport {
                tip: oracle.tip.clone(),
                theta_max: oracle.tip.iter().copied().max().unwrap_or(0),
                metrics: Metrics::default(),
                ..TipReport::new(name, &config, &d)
            };
            let oracle_doc = through_json(&oracle_report, &context);
            assert_eq!(
                receipt_doc.tip, oracle_doc.tip,
                "{context}: CD+FD diverged from BUP"
            );
            assert_eq!(receipt_doc.theta_max, oracle_doc.theta_max, "{context}");
        }
    }
}

#[test]
fn butterfly_counts_equal_naive_oracle_via_json() {
    for (name, g) in families() {
        let fast = butterfly::par_count_graph(&g);
        let fast_doc = through_json(&CountReport::new(name, &fast), name);
        let naive = butterfly::naive::naive_counts(&g);
        let naive_doc = through_json(&CountReport::new(name, &naive), name);
        assert_eq!(fast_doc.u, naive_doc.u, "{name}: U counts diverged");
        assert_eq!(fast_doc.v, naive_doc.v, "{name}: V counts diverged");
        assert_eq!(
            fast_doc.total_butterflies, naive_doc.total_butterflies,
            "{name}"
        );
    }
}

#[test]
fn duplicate_edges_are_merged_before_decomposition() {
    // The duplicate-edge family must behave exactly like its deduplicated
    // form end to end.
    let dup = duplicate_edge();
    let base = [
        (0u32, 0u32),
        (0, 1),
        (1, 0),
        (1, 1),
        (2, 0),
        (2, 2),
        (3, 1),
        (3, 2),
        (3, 3),
        (4, 3),
    ];
    let clean = from_edges(5, 4, &base).unwrap();
    assert_eq!(dup.num_edges(), clean.num_edges());
    let cfg = Config::default();
    let a = receipt::tip_decompose(&dup, Side::U, &cfg);
    let b = receipt::tip_decompose(&clean, Side::U, &cfg);
    assert_eq!(a.tip, b.tip);
}

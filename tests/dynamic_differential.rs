//! Batch-dynamic differential suite: after *every* batch of a seeded
//! insert/delete schedule over the five graph families, the incrementally
//! maintained state must equal the from-scratch oracles on the
//! materialized graph —
//!
//! * per-vertex butterfly counts vs `butterfly::count_graph`,
//! * per-edge butterfly counts vs `butterfly::per_edge::per_edge_counts`,
//! * tip numbers (both sides) vs `receipt::bup::bup_decompose`.
//!
//! The suite drives the schedules through [`StreamEngine`] — the same
//! epoch-snapshot layer behind `tipdecomp stream`/`serve` and `repro
//! dynamic` — with `verify` on, so every batch passes the shared
//! differential gate before its snapshot is published.
//!
//! The whole file is thread-count-sensitive by construction (batch
//! enumeration fans out on the rayon pool), so CI runs it under each
//! `RAYON_NUM_THREADS` matrix leg; `identical_and_correct_at_1_and_4_threads`
//! additionally pins pools of 1 and 4 inside one process.

use bigraph::dynamic::{seeded_schedule, EdgeOp};
use bigraph::{builder::from_edges, gen, BipartiteCsr, Side};
use receipt::dynamic::UpdatePolicy;
use receipt::engine::{EngineOptions, StreamEngine};
use receipt::Config;

/// A handful of vertices share one hub plus a few private leaves.
fn star_heavy() -> BipartiteCsr {
    let mut edges = Vec::new();
    for u in 0..40u32 {
        edges.push((u, 0));
        edges.push((u, 1 + u % 7));
    }
    for u in 0..8u32 {
        edges.push((u, 8 + u));
    }
    from_edges(40, 16, &edges).unwrap()
}

fn families() -> Vec<(&'static str, BipartiteCsr)> {
    vec![
        ("star-heavy", star_heavy()),
        (
            "bipartite-clique",
            gen::planted_bicliques(24, 24, 3, 5, 5, 40, 13),
        ),
        ("sparse-random", gen::uniform(80, 60, 200, 17)),
        ("dense-zipf", gen::zipf(50, 35, 260, 0.6, 0.9, 29)),
        ("preferential", gen::preferential_attachment(100, 50, 3, 23)),
    ]
}

#[test]
fn incremental_state_equals_from_scratch_after_every_batch() {
    for (name, g) in families() {
        let schedule = seeded_schedule(&g, 5, 30, 0xD15C0 ^ g.num_edges() as u64);
        // Aggressive compaction + a mid dirty threshold: exercise overlay
        // rebuilds and both recompute policies across the families. The
        // engine verifies every batch against the from-scratch oracles
        // (vertex counts, per-edge counts incl. stale-entry detection,
        // tips vs BUP on both sides) before publishing its snapshot.
        let engine = StreamEngine::new(
            g,
            EngineOptions {
                config: Config::default().with_partitions(6),
                dirty_threshold: 0.15,
                compact_threshold: 0.15,
                verify: true,
            },
        );
        for (i, batch) in schedule.iter().enumerate() {
            let outcome = engine
                .apply_batch(batch)
                .unwrap_or_else(|e| panic!("{name} batch {i}: {e}"));
            assert_eq!(outcome.epoch, i as u64 + 1, "{name}: epochs count batches");
        }
    }
}

#[test]
fn policies_and_checksums_are_exercised() {
    // One denser run that must hit all three policies at least once
    // across its batches (unchanged via a no-butterfly batch appended).
    let g = gen::zipf(60, 40, 300, 0.5, 0.9, 41);
    let mut schedule = seeded_schedule(&g, 6, 25, 47);
    // A pendant edge to a brand-new vertex closes no butterfly.
    schedule.push(vec![EdgeOp::Insert(1000, 999)]);
    let engine = StreamEngine::new(
        g,
        EngineOptions {
            config: Config::default().with_partitions(6),
            dirty_threshold: 0.05,
            ..EngineOptions::default()
        },
    );
    let mut policies = Vec::new();
    for batch in &schedule {
        let outcome = engine.apply_batch(batch).unwrap();
        policies.push(outcome.update(Side::U).policy);
        let snap = &outcome.snapshot;
        let oracle = receipt::bup::bup_decompose(snap.graph(), Side::U, 4);
        assert_eq!(snap.tip_side(Side::U), &oracle.tip[..]);
        assert_eq!(
            snap.tip_checksum(Side::U),
            receipt::dynamic::fnv1a_u64(&oracle.tip),
        );
    }
    assert!(policies.contains(&UpdatePolicy::Unchanged), "{policies:?}");
    assert!(
        policies.contains(&UpdatePolicy::SeededRepeel)
            || policies.contains(&UpdatePolicy::FullRecompute),
        "{policies:?}"
    );
}

#[test]
fn identical_and_correct_at_1_and_4_threads() {
    // The acceptance gate: the same schedule, replayed under explicit
    // pools of 1 and 4 workers, must produce byte-identical batch deltas
    // and tip trajectories — and both must match the from-scratch
    // oracles. (CI additionally runs the whole file under the
    // RAYON_NUM_THREADS matrix.)
    let g = gen::zipf(50, 40, 250, 0.5, 0.9, 53);
    let schedule = seeded_schedule(&g, 4, 30, 59);
    let run = |threads: usize| {
        parutil::with_pool(threads, || {
            let engine = StreamEngine::new(
                g.clone(),
                EngineOptions {
                    config: Config::default().with_partitions(6),
                    dirty_threshold: 0.1,
                    compact_threshold: 0.2,
                    verify: true,
                },
            );
            let mut trajectory = Vec::new();
            for (i, batch) in schedule.iter().enumerate() {
                let outcome = engine
                    .apply_batch(batch)
                    .unwrap_or_else(|e| panic!("threads={threads} batch {i}: {e}"));
                trajectory.push((
                    outcome.delta.clone(),
                    outcome.snapshot.tip_side(Side::U).to_vec(),
                ));
            }
            trajectory
        })
    };
    let t1 = run(1);
    let t4 = run(4);
    assert_eq!(t1, t4, "batch deltas or tips changed with the pool size");
}

//! Lint fixture: R2 (`no-panic-in-durable`) violations and the inline
//! suppression grammar, in a path the rule scopes to.

pub fn read_header(bytes: &[u8]) -> u64 {
    let word: [u8; 8] = bytes[..8].try_into().unwrap();
    u64::from_le_bytes(word)
}

pub fn commit(len: usize) {
    assert!(len > 0, "empty record");
    debug_assert!(len < (1 << 20), "debug assertions are allowed");
}

pub fn corrupt() -> ! {
    panic!("checksum mismatch");
}

pub fn tail(bytes: &[u8]) -> u8 {
    // lint: allow(no-panic-in-durable) -- fixture: justified suppression
    *bytes.last().expect("nonempty")
}

pub fn head(bytes: &[u8]) -> u8 {
    // lint: allow(no-panic-in-durable)
    *bytes.first().expect("nonempty")
}

pub fn first(bytes: &[u8]) -> u8 {
    // lint: allow(no-such-rule) -- the rule name is wrong
    bytes[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}

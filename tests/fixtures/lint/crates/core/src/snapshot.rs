//! Lint fixture: R4 (`no-lock-in-read-path`) violations — blocking calls
//! in the module that must answer queries lock-free.

use std::sync::{Mutex, RwLock};

pub struct Snapshot {
    inner: Mutex<Vec<u64>>,
    tips: RwLock<Vec<u64>>,
}

impl Snapshot {
    pub fn total(&self) -> u64 {
        self.inner.lock().iter().sum()
    }

    pub fn tip(&self, v: usize) -> Option<u64> {
        self.tips.read().get(v).copied()
    }

    pub fn try_refresh(&self) -> bool {
        self.tips.try_write().is_some()
    }

    pub fn epoch(&self) -> u64 {
        7
    }
}

//! Lint fixture: R3 (`atomic-ordering-justified`) violations in a
//! scheduler file, plus an unsafe-in-test case (R1 applies in tests too).

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn publish(a: &AtomicUsize) {
    a.store(1, Ordering::Release);
}

pub fn claim(a: &AtomicUsize) -> usize {
    // ordering: Acquire pairs with the Release in `publish`.
    a.load(Ordering::Acquire)
}

pub fn tally(a: &AtomicUsize) {
    a.fetch_add(1, Ordering::Relaxed); // ordering: advisory counter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_are_unchecked_in_tests() {
        let a = AtomicUsize::new(0);
        a.store(7, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 7);
        let p = &a as *const AtomicUsize;
        unsafe { (*p).store(8, Ordering::SeqCst) };
    }
}

//! Lint fixture: R1 (`unsafe-needs-safety`) and R5
//! (`report-has-schema-version`) violations, mixed with clean cases so
//! the golden report pins both sides of each rule.

/// Reads a raw pointer, with no caller contract documented.
pub unsafe fn peek(p: *const u32) -> u32 {
    *p
}

/// Reads a raw pointer, documented.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn peek_documented(p: *const u32) -> u32 {
    *p
}

pub struct Wrapper(u8);

// SAFETY: `Wrapper` owns no shared state.
unsafe impl Send for Wrapper {}

pub fn read_both(p: *const u32) -> (u32, u32) {
    // SAFETY: caller guarantees two readable words at `p`.
    let a = unsafe { *p };
    let b = unsafe { *p.add(1) };
    (a, b)
}

#[derive(Debug, Serialize)]
pub struct StatsReport {
    pub kind: &'static str,
    pub total: u64,
}

#[derive(Debug, Serialize)]
pub struct SummaryReport {
    pub schema_version: u32,
    pub entries: Vec<EntryRow>,
}

#[derive(Debug, Serialize)]
pub struct EntryRow {
    pub id: u64,
}

#[derive(Debug, Serialize)]
pub struct LintReport {
    pub schema_version: u32,
    pub findings: Vec<FindingRow>,
}

#[derive(Debug, Serialize)]
pub struct FindingRow {
    pub rule: String,
}

#[derive(Debug, Clone)]
pub struct PlainReport {
    pub not_serialized: bool,
}

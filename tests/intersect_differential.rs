//! Differential proptest for the intersection kernels: galloping and
//! bitset against the scalar sorted-merge, over random ascending
//! duplicate-free vectors including heavily skewed size pairs — the
//! shape the degree-ratio heuristic selects the fast kernels for.
//!
//! The properties pinned:
//! * all three kernels produce the **same hit sequence** (the dynamic
//!   counter's determinism across heuristic decisions rests on this);
//! * the hit sequence equals a set-intersection oracle;
//! * work counters are sane: positive units, and galloping undercuts the
//!   merge on skewed inputs once sizes clear the heuristic's floor.

use butterfly::intersect::{
    gallop_partition_point, intersect_bitset, intersect_gallop, intersect_merge, should_gallop,
    VertexBitset,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

type V = u32;

/// Ascending, duplicate-free vector with values drawn from `0..universe`.
fn sorted_set(universe: V, max_len: usize) -> impl Strategy<Value = Vec<V>> {
    proptest::collection::vec(0..universe, 0..max_len).prop_map(|mut xs| {
        xs.sort_unstable();
        xs.dedup();
        xs
    })
}

fn merge_hits(a: &[V], b: &[V]) -> (Vec<V>, u64) {
    let mut out = Vec::new();
    let w = intersect_merge(a.iter().copied(), b.iter().copied(), |x| out.push(x));
    (out, w)
}

fn gallop_hits(small: &[V], large: &[V]) -> (Vec<V>, u64) {
    let mut out = Vec::new();
    let w = intersect_gallop(small.iter().copied(), large, |x| out.push(x));
    (out, w)
}

fn bitset_hits(members: &[V], stream: &[V], universe: usize) -> (Vec<V>, u64) {
    let bits = VertexBitset::from_iter(universe, members.iter().copied());
    let mut out = Vec::new();
    let w = intersect_bitset(&bits, stream.iter().copied(), |x| out.push(x));
    (out, w)
}

fn oracle(a: &[V], b: &[V]) -> Vec<V> {
    let sa: BTreeSet<V> = a.iter().copied().collect();
    b.iter().copied().filter(|x| sa.contains(x)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Comparable-size inputs: every kernel agrees with the set oracle.
    #[test]
    fn kernels_agree_on_random_sets(
        a in sorted_set(2_000, 300),
        b in sorted_set(2_000, 300),
    ) {
        let expect = oracle(&a, &b);
        let (m, mw) = merge_hits(&a, &b);
        prop_assert_eq!(&m, &expect);
        let (g_ab, _) = gallop_hits(&a, &b);
        prop_assert_eq!(&g_ab, &expect);
        let (g_ba, _) = gallop_hits(&b, &a);
        prop_assert_eq!(&g_ba, &expect);
        let (bs, bw) = bitset_hits(&a, &b, 2_000);
        prop_assert_eq!(&bs, &expect);
        // Work units are the advertised ones: merge ≤ |a|+|b| steps,
        // bitset exactly one test per streamed element.
        prop_assert!(mw <= (a.len() + b.len()) as u64);
        prop_assert_eq!(bw, b.len() as u64);
    }

    /// Heavily skewed sizes — the gallop/bitset home turf. A tiny list
    /// against a big dense-ish one; hits must still match the oracle and
    /// galloping must not exceed the merge's work once the heuristic
    /// would actually pick it.
    #[test]
    fn kernels_agree_on_skewed_sizes(
        small in sorted_set(50_000, 24),
        large in sorted_set(50_000, 4_000),
    ) {
        let expect = oracle(&small, &large);
        let (m, mw) = merge_hits(&small, &large);
        prop_assert_eq!(&m, &expect);
        let (g, gw) = gallop_hits(&small, &large);
        prop_assert_eq!(&g, &expect);
        let (bs, _) = bitset_hits(&small, &large, 50_000);
        prop_assert_eq!(&bs, &expect);
        if should_gallop(small.len(), large.len()) && !small.is_empty() {
            // O(|small| log |large|) probes against O(|small| + |large|)
            // steps; at ratio ≥ 8 the gallop can only win or tie up to
            // its log factor. A loose factor-2 bound keeps the assertion
            // robust while still catching a quadratic regression.
            prop_assert!(
                gw <= 2 * mw.max(1),
                "gallop {gw} probes vs merge {mw} steps on \
                 |small|={}, |large|={}", small.len(), large.len()
            );
        }
    }

    /// The boundary search the wedge loops use: identical to std's
    /// `partition_point` on every sorted input and threshold.
    #[test]
    fn gallop_partition_point_equals_std(
        xs in sorted_set(10_000, 600),
        threshold in 0u32..10_500,
    ) {
        prop_assert_eq!(
            gallop_partition_point(&xs, |&x| x < threshold),
            xs.partition_point(|&x| x < threshold)
        );
    }
}
